#!/usr/bin/env bash
# CI for the QTurbo reproduction workspace.
#
#   ./ci.sh          # lint + docs + tier-1 build/test + benchmarks
#   ./ci.sh --quick  # skip the benchmarks (lint + docs + tier-1 only)
#
# The benchmarks write BENCH_propagation.json, BENCH_schedule.json,
# BENCH_stepper.json, BENCH_device.json, and BENCH_e2e.json in the repo
# root so the simulator hot path's perf trajectory (constant-Hamiltonian
# kernel, schedule layout reuse, stepper-backend work counts, the
# realization-block device sweep, and the compiler-in-the-loop scenario
# matrix) is tracked across PRs.

set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> clippy unwrap/expect gate (quantum + math + compiler library code)"
# The evolution pipeline AND the compiler crates are panic-free by contract
# (see the Robustness section of crates/quantum/src/lib.rs and the try_*
# entry points of qturbo-aais / qturbo / qturbo-baseline): library code in
# these crates must not grow new unwrap()/expect() calls. The few justified
# sites carry statement-level #[allow]s with a reason. Test modules and doc
# examples are exempt (--lib).
cargo clippy -p qturbo-quantum -p qturbo-math -p qturbo -p qturbo-aais -p qturbo-baseline --lib -- -D warnings -W clippy::unwrap-used -W clippy::expect-used

echo "==> cargo doc --workspace --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

echo "==> tier-1: cargo build --release && cargo test -q"
# Includes tests/prop_faults.rs — the fault-injection conformance grid
# (every failure class x every stepper backend recovers or errors, never
# panics, never silently wrong).
cargo build --release
cargo test -q

echo "==> tier-1 single-threaded: QTURBO_THREADS=1 cargo test -q"
# Pins the execution layer's worker pool to one thread so pool scheduling
# can never mask a numerical discrepancy: the whole suite must pass with
# the kernels running inline exactly as it does with the pool fanned out.
QTURBO_THREADS=1 cargo test -q

echo "==> tier-1 traced: QTURBO_TRACE=1 cargo test -q"
# Flips the telemetry default on for the whole suite: every traced run must
# produce the same numerics (tests/conformance_telemetry.rs additionally
# pins traced == untraced bitwise and span sums == exact pass counters).
# The traced *wall-time* gate lives in bench_schedule, which times a traced
# dense-ramp batched run against the untraced Taylor bound.
QTURBO_TRACE=1 cargo test -q

if [[ "${1:-}" != "--quick" ]]; then
    echo "==> propagation benchmark (naive vs mask-compiled)"
    cargo run --release -p qturbo-bench --bin bench_propagation

    echo "==> schedule benchmark (recompile-per-segment vs layout reuse + dense-ramp batched gates)"
    # The dense-ramp entries assert the batched multi-segment sweep gates:
    # identical kernel applications, strictly fewer amplitude passes, wall
    # time never worse than per-segment Taylor, 1e-10 pairwise agreement,
    # and Auto within 10% of the best backend including the batched one —
    # plus the traced gate: a telemetry-enabled batched run must match a
    # back-to-back untraced run within the same 2 ms allowance, proving
    # tracing stays off the hot path (and, chained with the batched-vs-
    # taylor bound, that the dense-ramp wall gate holds with tracing on).
    cargo run --release -p qturbo-bench --bin bench_schedule

    echo "==> stepper benchmark (Taylor vs BatchedTaylor vs Krylov vs Chebyshev vs Auto backends)"
    # The bench binary asserts the Auto acceptance gates (never slower than
    # the worst fixed backend, within 10% of the best, on every workload)
    # and the ramp-workload batched gates (identical series, fewer passes,
    # never slower than per-segment Taylor).
    cargo run --release -p qturbo-bench --bin bench_stepper

    echo "==> device benchmark (sequential realizations vs SoA realization block)"
    # The bench binary asserts the realization-block acceptance gates:
    # block and sequential observables agree to 1e-10 on every
    # size x realization-count entry, a seeded block sweep is bitwise
    # reproducible across two runs, the sequential sweep's realization 0
    # is bitwise identical to a standalone run(), and at 16 qubits the
    # block path is at least as fast as sequential at R=16 and at least
    # 1.5x its realizations/sec at R=64.
    cargo run --release -p qturbo-bench --bin bench_device

    echo "==> end-to-end benchmark (compile -> lower -> emulate, QTurbo vs baseline)"
    # The bench binary asserts the compiler-in-the-loop acceptance gates on
    # every cell of the scenario matrix: the mask-compiled fast path agrees
    # with naive dense propagation of the lowered segments to 1e-10
    # infidelity, every lowered schedule compiles to exactly one mask
    # layout, and QTurbo's simulated observable error is no worse than the
    # baseline's (plus tolerance) wherever the baseline yields a solution.
    cargo run --release -p qturbo-bench --bin bench_e2e
fi

echo "==> CI OK"
