#!/usr/bin/env bash
# CI for the QTurbo reproduction workspace.
#
#   ./ci.sh          # lint + tier-1 build/test + propagation benchmark
#   ./ci.sh --quick  # skip the benchmark (lint + tier-1 only)
#
# The propagation benchmark writes BENCH_propagation.json in the repo root so
# the simulator hot path's perf trajectory is tracked across PRs.

set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

if [[ "${1:-}" != "--quick" ]]; then
    echo "==> propagation benchmark (naive vs mask-compiled)"
    cargo run --release -p qturbo-bench --bin bench_propagation
fi

echo "==> CI OK"
