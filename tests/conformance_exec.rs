//! Execution-layer conformance: the SIMD-lane kernels and the persistent
//! worker pool must be invisible in the numbers.
//!
//! The grid sweeps every [`StepperKind`] × every kernel path
//! ([`KernelPath::Lane`] and the scalar conformance reference) × worker
//! counts {1, 2, max} with the parallel threshold forced to zero — so even
//! the small registers of this suite genuinely fan out across the pool —
//! and pins every cell to the single-threaded scalar reference at 1e-10,
//! with the evolved norm preserved to the same window. A lane-math bug, a
//! chunk-boundary overlap, or a pool synchronization race all surface here
//! as amplitude disagreement.

use qturbo_hamiltonian::{Hamiltonian, Pauli, PauliString};
use qturbo_math::rng::Rng;
use qturbo_math::Complex;
use qturbo_quantum::compiled::CompiledHamiltonian;
use qturbo_quantum::propagate::evolve_naive;
use qturbo_quantum::{
    EvolveOptions, ExecutionContext, KernelPath, Propagator, StateVector, StepperKind,
};

const AGREEMENT: f64 = 1e-10;

/// A Hamiltonian exercising every kernel term class at once: tabled
/// diagonal terms, lane-aligned and lane-straddling flips (x-mask low bits
/// zero and non-zero), and weighted gathers with z-masks both below and
/// above the lane boundary.
fn every_class_hamiltonian(num_qubits: usize) -> Hamiltonian {
    Hamiltonian::from_terms(
        num_qubits,
        [
            (0.7, PauliString::single(0, Pauli::Z)),
            (-0.4, PauliString::two(1, Pauli::Z, 3, Pauli::Z)),
            (0.9, PauliString::single(1, Pauli::X)),
            (0.35, PauliString::single(3, Pauli::X)),
            (-0.6, PauliString::single(0, Pauli::Y)),
            (0.25, PauliString::two(2, Pauli::Z, 1, Pauli::Y)),
            (0.15, PauliString::identity()),
        ],
    )
}

fn random_state(rng: &mut Rng, num_qubits: usize) -> StateVector {
    let amplitudes: Vec<Complex> = (0..1usize << num_qubits)
        .map(|_| Complex::new(rng.next_range(-1.0, 1.0), rng.next_range(-1.0, 1.0)))
        .collect();
    StateVector::from_amplitudes(amplitudes)
}

/// The execution contexts of the grid: worker counts {1, 2, max} (max being
/// the machine's resolved parallelism, floored at 3 so the sweep always
/// includes a >2 fan-out even on small CI runners), each with the parallel
/// threshold at zero so the pool engages on every register size.
fn contexts() -> Vec<(String, ExecutionContext)> {
    let max_threads = ExecutionContext::auto().resolved_threads().max(3);
    let mut out = Vec::new();
    for path in [KernelPath::Lane, KernelPath::Scalar] {
        for threads in [1, 2, max_threads] {
            let label = format!("{path:?}/threads{threads}");
            out.push((
                label,
                ExecutionContext::auto()
                    .with_threads(threads)
                    .with_parallel_threshold(0)
                    .with_kernel_path(path),
            ));
        }
    }
    out
}

#[test]
fn every_backend_agrees_across_thread_counts_and_kernel_paths() {
    let mut rng = Rng::seed_from_u64(0xE8EC);
    for num_qubits in [4, 5] {
        let h = every_class_hamiltonian(num_qubits);
        let initial = random_state(&mut rng, num_qubits);
        let initial_norm = initial.norm();
        for duration in [0.4, 6.0] {
            let reference = evolve_naive(&initial, &h, duration);
            for kind in StepperKind::all() {
                for (label, context) in contexts() {
                    let options = EvolveOptions::new(kind).with_execution(context);
                    let mut propagator = Propagator::with_options(options);
                    let compiled = CompiledHamiltonian::compile(&h);
                    let mut state = initial.clone();
                    propagator.evolve_in_place(&compiled, &mut state, duration);
                    for (index, (a, b)) in state
                        .amplitudes()
                        .iter()
                        .zip(reference.amplitudes())
                        .enumerate()
                    {
                        assert!(
                            (*a - *b).abs() < AGREEMENT,
                            "{}q t={duration} {}/{label} amplitude {index}: {a} != {b}",
                            num_qubits,
                            kind.name()
                        );
                    }
                    // Norm preservation: the drift corrections rescale to the
                    // caller's reference norm whatever the execution config.
                    assert!(
                        (state.norm() - initial_norm).abs() < AGREEMENT,
                        "{}q t={duration} {}/{label}: norm {} != {initial_norm}",
                        num_qubits,
                        kind.name(),
                        state.norm()
                    );
                }
            }
        }
    }
}

#[test]
fn fixed_configuration_is_bitwise_reproducible() {
    // The determinism contract: same (threads, kernel path) ⇒ identical
    // bits, run to run, pool warm or cold.
    let mut rng = Rng::seed_from_u64(0xB17);
    let h = every_class_hamiltonian(4);
    let compiled = CompiledHamiltonian::compile(&h);
    let initial = random_state(&mut rng, 4);
    for (label, context) in contexts() {
        let options = EvolveOptions::taylor().with_execution(context);
        let mut first = initial.clone();
        Propagator::with_options(options).evolve_in_place(&compiled, &mut first, 1.3);
        let mut second = initial.clone();
        Propagator::with_options(options).evolve_in_place(&compiled, &mut second, 1.3);
        assert_eq!(
            first.amplitudes(),
            second.amplitudes(),
            "{label}: repeated runs diverged"
        );
    }
}

#[test]
fn with_threads_builder_pins_the_worker_count() {
    // The satellite requirement spelled out: EvolveOptions::with_threads
    // flows into the stored execution context, and 0 restores automatic
    // resolution.
    let pinned = EvolveOptions::default().with_threads(2);
    assert_eq!(pinned.execution.resolved_threads(), 2);
    let auto = pinned.with_threads(0);
    assert_eq!(
        auto.execution.resolved_threads(),
        ExecutionContext::auto().resolved_threads()
    );
    let swapped = EvolveOptions::default()
        .with_execution(ExecutionContext::auto().with_kernel_path(KernelPath::Scalar));
    assert_eq!(swapped.execution.kernel_path(), KernelPath::Scalar);
}
