//! End-to-end scenario matrix conformance: every cell of
//! [`qturbo_bench::e2e::scenario_matrix`] is compiled with QTurbo and the
//! baseline, lowered into the fast emulator, and simulated — asserting the
//! same gates `bench_e2e` enforces in CI:
//!
//! * the mask-compiled fast path reproduces naive dense propagation of the
//!   lowered segments to 1e-10 infidelity on every compiled pulse,
//! * every lowered schedule compiles to exactly one mask layout,
//! * QTurbo's *simulated* observable error is no worse than the baseline's
//!   (plus a small tolerance) wherever the baseline yields a solution, and
//!   strictly better on the Rydberg cells where the baseline degrades.

use qturbo_bench::e2e::{ideal_final_state, run_cell, scenario_matrix};
use qturbo_bench::Device;

const CONFORMANCE: f64 = 1e-10;
const OBSERVABLE_TOLERANCE: f64 = 0.02;

#[test]
fn full_matrix_meets_end_to_end_gates() {
    let matrix = scenario_matrix();
    assert!(matrix.len() >= 6, "matrix shrank below six cells");
    let mut baseline_solutions = 0usize;

    for scenario in &matrix {
        let cell = run_cell(scenario);

        assert!(
            cell.qturbo.vs_naive_infidelity < CONFORMANCE,
            "{}: QTurbo fast-vs-naive infidelity {}",
            cell.name,
            cell.qturbo.vs_naive_infidelity
        );
        assert_eq!(
            cell.qturbo.layouts, 1,
            "{}: QTurbo lowered schedule used {} layouts",
            cell.name, cell.qturbo.layouts
        );
        assert!(
            cell.qturbo.observable_error < 0.05,
            "{}: QTurbo simulated observable error {} is not small",
            cell.name,
            cell.qturbo.observable_error
        );

        if let Some(baseline) = &cell.baseline {
            baseline_solutions += 1;
            assert!(
                baseline.vs_naive_infidelity < CONFORMANCE,
                "{}: baseline fast-vs-naive infidelity {}",
                cell.name,
                baseline.vs_naive_infidelity
            );
            assert_eq!(
                baseline.layouts, 1,
                "{}: baseline lowered schedule used {} layouts",
                cell.name, baseline.layouts
            );
            assert!(
                cell.qturbo.observable_error <= baseline.observable_error + OBSERVABLE_TOLERANCE,
                "{}: QTurbo simulated error {} worse than baseline {}",
                cell.name,
                cell.qturbo.observable_error,
                baseline.observable_error
            );
            // The Rydberg machine is where the monolithic baseline degrades:
            // its accepted (threshold-0.6) solutions drift visibly while
            // QTurbo stays near the ideal observables.
            if scenario.device == Device::Rydberg {
                assert!(
                    cell.qturbo.observable_error < baseline.observable_error,
                    "{}: expected a strict simulated advantage, got QTurbo {} vs baseline {}",
                    cell.name,
                    cell.qturbo.observable_error,
                    baseline.observable_error
                );
            }
        } else {
            // A baseline failure must carry its typed error's rendering.
            let reason = cell
                .baseline_failure
                .as_deref()
                .unwrap_or_else(|| panic!("{}: baseline absent without a reason", cell.name));
            assert!(!reason.is_empty());
        }
    }

    assert!(
        baseline_solutions >= 4,
        "baseline produced only {baseline_solutions} solutions across the matrix"
    );
}

#[test]
fn ideal_states_are_normalized_and_sized_to_the_cell() {
    for scenario in scenario_matrix() {
        let ideal = ideal_final_state(&scenario);
        assert_eq!(ideal.num_qubits(), scenario.num_qubits);
        assert!((ideal.norm() - 1.0).abs() < 1e-9, "{}", scenario.name);
    }
}
