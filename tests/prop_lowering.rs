//! Property tests for the pulse-schedule lowering layer
//! ([`qturbo_aais::lowering`]): on random in-bounds schedules for both
//! machine families,
//!
//! * lowering always produces a single structure run, so the emulator
//!   compiles exactly one mask layout regardless of which drives each
//!   segment switches off (the raw, unpadded segments routinely split into
//!   several runs — the property is that padding always repairs this),
//! * the inserted zero-coefficient placeholders never change the dynamics:
//!   propagating the padded segments matches propagating the raw ones,
//! * the padded piecewise form and the raw segment list report identical
//!   durations.
//!
//! Deterministically seeded sampling via `qturbo_math::rng::Rng` (no external
//! property-testing framework is vendored in this environment).

use qturbo_aais::heisenberg::{heisenberg_aais, HeisenbergOptions};
use qturbo_aais::rydberg::{rydberg_aais, RydbergOptions};
use qturbo_aais::{Aais, PulseSchedule, PulseSegment};
use qturbo_math::rng::Rng;
use qturbo_math::Complex;
use qturbo_quantum::propagate::evolve_piecewise;
use qturbo_quantum::schedule::CompiledSchedule;
use qturbo_quantum::StateVector;

fn random_state(rng: &mut Rng, num_qubits: usize) -> StateVector {
    let amplitudes: Vec<Complex> = (0..1usize << num_qubits)
        .map(|_| Complex::new(rng.next_range(-1.0, 1.0), rng.next_range(-1.0, 1.0)))
        .collect();
    let mut state = StateVector::from_amplitudes(amplitudes);
    state.normalize();
    state
}

/// A random schedule varying only the runtime-dynamic variables (the
/// runtime-fixed atom positions must stay put across segments). Each dynamic
/// variable is switched off with probability 1/2, so segments routinely
/// realize different term structures.
fn random_schedule(rng: &mut Rng, aais: &Aais, num_segments: usize) -> PulseSchedule {
    let budget = aais.max_evolution_time() / num_segments as f64;
    let mut schedule = PulseSchedule::new();
    for _ in 0..num_segments {
        let mut values = aais.default_values();
        for id in aais.dynamic_variables() {
            if rng.next_usize(2) == 0 {
                continue;
            }
            let variable = aais.registry().get(id);
            values[id.index()] = rng.next_range(variable.lower(), variable.upper());
        }
        schedule.push(PulseSegment::new(
            rng.next_range(0.05, budget.min(0.5)),
            values,
        ));
    }
    schedule
}

fn assert_lowering_properties(rng: &mut Rng, aais: &Aais, samples: usize) {
    let mut raw_run_splits = 0usize;
    for sample in 0..samples {
        let num_segments = 2 + rng.next_usize(4);
        let schedule = random_schedule(rng, aais, num_segments);
        let lowered = schedule
            .try_lower(aais)
            .unwrap_or_else(|e| panic!("sample {sample}: lowering failed: {e}"));
        if lowered.raw_structure_runs() > 1 {
            raw_run_splits += 1;
        }

        // One structure run, one mask layout — always.
        assert_eq!(
            lowered.structure_runs(),
            1,
            "sample {sample}: padding left {} structure runs",
            lowered.structure_runs()
        );
        let compiled = CompiledSchedule::compile_piecewise(lowered.piecewise());
        assert_eq!(
            compiled.num_layouts(),
            1,
            "sample {sample}: emulator compiled {} layouts",
            compiled.num_layouts()
        );
        assert!(compiled.shares_layouts_with(&compiled));

        // Durations survive lowering unchanged.
        let raw = schedule.hamiltonians(aais).unwrap();
        let padded = lowered.hamiltonian_segments();
        assert_eq!(raw.len(), padded.len());
        for ((_, raw_duration), (_, padded_duration)) in raw.iter().zip(&padded) {
            assert_eq!(raw_duration, padded_duration, "sample {sample}");
        }

        // Zero placeholders are dynamically inert: both segment lists
        // propagate a random state to the same result.
        let initial = random_state(rng, aais.num_sites());
        let via_raw = evolve_piecewise(&initial, &raw);
        let via_padded = evolve_piecewise(&initial, &padded);
        let fidelity = via_raw.fidelity(&via_padded);
        assert!(
            fidelity > 1.0 - 1e-12,
            "sample {sample}: padded dynamics drifted (fidelity {fidelity})"
        );
    }
    // The property is only interesting if the raw segments actually split;
    // with drives switched off at random this happens in most samples.
    assert!(
        raw_run_splits * 2 >= samples,
        "only {raw_run_splits}/{samples} samples exercised a raw structure split"
    );
}

#[test]
fn lowering_properties_hold_on_the_heisenberg_machine() {
    let mut rng = Rng::seed_from_u64(0x10_77E2);
    let aais = heisenberg_aais(4, &HeisenbergOptions::default());
    assert_lowering_properties(&mut rng, &aais, 25);
}

#[test]
fn lowering_properties_hold_on_the_rydberg_machine() {
    let mut rng = Rng::seed_from_u64(0x52_D8E6);
    let aais = rydberg_aais(4, &RydbergOptions::default());
    assert_lowering_properties(&mut rng, &aais, 25);
}

#[test]
fn lowering_properties_hold_without_interaction_cutoff() {
    let mut rng = Rng::seed_from_u64(0xA11_CE5);
    let aais = rydberg_aais(
        3,
        &RydbergOptions {
            interaction_cutoff: None,
            ..RydbergOptions::default()
        },
    );
    assert_lowering_properties(&mut rng, &aais, 15);
}
