//! Property tests pinning the compiled-schedule and fused-observable paths
//! to their reference implementations:
//!
//! * [`CompiledSchedule`] evolution must match recompile-per-segment
//!   evolution (amplitudes within 1e-10) on random schedules, including
//!   schedules whose term structure changes between segments,
//! * the fused Z/ZZ sweep must match per-observable
//!   [`StateVector::expectation`] values to 1e-12,
//! * `evolve` must be linear in the input norm (the norm-forcing regression),
//! * the cyclic ZZ bonds must be distinct and non-degenerate for
//!   `n ∈ {1, 2, 3}`.
//!
//! Deterministically seeded sampling via `qturbo_math::rng::Rng` (no external
//! property-testing framework is vendored in this environment).

use qturbo_hamiltonian::{Hamiltonian, Pauli, PauliString, PiecewiseHamiltonian};
use qturbo_math::rng::Rng;
use qturbo_math::Complex;
use qturbo_quantum::observable::{measure_z_zz, zz_expectations, zz_pairs};
use qturbo_quantum::propagate::{evolve, evolve_piecewise, evolve_schedule};
use qturbo_quantum::schedule::CompiledSchedule;
use qturbo_quantum::{CompiledTerm, Propagator, StateVector};

fn random_state(rng: &mut Rng, num_qubits: usize) -> StateVector {
    let amplitudes: Vec<Complex> = (0..1usize << num_qubits)
        .map(|_| Complex::new(rng.next_range(-1.0, 1.0), rng.next_range(-1.0, 1.0)))
        .collect();
    StateVector::from_amplitudes(amplitudes)
}

fn random_string(rng: &mut Rng, num_qubits: usize) -> PauliString {
    PauliString::from_ops((0..num_qubits).filter_map(|qubit| match rng.next_usize(4) {
        0 => None,
        k => Some((qubit, [Pauli::X, Pauli::Y, Pauli::Z][k - 1])),
    }))
}

/// A random schedule in which runs of consecutive segments share their term
/// structure but not their coefficients — the shape `CompiledSchedule` is
/// built for — with occasional structure breaks between runs.
fn random_schedule(rng: &mut Rng, num_qubits: usize) -> Vec<(Hamiltonian, f64)> {
    let mut segments = Vec::new();
    let num_runs = 1 + rng.next_usize(3);
    for _ in 0..num_runs {
        let num_strings = 1 + rng.next_usize(4);
        let strings: Vec<PauliString> = (0..num_strings)
            .map(|_| random_string(rng, num_qubits))
            .collect();
        let run_length = 1 + rng.next_usize(5);
        for _ in 0..run_length {
            let hamiltonian = Hamiltonian::from_terms(
                num_qubits,
                strings
                    .iter()
                    .map(|s| (rng.next_range(0.2, 2.0), s.clone())),
            );
            segments.push((hamiltonian, rng.next_range(0.05, 0.5)));
        }
    }
    segments
}

#[test]
fn compiled_schedule_matches_per_segment_compilation() {
    let mut rng = Rng::seed_from_u64(0x5C4ED);
    for case in 0..25 {
        let num_qubits = 1 + rng.next_usize(4);
        let segments = random_schedule(&mut rng, num_qubits);
        let initial = random_state(&mut rng, num_qubits);
        let reference = evolve_piecewise(&initial, &segments);
        let schedule = CompiledSchedule::compile(&segments);
        let fast = evolve_schedule(&initial, &schedule);
        for (a, b) in fast.amplitudes().iter().zip(reference.amplitudes()) {
            assert!(
                (*a - *b).abs() < 1e-10,
                "case {case} ({num_qubits}q, {} segments, {} layouts): {a} != {b}",
                schedule.num_segments(),
                schedule.num_layouts()
            );
        }
    }
}

#[test]
fn discretized_ramp_reuses_one_layout_and_matches_reference() {
    let ramp = PiecewiseHamiltonian::discretize(
        |t| {
            Hamiltonian::from_terms(
                3,
                [
                    (1.0 - 0.8 * t, PauliString::single(0, Pauli::X)),
                    (0.4 + t, PauliString::two(0, Pauli::Z, 1, Pauli::Z)),
                    (0.3 + 0.5 * t, PauliString::two(1, Pauli::Z, 2, Pauli::Z)),
                    (0.2, PauliString::single(2, Pauli::X)),
                ],
            )
        },
        1.0,
        120,
    );
    assert_eq!(ramp.structure_runs(), vec![0..120]);
    let schedule = CompiledSchedule::compile_piecewise(&ramp);
    assert_eq!(schedule.num_layouts(), 1);
    assert_eq!(schedule.num_segments(), 120);

    let segments: Vec<(Hamiltonian, f64)> = ramp
        .segments()
        .iter()
        .map(|s| (s.hamiltonian.clone(), s.duration))
        .collect();
    let initial = StateVector::zero_state(3);
    let reference = evolve_piecewise(&initial, &segments);
    let fast = evolve_schedule(&initial, &schedule);
    for (a, b) in fast.amplitudes().iter().zip(reference.amplitudes()) {
        assert!((*a - *b).abs() < 1e-10, "{a} != {b}");
    }
}

/// The per-segment weight vector an independent compilation of the segment
/// would produce, in the columnar `[diag | flip | gather]` column order —
/// the reference the `S × T` weight matrix must reproduce **bit-identically**
/// (the columnar layout moves the weights, it must not touch their values).
fn reference_weight_row(hamiltonian: &Hamiltonian) -> Vec<f64> {
    let mut diag = Vec::new();
    let mut flip = Vec::new();
    let mut gather = Vec::new();
    for (coefficient, string) in hamiltonian.terms() {
        let unit = CompiledTerm::compile(1.0, string);
        if unit.x_mask() == 0 {
            diag.push(coefficient);
        } else if unit.z_mask() == 0 {
            flip.push(coefficient);
        } else {
            gather.push(coefficient);
        }
    }
    diag.extend(flip);
    diag.extend(gather);
    diag
}

#[test]
fn columnar_weight_matrix_is_bit_identical_to_per_segment_vectors() {
    let mut rng = Rng::seed_from_u64(0xC01A);
    for case in 0..20 {
        let num_qubits = 1 + rng.next_usize(4);
        let segments = random_schedule(&mut rng, num_qubits);
        let schedule = CompiledSchedule::compile(&segments);
        for (index, (hamiltonian, _)) in segments.iter().enumerate() {
            let expected = reference_weight_row(hamiltonian);
            let row = schedule.segment_weight_row(index);
            // Bit-identical, not approximately equal: the columnar layout
            // stores the very same f64s the per-segment classification
            // produces.
            assert_eq!(
                row,
                &expected[..],
                "case {case}, segment {index}: weight row diverged"
            );
        }
        // scaled_weights shares the mask layouts under the columnar layout
        // and scales exactly one scalar per term. Powers of two are exact in
        // binary floating point, so the scaled rows are bit-identical to
        // scaling the reference by hand.
        for &scale in &[0.5, 2.0, -4.0] {
            let scaled = schedule.scaled_weights(scale);
            assert!(schedule.shares_layouts_with(&scaled));
            for (index, (hamiltonian, _)) in segments.iter().enumerate() {
                let expected: Vec<f64> = reference_weight_row(hamiltonian)
                    .into_iter()
                    .map(|w| w * scale)
                    .collect();
                assert_eq!(
                    scaled.segment_weight_row(index),
                    &expected[..],
                    "case {case}, segment {index}, scale {scale}"
                );
            }
        }
    }
}

#[test]
fn fused_observables_match_per_observable_expectations() {
    let mut rng = Rng::seed_from_u64(0x0B5E);
    for _ in 0..30 {
        let num_qubits = 1 + rng.next_usize(6);
        let state = random_state(&mut rng, num_qubits);
        for cyclic in [false, true] {
            let fused = measure_z_zz(&state, cyclic);
            assert_eq!(fused.pairs, zz_pairs(num_qubits, cyclic));
            for (i, z) in fused.z.iter().enumerate() {
                let direct = state.expectation(&PauliString::single(i, Pauli::Z));
                assert!((z - direct).abs() < 1e-12, "Z_{i}: {z} != {direct}");
            }
            for (&(i, j), zz) in fused.pairs.iter().zip(&fused.zz) {
                let direct = state.expectation(&PauliString::two(i, Pauli::Z, j, Pauli::Z));
                assert!((zz - direct).abs() < 1e-12, "Z_{i}Z_{j}: {zz} != {direct}");
            }
        }
    }
}

#[test]
fn evolve_is_linear_for_unnormalized_states() {
    let mut rng = Rng::seed_from_u64(0x11EA8);
    let hamiltonian = Hamiltonian::from_terms(
        2,
        [
            (1.0, PauliString::two(0, Pauli::Z, 1, Pauli::Z)),
            (0.6, PauliString::single(0, Pauli::X)),
            (0.4, PauliString::single(1, Pauli::Y)),
        ],
    );
    for _ in 0..10 {
        let unit = random_state(&mut rng, 2);
        let scale = rng.next_range(0.001, 1000.0);
        let mut scaled = unit.clone();
        scaled.scale(scale);

        let evolved = evolve(&scaled, &hamiltonian, 0.7);
        // Norm preserved, not forced to one.
        assert!(
            (evolved.norm() - scale).abs() < 1e-9 * scale.max(1.0),
            "input norm {scale} became {}",
            evolved.norm()
        );
        let mut expected = evolve(&unit, &hamiltonian, 0.7);
        expected.scale(scale);
        for (a, b) in evolved.amplitudes().iter().zip(expected.amplitudes()) {
            assert!((*a - *b).abs() < 1e-9 * scale, "scale {scale}: {a} != {b}");
        }
    }

    // The schedule driver preserves the input norm too.
    let segments = [(hamiltonian, 0.5)];
    let schedule = CompiledSchedule::compile(&segments);
    let mut state = random_state(&mut rng, 2);
    state.scale(42.0);
    let mut evolved = state.clone();
    Propagator::new().evolve_schedule_in_place(&schedule, &mut evolved);
    assert!((evolved.norm() - 42.0).abs() < 1e-8);
}

#[test]
fn cyclic_zz_bonds_are_distinct_for_small_registers() {
    // n = 1: the wrap-around pair would be the degenerate (0, 0) — Z₀Z₀ = I —
    // which an earlier revision collapsed to a bare Z₀. No bond is measured.
    let one = StateVector::zero_state(1);
    assert!(zz_expectations(&one, true).is_empty());
    assert!(zz_expectations(&one, false).is_empty());

    // n = 2: the ring's two directed bonds (0,1) and (1,0) are the same
    // physical bond; it must be counted once.
    let mut rng = Rng::seed_from_u64(0x2B07D);
    let two = random_state(&mut rng, 2);
    let open = zz_expectations(&two, false);
    let cyclic = zz_expectations(&two, true);
    assert_eq!(open.len(), 1);
    assert_eq!(cyclic, open);

    // n = 3: cyclic adds exactly the one wrap-around bond (2, 0).
    let three = random_state(&mut rng, 3);
    let open = zz_expectations(&three, false);
    let cyclic = zz_expectations(&three, true);
    assert_eq!(open.len(), 2);
    assert_eq!(cyclic.len(), 3);
    assert_eq!(&cyclic[..2], &open[..]);
    let wrap = three.expectation(&PauliString::two(2, Pauli::Z, 0, Pauli::Z));
    assert!((cyclic[2] - wrap).abs() < 1e-12);
}
