//! Conformance grid for the telemetry subsystem: span-derived totals must
//! match the analytically-exact pass counters, traces must be
//! deterministic, and tracing must never perturb the numerics.
//!
//! * **Exactness** — for every [`StepperKind`], the per-segment span pass
//!   counts plus the schedule-level finalize passes sum to exactly the
//!   propagator's `state_passes()` (and likewise for kernel applications):
//!   the taxonomy is closed, nothing leaks between spans.
//! * **Determinism** — two traced runs of the same seeded workload produce
//!   event-for-event identical traces once wall-clock payloads are zeroed
//!   ([`SpanEvent::sans_timing`]).
//! * **Non-perturbation** — a traced run and an untraced run of the same
//!   workload produce bitwise-identical amplitudes (strictly stronger than
//!   the 1e-10 conformance pin) and identical work counters: telemetry
//!   observes the pipeline, it never steers it.

use qturbo_hamiltonian::models::mis_chain;
use qturbo_quantum::fault::{Fault, FaultInjector};
use qturbo_quantum::schedule::CompiledSchedule;
use qturbo_quantum::telemetry::RunProfile;
use qturbo_quantum::{
    EmulatedDevice, EvolveOptions, NoiseModel, Propagator, SpanEvent, StateVector, StepperKind,
};

/// The shared workload: a short MIS annealing ramp — many structure-equal
/// segments, so every backend (and the batched run chaining) is exercised.
fn ramp_schedule() -> CompiledSchedule {
    let ramp = mis_chain(5, 1.0, 1.0, 1.0, 1.0, 30);
    CompiledSchedule::compile_piecewise(&ramp)
}

fn traced_run(kind: StepperKind, schedule: &CompiledSchedule) -> (Propagator, StateVector) {
    let mut propagator = Propagator::with_options(EvolveOptions::new(kind).with_telemetry(true));
    let mut state = StateVector::zero_state(5);
    propagator.evolve_schedule_in_place(schedule, &mut state);
    (propagator, state)
}

/// Sums `(applications, state_passes, finalize_passes)` out of a trace.
fn span_totals(propagator: &Propagator) -> (u64, u64, u64) {
    let trace = propagator.trace().expect("telemetry enabled");
    let mut applications = 0;
    let mut state_passes = 0;
    let mut finalize_passes = 0;
    for event in trace.events() {
        match event {
            SpanEvent::Segment(span) => {
                applications += span.applications;
                state_passes += span.state_passes;
            }
            SpanEvent::Schedule(span) => finalize_passes += span.finalize_passes,
            _ => {}
        }
    }
    (applications, state_passes, finalize_passes)
}

#[test]
fn span_sums_match_exact_counters_for_every_backend() {
    let schedule = ramp_schedule();
    for kind in StepperKind::all() {
        let (propagator, _) = traced_run(kind, &schedule);
        let (span_applications, span_passes, finalize_passes) = span_totals(&propagator);
        assert_eq!(
            span_applications,
            propagator.kernel_applications(),
            "{}: segment spans leak kernel applications",
            kind.name()
        );
        assert_eq!(
            span_passes + finalize_passes,
            propagator.state_passes(),
            "{}: segment + finalize spans leak amplitude passes",
            kind.name()
        );
        // The metrics registry folds the same totals.
        let snapshot = propagator
            .trace()
            .expect("telemetry enabled")
            .metrics()
            .snapshot();
        assert_eq!(snapshot.kernel_applications, span_applications);
        assert_eq!(snapshot.amplitude_passes, span_passes + finalize_passes);
        assert_eq!(snapshot.segments as usize, schedule.num_segments());
    }
}

#[test]
fn span_sums_match_exact_counters_on_constant_hamiltonian() {
    use qturbo_hamiltonian::models::heisenberg_chain;
    use qturbo_quantum::compiled::CompiledHamiltonian;
    let compiled = CompiledHamiltonian::compile(&heisenberg_chain(4, 1.0, 0.5));
    for kind in StepperKind::all() {
        let mut propagator =
            Propagator::with_options(EvolveOptions::new(kind).with_telemetry(true));
        let mut state = StateVector::zero_state(4);
        propagator.evolve_in_place(&compiled, &mut state, 2.0);
        let (span_applications, span_passes, finalize_passes) = span_totals(&propagator);
        assert_eq!(span_applications, propagator.kernel_applications());
        assert_eq!(span_passes + finalize_passes, propagator.state_passes());
    }
}

#[test]
fn traces_are_identical_across_repeated_runs() {
    let schedule = ramp_schedule();
    for kind in StepperKind::all() {
        let (first, first_state) = traced_run(kind, &schedule);
        let (second, second_state) = traced_run(kind, &schedule);
        let first_events = first.trace().expect("traced").deterministic_events();
        let second_events = second.trace().expect("traced").deterministic_events();
        assert_eq!(
            first_events,
            second_events,
            "{}: repeated seeded runs must trace identically",
            kind.name()
        );
        assert!(!first_events.is_empty());
        for (a, b) in first_state
            .amplitudes()
            .iter()
            .zip(second_state.amplitudes())
        {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
    }
}

#[test]
fn tracing_never_perturbs_the_numerics() {
    let schedule = ramp_schedule();
    for kind in StepperKind::all() {
        let (traced, traced_state) = traced_run(kind, &schedule);
        let mut untraced = Propagator::with_options(EvolveOptions::new(kind).with_telemetry(false));
        let mut untraced_state = StateVector::zero_state(5);
        untraced.evolve_schedule_in_place(&schedule, &mut untraced_state);
        assert!(untraced.trace().is_none(), "disabled telemetry allocates");
        // Identical work...
        assert_eq!(traced.kernel_applications(), untraced.kernel_applications());
        assert_eq!(traced.state_passes(), untraced.state_passes());
        // ...and bitwise-identical amplitudes (strictly stronger than the
        // 1e-10 pin the issue asks for).
        for (index, (a, b)) in traced_state
            .amplitudes()
            .iter()
            .zip(untraced_state.amplitudes())
            .enumerate()
        {
            assert!(
                (*a - *b).abs() < 1e-10,
                "{}: amplitude {index} drifted",
                kind.name()
            );
            assert_eq!(a.re.to_bits(), b.re.to_bits(), "{}", kind.name());
            assert_eq!(a.im.to_bits(), b.im.to_bits(), "{}", kind.name());
        }
    }
}

#[test]
fn segment_spans_record_cost_model_predictions() {
    let schedule = ramp_schedule();
    let (propagator, _) = traced_run(StepperKind::Taylor, &schedule);
    let trace = propagator.trace().expect("traced");
    let mut checked = 0;
    for event in trace.events() {
        if let SpanEvent::Segment(span) = event {
            let predicted = span
                .predicted_applications
                .expect("fixed backends always have an estimate");
            // The Taylor estimate is an upper bound by construction: the
            // series truncates on the actual ‖Hᵏψ‖, which the spectral
            // bound dominates. prop_stepper.rs pins the exact case.
            assert!(
                predicted >= span.applications as f64,
                "segment {:?}: predicted {predicted} under-estimates measured {}",
                span.index,
                span.applications
            );
            checked += 1;
        }
    }
    assert_eq!(checked, schedule.num_segments());
}

#[test]
fn recovery_spans_wrap_injected_faults() {
    let schedule = ramp_schedule();
    let mut propagator = Propagator::with_options(EvolveOptions::taylor().with_telemetry(true));
    propagator.set_fault_injector(Some(
        FaultInjector::new(11).with_fault(3, Fault::NanAmplitude),
    ));
    let mut state = StateVector::zero_state(5);
    propagator.evolve_schedule_in_place(&schedule, &mut state);
    assert_eq!(propagator.recovery_log().len(), 1);
    let trace = propagator.trace().expect("traced");
    let recovery_spans: Vec<_> = trace
        .events()
        .iter()
        .filter_map(|event| match event {
            SpanEvent::Recovery(span) => Some(span),
            _ => None,
        })
        .collect();
    assert_eq!(recovery_spans.len(), 1);
    assert_eq!(
        recovery_spans[0].event,
        propagator.recovery_log().events()[0]
    );
    // The recovered segment's span is flagged.
    let flagged = trace.events().iter().any(|event| {
        matches!(event, SpanEvent::Segment(span) if span.index == Some(3) && span.recovered)
    });
    assert!(flagged, "recovered segment span not flagged");
    // And the profile surfaces the recovery.
    let profile = propagator.run_profile().expect("traced");
    assert_eq!(profile.recoveries.len(), 1);
    assert_eq!(profile.metrics.recoveries, 1);
}

#[test]
fn device_runs_expose_recovery_log_and_profile() {
    let ramp = mis_chain(4, 1.0, 1.0, 1.0, 1.0, 12);
    let schedule = CompiledSchedule::compile_piecewise(&ramp);

    // Untraced device: recoveries always present (empty on healthy runs),
    // no profile.
    let device = EmulatedDevice::new(NoiseModel::noiseless(), 7)
        .with_options(EvolveOptions::auto().with_telemetry(false));
    let runs = device
        .try_run_compiled(&schedule, 4, false, 2)
        .expect("healthy run");
    for run in &runs {
        assert!(run.recoveries.is_empty());
        assert!(run.profile.is_none());
    }

    // Traced device: every realization carries its own profile, and the
    // profiles cover exactly one schedule evolution each.
    let traced = EmulatedDevice::new(NoiseModel::noiseless(), 7)
        .with_options(EvolveOptions::auto().with_telemetry(true));
    let traced_runs = traced
        .try_run_compiled(&schedule, 4, false, 2)
        .expect("healthy run");
    assert_eq!(traced_runs.len(), 2);
    for run in &traced_runs {
        let profile = run.profile.as_ref().expect("traced device run");
        assert_eq!(profile.segments.len(), schedule.num_segments());
        assert!(profile.metrics.kernel_applications > 0);
        let json = profile.to_json();
        assert!(json.contains("\"metrics\""));
        assert!(profile.summary().contains("run profile"));
    }
    // Telemetry does not perturb device observables: traced and untraced
    // sweeps agree (DeviceRun equality ignores the profile by design).
    assert_eq!(runs, traced_runs);
}

#[test]
fn drained_traces_reset_the_recorder() {
    let schedule = ramp_schedule();
    let (mut propagator, _) = traced_run(StepperKind::Auto, &schedule);
    let drained = propagator.drain_trace().expect("traced");
    assert!(!drained.events().is_empty());
    let profile = RunProfile::from_recorder(&drained);
    assert_eq!(profile.segments.len(), schedule.num_segments());
    // The live recorder is fresh again.
    assert!(propagator
        .trace()
        .expect("recorder still attached")
        .events()
        .is_empty());
}
