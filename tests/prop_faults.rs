//! Fault-injection conformance grid for the panic-free evolution pipeline.
//!
//! Every failure class of the [`qturbo_quantum::fault::Fault`] taxonomy is
//! injected into a multi-segment schedule under **every**
//! [`StepperKind`] (the four fixed backends and `Auto`), and each cell must
//! land in exactly one of two lawful outcomes:
//!
//! 1. **Recovered** — the run returns `Ok`, the final amplitudes agree with
//!    the uninjected reference to 1e-10, and (for faults that corrupt
//!    state or force a solver failure on the executing backend) the
//!    [`RecoveryLog`] records the fallback that saved the run, or
//! 2. **Typed error** — the run returns an [`EvolveError`] naming the
//!    failure.
//!
//! Panicking and silently returning wrong amplitudes are both failures of
//! the harness — the first fails the test process, the second the 1e-10
//! comparison. A second grid drives the invalid-input taxonomy (NaN time,
//! zero shots, out-of-range readout error, empty device schedules,
//! mismatched register widths) through every backend and asserts the typed
//! [`EvolveError::InvalidInput`] contract.

use qturbo_hamiltonian::{Hamiltonian, Pauli, PauliString};
use qturbo_math::MathError;
use qturbo_quantum::compiled::CompiledHamiltonian;
use qturbo_quantum::fault::{Fault, FaultInjector};
use qturbo_quantum::schedule::CompiledSchedule;
use qturbo_quantum::stepper::{KrylovStepper, Stepper};
use qturbo_quantum::{
    EmulatedDevice, EvolveError, EvolveOptions, ExecutionContext, NoiseModel, Propagator,
    StateVector, StepperKind,
};

const AGREEMENT: f64 = 1e-10;
const SEED: u64 = 0xFA17;
/// The schedule segment every fault in the grid is armed on.
const FAULT_SEGMENT: usize = 1;

/// A four-segment, three-qubit schedule mixing two mask structures: X-drive
/// plus ZZ-coupling segments (shared layout, varying weights) around a
/// Y-flavored middle segment. Small enough to run the full grid fast, rich
/// enough that every backend does real work on every segment.
fn grid_segments() -> Vec<(Hamiltonian, f64)> {
    let drive = |omega: f64, coupling: f64| {
        let mut h = Hamiltonian::new(3);
        for q in 0..3 {
            h.add_term(omega / 2.0, PauliString::single(q, Pauli::X));
        }
        h.add_term(coupling, PauliString::two(0, Pauli::Z, 1, Pauli::Z));
        h.add_term(coupling, PauliString::two(1, Pauli::Z, 2, Pauli::Z));
        h
    };
    let mut twisted = Hamiltonian::new(3);
    twisted.add_term(0.9, PauliString::single(1, Pauli::Y));
    twisted.add_term(0.6, PauliString::two(0, Pauli::X, 2, Pauli::Z));
    vec![
        (drive(2.0, 1.0), 0.4),
        (drive(1.4, 0.7), 0.5),
        (twisted, 0.3),
        (drive(0.8, 1.2), 0.4),
    ]
}

fn every_kind() -> [StepperKind; 5] {
    StepperKind::all()
}

/// The execution configurations the tentpole grid runs under: the inline
/// default, and the persistent worker pool forced on (two workers, parallel
/// threshold zero so the small grid registers genuinely fan out). Fault
/// detection and recovery must be independent of which one executes.
fn execution_contexts() -> [(&'static str, ExecutionContext); 2] {
    [
        ("inline", ExecutionContext::auto()),
        (
            "pooled",
            ExecutionContext::auto()
                .with_threads(2)
                .with_parallel_threshold(0),
        ),
    ]
}

/// The uninjected result of the grid schedule under `kind`.
fn clean_reference(schedule: &CompiledSchedule, kind: StepperKind) -> StateVector {
    let mut propagator = Propagator::with_options(EvolveOptions::new(kind));
    let mut state = StateVector::plus_state(3);
    propagator
        .try_evolve_schedule_in_place(schedule, &mut state)
        .expect("clean evolution succeeds");
    assert!(
        propagator.recovery_log().is_empty(),
        "{}: clean run must not trigger recovery",
        kind.name()
    );
    state
}

fn assert_amplitudes_match(
    kind: StepperKind,
    fault: &Fault,
    got: &StateVector,
    want: &StateVector,
) {
    for (index, (a, b)) in got.amplitudes().iter().zip(want.amplitudes()).enumerate() {
        assert!(
            (*a - *b).abs() < AGREEMENT,
            "{} x {fault:?}: amplitude {index} diverged: {a} != {b}",
            kind.name()
        );
    }
}

/// Whether `fault` corrupts the state vector itself (and therefore must be
/// *detected* — an `Ok` without a recovery event would mean the corruption
/// sailed through unchecked).
fn corrupts_state(fault: &Fault) -> bool {
    matches!(
        fault,
        Fault::NanAmplitude | Fault::InfAmplitude | Fault::AmplitudeSpike { .. }
    )
}

/// The tentpole grid: every failure class x every backend. Each cell either
/// recovers to the 1e-10-correct answer (logged in the RecoveryLog) or
/// returns a typed error — never panics, never silently wrong.
#[test]
fn fault_grid_recovers_or_errors_never_lies() {
    let segments = grid_segments();
    let schedule = CompiledSchedule::compile(&segments);
    let faults = [
        Fault::NanAmplitude,
        Fault::InfAmplitude,
        Fault::AmplitudeSpike { factor: 1e8 },
        // A thousand-fold under-reported radius: Chebyshev truncates far
        // below the true span and diverges; bound-insensitive backends are
        // unaffected. (A zero radius would instead claim the segment is a
        // pure identity shift — that is a different, legal schedule.)
        Fault::BoundPerturbation {
            radius_scale: 1e-3,
            center_shift: 0.0,
        },
        Fault::QlNonConvergence,
    ];
    for kind in every_kind() {
        let reference = clean_reference(&schedule, kind);
        for fault in &faults {
            // (outcome, recovery count) per execution context — compared at
            // the end: detection and recovery must not depend on whether
            // the kernels ran inline or fanned out across the pool.
            let mut outcomes: Vec<(&'static str, bool, usize)> = Vec::new();
            for (context_name, context) in execution_contexts() {
                let mut propagator =
                    Propagator::with_options(EvolveOptions::new(kind).with_execution(context));
                propagator.set_fault_injector(Some(
                    FaultInjector::new(SEED).with_fault(FAULT_SEGMENT, fault.clone()),
                ));
                let mut state = StateVector::plus_state(3);
                let result = propagator.try_evolve_schedule_in_place(&schedule, &mut state);
                match result {
                    Ok(()) => {
                        assert_amplitudes_match(kind, fault, &state, &reference);
                        if corrupts_state(fault) {
                            assert!(
                                !propagator.recovery_log().is_empty(),
                                "{} x {fault:?} [{context_name}]: corruption returned Ok \
                                 without a recovery event",
                                kind.name()
                            );
                        }
                        for event in propagator.recovery_log().events() {
                            assert_eq!(
                                event.segment,
                                Some(FAULT_SEGMENT),
                                "{} x {fault:?} [{context_name}]: recovery at the wrong segment",
                                kind.name()
                            );
                            assert_eq!(event.fallback, StepperKind::Taylor);
                        }
                        outcomes.push((context_name, true, propagator.recovery_log().len()));
                    }
                    Err(error) => {
                        // A typed error is the other lawful outcome; it must
                        // not be an InvalidInput (the inputs here are valid).
                        assert!(
                            !matches!(error, EvolveError::InvalidInput { .. }),
                            "{} x {fault:?} [{context_name}]: misclassified as invalid \
                             input: {error}",
                            kind.name()
                        );
                        outcomes.push((context_name, false, 0));
                    }
                }
            }
            // Thread-count independence: the same cell lands on the same
            // outcome (and the same number of recoveries) under every
            // execution configuration.
            let (_, first_ok, first_recoveries) = outcomes[0];
            for (context_name, ok, recoveries) in &outcomes[1..] {
                assert_eq!(
                    (*ok, *recoveries),
                    (first_ok, first_recoveries),
                    "{} x {fault:?}: outcome under [{context_name}] diverged from \
                     [{}]",
                    kind.name(),
                    outcomes[0].0
                );
            }
        }
    }
}

/// State-corrupting faults must *always* recover on the schedule path: the
/// boundary snapshot plus the consume-once fault registry guarantee the
/// Taylor retry sees clean data.
#[test]
fn amplitude_corruption_always_recovers_exactly() {
    let segments = grid_segments();
    let schedule = CompiledSchedule::compile(&segments);
    for kind in every_kind() {
        let reference = clean_reference(&schedule, kind);
        for fault in [
            Fault::NanAmplitude,
            Fault::InfAmplitude,
            Fault::AmplitudeSpike { factor: 1e8 },
        ] {
            let mut propagator = Propagator::with_options(EvolveOptions::new(kind));
            propagator.set_fault_injector(Some(
                FaultInjector::new(SEED).with_fault(FAULT_SEGMENT, fault.clone()),
            ));
            let mut state = StateVector::plus_state(3);
            propagator
                .try_evolve_schedule_in_place(&schedule, &mut state)
                .unwrap_or_else(|error| {
                    panic!("{} x {fault:?} failed to recover: {error}", kind.name())
                });
            assert_amplitudes_match(kind, &fault, &state, &reference);
            assert_eq!(
                propagator.recovery_log().len(),
                1,
                "{} x {fault:?}: expected exactly one recovery",
                kind.name()
            );
        }
    }
}

/// Seeded regression for the historical `.expect("tridiagonal QL
/// converges")`: a QL failure inside the Krylov backend surfaces as a typed
/// [`EvolveError::NonConvergence`] carrying the originating [`MathError`] —
/// and on the schedule path it is recovered by the Taylor fallback.
#[test]
fn krylov_ql_failure_is_typed_and_recovered() {
    let segments = grid_segments();
    let schedule = CompiledSchedule::compile(&segments);
    let reference = clean_reference(&schedule, StepperKind::Krylov);

    let mut propagator = Propagator::with_options(EvolveOptions::new(StepperKind::Krylov));
    propagator.set_fault_injector(Some(
        FaultInjector::new(SEED).with_fault(FAULT_SEGMENT, Fault::QlNonConvergence),
    ));
    let mut state = StateVector::plus_state(3);
    propagator
        .try_evolve_schedule_in_place(&schedule, &mut state)
        .expect("QL failure on a rollback-safe backend recovers");
    assert_amplitudes_match(
        StepperKind::Krylov,
        &Fault::QlNonConvergence,
        &state,
        &reference,
    );
    let events = propagator.recovery_log().events();
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].backend, StepperKind::Krylov);
    assert_eq!(events[0].fallback, StepperKind::Taylor);
    assert!(
        matches!(
            &events[0].error,
            EvolveError::NonConvergence {
                backend: StepperKind::Krylov,
                segment: Some(FAULT_SEGMENT),
                source: MathError::NoConvergence { .. },
            }
        ),
        "unexpected recovered error: {}",
        events[0].error
    );
}

/// The same QL failure on a bare [`KrylovStepper`] (no schedule loop, no
/// fallback) returns the typed error directly and restores the entry state.
#[test]
fn bare_krylov_stepper_returns_typed_ql_error_and_rolls_back() {
    let (hamiltonian, duration) = &grid_segments()[0];
    let compiled = CompiledHamiltonian::compile(hamiltonian);
    let mut stepper = KrylovStepper::new(1e-12);
    stepper.force_ql_nonconvergence();
    let mut state = StateVector::plus_state(3);
    let before = state.clone();
    let reference_norm = before.norm();
    let error = stepper
        .try_evolve_segment(
            compiled.kernel(),
            &compiled.spectral_bound(),
            &mut state,
            *duration,
            reference_norm,
        )
        .expect_err("forced QL failure must surface");
    assert!(matches!(
        &error,
        EvolveError::NonConvergence {
            backend: StepperKind::Krylov,
            segment: None,
            source: MathError::NoConvergence { .. },
        }
    ));
    assert_amplitudes_match(
        StepperKind::Krylov,
        &Fault::QlNonConvergence,
        &state,
        &before,
    );
}

/// Under `Auto`, a recovered Krylov failure demotes the backend: the
/// decision trace may hand later segments to any backend *except* the
/// demoted one.
#[test]
fn auto_demotes_a_failing_backend_for_the_rest_of_the_schedule() {
    // A long-duration drive family where the cost model picks Krylov.
    let drive = |omega: f64| {
        let mut h = Hamiltonian::new(3);
        for q in 0..3 {
            h.add_term(omega / 2.0, PauliString::single(q, Pauli::X));
        }
        h.add_term(1.0, PauliString::two(0, Pauli::Z, 1, Pauli::Z));
        h
    };
    let segments: Vec<(Hamiltonian, f64)> =
        (0..6).map(|i| (drive(2.0 + 0.1 * i as f64), 6.0)).collect();
    let schedule = CompiledSchedule::compile(&segments);

    let mut clean = Propagator::new();
    let mut state = StateVector::plus_state(3);
    clean
        .try_evolve_schedule_in_place(&schedule, &mut state)
        .expect("clean evolution succeeds");
    if !clean.segment_decisions().contains(&StepperKind::Krylov) {
        // The cost model no longer picks Krylov here; the demotion path is
        // covered by the grid above, so just bail rather than assert a
        // calibration detail.
        return;
    }
    let reference = state;

    let faulted_segment = clean
        .segment_decisions()
        .iter()
        .position(|&kind| kind == StepperKind::Krylov)
        .expect("checked above");
    let mut propagator = Propagator::new();
    propagator.set_fault_injector(Some(
        FaultInjector::new(SEED).with_fault(faulted_segment, Fault::QlNonConvergence),
    ));
    let mut recovered = StateVector::plus_state(3);
    propagator
        .try_evolve_schedule_in_place(&schedule, &mut recovered)
        .expect("forced QL failure recovers under Auto");
    assert!(!propagator.recovery_log().is_empty());
    assert_amplitudes_match(
        StepperKind::Auto,
        &Fault::QlNonConvergence,
        &recovered,
        &reference,
    );
    // Every decision after the faulted segment avoids the demoted backend.
    for (index, kind) in propagator
        .segment_decisions()
        .iter()
        .enumerate()
        .skip(faulted_segment + 1)
    {
        assert_ne!(
            *kind,
            StepperKind::Krylov,
            "segment {index} was handed to the demoted backend"
        );
    }
}

/// Invalid-input conformance: NaN/negative/infinite times are typed
/// [`EvolveError::InvalidInput`]s under every backend, on both the
/// constant-Hamiltonian and free-function paths.
#[test]
fn invalid_times_are_typed_errors_under_every_backend() {
    let (hamiltonian, _) = &grid_segments()[0];
    let compiled = CompiledHamiltonian::compile(hamiltonian);
    for kind in every_kind() {
        for time in [f64::NAN, -1.0, f64::INFINITY, f64::NEG_INFINITY] {
            let mut propagator = Propagator::with_options(EvolveOptions::new(kind));
            let mut state = StateVector::plus_state(3);
            let error = propagator
                .try_evolve_in_place(&compiled, &mut state, time)
                .expect_err("invalid time must be rejected");
            assert!(
                matches!(&error, EvolveError::InvalidInput { context }
                    if context.contains("non-negative")),
                "{} x time {time}: {error}",
                kind.name()
            );
            // The free-function path reports the same taxonomy.
            let free = qturbo_quantum::propagate::try_evolve_with(
                &StateVector::plus_state(3),
                hamiltonian,
                time,
                EvolveOptions::new(kind),
            );
            assert!(matches!(free, Err(EvolveError::InvalidInput { .. })));
        }
    }
}

/// Invalid-input conformance on the device: zero shots, out-of-range
/// readout error, and empty schedules are typed errors under every backend.
#[test]
fn invalid_device_inputs_are_typed_errors_under_every_backend() {
    let segments = grid_segments();
    for kind in every_kind() {
        let options = EvolveOptions::new(kind);

        let zero_shots = NoiseModel {
            shots: Some(0),
            ..NoiseModel::noiseless()
        };
        let error = EmulatedDevice::new(zero_shots, 1)
            .with_options(options)
            .try_run(&segments, 3, false)
            .expect_err("zero shots must be rejected");
        assert!(
            matches!(&error, EvolveError::InvalidInput { context } if context.contains("shots")),
            "{}: {error}",
            kind.name()
        );

        let bad_readout = NoiseModel {
            readout_error: 0.6,
            ..NoiseModel::noiseless()
        };
        let error = EmulatedDevice::new(bad_readout, 1)
            .with_options(options)
            .try_run(&segments, 3, false)
            .expect_err("readout_error beyond 1/2 must be rejected");
        assert!(
            matches!(&error, EvolveError::InvalidInput { context }
                if context.contains("readout_error")),
            "{}: {error}",
            kind.name()
        );

        let error = EmulatedDevice::ideal()
            .with_options(options)
            .try_run(&[], 2, false)
            .expect_err("an empty device schedule must be rejected");
        assert!(
            matches!(&error, EvolveError::InvalidInput { context } if context.contains("empty")),
            "{}: {error}",
            kind.name()
        );
    }
}

/// A schedule wider than the register is a typed error (was an assert), and
/// the same error is stamped by every backend.
#[test]
fn oversized_schedule_is_a_typed_error() {
    let segments = grid_segments(); // three qubits
    let schedule = CompiledSchedule::compile(&segments);
    for kind in every_kind() {
        let mut propagator = Propagator::with_options(EvolveOptions::new(kind));
        let mut narrow = StateVector::plus_state(2);
        let error = propagator
            .try_evolve_schedule_in_place(&schedule, &mut narrow)
            .expect_err("a 3-qubit schedule cannot drive a 2-qubit state");
        assert!(
            matches!(&error, EvolveError::InvalidInput { context }
                if context.contains("more qubits")),
            "{}: {error}",
            kind.name()
        );
    }
}

/// Faults armed on segments a schedule never reaches stay armed; faults on
/// executed segments are consumed even when no guardrail trips (so a later
/// re-run is clean by construction).
#[test]
fn benign_bound_faults_pass_through_bound_insensitive_backends() {
    let segments = grid_segments();
    let schedule = CompiledSchedule::compile(&segments);
    for kind in [StepperKind::Taylor, StepperKind::Krylov] {
        let reference = clean_reference(&schedule, kind);
        let mut propagator = Propagator::with_options(EvolveOptions::new(kind));
        propagator.set_fault_injector(Some(FaultInjector::new(SEED).with_fault(
            FAULT_SEGMENT,
            Fault::BoundPerturbation {
                radius_scale: 1e-3,
                center_shift: 0.0,
            },
        )));
        let mut state = StateVector::plus_state(3);
        propagator
            .try_evolve_schedule_in_place(&schedule, &mut state)
            .expect("a bound perturbation is benign for bound-insensitive backends");
        assert_amplitudes_match(
            kind,
            &Fault::BoundPerturbation {
                radius_scale: 1e-3,
                center_shift: 0.0,
            },
            &state,
            &reference,
        );
        assert!(
            propagator.recovery_log().is_empty(),
            "{}: benign fault must not trigger recovery",
            kind.name()
        );
    }
}
