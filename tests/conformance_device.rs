//! Device-level conformance for structure-of-arrays realization batching:
//! the block sweep ([`EvolveOptions::with_realization_block`]) is pinned
//! against the sequential per-realization reference path over a grid of
//! realization counts × stepper kinds × boundary conditions, plus the
//! regression contracts of the realization RNG streams and the fault
//! harness inside a block sweep.

use qturbo_hamiltonian::{Hamiltonian, Pauli, PauliString};
use qturbo_quantum::fault::{Fault, FaultInjector};
use qturbo_quantum::schedule::CompiledSchedule;
use qturbo_quantum::state::RealizationBlock;
use qturbo_quantum::{EmulatedDevice, EvolveOptions, NoiseModel, Propagator, StepperKind};

const AGREEMENT: f64 = 1e-10;

/// A dense detuning ramp with a phase-modulated `cos φ · X + sin φ · Y`
/// drive and ZZ couplings: engages the diagonal table, the flip kernel,
/// the sign-carrying gather kernel, and per-segment weight swaps — the
/// workload realization batching is built for.
fn ramp(num_qubits: usize, segments: usize) -> Vec<(Hamiltonian, f64)> {
    (0..segments)
        .map(|index| {
            let s = index as f64 / segments as f64;
            let phase = std::f64::consts::PI * (0.25 + 0.5 * s);
            let mut terms: Vec<(f64, PauliString)> = Vec::new();
            for qubit in 0..num_qubits {
                terms.push((1.2 * (1.0 - 2.0 * s), PauliString::single(qubit, Pauli::Z)));
                terms.push((0.9 * phase.cos(), PauliString::single(qubit, Pauli::X)));
                terms.push((0.9 * phase.sin(), PauliString::single(qubit, Pauli::Y)));
            }
            for qubit in 0..num_qubits.saturating_sub(1) {
                terms.push((0.7, PauliString::two(qubit, Pauli::Z, qubit + 1, Pauli::Z)));
            }
            (Hamiltonian::from_terms(num_qubits, terms), 0.12)
        })
        .collect()
}

/// Exact-expectation noise: miscalibration spreads the realizations apart,
/// `shots: None` keeps the comparison analog (a finite-shot Bernoulli draw
/// can flip on a 1e-13 expectation difference, which is not a conformance
/// failure).
fn exact_noise() -> NoiseModel {
    NoiseModel {
        depolarizing_rate: 0.01,
        amplitude_miscalibration: 0.05,
        readout_error: 0.01,
        shots: None,
    }
}

/// The tentpole conformance grid: block and sequential sweeps agree to
/// 1e-10 on every observable for `R ∈ {1, 3, 8}` realizations, every
/// stepper kind (the block path always integrates with the batched-Taylor
/// scheme; the sequential path uses the kind under test, so this doubles as
/// a cross-backend check), and both boundary conditions.
#[test]
fn block_sweep_matches_sequential_reference() {
    let num_qubits = 4;
    let segments = ramp(num_qubits, 10);
    for &realizations in &[1usize, 3, 8] {
        for &kind in &StepperKind::all() {
            for &cyclic in &[false, true] {
                let sequential = EmulatedDevice::new(exact_noise(), 91)
                    .with_options(EvolveOptions::new(kind))
                    .run_realizations(&segments, num_qubits, cyclic, realizations);
                let block = EmulatedDevice::new(exact_noise(), 91)
                    .with_options(EvolveOptions::new(kind).with_realization_block(true))
                    .run_realizations(&segments, num_qubits, cyclic, realizations);
                assert_eq!(sequential.len(), realizations);
                assert_eq!(block.len(), realizations);
                for (r, (seq_run, block_run)) in sequential.iter().zip(block.iter()).enumerate() {
                    for (a, b) in seq_run.z.iter().zip(block_run.z.iter()) {
                        assert!(
                            (a - b).abs() < AGREEMENT,
                            "z mismatch: kind={kind:?} R={realizations} cyclic={cyclic} \
                             realization={r}: {a} vs {b}"
                        );
                    }
                    for (a, b) in seq_run.zz.iter().zip(block_run.zz.iter()) {
                        assert!(
                            (a - b).abs() < AGREEMENT,
                            "zz mismatch: kind={kind:?} R={realizations} cyclic={cyclic} \
                             realization={r}: {a} vs {b}"
                        );
                    }
                }
            }
        }
    }
}

/// Realization `0` of a sweep is bitwise identical to a standalone
/// [`EmulatedDevice::run`] — the sweep's per-realization RNG streams and
/// evolution are exactly the single-run path, realization by realization.
#[test]
fn sweep_realization_zero_is_bitwise_run() {
    let num_qubits = 4;
    let segments = ramp(num_qubits, 8);
    let device = EmulatedDevice::new(exact_noise(), 7);
    let single = device.run(&segments, num_qubits, true);
    let sweep = device.run_realizations(&segments, num_qubits, true, 5);
    // DeviceRun equality is exact (bitwise on the observables).
    assert_eq!(sweep[0], single);
}

/// Seed-decorrelation regression: the historical additive `seed + r` stream
/// composition made seed `s`, realization `1` replay seed `s + 1`,
/// realization `0`. The SplitMix64 pair mixing must keep them distinct.
#[test]
fn realization_streams_do_not_alias_adjacent_seeds() {
    let num_qubits = 3;
    let segments = ramp(num_qubits, 6);
    let noise = NoiseModel {
        // Finite shots on top of miscalibration: any stream aliasing would
        // reproduce both the scale draw and every estimation draw.
        shots: Some(4096),
        ..exact_noise()
    };
    let runs_a =
        EmulatedDevice::new(noise.clone(), 40).run_realizations(&segments, num_qubits, false, 2);
    let runs_b = EmulatedDevice::new(noise, 41).run_realizations(&segments, num_qubits, false, 2);
    assert_ne!(
        runs_a[1], runs_b[0],
        "seed 40 realization 1 must not replay seed 41 realization 0"
    );
}

/// Fault injection inside a block sweep: a mid-schedule amplitude spike
/// corrupting every realization lane trips the per-realization drift
/// guardrail at the faulted segment, is recovered from the boundary
/// snapshot, and the sweep still lands on the clean answer.
#[test]
fn fault_recovery_inside_block_sweep() {
    let num_qubits = 3;
    let schedule = CompiledSchedule::compile(&ramp(num_qubits, 6));
    let scales = [1.0, 0.97, 1.03];
    let options = EvolveOptions::batched_taylor();

    let mut clean = Propagator::with_options(options);
    let mut clean_block = RealizationBlock::zero_states(num_qubits, scales.len());
    clean
        .try_evolve_schedule_block(&schedule, &mut clean_block, &scales)
        .expect("clean block sweep");
    assert!(clean.recovery_log().is_empty());

    let mut faulted = Propagator::with_options(options);
    faulted.set_fault_injector(Some(
        FaultInjector::new(11).with_fault(2, Fault::AmplitudeSpike { factor: 1e8 }),
    ));
    let mut block = RealizationBlock::zero_states(num_qubits, scales.len());
    faulted
        .try_evolve_schedule_block(&schedule, &mut block, &scales)
        .expect("faulted block sweep must recover");
    assert_eq!(
        faulted.recovery_log().len(),
        1,
        "the spike must be recovered exactly once"
    );
    assert_eq!(faulted.recovery_log().events()[0].segment, Some(2));

    for r in 0..scales.len() {
        let clean_state = clean_block.extract(r);
        let recovered_state = block.extract(r);
        for (a, b) in clean_state
            .amplitudes()
            .iter()
            .zip(recovered_state.amplitudes())
        {
            assert!(
                (*a - *b).norm_sqr().sqrt() < AGREEMENT,
                "realization {r} diverged after recovery: {a:?} vs {b:?}"
            );
        }
    }
}
