//! Property tests pinning the batched-Taylor, Lanczos–Krylov, and Chebyshev
//! steppers to the Taylor / naive references:
//!
//! * all four fixed backends must agree with `evolve_naive` to 1e-10 on
//!   random Hamiltonians, including Y-heavy term mixes,
//! * near-degenerate spectra (coefficient gaps down to 1e-9) must not break
//!   the Krylov basis or the Chebyshev interval mapping,
//! * long-duration segments (`‖H‖·t ≫ 1`) must agree at the same 1e-10 while
//!   the new backends spend far fewer kernel applications,
//! * evolution must stay linear in the input norm over 1e-3…1e3 for every
//!   backend,
//! * the compiled-schedule driver must produce backend-independent results.
//!
//! Deterministically seeded sampling via `qturbo_math::rng::Rng` (no external
//! property-testing framework is vendored in this environment).

use qturbo_hamiltonian::models::{heisenberg_chain, mis_chain};
use qturbo_hamiltonian::{Hamiltonian, Pauli, PauliString};
use qturbo_math::rng::Rng;
use qturbo_math::Complex;
use qturbo_quantum::compiled::CompiledHamiltonian;
use qturbo_quantum::propagate::{evolve_naive, evolve_schedule_with, evolve_with};
use qturbo_quantum::schedule::CompiledSchedule;
use qturbo_quantum::{AutoCostModel, EvolveOptions, Propagator, StateVector, StepperKind};

const AGREEMENT: f64 = 1e-10;

fn random_state(rng: &mut Rng, num_qubits: usize) -> StateVector {
    let amplitudes: Vec<Complex> = (0..1usize << num_qubits)
        .map(|_| Complex::new(rng.next_range(-1.0, 1.0), rng.next_range(-1.0, 1.0)))
        .collect();
    StateVector::from_amplitudes(amplitudes)
}

fn random_string(rng: &mut Rng, num_qubits: usize) -> PauliString {
    PauliString::from_ops((0..num_qubits).filter_map(|qubit| match rng.next_usize(4) {
        0 => None,
        k => Some((qubit, [Pauli::X, Pauli::Y, Pauli::Z][k - 1])),
    }))
}

/// A random Hamiltonian with a strong `Y` presence (every other term is
/// forced to carry at least one `Y` factor).
fn random_y_heavy(rng: &mut Rng, num_qubits: usize, num_terms: usize) -> Hamiltonian {
    let mut hamiltonian = Hamiltonian::new(num_qubits);
    for index in 0..num_terms {
        let mut string = random_string(rng, num_qubits);
        if index % 2 == 0 {
            let qubit = rng.next_usize(num_qubits);
            string = PauliString::from_ops(
                string
                    .iter()
                    .filter(|(q, _)| *q != qubit)
                    .chain(std::iter::once((qubit, Pauli::Y)))
                    .collect::<Vec<_>>(),
            );
        }
        hamiltonian.add_term(rng.next_range(-1.5, 1.5), string);
    }
    hamiltonian
}

fn assert_all_backends_match_naive(
    hamiltonian: &Hamiltonian,
    initial: &StateVector,
    time: f64,
    context: &str,
) {
    let reference = evolve_naive(initial, hamiltonian, time);
    for kind in StepperKind::all() {
        let evolved = evolve_with(initial, hamiltonian, time, EvolveOptions::new(kind));
        for (index, (a, b)) in evolved
            .amplitudes()
            .iter()
            .zip(reference.amplitudes())
            .enumerate()
        {
            assert!(
                (*a - *b).abs() < AGREEMENT,
                "{context}, backend {}, amplitude {index}: {a} != {b}",
                kind.name()
            );
        }
    }
}

#[test]
fn backends_agree_on_random_y_heavy_hamiltonians() {
    let mut rng = Rng::seed_from_u64(0xA11CE);
    for round in 0..12 {
        let num_qubits = 1 + rng.next_usize(4);
        let num_terms = 1 + rng.next_usize(2 * num_qubits + 1);
        let hamiltonian = random_y_heavy(&mut rng, num_qubits, num_terms);
        let initial = random_state(&mut rng, num_qubits);
        let time = rng.next_range(0.05, 2.5);
        assert_all_backends_match_naive(
            &hamiltonian,
            &initial,
            time,
            &format!("round {round} ({num_qubits}q, {num_terms} terms, t={time})"),
        );
    }
}

#[test]
fn backends_agree_on_near_degenerate_spectra() {
    // Hamiltonians whose eigenvalues cluster within ~1e-9 of each other
    // stress the Krylov basis (Lanczos converges eigenpair-by-eigenpair and
    // near-copies invite orthogonality loss) and the Chebyshev interval
    // mapping (the dynamics live in a sliver of the bound interval).
    let mut rng = Rng::seed_from_u64(0xDE6E);
    for &gap in &[1e-6, 1e-9] {
        // Z₀ + (1 + gap)·Z₁: eigenvalue pairs split by `gap`.
        let h = Hamiltonian::from_terms(
            2,
            [
                (1.0, PauliString::single(0, Pauli::Z)),
                (1.0 + gap, PauliString::single(1, Pauli::Z)),
                (0.25, PauliString::single(0, Pauli::X)),
            ],
        );
        let initial = random_state(&mut rng, 2);
        assert_all_backends_match_naive(&h, &initial, 3.0, &format!("gap {gap}"));
    }
    // An exactly-degenerate pair through a shared coupling.
    let h = Hamiltonian::from_terms(
        3,
        [
            (0.8, PauliString::single(0, Pauli::Z)),
            (0.8, PauliString::single(1, Pauli::Z)),
            (0.8, PauliString::single(2, Pauli::Z)),
            (0.3, PauliString::two(0, Pauli::X, 1, Pauli::X)),
        ],
    );
    let initial = random_state(&mut rng, 3);
    assert_all_backends_match_naive(&h, &initial, 2.0, "exact degeneracy");
}

#[test]
fn backends_agree_on_long_durations_with_less_work() {
    // ‖H‖·t ≫ 1: the regime the new steppers exist for. Accuracy must hold
    // at 1e-10 while Krylov and Chebyshev apply the kernel far fewer times
    // than Taylor's ‖H‖·t/0.5 stepping.
    let mut rng = Rng::seed_from_u64(0x10A6);
    let h = random_y_heavy(&mut rng, 3, 6);
    let strength = h.coefficient_l1_norm() + h.max_abs_coefficient();
    let time = 60.0 / strength.max(1.0); // ‖H‖·t ≈ 60
    let initial = random_state(&mut rng, 3);
    assert_all_backends_match_naive(&h, &initial, time, "long duration");

    let compiled = CompiledHamiltonian::compile(&h);
    let mut work = Vec::new();
    for kind in StepperKind::fixed() {
        let mut propagator = Propagator::with_stepper(kind);
        let mut state = initial.clone();
        propagator.evolve_in_place(&compiled, &mut state, time);
        work.push(propagator.kernel_applications());
    }
    let [taylor, batched, krylov, chebyshev] = work[..] else {
        unreachable!()
    };
    assert_eq!(
        batched, taylor,
        "the batched sweep runs the identical Taylor series"
    );
    assert!(
        krylov * 2 < taylor,
        "krylov should need far fewer applications: {krylov} vs {taylor}"
    );
    assert!(
        chebyshev * 2 < taylor,
        "chebyshev should need far fewer applications: {chebyshev} vs {taylor}"
    );
}

#[test]
fn every_backend_is_linear_in_the_input_norm() {
    let mut rng = Rng::seed_from_u64(0x11EA);
    let h = random_y_heavy(&mut rng, 2, 4);
    let unit = random_state(&mut rng, 2);
    let time = 1.3;
    for kind in StepperKind::all() {
        let options = EvolveOptions::new(kind);
        let expected = evolve_with(&unit, &h, time, options);
        for &scale in &[1e-3, 0.5, 40.0, 1e3] {
            let mut scaled = unit.clone();
            scaled.scale(scale);
            let evolved = evolve_with(&scaled, &h, time, options);
            assert!(
                (evolved.norm() - scale).abs() < 1e-9 * scale,
                "{}: norm not preserved at scale {scale}",
                kind.name()
            );
            for (a, b) in evolved.amplitudes().iter().zip(expected.amplitudes()) {
                assert!(
                    (*a - b.scale(scale)).abs() < 1e-9 * scale,
                    "{}: scale {scale}: {a} != {b:?}·{scale}",
                    kind.name()
                );
            }
        }
    }
}

#[test]
fn schedule_driver_is_backend_independent() {
    // A discretized ramp driven through CompiledSchedule must give the same
    // state whichever backend integrates the segments.
    let mut rng = Rng::seed_from_u64(0x5C4E);
    let num_qubits = 3;
    let num_segments = 24;
    let segments: Vec<(Hamiltonian, f64)> = (0..num_segments)
        .map(|index| {
            let s = index as f64 / num_segments as f64;
            (
                Hamiltonian::from_terms(
                    num_qubits,
                    [
                        (1.0 - s, PauliString::single(0, Pauli::X)),
                        (0.4 + s, PauliString::two(0, Pauli::Z, 1, Pauli::Z)),
                        (0.2 + 0.3 * s, PauliString::single(2, Pauli::Y)),
                    ],
                ),
                rng.next_range(0.02, 0.3),
            )
        })
        .collect();
    let schedule = CompiledSchedule::compile(&segments);
    let initial = random_state(&mut rng, num_qubits);
    let reference = evolve_schedule_with(&initial, &schedule, EvolveOptions::taylor());
    for options in [
        EvolveOptions::batched_taylor(),
        EvolveOptions::krylov(),
        EvolveOptions::chebyshev(),
    ] {
        let evolved = evolve_schedule_with(&initial, &schedule, options);
        for (a, b) in evolved.amplitudes().iter().zip(reference.amplitudes()) {
            assert!(
                (*a - *b).abs() < AGREEMENT,
                "{:?}: {a} != {b}",
                options.stepper
            );
        }
    }
}

#[test]
fn auto_batches_short_ramp_segments() {
    // The MIS annealing shape: many tiny segments, where the Taylor series
    // wins over the high-order backends and the batched sweep undercuts the
    // per-segment Taylor overhead — the "ramps batch" regression. A silent
    // crossover regression in the cost model fails this loudly.
    let ramp = mis_chain(6, 1.0, 1.0, 1.0, 1.0, 60);
    let schedule = CompiledSchedule::compile_piecewise(&ramp);
    // Every tiny segment is batchable; the runs split only where the term
    // structure does (the segment whose summed identity coefficient crosses
    // exactly zero compiles its own layout).
    let runs = schedule.batch_runs();
    assert_eq!(
        runs.iter().map(|r| r.len()).sum::<usize>(),
        schedule.num_segments()
    );
    // Runs break only at structure boundaries (consecutive runs never share
    // a layout).
    for pair in runs.windows(2) {
        assert_ne!(
            schedule.segment_layout(pair[0].start),
            schedule.segment_layout(pair[1].start)
        );
    }
    let mut propagator = Propagator::new();
    assert_eq!(propagator.options().stepper, StepperKind::Auto);
    let mut state = StateVector::zero_state(6);
    propagator.evolve_schedule_in_place(&schedule, &mut state);
    let decisions = propagator.segment_decisions();
    assert_eq!(decisions.len(), schedule.num_segments());
    assert!(
        decisions
            .iter()
            .all(|&kind| kind == StepperKind::BatchedTaylor),
        "expected all-batched on the short-segment ramp, got {decisions:?}"
    );
    // The work landed where the decisions say it did.
    for (kind, applications) in propagator.kernel_applications_by_backend() {
        if kind == StepperKind::BatchedTaylor {
            assert!(applications > 0);
        } else {
            assert_eq!(
                applications,
                0,
                "{} did work on an all-batched run",
                kind.name()
            );
        }
    }
    // The batched sweep runs the identical Taylor series: same application
    // count as the per-segment reference, strictly fewer amplitude passes.
    let mut taylor = Propagator::with_stepper(StepperKind::Taylor);
    let mut taylor_state = StateVector::zero_state(6);
    taylor.evolve_schedule_in_place(&schedule, &mut taylor_state);
    assert_eq!(
        propagator.kernel_applications(),
        taylor.kernel_applications()
    );
    assert!(
        propagator.state_passes() < taylor.state_passes(),
        "batched {} passes vs per-segment {}",
        propagator.state_passes(),
        taylor.state_passes()
    );
    // And the Auto result matches the Taylor-pinned result to conformance
    // accuracy (identical series; only the drift-correction timing differs).
    for (a, b) in state.amplitudes().iter().zip(taylor_state.amplitudes()) {
        assert!((*a - *b).abs() < 1e-12, "{a} != {b}");
    }
}

#[test]
fn auto_picks_chebyshev_on_long_quench() {
    // The t = 20 Heisenberg quench: ‖H‖·t in the hundreds, the regime where
    // Chebyshev's ≈ r·t applications beat Taylor's ‖H‖·t/½ steps ~20x
    // (BENCH_stepper.json).
    let h = heisenberg_chain(6, 1.0, 0.5);
    let compiled = CompiledHamiltonian::compile(&h);
    let mut propagator = Propagator::new();
    let mut state = StateVector::zero_state(6);
    propagator.evolve_in_place(&compiled, &mut state, 20.0);
    assert_eq!(propagator.segment_decisions(), &[StepperKind::Chebyshev]);
    let taylor_work = {
        let mut taylor = Propagator::with_stepper(StepperKind::Taylor);
        let mut state = StateVector::zero_state(6);
        taylor.evolve_in_place(&compiled, &mut state, 20.0);
        taylor.kernel_applications()
    };
    assert!(
        propagator.kernel_applications() * 5 < taylor_work,
        "auto ({}) should spend far fewer applications than taylor ({taylor_work})",
        propagator.kernel_applications()
    );
    // Accuracy holds at the conformance level.
    let reference = evolve_with(
        &StateVector::zero_state(6),
        &h,
        20.0,
        EvolveOptions::taylor(),
    );
    for (a, b) in state.amplitudes().iter().zip(reference.amplitudes()) {
        assert!((*a - *b).abs() < AGREEMENT, "{a} != {b}");
    }
}

#[test]
fn auto_decides_per_segment_not_per_run() {
    // A schedule mixing tiny ramp segments with one long quench segment
    // must mix backends within a single run — the tentpole property.
    let h = heisenberg_chain(4, 1.0, 0.5);
    let segments = vec![(h.clone(), 0.005), (h.clone(), 20.0), (h, 0.005)];
    let schedule = CompiledSchedule::compile(&segments);
    let mut propagator = Propagator::new();
    let mut state = StateVector::zero_state(4);
    propagator.evolve_schedule_in_place(&schedule, &mut state);
    assert_eq!(
        propagator.segment_decisions(),
        &[
            StepperKind::BatchedTaylor,
            StepperKind::Chebyshev,
            StepperKind::BatchedTaylor
        ],
        "tiny ramp segments batch, the quench in the middle still goes to Chebyshev"
    );
    // Pairwise agreement with the fixed backends on the same schedule.
    for kind in StepperKind::fixed() {
        let reference = evolve_schedule_with(
            &StateVector::zero_state(4),
            &schedule,
            EvolveOptions::new(kind),
        );
        for (a, b) in state.amplitudes().iter().zip(reference.amplitudes()) {
            assert!((*a - *b).abs() < AGREEMENT, "{}: {a} != {b}", kind.name());
        }
    }
}

#[test]
fn auto_cost_model_is_overridable_per_call() {
    // The crossovers are calibration, not code: a cost model that prices
    // Taylor and Chebyshev out steers every segment to Krylov.
    let h = heisenberg_chain(3, 1.0, 0.5);
    let segments = vec![(h.clone(), 0.05), (h, 2.0)];
    let schedule = CompiledSchedule::compile(&segments);
    let model = AutoCostModel {
        taylor_application_cost: 1e9,
        batched_taylor_application_cost: 1e9,
        chebyshev_application_cost: 1e9,
        ..AutoCostModel::default()
    };
    let mut propagator = Propagator::with_options(EvolveOptions::auto().with_auto_model(model));
    let mut state = StateVector::zero_state(3);
    propagator.evolve_schedule_in_place(&schedule, &mut state);
    assert_eq!(
        propagator.segment_decisions(),
        &[StepperKind::Krylov, StepperKind::Krylov]
    );
    let reference = evolve_schedule_with(
        &StateVector::zero_state(3),
        &schedule,
        EvolveOptions::krylov(),
    );
    for (a, b) in state.amplitudes().iter().zip(reference.amplitudes()) {
        assert!((*a - *b).abs() < 1e-12, "{a} != {b}");
    }
}

#[test]
fn tightened_spectral_bound_cuts_chebyshev_order_on_mis_ramp() {
    // The MIS chain is detuning-dominated: its diagonal part is a sum of
    // occupation operators whose exact range is far narrower than the
    // triangle-inequality Σ|w| (occupations are 0/1-valued and the ZZ
    // penalty anticorrelates with the detuning). The exact-diagonal bound
    // must (a) stay a rigorous enclosure inside the triangle interval,
    // (b) strictly cut the Chebyshev application count, and (c) lose no
    // accuracy against the Taylor reference.
    use qturbo_quantum::stepper::{ChebyshevStepper, SpectralBound, Stepper};
    let ramp = mis_chain(6, 1.0, 1.0, 1.0, 1.0, 4);
    for segment in ramp.segments() {
        let h = &segment.hamiltonian;
        let compiled = CompiledHamiltonian::compile(h);
        let tightened = compiled.spectral_bound();
        // Triangle-inequality enclosure, rebuilt from the raw coefficients.
        let mut center = 0.0;
        let mut radius = 0.0;
        for (coefficient, string) in h.terms() {
            if string.is_identity() {
                center += coefficient;
            } else {
                radius += coefficient.abs();
            }
        }
        let triangle = SpectralBound {
            center,
            radius,
            step_strength: compiled.step_strength(),
        };
        // (a) Containment.
        assert!(
            tightened.center - tightened.radius >= triangle.center - triangle.radius - 1e-12
                && tightened.center + tightened.radius <= triangle.center + triangle.radius + 1e-12,
            "tightened interval escapes the triangle enclosure"
        );
        assert!(
            tightened.radius < triangle.radius - 0.5,
            "no meaningful tightening on the MIS segment: {} vs {}",
            tightened.radius,
            triangle.radius
        );
        // (b) Strictly fewer applications over a long segment...
        let time = 5.0;
        let initial = StateVector::plus_state(6);
        let norm = initial.norm();
        let mut tight_stepper = ChebyshevStepper::new(1e-14);
        let mut tight_state = initial.clone();
        tight_stepper.evolve_segment(compiled.kernel(), &tightened, &mut tight_state, time, norm);
        let mut triangle_stepper = ChebyshevStepper::new(1e-14);
        let mut triangle_state = initial.clone();
        triangle_stepper.evolve_segment(
            compiled.kernel(),
            &triangle,
            &mut triangle_state,
            time,
            norm,
        );
        assert!(
            tight_stepper.kernel_applications() < triangle_stepper.kernel_applications(),
            "tightened bound did not reduce work: {} vs {}",
            tight_stepper.kernel_applications(),
            triangle_stepper.kernel_applications()
        );
        // (c) ... at unchanged accuracy vs the Taylor reference.
        let reference = evolve_with(&initial, h, time, EvolveOptions::taylor());
        for (a, b) in tight_state.amplitudes().iter().zip(reference.amplitudes()) {
            assert!((*a - *b).abs() < AGREEMENT, "{a} != {b}");
        }
    }
}

#[test]
fn taylor_estimate_is_exact_on_pure_drive_ramp_segments() {
    // The cost-model observability gap: `AutoCostModel::estimated_applications`
    // predictions were never compared to actuals. On a pure transverse-drive
    // ramp the Taylor estimate is provably exact: with `H = Ω·X₀`,
    // `‖Hᵏψ‖ = Ωᵏ·‖ψ‖` for *any* state (X₀ is Ω times a unitary), so the
    // spectral scale the estimate uses coincides with the norms the series
    // actually truncates on, step for step, order for order. The telemetry
    // `SegmentSpan` records both sides; any drift between the model and the
    // stepper (step splitting, series order rule, truncation threshold)
    // breaks the equality loudly.
    use qturbo_quantum::SpanEvent;
    let num_qubits = 3;
    let num_segments = 16;
    let segments: Vec<(Hamiltonian, f64)> = (0..num_segments)
        .map(|index| {
            let s = (index + 1) as f64 / num_segments as f64;
            (
                Hamiltonian::from_terms(num_qubits, [(1.8 * s, PauliString::single(0, Pauli::X))]),
                0.25,
            )
        })
        .collect();
    let schedule = CompiledSchedule::compile(&segments);
    for kind in [StepperKind::Taylor, StepperKind::BatchedTaylor] {
        let mut propagator =
            Propagator::with_options(EvolveOptions::new(kind).with_telemetry(true));
        let mut state = StateVector::zero_state(num_qubits);
        propagator.evolve_schedule_in_place(&schedule, &mut state);
        let trace = propagator.trace().expect("telemetry enabled");
        let mut checked = 0;
        for event in trace.events() {
            if let SpanEvent::Segment(span) = event {
                let predicted = span.predicted_applications.expect("taylor has an estimate");
                assert_eq!(
                    predicted,
                    span.applications as f64,
                    "{}: segment {:?} predicted {predicted} != measured {}",
                    kind.name(),
                    span.index,
                    span.applications
                );
                checked += 1;
            }
        }
        assert_eq!(checked, num_segments);
    }
}

#[test]
fn relaxed_tolerance_still_converges_reasonably() {
    // A user-loosened tolerance trades accuracy for work but must stay in
    // the right ballpark (no divergence, no garbage).
    let mut rng = Rng::seed_from_u64(0x70C);
    let h = random_y_heavy(&mut rng, 3, 5);
    let initial = random_state(&mut rng, 3);
    let reference = evolve_naive(&initial, &h, 5.0);
    for kind in [StepperKind::Krylov, StepperKind::Chebyshev] {
        let options = EvolveOptions::new(kind).with_tolerance(1e-6);
        let evolved = evolve_with(&initial, &h, 5.0, options);
        for (a, b) in evolved.amplitudes().iter().zip(reference.amplitudes()) {
            assert!((*a - *b).abs() < 1e-4, "{}: {a} != {b}", kind.name());
        }
    }
}
