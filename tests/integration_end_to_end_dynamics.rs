//! Integration test: the compiled pulse reproduces the *dynamics* of the
//! target system, not just its coefficient vector. For small systems we
//! propagate the Schrödinger equation under both the target Hamiltonian and
//! the compiled schedule and require high state fidelity.

use qturbo::QTurboCompiler;
use qturbo_aais::heisenberg::{heisenberg_aais, HeisenbergOptions};
use qturbo_aais::rydberg::{rydberg_aais, RydbergOptions};
use qturbo_hamiltonian::models::{heisenberg_chain, ising_chain, kitaev, pxp};
use qturbo_hamiltonian::Hamiltonian;
use qturbo_quantum::compiled::CompiledHamiltonian;
use qturbo_quantum::observable::{z_average, zz_average};
use qturbo_quantum::propagate::{evolve, evolve_naive, evolve_piecewise, Propagator};
use qturbo_quantum::StateVector;

fn fidelity_of_compiled_pulse(
    target: &Hamiltonian,
    target_time: f64,
    aais: &qturbo_aais::Aais,
) -> f64 {
    let result = QTurboCompiler::new()
        .compile(target, target_time, aais)
        .expect("compiles");
    // One propagator: the ideal evolution and every pulse segment share the
    // same scratch buffers.
    let mut propagator = Propagator::new();
    let mut ideal = StateVector::zero_state(target.num_qubits());
    propagator.evolve_in_place(
        &CompiledHamiltonian::compile(target),
        &mut ideal,
        target_time,
    );
    let segments = result
        .schedule
        .hamiltonians(aais)
        .expect("schedule evaluates");
    let mut compiled = StateVector::zero_state(target.num_qubits());
    propagator.evolve_piecewise_in_place(&segments, &mut compiled);
    ideal.fidelity(&compiled)
}

#[test]
fn in_place_propagation_matches_the_naive_reference_end_to_end() {
    // The engine swap must be observationally invisible: the mask-compiled
    // in-place path and the retained naive reference agree on a full
    // compile-then-simulate round trip.
    let target = ising_chain(4, 1.0, 1.0);
    let aais = heisenberg_aais(4, &HeisenbergOptions::default());
    let result = QTurboCompiler::new().compile(&target, 1.0, &aais).unwrap();
    let segments = result.schedule.hamiltonians(&aais).unwrap();
    let initial = StateVector::zero_state(4);

    let fast = evolve_piecewise(&initial, &segments);
    let mut slow = initial.clone();
    for (hamiltonian, duration) in &segments {
        slow = evolve_naive(&slow, hamiltonian, *duration);
    }
    assert!(
        fast.fidelity(&slow) > 1.0 - 1e-10,
        "fidelity {}",
        fast.fidelity(&slow)
    );
}

#[test]
fn heisenberg_device_reproduces_ising_chain_dynamics() {
    let aais = heisenberg_aais(4, &HeisenbergOptions::default());
    let fidelity = fidelity_of_compiled_pulse(&ising_chain(4, 1.0, 1.0), 1.0, &aais);
    assert!(fidelity > 0.9999, "fidelity {fidelity}");
}

#[test]
fn heisenberg_device_reproduces_heisenberg_chain_dynamics() {
    let aais = heisenberg_aais(5, &HeisenbergOptions::default());
    let fidelity = fidelity_of_compiled_pulse(&heisenberg_chain(5, 1.0, 1.0), 1.0, &aais);
    assert!(fidelity > 0.9999, "fidelity {fidelity}");
}

#[test]
fn heisenberg_device_reproduces_kitaev_dynamics() {
    let aais = heisenberg_aais(4, &HeisenbergOptions::default());
    let fidelity = fidelity_of_compiled_pulse(&kitaev(4, 1.0, 1.0, 1.0), 1.0, &aais);
    assert!(fidelity > 0.9999, "fidelity {fidelity}");
}

#[test]
fn rydberg_device_reproduces_ising_chain_observables() {
    // On the Rydberg device the compiled Hamiltonian carries small Van der
    // Waals tails, so we compare the physically measured observables rather
    // than demanding full state fidelity.
    let target = ising_chain(4, 1.0, 1.0);
    let target_time = 1.0;
    let aais = rydberg_aais(
        4,
        &RydbergOptions {
            interaction_cutoff: None,
            ..RydbergOptions::default()
        },
    );
    let result = QTurboCompiler::new()
        .compile(&target, target_time, &aais)
        .unwrap();
    let initial = StateVector::zero_state(4);
    let ideal = evolve(&initial, &target, target_time);
    let segments = result.schedule.hamiltonians(&aais).unwrap();
    let compiled = evolve_piecewise(&initial, &segments);

    assert!((z_average(&ideal) - z_average(&compiled)).abs() < 0.05);
    assert!((zz_average(&ideal, false) - zz_average(&compiled, false)).abs() < 0.05);
    assert!(
        ideal.fidelity(&compiled) > 0.97,
        "fidelity {}",
        ideal.fidelity(&compiled)
    );
}

#[test]
fn rydberg_device_reproduces_pxp_dynamics_under_blockade() {
    // Blockade regime (J >> h): the PXP chain compiles to a Rydberg pulse
    // whose dynamics track the target closely even for a long target time.
    let target = pxp(4, 1.26, 0.126);
    let target_time = 5.0;
    let aais = rydberg_aais(4, &RydbergOptions::aquila_rad_per_us(13.8));
    let result = QTurboCompiler::new()
        .compile(&target, target_time, &aais)
        .unwrap();
    assert!(
        result.execution_time < 1.0,
        "blockade pulse should be strongly compressed"
    );

    let initial = StateVector::zero_state(4);
    let ideal = evolve(&initial, &target, target_time);
    let segments = result.schedule.hamiltonians(&aais).unwrap();
    let compiled = evolve_piecewise(&initial, &segments);
    assert!(
        (z_average(&ideal) - z_average(&compiled)).abs() < 0.1,
        "Z_avg ideal {} compiled {}",
        z_average(&ideal),
        z_average(&compiled)
    );
}

#[test]
fn shorter_pulses_survive_noise_better_than_longer_ones() {
    // The mechanism behind the paper's Fig. 6: run the same compiled target on
    // the emulated noisy device with and without evolution-time optimization.
    use qturbo::CompilerOptions;
    use qturbo_quantum::{EmulatedDevice, NoiseModel};

    let target = ising_chain(4, 1.0, 1.0);
    let aais = heisenberg_aais(4, &HeisenbergOptions::default());
    let short = QTurboCompiler::new().compile(&target, 1.0, &aais).unwrap();
    let long = QTurboCompiler::with_options(CompilerOptions {
        optimize_evolution_time: false,
        ..CompilerOptions::default()
    })
    .compile(&target, 1.0, &aais)
    .unwrap();
    assert!(long.execution_time > short.execution_time);

    let ideal = evolve(&StateVector::zero_state(4), &target, 1.0);
    let noisy = EmulatedDevice::new(
        NoiseModel {
            shots: None,
            ..NoiseModel::aquila_like()
        },
        3,
    );
    let short_run = noisy.run(&short.schedule.hamiltonians(&aais).unwrap(), 4, false);
    let long_run = noisy.run(&long.schedule.hamiltonians(&aais).unwrap(), 4, false);
    let short_error = (short_run.zz_average() - zz_average(&ideal, false)).abs();
    let long_error = (long_run.zz_average() - zz_average(&ideal, false)).abs();
    assert!(
        short_error < long_error,
        "short pulse error {short_error} should beat long pulse error {long_error}"
    );
}
