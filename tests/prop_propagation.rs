//! Property tests of the propagation engine: the mask-compiled kernel
//! (`CompiledHamiltonian`) must agree with the naive per-qubit reference on
//! random Pauli strings and random states — including Y-heavy strings and
//! the identity — and `evolve` must preserve the norm to 1e-10 across
//! segment boundaries.
//!
//! Deterministically seeded sampling via `qturbo_math::rng::Rng` (no external
//! property-testing framework is vendored in this environment).

use qturbo_hamiltonian::{Hamiltonian, Pauli, PauliString};
use qturbo_math::rng::Rng;
use qturbo_math::Complex;
use qturbo_quantum::compiled::CompiledHamiltonian;
use qturbo_quantum::propagate::{
    apply_hamiltonian, apply_hamiltonian_naive, evolve, evolve_naive, evolve_piecewise,
};
use qturbo_quantum::StateVector;

fn random_state(rng: &mut Rng, num_qubits: usize) -> StateVector {
    let amplitudes: Vec<Complex> = (0..1usize << num_qubits)
        .map(|_| Complex::new(rng.next_range(-1.0, 1.0), rng.next_range(-1.0, 1.0)))
        .collect();
    StateVector::from_amplitudes(amplitudes)
}

/// A random Pauli string; with `y_bias` set every non-identity factor is `Y`.
fn random_string(rng: &mut Rng, num_qubits: usize, y_bias: bool) -> PauliString {
    PauliString::from_ops((0..num_qubits).filter_map(|qubit| {
        match rng.next_usize(4) {
            0 => None, // identity factor
            k => {
                let op = if y_bias {
                    Pauli::Y
                } else {
                    [Pauli::X, Pauli::Y, Pauli::Z][k - 1]
                };
                Some((qubit, op))
            }
        }
    }))
}

fn random_hamiltonian(rng: &mut Rng, num_qubits: usize, num_terms: usize) -> Hamiltonian {
    Hamiltonian::from_terms(
        num_qubits,
        (0..num_terms).map(|_| {
            (
                rng.next_range(-2.0, 2.0),
                random_string(rng, num_qubits, false),
            )
        }),
    )
}

fn assert_states_close(a: &StateVector, b: &StateVector, tolerance: f64, context: &str) {
    for (x, y) in a.amplitudes().iter().zip(b.amplitudes()) {
        assert!((*x - *y).abs() < tolerance, "{context}: {x} != {y}");
    }
}

#[test]
fn compiled_apply_agrees_with_naive_on_random_strings_and_states() {
    let mut rng = Rng::seed_from_u64(0xC0FFEE);
    for case in 0..60 {
        let num_qubits = 1 + rng.next_usize(6);
        let state = random_state(&mut rng, num_qubits);
        let num_terms = 1 + rng.next_usize(6);
        let hamiltonian = random_hamiltonian(&mut rng, num_qubits, num_terms);
        let fast = apply_hamiltonian(&hamiltonian, &state);
        let slow = apply_hamiltonian_naive(&hamiltonian, &state);
        assert_states_close(&fast, &slow, 1e-12, &format!("case {case} ({num_qubits}q)"));
    }
}

#[test]
fn compiled_apply_agrees_on_y_heavy_strings() {
    let mut rng = Rng::seed_from_u64(0xBADA55);
    for case in 0..40 {
        let num_qubits = 1 + rng.next_usize(6);
        let state = random_state(&mut rng, num_qubits);
        let string = random_string(&mut rng, num_qubits, true);
        let hamiltonian =
            Hamiltonian::from_terms(num_qubits, [(rng.next_range(-2.0, 2.0), string)]);
        let fast = apply_hamiltonian(&hamiltonian, &state);
        let slow = apply_hamiltonian_naive(&hamiltonian, &state);
        assert_states_close(&fast, &slow, 1e-12, &format!("Y-heavy case {case}"));
    }
}

#[test]
fn compiled_apply_agrees_on_the_identity() {
    let mut rng = Rng::seed_from_u64(7);
    for _ in 0..10 {
        let num_qubits = 1 + rng.next_usize(5);
        let state = random_state(&mut rng, num_qubits);
        let coefficient = rng.next_range(-3.0, 3.0);
        let hamiltonian =
            Hamiltonian::from_terms(num_qubits, [(coefficient, PauliString::identity())]);
        let fast = apply_hamiltonian(&hamiltonian, &state);
        for (out, input) in fast.amplitudes().iter().zip(state.amplitudes()) {
            assert!((*out - input.scale(coefficient)).abs() < 1e-12);
        }
    }
}

#[test]
fn compiled_expectation_agrees_with_apply_route() {
    let mut rng = Rng::seed_from_u64(0x5EED);
    for _ in 0..40 {
        let num_qubits = 1 + rng.next_usize(6);
        let state = random_state(&mut rng, num_qubits);
        let y_bias = rng.next_bool();
        let string = random_string(&mut rng, num_qubits, y_bias);
        // Allocation-free expectation vs materializing P|ψ⟩.
        let fast = state.expectation(&string);
        let slow = state.inner_product(&state.apply_pauli_string(&string)).re;
        assert!((fast - slow).abs() < 1e-12, "{fast} != {slow} for {string}");
        // Hamiltonian-level expectation sums the terms.
        let h = random_hamiltonian(&mut rng, num_qubits, 3);
        let compiled = CompiledHamiltonian::compile(&h);
        let via_apply = state.inner_product(&apply_hamiltonian_naive(&h, &state)).re;
        assert!((compiled.expectation(&state) - via_apply).abs() < 1e-10);
    }
}

#[test]
fn compiled_evolve_agrees_with_naive_evolve() {
    let mut rng = Rng::seed_from_u64(0xE401E);
    for case in 0..20 {
        let num_qubits = 1 + rng.next_usize(4);
        let state = random_state(&mut rng, num_qubits);
        let num_terms = 1 + rng.next_usize(4);
        let hamiltonian = random_hamiltonian(&mut rng, num_qubits, num_terms);
        let time = rng.next_range(0.0, 1.5);
        let fast = evolve(&state, &hamiltonian, time);
        let slow = evolve_naive(&state, &hamiltonian, time);
        assert_states_close(&fast, &slow, 1e-9, &format!("evolve case {case}"));
    }
}

#[test]
fn evolve_preserves_norm_across_segment_boundaries() {
    let mut rng = Rng::seed_from_u64(0x90125);
    for _ in 0..20 {
        let num_qubits = 2 + rng.next_usize(4);
        let state = random_state(&mut rng, num_qubits);
        let num_segments = 1 + rng.next_usize(4);
        let segments: Vec<(Hamiltonian, f64)> = (0..num_segments)
            .map(|_| {
                let num_terms = 1 + rng.next_usize(5);
                (
                    random_hamiltonian(&mut rng, num_qubits, num_terms),
                    rng.next_range(0.05, 0.8),
                )
            })
            .collect();
        // Norm after the full piecewise evolution…
        let evolved = evolve_piecewise(&state, &segments);
        assert!(
            (evolved.norm() - 1.0).abs() < 1e-10,
            "norm {}",
            evolved.norm()
        );
        // …and at every intermediate segment boundary.
        let mut current = state.clone();
        for (hamiltonian, duration) in &segments {
            current = evolve(&current, hamiltonian, *duration);
            assert!(
                (current.norm() - 1.0).abs() < 1e-10,
                "boundary norm {}",
                current.norm()
            );
        }
        // The sequential route lands on the same state.
        assert!(evolved.fidelity(&current) > 1.0 - 1e-10);
    }
}
