//! Integration test: the qualitative comparison of the paper's evaluation —
//! QTurbo compiles faster, produces pulses that are no longer than the
//! baseline's, and is at least as accurate.

use qturbo::QTurboCompiler;
use qturbo_aais::heisenberg::{heisenberg_aais, HeisenbergOptions};
use qturbo_aais::rydberg::{rydberg_aais, RydbergOptions};
use qturbo_baseline::{BaselineCompiler, BaselineError, BaselineOptions};
use qturbo_hamiltonian::models::{ising_chain, kitaev};

#[test]
fn qturbo_beats_baseline_on_the_heisenberg_device() {
    let n = 8;
    let target = ising_chain(n, 1.0, 1.0);
    let aais = heisenberg_aais(n, &HeisenbergOptions::default());

    let qturbo = QTurboCompiler::new().compile(&target, 1.0, &aais).unwrap();
    // The documented benchmark preset (the comparison harness accepts
    // degraded solutions up to 60% so they are measured, not discarded).
    let baseline = BaselineCompiler::with_options(BaselineOptions::benchmark())
        .compile(&target, 1.0, &aais)
        .unwrap();

    // Compilation speed: the decomposed solve must be faster than the
    // monolithic one (the paper reports orders of magnitude at larger sizes).
    assert!(
        qturbo.stats.compile_time < baseline.stats.compile_time,
        "QTurbo {:?} vs baseline {:?}",
        qturbo.stats.compile_time,
        baseline.stats.compile_time
    );
    // Pulse length: QTurbo picks the bottleneck-optimal time.
    assert!(qturbo.execution_time <= baseline.execution_time + 1e-9);
    // Accuracy: QTurbo is at least as accurate.
    assert!(qturbo.relative_error() <= baseline.relative_error() + 1e-9);
}

#[test]
fn qturbo_beats_baseline_on_the_rydberg_device() {
    let n = 6;
    let target = ising_chain(n, 1.0, 1.0);
    let aais = rydberg_aais(n, &RydbergOptions::default());

    let qturbo = QTurboCompiler::new().compile(&target, 1.0, &aais).unwrap();
    let baseline = match BaselineCompiler::with_options(BaselineOptions::benchmark())
        .compile(&target, 1.0, &aais)
    {
        Ok(result) => result,
        // An occasional baseline failure is itself one of the paper's
        // observations; the comparison then holds trivially.
        Err(_) => return,
    };

    assert!(qturbo.stats.compile_time < baseline.stats.compile_time);
    assert!(qturbo.execution_time <= baseline.execution_time * 1.05);
    assert!(qturbo.relative_error() <= baseline.relative_error() + 0.01);
}

#[test]
fn baseline_compile_time_grows_faster_with_system_size() {
    // Table 1's message in miniature: grow the Ising system and compare how
    // the two compilers' compile times scale.
    let sizes = [4usize, 10];
    let mut qturbo_times = Vec::new();
    let mut baseline_times = Vec::new();
    for &n in &sizes {
        let target = ising_chain(n, 1.0, 1.0);
        let aais = heisenberg_aais(n, &HeisenbergOptions::default());
        let qturbo = QTurboCompiler::new().compile(&target, 1.0, &aais).unwrap();
        qturbo_times.push(qturbo.stats.compile_time.as_secs_f64());
        let baseline = BaselineCompiler::with_options(BaselineOptions {
            failure_threshold: 1.0,
            ..BaselineOptions::default()
        })
        .compile(&target, 1.0, &aais)
        .unwrap();
        baseline_times.push(baseline.stats.compile_time.as_secs_f64());
    }
    let qturbo_growth = qturbo_times[1] / qturbo_times[0].max(1e-9);
    let baseline_growth = baseline_times[1] / baseline_times[0].max(1e-9);
    assert!(
        baseline_growth > qturbo_growth,
        "baseline growth {baseline_growth:.1}x vs QTurbo growth {qturbo_growth:.1}x"
    );
}

#[test]
fn kitaev_execution_times_can_tie_but_qturbo_compiles_faster() {
    // The paper notes that for the Kitaev model the baseline often finds the
    // same (optimal) execution time — yet remains much slower to compile.
    let n = 6;
    let target = kitaev(n, 1.0, 1.0, 1.0);
    let aais = heisenberg_aais(n, &HeisenbergOptions::default());
    let qturbo = QTurboCompiler::new().compile(&target, 1.0, &aais).unwrap();
    let baseline = BaselineCompiler::with_options(BaselineOptions::benchmark())
        .compile(&target, 1.0, &aais)
        .unwrap();
    assert!(qturbo.stats.compile_time < baseline.stats.compile_time);
    assert!(qturbo.execution_time <= baseline.execution_time + 1e-9);
}

#[test]
fn default_threshold_reports_a_typed_failure_where_the_preset_accepts() {
    // A Heisenberg chain on the Rydberg machine: the device has no XX/YY
    // couplings, so the baseline's best effort misses roughly half the
    // target norm. The honest default threshold (25%) classifies that as a
    // failure — with a typed error carrying the error the solver actually
    // achieved — while the documented benchmark preset accepts the same
    // degraded solution for measurement.
    use qturbo_hamiltonian::models::heisenberg_chain;
    let n = 4;
    let target = heisenberg_chain(n, 1.0, 1.0);
    let aais = rydberg_aais(n, &RydbergOptions::default());

    let default_result = BaselineCompiler::new().compile(&target, 1.0, &aais);
    match default_result {
        Err(BaselineError::NoSolution {
            best_relative_error,
        }) => {
            assert!(
                best_relative_error > BaselineOptions::default().failure_threshold,
                "typed failure must report the achieved error, got {best_relative_error}"
            );
            assert!(
                best_relative_error <= BaselineOptions::benchmark().failure_threshold,
                "the benchmark preset is documented to accept this cell, \
                 but the solver landed at {best_relative_error}"
            );
        }
        other => panic!("expected a typed NoSolution failure, got {other:?}"),
    }
    assert!(BaselineCompiler::with_options(BaselineOptions::benchmark())
        .compile(&target, 1.0, &aais)
        .is_ok());
}
