//! Cross-backend conformance harness: every [`StepperKind`] (the three
//! fixed backends **and** `Auto`) is run through every evolution path —
//! constant-Hamiltonian, recompile-per-segment piecewise, compiled-schedule,
//! and the emulated device — over a seeded family of scenario shapes:
//!
//! * Y-heavy random Hamiltonians (exercise the gather kernel and complex
//!   weights),
//! * diagonal-dominated detuning ramps (exercise the diagonal table, its
//!   incremental updates, and the tightened spectral bound),
//! * near-degenerate spectra (coefficient gaps down to 1e-9),
//! * the single-qubit `n = 1` register (the smallest mask layout, where
//!   wrap-around and bond bookkeeping historically broke),
//! * long-duration segments (`‖H‖·t ≫ 1`, the high-order backends' regime),
//! * mixed-structure schedules (multiple mask layouts in one run),
//! * a dense same-layout ramp of tiny segments (the batched multi-segment
//!   sweep's carry chaining, boundary passes, and run-end flush).
//!
//! Every `backend × path` result is pinned **pairwise** to 1e-10 and to the
//! scalar naive reference — so a new backend, a new evolution path, or a
//! data-layout change (like the columnar weight matrix) is
//! conformance-tested by construction: add it to the matrix and every
//! scenario shape exercises it against everything else.

use qturbo_hamiltonian::{Hamiltonian, Pauli, PauliString};
use qturbo_math::rng::Rng;
use qturbo_math::Complex;
use qturbo_quantum::compiled::CompiledHamiltonian;
use qturbo_quantum::observable::measure_z_zz;
use qturbo_quantum::propagate::{evolve_naive, evolve_schedule_with};
use qturbo_quantum::schedule::CompiledSchedule;
use qturbo_quantum::{
    EmulatedDevice, EvolveOptions, NoiseModel, Propagator, StateVector, StepperKind,
};

const AGREEMENT: f64 = 1e-10;

/// One conformance scenario: a named schedule plus the register size.
struct Scenario {
    name: String,
    num_qubits: usize,
    segments: Vec<(Hamiltonian, f64)>,
}

fn random_state(rng: &mut Rng, num_qubits: usize) -> StateVector {
    let amplitudes: Vec<Complex> = (0..1usize << num_qubits)
        .map(|_| Complex::new(rng.next_range(-1.0, 1.0), rng.next_range(-1.0, 1.0)))
        .collect();
    StateVector::from_amplitudes(amplitudes)
}

fn random_string(rng: &mut Rng, num_qubits: usize) -> PauliString {
    PauliString::from_ops((0..num_qubits).filter_map(|qubit| match rng.next_usize(4) {
        0 => None,
        k => Some((qubit, [Pauli::X, Pauli::Y, Pauli::Z][k - 1])),
    }))
}

/// The seeded scenario generator: each call yields the full family of shapes
/// the harness pins, deterministically derived from `seed`.
fn scenarios(seed: u64) -> Vec<Scenario> {
    let mut rng = Rng::seed_from_u64(seed);
    let mut out = Vec::new();

    // --- Y-heavy random schedules (gather kernel, complex weights). ---
    for round in 0..3 {
        let num_qubits = 2 + rng.next_usize(2);
        let num_terms = 2 + rng.next_usize(3);
        let strings: Vec<PauliString> = (0..num_terms)
            .map(|index| {
                let mut string = random_string(&mut rng, num_qubits);
                if index % 2 == 0 {
                    let qubit = rng.next_usize(num_qubits);
                    string = PauliString::from_ops(
                        string
                            .iter()
                            .filter(|(q, _)| *q != qubit)
                            .chain(std::iter::once((qubit, Pauli::Y)))
                            .collect::<Vec<_>>(),
                    );
                }
                string
            })
            .collect();
        let segments = (0..3)
            .map(|_| {
                (
                    Hamiltonian::from_terms(
                        num_qubits,
                        strings
                            .iter()
                            .map(|s| (rng.next_range(-1.5, 1.5), s.clone())),
                    ),
                    rng.next_range(0.1, 0.8),
                )
            })
            .collect();
        out.push(Scenario {
            name: format!("y_heavy_{round}"),
            num_qubits,
            segments,
        });
    }

    // --- Diagonal-dominated detuning ramp (table + tightened bound). ---
    let num_qubits = 3;
    let segments = (0..8)
        .map(|index| {
            let s = index as f64 / 8.0;
            (
                Hamiltonian::from_terms(
                    num_qubits,
                    [
                        ((1.0 - 2.0 * s) * 2.0, PauliString::single(0, Pauli::Z)),
                        ((1.0 - 2.0 * s) * 2.0, PauliString::single(1, Pauli::Z)),
                        ((1.0 - 2.0 * s) * 2.0, PauliString::single(2, Pauli::Z)),
                        (1.5, PauliString::two(0, Pauli::Z, 1, Pauli::Z)),
                        (1.5, PauliString::two(1, Pauli::Z, 2, Pauli::Z)),
                        (0.8, PauliString::identity()),
                        (0.25, PauliString::single(0, Pauli::X)),
                    ],
                ),
                0.15,
            )
        })
        .collect();
    out.push(Scenario {
        name: "diagonal_dominated_ramp".into(),
        num_qubits,
        segments,
    });

    // --- Near-degenerate spectra (1e-9 coefficient gaps). ---
    for &gap in &[1e-6, 1e-9] {
        out.push(Scenario {
            name: format!("near_degenerate_gap_{gap:e}"),
            num_qubits: 2,
            segments: vec![(
                Hamiltonian::from_terms(
                    2,
                    [
                        (1.0, PauliString::single(0, Pauli::Z)),
                        (1.0 + gap, PauliString::single(1, Pauli::Z)),
                        (0.25, PauliString::single(0, Pauli::X)),
                    ],
                ),
                3.0,
            )],
        });
    }

    // --- Single-qubit register (n = 1: the smallest mask layout). ---
    out.push(Scenario {
        name: "single_qubit".into(),
        num_qubits: 1,
        segments: vec![
            (
                Hamiltonian::from_terms(
                    1,
                    [
                        (rng.next_range(0.5, 1.5), PauliString::single(0, Pauli::X)),
                        (rng.next_range(-0.5, 0.5), PauliString::single(0, Pauli::Z)),
                    ],
                ),
                0.7,
            ),
            (
                Hamiltonian::from_terms(
                    1,
                    [
                        (rng.next_range(0.5, 1.5), PauliString::single(0, Pauli::Y)),
                        (0.2, PauliString::identity()),
                    ],
                ),
                4.0,
            ),
        ],
    });

    // --- Long ‖H‖·t (the Krylov/Chebyshev regime). ---
    let h = Hamiltonian::from_terms(
        3,
        [
            (1.0, PauliString::two(0, Pauli::Z, 1, Pauli::Z)),
            (0.8, PauliString::single(1, Pauli::Y)),
            (0.5, PauliString::single(2, Pauli::X)),
            (-0.3, PauliString::identity()),
        ],
    );
    let strength = h.coefficient_l1_norm() + h.max_abs_coefficient();
    out.push(Scenario {
        name: "long_phase".into(),
        num_qubits: 3,
        segments: vec![(h, 60.0 / strength)],
    });

    // --- Mixed structures (several mask layouts in one schedule). ---
    let a = Hamiltonian::from_terms(2, [(1.1, PauliString::single(0, Pauli::X))]);
    let b = Hamiltonian::from_terms(
        2,
        [
            (0.6, PauliString::two(0, Pauli::Z, 1, Pauli::Z)),
            (-0.4, PauliString::single(1, Pauli::Z)),
        ],
    );
    out.push(Scenario {
        name: "mixed_structures".into(),
        num_qubits: 2,
        segments: vec![(a.clone(), 0.3), (b, 0.5), (a.scaled(0.7), 0.4)],
    });

    // --- Dense ramp: a long same-layout train of tiny segments, the shape
    // the batched multi-segment sweep chains through one carry-connected
    // run (every boundary pass is exercised, including the run-end flush).
    let dense_segments = 40;
    let segments = (0..dense_segments)
        .map(|index| {
            let s = index as f64 / dense_segments as f64;
            (
                Hamiltonian::from_terms(
                    3,
                    [
                        (1.0 - s, PauliString::single(0, Pauli::X)),
                        (0.3 + 0.9 * s, PauliString::two(0, Pauli::Z, 1, Pauli::Z)),
                        (0.5 - 0.2 * s, PauliString::single(1, Pauli::Z)),
                        (0.2 + 0.3 * s, PauliString::single(2, Pauli::Y)),
                    ],
                ),
                0.03,
            )
        })
        .collect();
    out.push(Scenario {
        name: "dense_ramp".into(),
        num_qubits: 3,
        segments,
    });

    out
}

/// Evolution paths of the conformance matrix (the device path is handled
/// separately — it starts from `|0…0⟩` and reports observables).
const PATHS: [&str; 3] = ["constant", "piecewise", "schedule"];

/// Runs `scenario` from `initial` through one `backend × path` cell.
fn run_path(
    path: &str,
    scenario: &Scenario,
    initial: &StateVector,
    options: EvolveOptions,
) -> StateVector {
    match path {
        // The constant-Hamiltonian path, driven per segment: each segment is
        // a CompiledHamiltonian evolved in place.
        "constant" => {
            let mut propagator = Propagator::with_options(options);
            let mut state = initial.clone();
            for (hamiltonian, duration) in &scenario.segments {
                let compiled = CompiledHamiltonian::compile(hamiltonian);
                propagator.evolve_in_place(&compiled, &mut state, *duration);
            }
            state
        }
        // The recompile-per-segment piecewise driver.
        "piecewise" => {
            let mut propagator = Propagator::with_options(options);
            let mut state = initial.clone();
            propagator.evolve_piecewise_in_place(&scenario.segments, &mut state);
            state
        }
        // The shared-layout columnar compiled schedule.
        "schedule" => {
            let schedule = CompiledSchedule::compile(&scenario.segments);
            evolve_schedule_with(initial, &schedule, options)
        }
        other => unreachable!("unknown path {other}"),
    }
}

#[test]
fn every_backend_times_every_path_agrees_on_every_scenario() {
    let mut rng = Rng::seed_from_u64(0xC0F0);
    for scenario in scenarios(0x5EED) {
        // A random, deliberately unnormalized initial state (norm in
        // [~0.5, ~4]): conformance includes the linearity semantics.
        let initial = random_state(&mut rng, scenario.num_qubits);

        // The scalar naive reference: sequential evolve_naive per segment.
        let mut reference = initial.clone();
        for (hamiltonian, duration) in &scenario.segments {
            reference = evolve_naive(&reference, hamiltonian, *duration);
        }

        let mut results: Vec<(String, StateVector)> = Vec::new();
        for kind in StepperKind::all() {
            for path in PATHS {
                let state = run_path(path, &scenario, &initial, EvolveOptions::new(kind));
                results.push((format!("{}/{path}", kind.name()), state));
            }
        }

        // Pin every cell to the naive reference…
        for (label, state) in &results {
            for (index, (a, b)) in state
                .amplitudes()
                .iter()
                .zip(reference.amplitudes())
                .enumerate()
            {
                assert!(
                    (*a - *b).abs() < AGREEMENT,
                    "{}: {label} vs naive, amplitude {index}: {a} != {b}",
                    scenario.name
                );
            }
        }
        // …and pairwise to each other (tighter in practice; the explicit
        // pairwise sweep is what makes a new backend conformance-tested by
        // construction even if the naive reference were ever loosened).
        for (label_a, state_a) in &results {
            for (label_b, state_b) in &results {
                for (a, b) in state_a.amplitudes().iter().zip(state_b.amplitudes()) {
                    assert!(
                        (*a - *b).abs() < AGREEMENT,
                        "{}: {label_a} vs {label_b}: {a} != {b}",
                        scenario.name
                    );
                }
            }
        }
    }
}

#[test]
fn every_backend_agrees_through_the_device_path() {
    // The device path: |0…0⟩, noiseless, fused Z/ZZ observables. Pinned
    // pairwise across backends and against the observables of the
    // naive-evolved state.
    for scenario in scenarios(0xDE71CE) {
        let cyclic = scenario.num_qubits >= 3;
        let mut reference_state = StateVector::zero_state(scenario.num_qubits);
        for (hamiltonian, duration) in &scenario.segments {
            reference_state = evolve_naive(&reference_state, hamiltonian, *duration);
        }
        let reference = measure_z_zz(&reference_state, cyclic);

        let runs: Vec<(StepperKind, _)> = StepperKind::all()
            .into_iter()
            .map(|kind| {
                let device = EmulatedDevice::new(NoiseModel::noiseless(), 0)
                    .with_options(EvolveOptions::new(kind));
                (
                    kind,
                    device.run(&scenario.segments, scenario.num_qubits, cyclic),
                )
            })
            .collect();

        for (kind, run) in &runs {
            assert_eq!(run.z.len(), scenario.num_qubits);
            for (i, (a, b)) in run.z.iter().zip(&reference.z).enumerate() {
                assert!(
                    (a - b).abs() < AGREEMENT,
                    "{}: {}/device Z_{i}: {a} != {b}",
                    scenario.name,
                    kind.name()
                );
            }
            for (pair, (a, b)) in reference.pairs.iter().zip(run.zz.iter().zip(&reference.zz)) {
                assert!(
                    (a - b).abs() < AGREEMENT,
                    "{}: {}/device ZZ{pair:?}: {a} != {b}",
                    scenario.name,
                    kind.name()
                );
            }
        }
        for (kind_a, run_a) in &runs {
            for (kind_b, run_b) in &runs {
                for (a, b) in run_a.z.iter().zip(&run_b.z) {
                    assert!(
                        (a - b).abs() < AGREEMENT,
                        "{}: {} vs {} device Z: {a} != {b}",
                        scenario.name,
                        kind_a.name(),
                        kind_b.name()
                    );
                }
                for (a, b) in run_a.zz.iter().zip(&run_b.zz) {
                    assert!(
                        (a - b).abs() < AGREEMENT,
                        "{}: {} vs {} device ZZ: {a} != {b}",
                        scenario.name,
                        kind_a.name(),
                        kind_b.name()
                    );
                }
            }
        }
    }
}

#[test]
fn device_default_options_are_auto() {
    // The acceptance criterion made explicit: a freshly constructed device
    // (and the ideal reference device) selects backends automatically.
    assert_eq!(
        EmulatedDevice::new(NoiseModel::aquila_like(), 1)
            .options()
            .stepper,
        StepperKind::Auto
    );
    assert_eq!(EmulatedDevice::ideal().options().stepper, StepperKind::Auto);
    assert_eq!(Propagator::new().options().stepper, StepperKind::Auto);
}
