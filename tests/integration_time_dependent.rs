//! Integration test for time-dependent (piecewise-constant) targets
//! (paper §5.3 and the Fig. 5b case study).

use qturbo::{CompilerOptions, QTurboCompiler};
use qturbo_aais::rydberg::{rydberg_aais, RydbergOptions};
use qturbo_aais::VariableKind;
use qturbo_baseline::{BaselineCompiler, BaselineOptions};
use qturbo_hamiltonian::models::mis_chain;
use qturbo_hamiltonian::PiecewiseHamiltonian;

#[test]
fn mis_chain_compiles_into_four_segments() {
    let n = 5;
    let target = mis_chain(n, 1.0, 1.0, 1.0, 1.0, 4);
    let aais = rydberg_aais(n, &RydbergOptions::default());
    let result = QTurboCompiler::new()
        .compile_piecewise(&target, &aais)
        .unwrap();

    assert_eq!(result.stats.num_segments, 4);
    assert_eq!(result.schedule.num_segments(), 4);
    assert!(result.execution_time <= aais.max_evolution_time());
    assert!(
        result.relative_error() < 0.2,
        "relative error {}",
        result.relative_error()
    );
    assert!(result.schedule.validate(&aais).is_ok());
}

#[test]
fn runtime_fixed_variables_are_shared_across_segments() {
    let n = 4;
    let target = mis_chain(n, 1.0, 1.0, 1.0, 1.0, 3);
    let aais = rydberg_aais(n, &RydbergOptions::default());
    let result = QTurboCompiler::new()
        .compile_piecewise(&target, &aais)
        .unwrap();

    let segments = result.schedule.segments();
    for variable in aais.registry().iter() {
        if variable.kind() != VariableKind::RuntimeFixed {
            continue;
        }
        let reference = segments[0].values()[variable.id().index()];
        for segment in segments {
            assert!(
                (segment.values()[variable.id().index()] - reference).abs() < 1e-9,
                "runtime-fixed variable {} moved between segments",
                variable.name()
            );
        }
    }
}

#[test]
fn segment_durations_track_the_sweep_profile() {
    // In the MIS sweep the drive amplitude is constant, so every segment needs
    // a similar machine time; no segment may dominate pathologically.
    let n = 4;
    let target = mis_chain(n, 1.0, 1.0, 1.0, 2.0, 4);
    let aais = rydberg_aais(n, &RydbergOptions::default());
    let result = QTurboCompiler::new()
        .compile_piecewise(&target, &aais)
        .unwrap();
    let times = &result.stats.segment_times;
    let max = times.iter().cloned().fold(0.0_f64, f64::max);
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(max > 0.0 && min > 0.0);
    assert!(
        max / min < 5.0,
        "segment times are wildly unbalanced: {times:?}"
    );
}

#[test]
fn single_segment_piecewise_matches_time_independent_compilation() {
    use qturbo_hamiltonian::models::ising_chain;
    let n = 4;
    let target = ising_chain(n, 1.0, 1.0);
    let aais = rydberg_aais(n, &RydbergOptions::default());
    let compiler = QTurboCompiler::new();
    let direct = compiler.compile(&target, 1.0, &aais).unwrap();
    let wrapped = compiler
        .compile_piecewise(&PiecewiseHamiltonian::constant(target, 1.0), &aais)
        .unwrap();
    assert!((direct.execution_time - wrapped.execution_time).abs() < 1e-9);
    assert!((direct.relative_error() - wrapped.relative_error()).abs() < 1e-9);
}

#[test]
fn qturbo_is_faster_and_no_worse_than_baseline_on_time_dependent_targets() {
    let n = 4;
    let target = mis_chain(n, 1.0, 1.0, 1.0, 1.0, 3);
    let aais = rydberg_aais(n, &RydbergOptions::default());
    let qturbo = QTurboCompiler::new()
        .compile_piecewise(&target, &aais)
        .unwrap();
    match BaselineCompiler::with_options(BaselineOptions {
        failure_threshold: 1.0,
        ..BaselineOptions::default()
    })
    .compile_piecewise(&target, &aais)
    {
        Ok(baseline) => {
            assert!(qturbo.stats.compile_time < baseline.stats.compile_time);
            assert!(qturbo.relative_error() <= baseline.relative_error() + 0.02);
        }
        Err(_) => {
            // Baseline failure on the hardest configuration is an acceptable
            // (and paper-consistent) outcome.
        }
    }
}

#[test]
fn more_segments_do_not_break_constraints() {
    let n = 3;
    let target = mis_chain(n, 1.0, 1.0, 1.0, 1.0, 8);
    let aais = rydberg_aais(n, &RydbergOptions::default());
    let result = QTurboCompiler::with_options(CompilerOptions::default())
        .compile_piecewise(&target, &aais)
        .unwrap();
    assert_eq!(result.stats.num_segments, 8);
    assert!(result.schedule.validate(&aais).is_ok());
    assert!(result.execution_time <= aais.max_evolution_time());
}
