//! Integration test: every time-independent benchmark model of Table 2
//! compiles on both AAIS backends with small relative error and a
//! device-feasible pulse.

use qturbo::QTurboCompiler;
use qturbo_aais::heisenberg::{heisenberg_aais, HeisenbergOptions};
use qturbo_aais::rydberg::{rydberg_aais, Layout, RydbergOptions};
use qturbo_hamiltonian::models::{Model, ModelParams};

/// Rydberg options suited to a given model: cyclic models get a ring layout
/// so the closing bond is geometrically realizable.
fn rydberg_options_for(model: Model) -> RydbergOptions {
    match model {
        Model::IsingCycle | Model::IsingCyclePlus => RydbergOptions {
            layout: Layout::Ring { spacing: 8.0 },
            ..RydbergOptions::default()
        },
        _ => RydbergOptions::default(),
    }
}

fn heisenberg_options_for(model: Model, n: usize) -> HeisenbergOptions {
    use qturbo_aais::heisenberg::Connectivity;
    match model {
        Model::IsingCycle => HeisenbergOptions::with_cycle_connectivity(),
        // The "+" model additionally needs next-nearest couplings.
        Model::IsingCyclePlus => {
            let mut edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
            edges.extend((0..n).map(|i| (i, (i + 2) % n)));
            HeisenbergOptions {
                connectivity: Connectivity::Custom(edges),
                ..HeisenbergOptions::default()
            }
        }
        _ => HeisenbergOptions::default(),
    }
}

#[test]
fn all_models_compile_on_the_rydberg_aais() {
    let params = ModelParams::default();
    let compiler = QTurboCompiler::new();
    for model in Model::TIME_INDEPENDENT {
        for &n in &[5usize, 9] {
            let n = n.max(model.min_qubits());
            let target = model.build(n, &params).expect("time-independent model");
            let aais = rydberg_aais(n, &rydberg_options_for(model));
            let result = compiler
                .compile(&target, 1.0, &aais)
                .unwrap_or_else(|e| panic!("{model} with {n} qubits failed on Rydberg: {e}"));
            assert!(result.execution_time <= aais.max_evolution_time());
            assert!(result.execution_time > 0.0);
            assert!(result.schedule.validate(&aais).is_ok());
            // The Rydberg AAIS cannot produce XX/YY couplings; the Heisenberg
            // chain therefore keeps a documented irreducible error there, and
            // the Kitaev/PXP/Ising families compile almost exactly.
            let threshold = match model {
                Model::HeisenbergChain => 0.65,
                _ => 0.06,
            };
            assert!(
                result.relative_error() < threshold,
                "{model} ({n} qubits) on Rydberg: relative error {}",
                result.relative_error()
            );
        }
    }
}

#[test]
fn all_models_compile_on_the_heisenberg_aais() {
    let params = ModelParams::default();
    let compiler = QTurboCompiler::new();
    for model in Model::TIME_INDEPENDENT {
        for &n in &[5usize, 10] {
            let n = n.max(model.min_qubits());
            let target = model.build(n, &params).expect("time-independent model");
            let aais = heisenberg_aais(n, &heisenberg_options_for(model, n));
            let result = compiler
                .compile(&target, 1.0, &aais)
                .unwrap_or_else(|e| panic!("{model} with {n} qubits failed on Heisenberg: {e}"));
            assert!(
                result.relative_error() < 1e-6,
                "{model} ({n} qubits) on Heisenberg: relative error {}",
                result.relative_error()
            );
            assert!(result.execution_time <= aais.max_evolution_time());
            assert!(result.schedule.validate(&aais).is_ok());
        }
    }
}

#[test]
fn compilation_scales_to_larger_systems_quickly() {
    // QTurbo's headline property: compiling a ~50-qubit model stays fast.
    let target = Model::IsingChain
        .build(48, &ModelParams::default())
        .unwrap();
    let aais = rydberg_aais(48, &RydbergOptions::default());
    let start = std::time::Instant::now();
    let result = QTurboCompiler::new().compile(&target, 1.0, &aais).unwrap();
    let elapsed = start.elapsed();
    assert!(
        result.relative_error() < 0.06,
        "relative error {}",
        result.relative_error()
    );
    assert!(
        elapsed.as_secs_f64() < 30.0,
        "48-qubit compilation took {elapsed:?}, expected well under 30 s"
    );
}

#[test]
fn execution_time_is_set_by_the_bottleneck_instruction() {
    // Ising chain with a strong transverse field: the Rabi drive is the
    // bottleneck, so doubling h doubles the machine time while doubling J
    // (realized by the position-controlled Van der Waals term) does not.
    let aais = rydberg_aais(4, &RydbergOptions::default());
    let compiler = QTurboCompiler::new();
    let base = compiler
        .compile(
            &Model::IsingChain.build(4, &ModelParams::default()).unwrap(),
            1.0,
            &aais,
        )
        .unwrap();
    let strong_field = compiler
        .compile(
            &Model::IsingChain
                .build(
                    4,
                    &ModelParams {
                        h: 2.0,
                        ..ModelParams::default()
                    },
                )
                .unwrap(),
            1.0,
            &aais,
        )
        .unwrap();
    assert!((strong_field.execution_time - 2.0 * base.execution_time).abs() < 0.05);

    let strong_coupling = compiler
        .compile(
            &Model::IsingChain
                .build(
                    4,
                    &ModelParams {
                        j: 2.0,
                        ..ModelParams::default()
                    },
                )
                .unwrap(),
            1.0,
            &aais,
        )
        .unwrap();
    assert!((strong_coupling.execution_time - base.execution_time).abs() < 0.05);
}

#[test]
fn longer_target_times_scale_the_pulse_proportionally() {
    let aais = heisenberg_aais(4, &HeisenbergOptions::default());
    let target = Model::Kitaev.build(4, &ModelParams::default()).unwrap();
    let compiler = QTurboCompiler::new();
    let one = compiler.compile(&target, 1.0, &aais).unwrap();
    let three = compiler.compile(&target, 3.0, &aais).unwrap();
    assert!((three.execution_time - 3.0 * one.execution_time).abs() < 1e-6);
    assert!(three.relative_error() < 1e-6);
}
