//! Property-based tests of compiler invariants: for randomly drawn targets the
//! compiled schedule must be hardware-feasible, accurate on devices that can
//! express the target exactly, never longer than the conservative ablation,
//! and never improved by skipping refinement.

use proptest::prelude::*;
use qturbo::{CompilerOptions, QTurboCompiler};
use qturbo_aais::heisenberg::{heisenberg_aais, HeisenbergOptions};
use qturbo_aais::rydberg::{rydberg_aais, RydbergOptions};
use qturbo_hamiltonian::models::{heisenberg_chain, ising_chain, kitaev};
use qturbo_hamiltonian::Hamiltonian;

/// Strategy: a random chain-structured target Hamiltonian with bounded,
/// bounded-away-from-zero coefficients, plus a random positive target time.
fn random_chain_target() -> impl Strategy<Value = (Hamiltonian, f64)> {
    (2usize..6, 0.1f64..2.0, 0.1f64..2.0, proptest::bool::ANY, proptest::bool::ANY, 0.25f64..2.0, 0usize..3)
        .prop_map(|(n, j_mag, h_mag, j_neg, h_neg, time, family)| {
            let j = if j_neg { -j_mag } else { j_mag };
            let h = if h_neg { -h_mag } else { h_mag };
            let hamiltonian = match family {
                0 => ising_chain(n, j, h),
                1 => heisenberg_chain(n, j, h),
                _ => kitaev(n, j.abs(), h, j),
            };
            (hamiltonian, time)
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// On the Heisenberg AAIS every chain target is exactly expressible, so
    /// the compiled error must be numerically zero and the schedule feasible.
    #[test]
    fn heisenberg_compilations_are_exact_and_feasible((target, time) in random_chain_target()) {
        let aais = heisenberg_aais(target.num_qubits(), &HeisenbergOptions::default());
        let result = QTurboCompiler::new().compile(&target, time, &aais).unwrap();
        prop_assert!(result.relative_error() < 1e-5, "relative error {}", result.relative_error());
        prop_assert!(result.execution_time <= aais.max_evolution_time() + 1e-9);
        prop_assert!(result.schedule.validate(&aais).is_ok());
        // Theorem 1: the a-priori bound dominates the observed error.
        prop_assert!(result.error_bound + 1e-9 >= result.absolute_error);
    }

    /// The machine time returned with evolution-time optimization enabled is
    /// never longer than without it, and scales linearly with the target time.
    #[test]
    fn evolution_time_optimization_is_monotone((target, time) in random_chain_target()) {
        let aais = heisenberg_aais(target.num_qubits(), &HeisenbergOptions::default());
        let optimized = QTurboCompiler::new().compile(&target, time, &aais).unwrap();
        let conservative = QTurboCompiler::with_options(CompilerOptions {
            optimize_evolution_time: false,
            ..CompilerOptions::default()
        })
        .compile(&target, time, &aais)
        .unwrap();
        prop_assert!(optimized.execution_time <= conservative.execution_time + 1e-9);

        // Linearity in the target time holds whenever the pulse is above the
        // compiler's minimum-duration floor (`time_resolution`).
        if optimized.execution_time > 0.06 {
            let doubled = QTurboCompiler::new().compile(&target, 2.0 * time, &aais);
            if let Ok(doubled) = doubled {
                prop_assert!(
                    (doubled.execution_time - 2.0 * optimized.execution_time).abs() < 1e-6,
                    "doubled {} vs 2x {}",
                    doubled.execution_time,
                    optimized.execution_time
                );
            }
        }
    }

    /// Refinement never increases the compilation error.
    #[test]
    fn refinement_never_increases_error(
        n in 3usize..6,
        j in 0.2f64..2.0,
        h in 0.2f64..2.0,
    ) {
        let target = ising_chain(n, j, h);
        let aais = rydberg_aais(
            n,
            &RydbergOptions { interaction_cutoff: None, ..RydbergOptions::default() },
        );
        let with = QTurboCompiler::new().compile(&target, 1.0, &aais).unwrap();
        let without = QTurboCompiler::with_options(CompilerOptions {
            refine: false,
            ..CompilerOptions::default()
        })
        .compile(&target, 1.0, &aais)
        .unwrap();
        prop_assert!(with.absolute_error <= without.absolute_error + 1e-9);
    }

    /// Compiled Rydberg schedules always respect the hardware limits: variable
    /// bounds, minimum atom spacing, and the coherence window.
    #[test]
    fn rydberg_schedules_respect_hardware_limits(
        n in 3usize..7,
        j in 0.2f64..1.5,
        h in 0.2f64..1.5,
        time in 0.25f64..1.5,
    ) {
        let target = ising_chain(n, j, h);
        let aais = rydberg_aais(n, &RydbergOptions::default());
        let result = QTurboCompiler::new().compile(&target, time, &aais).unwrap();
        prop_assert!(result.schedule.validate(&aais).is_ok());
        for segment in result.schedule.segments() {
            for variable in aais.registry().iter() {
                let value = segment.values()[variable.id().index()];
                prop_assert!(variable.admits(value), "{} = {value}", variable.name());
            }
        }
    }
}
