//! Property-based tests of compiler invariants: for randomly drawn targets the
//! compiled schedule must be hardware-feasible, accurate on devices that can
//! express the target exactly, never longer than the conservative ablation,
//! and never improved by skipping refinement.
//!
//! Deterministically seeded sampling via `qturbo_math::rng::Rng` (no external
//! property-testing framework is vendored in this environment); 24 cases per
//! property, matching the original proptest configuration.

use qturbo::{CompilerOptions, QTurboCompiler};
use qturbo_aais::heisenberg::{heisenberg_aais, HeisenbergOptions};
use qturbo_aais::rydberg::{rydberg_aais, RydbergOptions};
use qturbo_hamiltonian::models::{heisenberg_chain, ising_chain, kitaev};
use qturbo_hamiltonian::Hamiltonian;
use qturbo_math::rng::Rng;

const CASES: usize = 24;

/// Draws a random chain-structured target Hamiltonian with bounded,
/// bounded-away-from-zero coefficients, plus a random positive target time.
fn random_chain_target(rng: &mut Rng) -> (Hamiltonian, f64) {
    let n = 2 + rng.next_usize(4);
    let j_mag = rng.next_range(0.1, 2.0);
    let h_mag = rng.next_range(0.1, 2.0);
    let j = if rng.next_bool() { -j_mag } else { j_mag };
    let h = if rng.next_bool() { -h_mag } else { h_mag };
    let time = rng.next_range(0.25, 2.0);
    let hamiltonian = match rng.next_usize(3) {
        0 => ising_chain(n, j, h),
        1 => heisenberg_chain(n, j, h),
        _ => kitaev(n, j.abs(), h, j),
    };
    (hamiltonian, time)
}

/// On the Heisenberg AAIS every chain target is exactly expressible, so
/// the compiled error must be numerically zero and the schedule feasible.
#[test]
fn heisenberg_compilations_are_exact_and_feasible() {
    let mut rng = Rng::seed_from_u64(0xA11CE);
    for case in 0..CASES {
        let (target, time) = random_chain_target(&mut rng);
        let aais = heisenberg_aais(target.num_qubits(), &HeisenbergOptions::default());
        let result = QTurboCompiler::new().compile(&target, time, &aais).unwrap();
        assert!(
            result.relative_error() < 1e-5,
            "case {case}: relative error {}",
            result.relative_error()
        );
        assert!(result.execution_time <= aais.max_evolution_time() + 1e-9);
        assert!(result.schedule.validate(&aais).is_ok());
        // Theorem 1: the a-priori bound dominates the observed error.
        assert!(result.error_bound + 1e-9 >= result.absolute_error);
    }
}

/// The machine time returned with evolution-time optimization enabled is
/// never longer than without it, and scales linearly with the target time.
#[test]
fn evolution_time_optimization_is_monotone() {
    let mut rng = Rng::seed_from_u64(0xB0B);
    for case in 0..CASES {
        let (target, time) = random_chain_target(&mut rng);
        let aais = heisenberg_aais(target.num_qubits(), &HeisenbergOptions::default());
        let optimized = QTurboCompiler::new().compile(&target, time, &aais).unwrap();
        let conservative = QTurboCompiler::with_options(CompilerOptions {
            optimize_evolution_time: false,
            ..CompilerOptions::default()
        })
        .compile(&target, time, &aais)
        .unwrap();
        assert!(
            optimized.execution_time <= conservative.execution_time + 1e-9,
            "case {case}: optimized {} vs conservative {}",
            optimized.execution_time,
            conservative.execution_time
        );

        // Linearity in the target time holds whenever the pulse is above the
        // compiler's minimum-duration floor (`time_resolution`).
        if optimized.execution_time > 0.06 {
            if let Ok(doubled) = QTurboCompiler::new().compile(&target, 2.0 * time, &aais) {
                assert!(
                    (doubled.execution_time - 2.0 * optimized.execution_time).abs() < 1e-6,
                    "case {case}: doubled {} vs 2x {}",
                    doubled.execution_time,
                    optimized.execution_time
                );
            }
        }
    }
}

/// Refinement never increases the compilation error.
#[test]
fn refinement_never_increases_error() {
    let mut rng = Rng::seed_from_u64(0xCAFE);
    for case in 0..CASES {
        let n = 3 + rng.next_usize(3);
        let j = rng.next_range(0.2, 2.0);
        let h = rng.next_range(0.2, 2.0);
        let target = ising_chain(n, j, h);
        let aais = rydberg_aais(
            n,
            &RydbergOptions {
                interaction_cutoff: None,
                ..RydbergOptions::default()
            },
        );
        let with = QTurboCompiler::new().compile(&target, 1.0, &aais).unwrap();
        let without = QTurboCompiler::with_options(CompilerOptions {
            refine: false,
            ..CompilerOptions::default()
        })
        .compile(&target, 1.0, &aais)
        .unwrap();
        assert!(
            with.absolute_error <= without.absolute_error + 1e-9,
            "case {case}: refined {} vs unrefined {}",
            with.absolute_error,
            without.absolute_error
        );
    }
}

/// Compiled Rydberg schedules always respect the hardware limits: variable
/// bounds, minimum atom spacing, and the coherence window.
#[test]
fn rydberg_schedules_respect_hardware_limits() {
    let mut rng = Rng::seed_from_u64(0xD00D);
    for case in 0..CASES {
        let n = 3 + rng.next_usize(4);
        let j = rng.next_range(0.2, 1.5);
        let h = rng.next_range(0.2, 1.5);
        let time = rng.next_range(0.25, 1.5);
        let target = ising_chain(n, j, h);
        let aais = rydberg_aais(n, &RydbergOptions::default());
        let result = QTurboCompiler::new().compile(&target, time, &aais).unwrap();
        assert!(result.schedule.validate(&aais).is_ok(), "case {case}");
        for segment in result.schedule.segments() {
            for variable in aais.registry().iter() {
                let value = segment.values()[variable.id().index()];
                assert!(
                    variable.admits(value),
                    "case {case}: {} = {value}",
                    variable.name()
                );
            }
        }
    }
}
