//! Quench dynamics at scale with the mask-compiled propagation engine.
//!
//! Evolves an 18-qubit transverse-field Ising chain from `|0…0⟩` and tracks
//! `Z_avg(t)` — the observable of the paper's §7.4 device studies — sampling
//! the state at regular intervals. The Hamiltonian is compiled once; the
//! `Propagator`'s scratch buffers are reused across all sampling windows, so
//! after the first window the simulation allocates nothing.
//!
//! Run with: `cargo run --release --example fast_propagation`

use qturbo_hamiltonian::models::ising_chain;
use qturbo_quantum::compiled::CompiledHamiltonian;
use qturbo_quantum::observable::z_average;
use qturbo_quantum::propagate::Propagator;
use qturbo_quantum::StateVector;
use std::time::Instant;

fn main() {
    let num_qubits = 18;
    let target = ising_chain(num_qubits, 1.0, 1.0);
    let compiled = CompiledHamiltonian::compile(&target);
    println!(
        "{num_qubits}-qubit transverse-field Ising chain: {} Pauli terms, dim 2^{num_qubits} = {}",
        compiled.num_terms(),
        1usize << num_qubits
    );

    let mut propagator = Propagator::new();
    let mut state = StateVector::zero_state(num_qubits);
    let window = 0.05; // µs between samples
    let samples = 10;

    println!("\n   t/µs      Z_avg     ⟨H⟩        wall/ms");
    let start = Instant::now();
    for k in 0..=samples {
        let t = k as f64 * window;
        println!(
            "  {t:5.2}  {:9.5}  {:9.5}  {:9.2}",
            z_average(&state),
            compiled.expectation(&state),
            start.elapsed().as_secs_f64() * 1e3
        );
        if k < samples {
            propagator.evolve_in_place(&compiled, &mut state, window);
        }
    }
    println!(
        "\nsimulated {:.2} µs of {num_qubits}-qubit dynamics in {:.2} s (norm drift {:.1e})",
        samples as f64 * window,
        start.elapsed().as_secs_f64(),
        (state.norm() - 1.0).abs()
    );
}
