//! Quickstart: compile the paper's running example — a 3-qubit transverse
//! field Ising chain — onto a Rydberg analog quantum simulator, and compare
//! QTurbo with the SimuQ-style baseline.
//!
//! Run with: `cargo run --release --example quickstart`

use qturbo::QTurboCompiler;
use qturbo_aais::rydberg::{rydberg_aais, RydbergOptions};
use qturbo_baseline::BaselineCompiler;
use qturbo_hamiltonian::models::ising_chain;
use qturbo_quantum::compiled::CompiledHamiltonian;
use qturbo_quantum::propagate::Propagator;
use qturbo_quantum::StateVector;

fn main() {
    // Target system: H = Z1Z2 + Z2Z3 + X1 + X2 + X3, evolving for 1 µs.
    let target = ising_chain(3, 1.0, 1.0);
    let target_time = 1.0;
    println!("Target Hamiltonian: {target}");
    println!("Target evolution time: {target_time} µs\n");

    // Device: a 3-atom Rydberg analog simulator (Aquila-like AAIS).
    let aais = rydberg_aais(
        3,
        &RydbergOptions {
            interaction_cutoff: None,
            ..RydbergOptions::default()
        },
    );

    // --- QTurbo -----------------------------------------------------------
    let result = QTurboCompiler::new()
        .compile(&target, target_time, &aais)
        .expect("QTurbo compiles the running example");
    println!("QTurbo:");
    println!("  compilation time : {:?}", result.stats.compile_time);
    println!("  machine time     : {:.3} µs", result.execution_time);
    println!(
        "  relative error   : {:.3} %",
        result.relative_error() * 100.0
    );
    println!("  local systems    : {}", result.stats.num_local_systems);
    println!(
        "  synthesized vars : {}",
        result.stats.num_synthesized_variables
    );

    // Print the pulse settings of the (single) segment.
    let segment = &result.schedule.segments()[0];
    println!("  pulse settings (duration {:.3} µs):", segment.duration());
    for variable in aais.registry().iter() {
        let value = segment.values()[variable.id().index()];
        if value.abs() > 1e-9 {
            println!("    {:<10} = {:8.4}", variable.name(), value);
        }
    }

    // --- SimuQ-style baseline ----------------------------------------------
    match BaselineCompiler::new().compile(&target, target_time, &aais) {
        Ok(baseline) => {
            println!("\nBaseline (SimuQ-style global mixed system):");
            println!("  compilation time : {:?}", baseline.stats.compile_time);
            println!("  machine time     : {:.3} µs", baseline.execution_time);
            println!(
                "  relative error   : {:.3} %",
                baseline.relative_error() * 100.0
            );
            println!(
                "\nQTurbo pulse is {:.0}% shorter than the baseline.",
                (1.0 - result.execution_time / baseline.execution_time) * 100.0
            );
        }
        Err(error) => println!("\nBaseline failed to produce a solution: {error}"),
    }

    // --- Dynamics check via the mask-compiled propagation engine -----------
    // One Propagator: the ideal evolution and every compiled pulse segment
    // share the same scratch buffers (no allocation inside the Taylor loop).
    let mut propagator = Propagator::new();
    let mut ideal = StateVector::zero_state(3);
    propagator.evolve_in_place(
        &CompiledHamiltonian::compile(&target),
        &mut ideal,
        target_time,
    );
    let segments = result
        .schedule
        .hamiltonians(&aais)
        .expect("schedule evaluates");
    let mut compiled_state = StateVector::zero_state(3);
    propagator.evolve_piecewise_in_place(&segments, &mut compiled_state);
    println!(
        "\nSchrödinger check: |⟨ideal|compiled⟩|² = {:.6}",
        ideal.fidelity(&compiled_state)
    );
}
