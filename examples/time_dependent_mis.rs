//! Time-dependent compilation (paper §5.3 / Fig. 5b): an adiabatic
//! maximum-independent-set (MIS) sweep on a chain of Rydberg atoms, compiled
//! as a piecewise-constant pulse schedule.
//!
//! Run with: `cargo run --release --example time_dependent_mis`

use qturbo::QTurboCompiler;
use qturbo_aais::rydberg::{rydberg_aais, RydbergOptions};
use qturbo_baseline::{BaselineCompiler, BaselineOptions};
use qturbo_hamiltonian::models::mis_chain;
use qturbo_quantum::observable::measure_z_zz;
use qturbo_quantum::schedule::CompiledSchedule;
use qturbo_quantum::{EvolveOptions, Propagator, StateVector, StepperKind};

fn main() {
    let num_atoms = 5;
    let total_time = 2.0;
    let num_segments = 4;
    // Annealing parameters: detuning sweep U, drive ω, blockade α.
    let target = mis_chain(num_atoms, 1.0, 1.0, 1.0, total_time, num_segments);
    let aais = rydberg_aais(num_atoms, &RydbergOptions::default());

    let result = QTurboCompiler::new()
        .compile_piecewise(&target, &aais)
        .expect("the MIS sweep compiles");

    println!("Adiabatic MIS sweep on a {num_atoms}-atom chain, {num_segments} segments:");
    println!("  compilation time : {:?}", result.stats.compile_time);
    println!(
        "  machine time     : {:.3} µs (target sweep {total_time} µs)",
        result.execution_time
    );
    println!(
        "  relative error   : {:.2} %",
        result.relative_error() * 100.0
    );
    for (index, duration) in result.stats.segment_times.iter().enumerate() {
        println!("    segment {index}: {duration:.3} µs");
    }

    // Execute the compiled schedule and look at the final ⟨Z⟩ pattern: an
    // (approximate) independent set shows alternating excitation. The pulse
    // segments share their term structure, so the mask layout is compiled
    // once and reused with per-segment weight swaps — and runs of tiny
    // same-layout segments are swept by the batched multi-segment kernel,
    // which the automatic backend selection picks on ramp-shaped trains.
    let segments = result.schedule.hamiltonians(&aais).unwrap();
    let compiled = CompiledSchedule::compile(&segments);
    println!(
        "  mask layouts     : {} (for {} segments, {} batchable runs)",
        compiled.num_layouts(),
        compiled.num_segments(),
        compiled.batch_runs().len(),
    );
    // Telemetry is opt-in (`with_telemetry` / `QTURBO_TRACE=1`); with it on,
    // the propagator records per-segment spans and a run profile.
    let mut propagator = Propagator::with_options(EvolveOptions::auto().with_telemetry(true));
    let mut final_state = StateVector::zero_state(num_atoms);
    propagator.evolve_schedule_in_place(&compiled, &mut final_state);
    let batched_segments = propagator
        .segment_decisions()
        .iter()
        .filter(|&&kind| kind == StepperKind::BatchedTaylor)
        .count();
    println!(
        "  evolution        : {}/{} segments batched, {} H|psi> applications, {} amplitude passes",
        batched_segments,
        propagator.segment_decisions().len(),
        propagator.kernel_applications(),
        propagator.state_passes(),
    );
    let observables = measure_z_zz(&final_state, false);
    println!(
        "  final per-atom <Z>: {:?}  (ZZ_avg {:.3})",
        observables
            .z
            .iter()
            .map(|v| (v * 100.0).round() / 100.0)
            .collect::<Vec<_>>(),
        observables.zz_average()
    );

    // The run profile narrates what the evolution above actually did: which
    // backend each segment got, the cost model's predicted applications vs
    // the measured count, recoveries, and worker-pool utilization.
    let profile = propagator.run_profile().expect("telemetry enabled");
    println!("\n{}", profile.summary());

    // Compare against the baseline, which solves the full mixed system once
    // per segment and typically produces a much longer schedule.
    match BaselineCompiler::with_options(BaselineOptions {
        failure_threshold: 0.6,
        ..BaselineOptions::default()
    })
    .compile_piecewise(&target, &aais)
    {
        Ok(baseline) => {
            println!(
                "\nBaseline: machine time {:.3} µs, relative error {:.2} %",
                baseline.execution_time,
                baseline.relative_error() * 100.0
            );
            println!(
                "QTurbo schedule is {:.0}% shorter.",
                (1.0 - result.execution_time / baseline.execution_time) * 100.0
            );
        }
        Err(error) => println!("\nBaseline failed on the time-dependent target: {error}"),
    }
}
