//! The paper's first real-device study (§7.4, Fig. 6a): a 12-atom Ising cycle
//! compiled for an Aquila-like Rydberg machine, executed on the emulated noisy
//! device, and compared against the noiseless theory curve.
//!
//! This example runs the full compiled-pulse path: each compiler's pulse
//! schedule is lowered ([`qturbo_aais::lowering`]) into a structure-stable
//! piecewise Hamiltonian, mask-compiled once per time step
//! ([`CompiledSchedule`]), and swept over noise realizations on the emulated
//! device — the same pipeline the end-to-end benchmark gates in CI.
//!
//! Run with: `cargo run --release --example ising_cycle_aquila`

use qturbo::QTurboCompiler;
use qturbo_aais::rydberg::{rydberg_aais, Layout, RydbergOptions};
use qturbo_baseline::{BaselineCompiler, BaselineOptions};
use qturbo_hamiltonian::models::ising_cycle;
use qturbo_quantum::observable::{z_average, zz_average};
use qturbo_quantum::propagate::evolve;
use qturbo_quantum::{CompiledSchedule, DeviceRun, EmulatedDevice, NoiseModel, StateVector};

const REALIZATIONS: usize = 8;

/// Lower a pulse schedule and sweep it over noise realizations on the device.
fn run_lowered(
    noisy: &EmulatedDevice,
    lowered: &qturbo_aais::LoweredSchedule,
) -> (Vec<DeviceRun>, usize) {
    let schedule = CompiledSchedule::compile_piecewise(lowered.piecewise());
    let runs = noisy.run_compiled(&schedule, lowered.num_qubits(), true, REALIZATIONS);
    (runs, schedule.num_layouts())
}

/// Average `⟨Z⟩` / `⟨ZZ⟩` over the realization sweep.
fn averages(runs: &[DeviceRun]) -> (f64, f64) {
    let n = runs.len().max(1) as f64;
    (
        runs.iter().map(DeviceRun::z_average).sum::<f64>() / n,
        runs.iter().map(DeviceRun::zz_average).sum::<f64>() / n,
    )
}

fn main() {
    // Paper parameters: J = 0.157 rad/µs, h = 0.785 rad/µs, Ω_max = 6.28 rad/µs.
    let num_atoms = 12;
    let j = 0.157;
    let h = 0.785;
    let options = RydbergOptions {
        layout: Layout::Ring { spacing: 6.5 },
        ..RydbergOptions::aquila_rad_per_us(std::f64::consts::TAU)
    };
    let aais = rydberg_aais(num_atoms, &options);
    let noisy = EmulatedDevice::new(NoiseModel::aquila_like(), 42);

    println!("12-atom Ising cycle on an Aquila-like Rydberg device");
    println!("({REALIZATIONS} noise realizations per point, one mask layout per compiled pulse)");
    println!(
        "{:>8} {:>10} {:>10} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}",
        "T_tar", "T_QTurbo", "T_SimuQ", "Z_th", "Z_qt", "Z_sq", "ZZ_th", "ZZ_qt", "ZZ_sq"
    );

    for step in 0..6 {
        let target_time = 0.5 + 0.1 * step as f64;
        let target = ising_cycle(num_atoms, j, h);

        // Theory curve ("TH"): exact evolution of the target Hamiltonian.
        let ideal_state = evolve(&StateVector::zero_state(num_atoms), &target, target_time);
        let z_theory = z_average(&ideal_state);
        let zz_theory = zz_average(&ideal_state, true);

        // QTurbo: compile, lower, mask-compile, noise-sweep.
        let qturbo = QTurboCompiler::new()
            .compile(&target, target_time, &aais)
            .expect("QTurbo compiles the Ising cycle");
        let qturbo_lowered = qturbo
            .try_lower(&aais)
            .expect("the compiled schedule lowers against its own machine");
        let (qturbo_runs, qturbo_layouts) = run_lowered(&noisy, &qturbo_lowered);
        assert_eq!(qturbo_layouts, 1, "lowering must stabilize the structure");
        let (qturbo_z, qturbo_zz) = averages(&qturbo_runs);

        // Baseline through the identical lowered path (may legitimately fail
        // with a typed error; the benchmark preset accepts degraded pulses).
        let baseline = BaselineCompiler::with_options(BaselineOptions::benchmark())
            .compile(&target, target_time, &aais)
            .and_then(|result| {
                let lowered = result.try_lower(&aais)?;
                Ok((result.execution_time, lowered))
            });
        let (baseline_time, baseline_z, baseline_zz) = match &baseline {
            Ok((execution_time, lowered)) => {
                let (runs, _) = run_lowered(&noisy, lowered);
                let (z, zz) = averages(&runs);
                (*execution_time, z, zz)
            }
            Err(_) => (f64::NAN, f64::NAN, f64::NAN),
        };

        println!(
            "{:>8.2} {:>10.3} {:>10.3} | {:>8.3} {:>8.3} {:>8.3} | {:>8.3} {:>8.3} {:>8.3}",
            target_time,
            qturbo.execution_time,
            baseline_time,
            z_theory,
            qturbo_z,
            baseline_z,
            zz_theory,
            qturbo_zz,
            baseline_zz,
        );
    }
    println!("\nShorter QTurbo pulses stay closer to the theory columns (Z_th / ZZ_th).");
}
