//! The paper's first real-device study (§7.4, Fig. 6a): a 12-atom Ising cycle
//! compiled for an Aquila-like Rydberg machine, executed on the emulated noisy
//! device, and compared against the noiseless theory curve.
//!
//! Run with: `cargo run --release --example ising_cycle_aquila`

use qturbo::QTurboCompiler;
use qturbo_aais::rydberg::{rydberg_aais, Layout, RydbergOptions};
use qturbo_baseline::{BaselineCompiler, BaselineOptions};
use qturbo_hamiltonian::models::ising_cycle;
use qturbo_quantum::observable::{z_average, zz_average};
use qturbo_quantum::propagate::evolve;
use qturbo_quantum::{EmulatedDevice, NoiseModel, StateVector};

fn main() {
    // Paper parameters: J = 0.157 rad/µs, h = 0.785 rad/µs, Ω_max = 6.28 rad/µs.
    let num_atoms = 12;
    let j = 0.157;
    let h = 0.785;
    let options = RydbergOptions {
        layout: Layout::Ring { spacing: 6.5 },
        ..RydbergOptions::aquila_rad_per_us(std::f64::consts::TAU)
    };
    let aais = rydberg_aais(num_atoms, &options);
    let noisy = EmulatedDevice::new(NoiseModel::aquila_like(), 42);

    println!("12-atom Ising cycle on an Aquila-like Rydberg device");
    println!(
        "{:>8} {:>10} {:>10} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}",
        "T_tar", "T_QTurbo", "T_SimuQ", "Z_th", "Z_qt", "Z_sq", "ZZ_th", "ZZ_qt", "ZZ_sq"
    );

    for step in 0..6 {
        let target_time = 0.5 + 0.1 * step as f64;
        let target = ising_cycle(num_atoms, j, h);

        // Theory curve ("TH"): exact evolution of the target Hamiltonian.
        let ideal_state = evolve(&StateVector::zero_state(num_atoms), &target, target_time);
        let z_theory = z_average(&ideal_state);
        let zz_theory = zz_average(&ideal_state, true);

        // QTurbo compilation and noisy execution.
        let qturbo = QTurboCompiler::new()
            .compile(&target, target_time, &aais)
            .expect("QTurbo compiles the Ising cycle");
        let qturbo_segments = qturbo.schedule.hamiltonians(&aais).unwrap();
        let qturbo_run = noisy.run(&qturbo_segments, num_atoms, true);

        // Baseline compilation and noisy execution (may occasionally fail).
        let baseline = BaselineCompiler::with_options(BaselineOptions {
            failure_threshold: 0.6,
            ..BaselineOptions::default()
        })
        .compile(&target, target_time, &aais);
        let (baseline_time, baseline_z, baseline_zz) = match &baseline {
            Ok(result) => {
                let segments = result.schedule.hamiltonians(&aais).unwrap();
                let run = noisy.run(&segments, num_atoms, true);
                (result.execution_time, run.z_average(), run.zz_average())
            }
            Err(_) => (f64::NAN, f64::NAN, f64::NAN),
        };

        println!(
            "{:>8.2} {:>10.3} {:>10.3} | {:>8.3} {:>8.3} {:>8.3} | {:>8.3} {:>8.3} {:>8.3}",
            target_time,
            qturbo.execution_time,
            baseline_time,
            z_theory,
            qturbo_run.z_average(),
            baseline_z,
            zz_theory,
            qturbo_run.zz_average(),
            baseline_zz,
        );
    }
    println!("\nShorter QTurbo pulses stay closer to the theory columns (Z_th / ZZ_th).");
}
