//! Compile a Heisenberg spin chain onto a trapped-ion / superconducting style
//! device (the Heisenberg AAIS) and verify the compiled pulse reproduces the
//! target dynamics with a state-vector simulation.
//!
//! The compiled schedule is lowered through [`qturbo_aais::lowering`] into a
//! structure-stable piecewise Hamiltonian, so the emulator's fast path
//! compiles exactly one mask layout for the whole pulse.
//!
//! Run with: `cargo run --release --example heisenberg_ions`

use qturbo::QTurboCompiler;
use qturbo_aais::heisenberg::{heisenberg_aais, HeisenbergOptions};
use qturbo_hamiltonian::models::heisenberg_chain;
use qturbo_quantum::propagate::{evolve, evolve_schedule};
use qturbo_quantum::schedule::CompiledSchedule;
use qturbo_quantum::StateVector;

fn main() {
    let num_qubits = 6;
    let target_time = 1.0;
    let target = heisenberg_chain(num_qubits, 1.0, 1.0);
    let aais = heisenberg_aais(num_qubits, &HeisenbergOptions::default());

    let result = QTurboCompiler::new()
        .compile(&target, target_time, &aais)
        .expect("Heisenberg chain compiles exactly on the Heisenberg AAIS");

    println!("Heisenberg chain on {num_qubits} qubits:");
    println!("  compilation time : {:?}", result.stats.compile_time);
    println!(
        "  machine time     : {:.3} µs (target evolution {target_time} µs)",
        result.execution_time
    );
    println!(
        "  relative error   : {:.4} %",
        result.relative_error() * 100.0
    );

    // Lower the pulse schedule into the emulator's fast path: one padded
    // piecewise Hamiltonian, mask-compiled into a single shared layout.
    let lowered = result
        .try_lower(&aais)
        .expect("the compiled schedule lowers against its own machine");
    let schedule = CompiledSchedule::compile_piecewise(lowered.piecewise());
    println!(
        "  lowered pulse    : {} segments, {} mask layout(s), {} padded term(s)",
        lowered.num_segments(),
        schedule.num_layouts(),
        lowered.padded_terms()
    );
    assert_eq!(
        schedule.num_layouts(),
        1,
        "lowering stabilizes the structure"
    );

    // Verify the dynamics: evolve |0…0⟩ under the target Hamiltonian for the
    // target time, and under the compiled pulse for the machine time.
    let initial = StateVector::zero_state(num_qubits);
    let ideal = evolve(&initial, &target, target_time);
    let compiled = evolve_schedule(&initial, &schedule);
    let fidelity = ideal.fidelity(&compiled);
    println!("  state fidelity between target evolution and compiled pulse: {fidelity:.6}");
    assert!(
        fidelity > 0.999,
        "compiled dynamics should match the target"
    );
    println!(
        "\nThe compiled pulse reproduces the target dynamics while running {:.1}x faster.",
        target_time / result.execution_time
    );
}
