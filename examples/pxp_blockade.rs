//! The paper's second real-device study (§7.4, Fig. 6b): a 6-atom PXP model
//! in the Rydberg-blockade regime. Long target evolutions (beyond the 4 µs
//! machine window) are compressed into sub-microsecond pulses — a key
//! advantage of analog compilation.
//!
//! Run with: `cargo run --release --example pxp_blockade`

use qturbo::QTurboCompiler;
use qturbo_aais::rydberg::{rydberg_aais, RydbergOptions};
use qturbo_hamiltonian::models::pxp;
use qturbo_quantum::observable::{z_average, zz_average};
use qturbo_quantum::propagate::{evolve, evolve_piecewise};
use qturbo_quantum::{EmulatedDevice, NoiseModel, StateVector};

fn main() {
    // Paper parameters: J = 1.26 rad/µs, h = 0.126 rad/µs, Ω_max = 13.8 rad/µs.
    let num_atoms = 6;
    let j = 1.26;
    let h = 0.126;
    let aais = rydberg_aais(num_atoms, &RydbergOptions::aquila_rad_per_us(13.8));
    let noisy = EmulatedDevice::new(NoiseModel::aquila_like(), 17);

    println!("6-atom PXP chain (Rydberg blockade) on an Aquila-like device");
    println!(
        "{:>8} {:>10} {:>10} | {:>8} {:>8} | {:>8} {:>8}",
        "T_tar", "T_machine", "compress", "Z_th", "Z_dev", "ZZ_th", "ZZ_dev"
    );

    for &target_time in &[5.0, 10.0, 15.0, 20.0] {
        let target = pxp(num_atoms, j, h);
        let result = QTurboCompiler::new()
            .compile(&target, target_time, &aais)
            .expect("QTurbo compiles the PXP chain");

        // The target evolution time (up to 20 µs) far exceeds the 4 µs device
        // window, yet the compiled pulse fits comfortably.
        assert!(result.execution_time <= aais.max_evolution_time());

        let ideal = evolve(&StateVector::zero_state(num_atoms), &target, target_time);
        let segments = result.schedule.hamiltonians(&aais).unwrap();
        let compiled_ideal = evolve_piecewise(&StateVector::zero_state(num_atoms), &segments);
        let device = noisy.run(&segments, num_atoms, false);

        println!(
            "{:>8.1} {:>10.3} {:>9.0}x | {:>8.3} {:>8.3} | {:>8.3} {:>8.3}",
            target_time,
            result.execution_time,
            target_time / result.execution_time,
            z_average(&ideal),
            device.z_average(),
            zz_average(&ideal, false),
            device.zz_average(),
        );
        // Without noise the compiled pulse tracks the target closely.
        let drift = (z_average(&compiled_ideal) - z_average(&ideal)).abs();
        assert!(
            drift < 0.15,
            "noiseless compiled dynamics should track the target"
        );
    }
    println!("\nA 20 µs target evolution runs in well under 1 µs of machine time.");
}
