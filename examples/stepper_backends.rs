//! Choosing a time-evolution backend: Taylor vs Lanczos–Krylov vs Chebyshev
//! vs the automatic per-segment selection.
//!
//! The same long-time Heisenberg quench is integrated with all four fixed
//! stepper backends plus `StepperKind::Auto`; each reports its `H|ψ⟩`
//! kernel-application count — the work measure the backends compete on — and
//! all final states agree to 1e-10. `Auto` (the default everywhere) prices
//! the backends per segment from the compiled spectral bound and picks the
//! cheapest: Chebyshev on this quench, the batched Taylor sweep on short
//! ramp segments, as the mixed schedule at the end shows. The run then drives the emulated device
//! with its default (automatic) options to show the selection threading end
//! to end.
//!
//! Run with: `cargo run --release --example stepper_backends`

use qturbo_hamiltonian::models::heisenberg_chain;
use qturbo_hamiltonian::{Pauli, PauliString};
use qturbo_quantum::compiled::CompiledHamiltonian;
use qturbo_quantum::schedule::CompiledSchedule;
use qturbo_quantum::{EmulatedDevice, NoiseModel, Propagator, StateVector, StepperKind};

fn main() {
    let num_qubits = 10;
    let time = 25.0;
    let hamiltonian = heisenberg_chain(num_qubits, 1.0, 0.5);
    let compiled = CompiledHamiltonian::compile(&hamiltonian);
    println!(
        "Heisenberg quench: {num_qubits} qubits, t = {time} (‖H‖·t ≈ {:.0})",
        compiled.step_strength() * time
    );

    // The Néel state |0101…⟩: a genuine quench (weight across the whole
    // spectrum). A polarized state like |++…+⟩ would be an eigenstate here —
    // which the Krylov backend detects and evolves exactly in a single
    // kernel application (happy breakdown).
    let mut amplitudes = vec![qturbo_math::Complex::ZERO; 1 << num_qubits];
    let neel_index = (1..num_qubits)
        .step_by(2)
        .fold(0usize, |acc, q| acc | 1 << q);
    amplitudes[neel_index] = qturbo_math::Complex::ONE;
    let initial = StateVector::from_amplitudes(amplitudes);
    let mut reference: Option<StateVector> = None;
    for kind in StepperKind::all() {
        let mut propagator = Propagator::with_stepper(kind);
        let mut state = initial.clone();
        propagator.evolve_in_place(&compiled, &mut state, time);
        let deviation = reference.as_ref().map_or(0.0, |r| {
            state
                .amplitudes()
                .iter()
                .zip(r.amplitudes())
                .map(|(a, b)| (*a - *b).abs())
                .fold(0.0, f64::max)
        });
        let chosen = if kind == StepperKind::Auto {
            format!("  -> chose {}", propagator.segment_decisions()[0].name())
        } else {
            String::new()
        };
        println!(
            "  {:<9}  {:>6} kernel applications   max deviation vs taylor {deviation:.2e}{chosen}",
            kind.name(),
            propagator.kernel_applications(),
        );
        reference.get_or_insert(state);
    }

    // Auto decides per segment, not per run: a schedule mixing short ramp
    // slices with one long quench slice runs Taylor on the former and
    // Chebyshev on the latter within a single evolution.
    let mixed = CompiledSchedule::compile(&[
        (hamiltonian.clone(), 0.005),
        (hamiltonian.clone(), 15.0),
        (hamiltonian.clone(), 0.005),
    ]);
    let mut propagator = Propagator::new(); // default options = Auto
    let mut state = initial.clone();
    propagator.evolve_schedule_in_place(&mixed, &mut state);
    let decisions: Vec<&str> = propagator
        .segment_decisions()
        .iter()
        .map(|kind| kind.name())
        .collect();
    println!("  mixed schedule (0.005 / 15 / 0.005 µs) -> per-segment decisions: {decisions:?}");

    // The same selection threads through the emulated device: its default
    // options already use Auto, so a noiseless run reproduces the theory
    // curve (the device always starts from |0…0⟩) with a fraction of the
    // kernel work and zero configuration.
    let device = EmulatedDevice::new(NoiseModel::noiseless(), 0);
    assert_eq!(device.options().stepper, StepperKind::Auto);
    let run = device.run(&[(hamiltonian.clone(), time)], num_qubits, false);
    let z0 =
        qturbo_quantum::propagate::evolve(&StateVector::zero_state(num_qubits), &hamiltonian, time)
            .expectation(&PauliString::single(0, Pauli::Z));
    println!(
        "  device (auto):      <Z_0> = {:+.6} (theory curve {z0:+.6})",
        run.z[0]
    );
}
