//! Choosing a time-evolution backend: Taylor vs Lanczos–Krylov vs Chebyshev.
//!
//! The same long-time Heisenberg quench is integrated with all three stepper
//! backends; each reports its `H|ψ⟩` kernel-application count — the work
//! measure the backends compete on — and all final states agree to 1e-10.
//! The Chebyshev run then drives the emulated device to show the options
//! threading end to end.
//!
//! Run with: `cargo run --release --example stepper_backends`

use qturbo_hamiltonian::models::heisenberg_chain;
use qturbo_hamiltonian::{Pauli, PauliString};
use qturbo_quantum::compiled::CompiledHamiltonian;
use qturbo_quantum::{
    EmulatedDevice, EvolveOptions, NoiseModel, Propagator, StateVector, StepperKind,
};

fn main() {
    let num_qubits = 10;
    let time = 25.0;
    let hamiltonian = heisenberg_chain(num_qubits, 1.0, 0.5);
    let compiled = CompiledHamiltonian::compile(&hamiltonian);
    println!(
        "Heisenberg quench: {num_qubits} qubits, t = {time} (‖H‖·t ≈ {:.0})",
        compiled.step_strength() * time
    );

    // The Néel state |0101…⟩: a genuine quench (weight across the whole
    // spectrum). A polarized state like |++…+⟩ would be an eigenstate here —
    // which the Krylov backend detects and evolves exactly in a single
    // kernel application (happy breakdown).
    let mut amplitudes = vec![qturbo_math::Complex::ZERO; 1 << num_qubits];
    let neel_index = (1..num_qubits)
        .step_by(2)
        .fold(0usize, |acc, q| acc | 1 << q);
    amplitudes[neel_index] = qturbo_math::Complex::ONE;
    let initial = StateVector::from_amplitudes(amplitudes);
    let mut reference: Option<StateVector> = None;
    for kind in StepperKind::all() {
        let mut propagator = Propagator::with_stepper(kind);
        let mut state = initial.clone();
        propagator.evolve_in_place(&compiled, &mut state, time);
        let deviation = reference.as_ref().map_or(0.0, |r| {
            state
                .amplitudes()
                .iter()
                .zip(r.amplitudes())
                .map(|(a, b)| (*a - *b).abs())
                .fold(0.0, f64::max)
        });
        println!(
            "  {:<9}  {:>6} kernel applications   max deviation vs taylor {deviation:.2e}",
            kind.name(),
            propagator.kernel_applications(),
        );
        reference.get_or_insert(state);
    }

    // The same selection threads through the emulated device: a noiseless
    // run under the Chebyshev backend reproduces the theory curve (the
    // device always starts from |0…0⟩) with a fraction of the kernel work.
    let device =
        EmulatedDevice::new(NoiseModel::noiseless(), 0).with_options(EvolveOptions::chebyshev());
    let run = device.run(&[(hamiltonian.clone(), time)], num_qubits, false);
    let z0 =
        qturbo_quantum::propagate::evolve(&StateVector::zero_state(num_qubits), &hamiltonian, time)
            .expectation(&PauliString::single(0, Pauli::Z));
    println!(
        "  device (chebyshev): <Z_0> = {:+.6} (taylor theory curve {z0:+.6})",
        run.z[0]
    );
}
