//! Facade crate for the QTurbo reproduction workspace.
//!
//! Re-exports every workspace crate under one name so integration tests,
//! examples, and downstream users can depend on `qturbo-repro` alone:
//!
//! * [`compiler`] — the core QTurbo compiler pipeline (crate `qturbo`),
//! * [`math`] — numerical kernels ([`qturbo_math`]),
//! * [`hamiltonian`] — Pauli strings, targets, models ([`qturbo_hamiltonian`]),
//! * [`aais`] — analog instruction sets and pulse schedules ([`qturbo_aais`]),
//! * [`quantum`] — the state-vector simulator with the mask-compiled
//!   propagation engine ([`qturbo_quantum`]),
//! * [`baseline`] — the SimuQ-style baseline compiler ([`qturbo_baseline`]),
//! * [`mod@bench`] — the benchmark harness ([`qturbo_bench`]).
//!
//! # End-to-end: compile, lower, emulate
//!
//! The full compiler-in-the-loop path goes target Hamiltonian → pulse
//! schedule ([`compiler::QTurboCompiler::compile`]) → lowered piecewise
//! Hamiltonian ([`aais::lowering`], which pads every segment so the whole
//! pulse shares one term structure) → mask-compiled schedule
//! ([`quantum::CompiledSchedule::compile_piecewise`]) → fast-path evolution
//! and observables. Every stage has a fallible `try_*` twin returning a
//! typed error, so invalid programs or machines are reported instead of
//! panicking:
//!
//! ```
//! use qturbo_repro::aais::heisenberg::{heisenberg_aais, HeisenbergOptions};
//! use qturbo_repro::compiler::QTurboCompiler;
//! use qturbo_repro::hamiltonian::models::ising_chain;
//! use qturbo_repro::quantum::observable::z_average;
//! use qturbo_repro::quantum::propagate::{evolve, evolve_schedule};
//! use qturbo_repro::quantum::{CompiledSchedule, StateVector};
//!
//! let target = ising_chain(3, 1.0, 1.0);
//! let aais = heisenberg_aais(3, &HeisenbergOptions::default());
//!
//! // Compile the target onto the machine, then lower the pulse schedule
//! // into the emulator's representation. Both steps return typed errors
//! // on invalid inputs (`CompileError`, `AaisError`).
//! let result = QTurboCompiler::new().compile(&target, 1.0, &aais)?;
//! let lowered = result.try_lower(&aais)?;
//!
//! // Lowering pads drive-off segments with zero-coefficient placeholders,
//! // so the whole pulse mask-compiles into a single shared layout.
//! let schedule = CompiledSchedule::compile_piecewise(lowered.piecewise());
//! assert_eq!(schedule.num_layouts(), 1);
//!
//! // Run the compiled pulse on the fast path and compare observables
//! // against the ideal target evolution.
//! let initial = StateVector::zero_state(3);
//! let ideal = evolve(&initial, &target, 1.0);
//! let compiled = evolve_schedule(&initial, &schedule);
//! assert!((z_average(&ideal) - z_average(&compiled)).abs() < 1e-6);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The noisy variant of the last step is
//! [`quantum::EmulatedDevice::run_compiled`], which sweeps the same
//! compiled schedule over noise realizations; `cargo run --release
//! --example ising_cycle_aquila` shows the full QTurbo-vs-baseline
//! comparison on an Aquila-like device, and `tests/conformance_e2e.rs` plus
//! the `bench_e2e` binary gate this pipeline per scenario cell in CI.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub use qturbo as compiler;
pub use qturbo_aais as aais;
pub use qturbo_baseline as baseline;
pub use qturbo_bench as bench;
pub use qturbo_hamiltonian as hamiltonian;
pub use qturbo_math as math;
pub use qturbo_quantum as quantum;
