//! Facade crate for the QTurbo reproduction workspace.
//!
//! Re-exports every workspace crate under one name so integration tests,
//! examples, and downstream users can depend on `qturbo-repro` alone:
//!
//! * [`compiler`] — the core QTurbo compiler pipeline (crate `qturbo`),
//! * [`math`] — numerical kernels ([`qturbo_math`]),
//! * [`hamiltonian`] — Pauli strings, targets, models ([`qturbo_hamiltonian`]),
//! * [`aais`] — analog instruction sets and pulse schedules ([`qturbo_aais`]),
//! * [`quantum`] — the state-vector simulator with the mask-compiled
//!   propagation engine ([`qturbo_quantum`]),
//! * [`baseline`] — the SimuQ-style baseline compiler ([`qturbo_baseline`]),
//! * [`mod@bench`] — the benchmark harness ([`qturbo_bench`]).

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub use qturbo as compiler;
pub use qturbo_aais as aais;
pub use qturbo_baseline as baseline;
pub use qturbo_bench as bench;
pub use qturbo_hamiltonian as hamiltonian;
pub use qturbo_math as math;
pub use qturbo_quantum as quantum;
