//! SimuQ-style baseline compiler for analog quantum simulation.
//!
//! This crate reproduces the *structure* of the baseline the QTurbo paper
//! compares against (SimuQ, POPL 2024): the compilation problem is expressed
//! as a single **global mixed equation system** over every device variable,
//! the machine evolution time, and one binary indicator per dynamic
//! instruction (paper §2.2), and that system is solved monolithically with a
//! multi-start nonlinear solver plus indicator rounding.
//!
//! The two limitations the paper attributes to this approach emerge naturally:
//!
//! * compilation time grows steeply with system size (the solver effort is a
//!   function of the total number of unknowns, and each iteration factors a
//!   dense matrix of that size),
//! * the returned machine evolution time is feasible but usually far from
//!   minimal, and on hard instances the solver fails to reach the accuracy
//!   threshold at all ([`BaselineError::NoSolution`]).
//!
//! # Example
//!
//! ```
//! use qturbo_baseline::BaselineCompiler;
//! use qturbo_aais::heisenberg::{heisenberg_aais, HeisenbergOptions};
//! use qturbo_hamiltonian::models::ising_chain;
//!
//! let aais = heisenberg_aais(3, &HeisenbergOptions::default());
//! let result = BaselineCompiler::new().compile(&ising_chain(3, 1.0, 1.0), 1.0, &aais).unwrap();
//! println!("baseline pulse length: {} µs", result.execution_time);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod compiler;
pub mod system;

pub use compiler::{
    BaselineCompiler, BaselineError, BaselineOptions, BaselineResult, BaselineStats,
};
pub use system::GlobalMixedSystem;
