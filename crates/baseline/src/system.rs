//! The global mixed equation system of the SimuQ-style baseline (paper §2.2).
//!
//! Unlike QTurbo, the baseline does not introduce synthesized variables: it
//! matches every Hamiltonian term directly against the *nonlinear* expression
//! `Σ_g  s_i · g(x) · T_sim · w_g` over all device variables `x`, the machine
//! evolution time `T_sim`, and one indicator variable `s_i ∈ {0, 1}` per
//! dynamic instruction — a single large mixed continuous/binary system.

use qturbo_aais::{Aais, InstructionKind, VariableId};
use qturbo_hamiltonian::{Hamiltonian, PauliString};
use std::collections::BTreeMap;

/// One row of the global mixed system: a Hamiltonian term and its target
/// coefficient × target time.
#[derive(Debug, Clone, PartialEq)]
pub struct TermEquation {
    /// The Hamiltonian term this row matches.
    pub term: PauliString,
    /// Required value of `coefficient × time` for this term.
    pub target: f64,
}

/// The baseline's global mixed equation system for one target segment.
#[derive(Debug, Clone)]
pub struct GlobalMixedSystem {
    equations: Vec<TermEquation>,
    /// Indices (into the AAIS instruction list) of dynamic instructions, each
    /// carrying one indicator variable.
    indicator_instructions: Vec<usize>,
    /// L1 weight of target terms no instruction can produce.
    unrealizable_error: f64,
    num_variables: usize,
}

impl GlobalMixedSystem {
    /// Builds the mixed system for `target` evolving for `target_time`.
    pub fn build(aais: &Aais, target: &Hamiltonian, target_time: f64) -> Self {
        let producible = aais.producible_terms();
        let mut rows: BTreeMap<PauliString, f64> = BTreeMap::new();
        for term in &producible {
            rows.insert(term.clone(), 0.0);
        }
        let mut unrealizable_error = 0.0;
        for (coefficient, term) in target.terms() {
            if term.is_identity() {
                continue;
            }
            if producible.contains(term) {
                rows.insert(term.clone(), coefficient * target_time);
            } else {
                unrealizable_error += (coefficient * target_time).abs();
            }
        }
        let equations = rows
            .into_iter()
            .map(|(term, target)| TermEquation { term, target })
            .collect();
        let indicator_instructions = aais
            .instructions()
            .iter()
            .enumerate()
            .filter(|(_, instruction)| instruction.kind() == InstructionKind::Dynamic)
            .map(|(index, _)| index)
            .collect();
        GlobalMixedSystem {
            equations,
            indicator_instructions,
            unrealizable_error,
            num_variables: aais.registry().len(),
        }
    }

    /// The term-matching equations (rows of the system).
    pub fn equations(&self) -> &[TermEquation] {
        &self.equations
    }

    /// Instruction indices that carry an indicator variable.
    pub fn indicator_instructions(&self) -> &[usize] {
        &self.indicator_instructions
    }

    /// L1 weight of target terms the device cannot produce at all.
    pub fn unrealizable_error(&self) -> f64 {
        self.unrealizable_error
    }

    /// Total number of unknowns of the mixed system: every device variable,
    /// the evolution time, and one indicator per dynamic instruction.
    pub fn num_unknowns(&self) -> usize {
        self.num_variables + 1 + self.indicator_instructions.len()
    }

    /// `‖B_tar‖₁` (including unrealizable terms), the relative-error denominator.
    pub fn target_norm_l1(&self) -> f64 {
        self.equations.iter().map(|e| e.target.abs()).sum::<f64>() + self.unrealizable_error
    }

    /// Evaluates the residual of every equation for a concrete assignment of
    /// device variables, evolution time and (relaxed) indicator values.
    pub fn residuals(
        &self,
        aais: &Aais,
        values: &[f64],
        time: f64,
        indicators: &BTreeMap<usize, f64>,
    ) -> Vec<f64> {
        // Accumulate the simulated coefficient of every term.
        let mut simulated: BTreeMap<&PauliString, f64> = BTreeMap::new();
        for equation in &self.equations {
            simulated.insert(&equation.term, 0.0);
        }
        let lookup = |id: VariableId| values[id.index()];
        for (index, instruction) in aais.instructions().iter().enumerate() {
            let gate = if instruction.kind() == InstructionKind::Dynamic {
                indicators.get(&index).copied().unwrap_or(1.0)
            } else {
                1.0
            };
            if gate == 0.0 {
                continue;
            }
            for generator in instruction.generators() {
                let strength = generator.expr().eval(&lookup) * gate * time;
                for (term, weight) in generator.effects() {
                    if let Some(entry) = simulated.get_mut(term) {
                        *entry += strength * weight;
                    }
                }
            }
        }
        self.equations
            .iter()
            .map(|equation| simulated[&equation.term] - equation.target)
            .collect()
    }

    /// L1 norm of the residuals plus the unrealizable error: the absolute
    /// compilation error of a candidate solution.
    pub fn absolute_error(
        &self,
        aais: &Aais,
        values: &[f64],
        time: f64,
        indicators: &BTreeMap<usize, f64>,
    ) -> f64 {
        self.residuals(aais, values, time, indicators)
            .iter()
            .map(|r| r.abs())
            .sum::<f64>()
            + self.unrealizable_error
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qturbo_aais::heisenberg::{heisenberg_aais, HeisenbergOptions};
    use qturbo_aais::rydberg::{rydberg_aais, RydbergOptions};
    use qturbo_hamiltonian::models::{ising_chain, ising_cycle};

    #[test]
    fn builds_paper_sized_system_for_rydberg() {
        let aais = rydberg_aais(
            3,
            &RydbergOptions {
                interaction_cutoff: None,
                ..RydbergOptions::default()
            },
        );
        let target = ising_chain(3, 1.0, 1.0);
        let system = GlobalMixedSystem::build(&aais, &target, 1.0);
        // Rows: 3 ZZ + 3 Z + 3 X + 3 Y = 12 (paper §2.2 lists exactly these).
        assert_eq!(system.equations().len(), 12);
        // Unknowns: 6 positions + 3 detunings + 3 Omega + 3 phi + T + 6 indicators.
        assert_eq!(system.num_unknowns(), 15 + 1 + 6);
        assert_eq!(system.indicator_instructions().len(), 6);
        assert_eq!(system.unrealizable_error(), 0.0);
        assert!((system.target_norm_l1() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn residuals_vanish_for_an_exact_heisenberg_assignment() {
        let aais = heisenberg_aais(3, &HeisenbergOptions::default());
        let target = ising_chain(3, 1.0, 1.0);
        let system = GlobalMixedSystem::build(&aais, &target, 1.0);
        // Assignment: ZZ couplings 2 MHz, X drives 2 MHz, T = 0.5 µs.
        let mut values = aais.default_values();
        for variable in aais.registry().iter() {
            if variable.name().starts_with("a_Z")
                && variable.name().contains('Z')
                && variable.name().len() > 4
            {
                values[variable.id().index()] = 2.0;
            }
            if variable.name() == "a_X0" || variable.name() == "a_X1" || variable.name() == "a_X2" {
                values[variable.id().index()] = 2.0;
            }
        }
        let indicators: BTreeMap<usize, f64> = system
            .indicator_instructions()
            .iter()
            .map(|&i| (i, 1.0))
            .collect();
        let error = system.absolute_error(&aais, &values, 0.5, &indicators);
        assert!(error < 1e-9, "error {error}");
    }

    #[test]
    fn indicators_gate_dynamic_instructions() {
        let aais = heisenberg_aais(2, &HeisenbergOptions::default());
        let target = ising_chain(2, 1.0, 1.0);
        let system = GlobalMixedSystem::build(&aais, &target, 1.0);
        let mut values = aais.default_values();
        let a_x0 = aais
            .registry()
            .iter()
            .find(|v| v.name() == "a_X0")
            .unwrap()
            .id()
            .index();
        values[a_x0] = 2.0;
        let x0_instruction = aais
            .instructions()
            .iter()
            .position(|i| i.name() == "single_X_0")
            .unwrap();
        let mut indicators: BTreeMap<usize, f64> = system
            .indicator_instructions()
            .iter()
            .map(|&i| (i, 1.0))
            .collect();
        let with = system.absolute_error(&aais, &values, 0.5, &indicators);
        indicators.insert(x0_instruction, 0.0);
        let without = system.absolute_error(&aais, &values, 0.5, &indicators);
        // Gating the X0 instruction removes its (correct) contribution and the
        // error grows by exactly the X0 target of 1.0.
        assert!(without > with + 0.9);
    }

    #[test]
    fn unrealizable_terms_are_tracked() {
        let aais = heisenberg_aais(4, &HeisenbergOptions::default());
        let target = ising_cycle(4, 1.0, 1.0);
        let system = GlobalMixedSystem::build(&aais, &target, 2.0);
        assert!((system.unrealizable_error() - 2.0).abs() < 1e-12);
        let indicators = BTreeMap::new();
        let values = aais.default_values();
        assert!(system.absolute_error(&aais, &values, 0.0, &indicators) >= 2.0);
    }
}
