//! The SimuQ-style baseline compiler: solve the global mixed system
//! monolithically with a multi-start nonlinear solver and indicator rounding.

use crate::system::GlobalMixedSystem;
use qturbo_aais::{Aais, AaisError, LoweredSchedule, PulseSchedule, PulseSegment, VariableKind};
use qturbo_hamiltonian::{Hamiltonian, PiecewiseHamiltonian};
use qturbo_math::rng::Rng;
use qturbo_math::{LevenbergMarquardt, MathError, Vector};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Errors produced by the baseline compiler.
#[derive(Debug, Clone, PartialEq)]
pub enum BaselineError {
    /// The target is empty or larger than the device.
    InvalidTarget {
        /// Explanation of the problem.
        reason: String,
    },
    /// No restart produced a solution below the failure threshold — the
    /// baseline "fails to yield a solution" (paper §3).
    NoSolution {
        /// Best relative error achieved across all restarts.
        best_relative_error: f64,
    },
    /// The produced schedule violates a device constraint.
    DeviceConstraint(AaisError),
    /// An underlying numerical routine failed.
    Numerical(MathError),
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::InvalidTarget { reason } => write!(f, "invalid target: {reason}"),
            BaselineError::NoSolution {
                best_relative_error,
            } => write!(
                f,
                "the global mixed solver did not find a solution (best relative error {:.1}%)",
                best_relative_error * 100.0
            ),
            BaselineError::DeviceConstraint(inner) => {
                write!(f, "device constraint violated: {inner}")
            }
            BaselineError::Numerical(inner) => write!(f, "numerical failure: {inner}"),
        }
    }
}

impl std::error::Error for BaselineError {}

impl From<MathError> for BaselineError {
    fn from(err: MathError) -> Self {
        BaselineError::Numerical(err)
    }
}

impl From<AaisError> for BaselineError {
    fn from(err: AaisError) -> Self {
        BaselineError::DeviceConstraint(err)
    }
}

/// Configuration of the baseline compiler.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineOptions {
    /// Base number of multi-start attempts.
    pub base_restarts: usize,
    /// One extra restart is added for every `restart_divisor` unknowns,
    /// mimicking how solver effort grows with problem size.
    pub restart_divisor: usize,
    /// Hard cap on the number of restarts.
    pub max_restarts: usize,
    /// Iteration budget of each nonlinear solve.
    pub solver_iterations: usize,
    /// Relative error above which the compilation is declared failed.
    pub failure_threshold: f64,
    /// RNG seed for the multi-start initial guesses.
    pub seed: u64,
}

impl Default for BaselineOptions {
    fn default() -> Self {
        BaselineOptions {
            base_restarts: 3,
            restart_divisor: 40,
            max_restarts: 8,
            solver_iterations: 200,
            failure_threshold: 0.25,
            seed: 7,
        }
    }
}

impl BaselineOptions {
    /// Options for benchmark comparisons against QTurbo.
    ///
    /// The default [`failure_threshold`](BaselineOptions::failure_threshold)
    /// of 25% models the paper's notion of the baseline "failing to yield a
    /// solution": a pulse that misses a quarter of the target norm is not a
    /// usable compilation. On targets the machine cannot fully realize the
    /// solver's best effort genuinely lands above that line — e.g. a
    /// Heisenberg chain on the Rydberg machine (which has no XX/YY
    /// couplings) bottoms out near 54% relative error — so with the default
    /// threshold those cells return [`BaselineError::NoSolution`]. Benchmarks
    /// instead want to *quantify* how much worse the degraded solution is
    /// rather than discard the cell, so this preset accepts anything up to
    /// 60% and leaves the failure classification to the comparison harness.
    pub fn benchmark() -> Self {
        BaselineOptions {
            failure_threshold: 0.6,
            ..BaselineOptions::default()
        }
    }
}

/// Statistics of one baseline compilation.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineStats {
    /// Wall-clock compilation time.
    pub compile_time: Duration,
    /// Number of restarts performed.
    pub restarts: usize,
    /// Number of unknowns of the global mixed system (per segment).
    pub num_unknowns: usize,
    /// Number of pulse segments produced.
    pub num_segments: usize,
}

/// The result of a successful baseline compilation.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineResult {
    /// The compiled pulse schedule.
    pub schedule: PulseSchedule,
    /// Total machine execution time.
    pub execution_time: f64,
    /// Absolute compilation error `‖B_sim − B_tar‖₁` summed over segments.
    pub absolute_error: f64,
    /// `‖B_tar‖₁` summed over segments.
    pub target_norm: f64,
    /// Compilation statistics.
    pub stats: BaselineStats,
}

impl BaselineResult {
    /// Relative error as a fraction.
    pub fn relative_error(&self) -> f64 {
        if self.target_norm == 0.0 {
            0.0
        } else {
            self.absolute_error / self.target_norm
        }
    }

    /// Lowers the compiled pulse schedule into a simulator-ready
    /// [`LoweredSchedule`] (see [`qturbo_aais::lowering`]). `aais` must be the
    /// machine the schedule was compiled for.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::DeviceConstraint`] wrapping the underlying
    /// [`AaisError`] if the schedule does not validate against `aais`.
    pub fn try_lower(&self, aais: &Aais) -> Result<LoweredSchedule, BaselineError> {
        Ok(self.schedule.try_lower(aais)?)
    }
}

/// A SimuQ-style analog compiler: one global mixed continuous/binary system,
/// solved monolithically (paper §2.2 / §3).
///
/// # Example
///
/// ```
/// use qturbo_baseline::BaselineCompiler;
/// use qturbo_aais::heisenberg::{heisenberg_aais, HeisenbergOptions};
/// use qturbo_hamiltonian::models::ising_chain;
///
/// let aais = heisenberg_aais(3, &HeisenbergOptions::default());
/// let result = BaselineCompiler::new().compile(&ising_chain(3, 1.0, 1.0), 1.0, &aais).unwrap();
/// assert!(result.relative_error() < 0.25);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BaselineCompiler {
    options: BaselineOptions,
}

impl BaselineCompiler {
    /// A baseline compiler with default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// A baseline compiler with explicit options.
    pub fn with_options(options: BaselineOptions) -> Self {
        BaselineCompiler { options }
    }

    /// The active options.
    pub fn options(&self) -> &BaselineOptions {
        &self.options
    }

    /// Compiles a time-independent target Hamiltonian.
    ///
    /// # Errors
    ///
    /// See [`BaselineError`]; in particular [`BaselineError::NoSolution`] when
    /// the monolithic solver cannot reach the accuracy threshold.
    pub fn compile(
        &self,
        target: &Hamiltonian,
        target_time: f64,
        aais: &Aais,
    ) -> Result<BaselineResult, BaselineError> {
        self.compile_segments(&[(target.clone(), target_time)], aais)
    }

    /// Compiles a piecewise-constant time-dependent target, solving the full
    /// mixed system once per segment (runtime-fixed variables are frozen at
    /// the first segment's solution).
    ///
    /// # Errors
    ///
    /// See [`BaselineError`].
    pub fn compile_piecewise(
        &self,
        target: &PiecewiseHamiltonian,
        aais: &Aais,
    ) -> Result<BaselineResult, BaselineError> {
        let segments: Vec<(Hamiltonian, f64)> = target
            .segments()
            .iter()
            .map(|segment| (segment.hamiltonian.clone(), segment.duration))
            .collect();
        self.compile_segments(&segments, aais)
    }

    fn compile_segments(
        &self,
        segments: &[(Hamiltonian, f64)],
        aais: &Aais,
    ) -> Result<BaselineResult, BaselineError> {
        let start = Instant::now();
        if segments.is_empty() {
            return Err(BaselineError::InvalidTarget {
                reason: "no segments".to_string(),
            });
        }
        for (hamiltonian, duration) in segments {
            if hamiltonian.num_qubits() > aais.num_sites() {
                return Err(BaselineError::InvalidTarget {
                    reason: format!(
                        "target needs {} qubits, device has {}",
                        hamiltonian.num_qubits(),
                        aais.num_sites()
                    ),
                });
            }
            if hamiltonian.without_identity().is_empty()
                || !(duration.is_finite() && *duration > 0.0)
            {
                return Err(BaselineError::InvalidTarget {
                    reason: "empty segment or non-positive duration".to_string(),
                });
            }
        }

        let num_variables = aais.registry().len();
        let per_segment_budget = aais.max_evolution_time() / segments.len() as f64;

        let mut schedule = PulseSchedule::new();
        let mut absolute_error = 0.0;
        let mut target_norm = 0.0;
        let mut total_restarts = 0;
        let mut num_unknowns = 0;
        // Runtime-fixed variables frozen after the first segment.
        let mut frozen_fixed: Option<Vec<f64>> = None;

        for (segment_index, (hamiltonian, duration)) in segments.iter().enumerate() {
            let system = GlobalMixedSystem::build(aais, hamiltonian, *duration);
            num_unknowns = system.num_unknowns();
            let indicators = system.indicator_instructions().to_vec();

            let restarts = (self.options.base_restarts
                + system.num_unknowns() / self.options.restart_divisor.max(1))
            .min(self.options.max_restarts)
            .max(1);

            let mut lower = Vec::with_capacity(system.num_unknowns());
            let mut upper = Vec::with_capacity(system.num_unknowns());
            for variable in aais.registry().iter() {
                if variable.kind() == VariableKind::RuntimeFixed {
                    if let Some(frozen) = &frozen_fixed {
                        let value = frozen[variable.id().index()];
                        lower.push(value);
                        upper.push(value);
                        continue;
                    }
                }
                lower.push(variable.lower());
                upper.push(variable.upper());
            }
            // Evolution time.
            lower.push(1e-3_f64.min(per_segment_budget * 0.5));
            upper.push(per_segment_budget);
            // Indicators (continuous relaxation of the binary variables).
            for _ in &indicators {
                lower.push(0.0);
                upper.push(1.0);
            }

            let residual_fn = |params: &[f64]| -> Vec<f64> {
                let values = &params[..num_variables];
                let time = params[num_variables];
                let indicator_map: BTreeMap<usize, f64> = indicators
                    .iter()
                    .enumerate()
                    .map(|(k, &instruction)| (instruction, params[num_variables + 1 + k]))
                    .collect();
                system.residuals(aais, values, time, &indicator_map)
            };

            let mut rng = Rng::seed_from_u64(
                self.options
                    .seed
                    .wrapping_add(segment_index as u64)
                    .wrapping_mul(0x5851_F42D),
            );
            let mut best: Option<(f64, Vector)> = None;
            let solver =
                LevenbergMarquardt::new().with_max_iterations(self.options.solver_iterations);
            for _ in 0..restarts {
                total_restarts += 1;
                let mut initial = Vec::with_capacity(system.num_unknowns());
                for (variable, (&lo, &hi)) in
                    aais.registry().iter().zip(lower.iter().zip(upper.iter()))
                {
                    let span = hi - lo;
                    let jitter = if span > 0.0 {
                        (rng.next_f64() - 0.5) * 0.1 * span
                    } else {
                        0.0
                    };
                    initial.push((variable.initial_guess() + jitter).clamp(lo, hi));
                }
                // The baseline does not optimize the evolution time: it starts
                // near the target duration (as a term-matching solver naturally
                // does) and keeps whatever the solver settles on.
                let time_guess = (duration * (1.0 + rng.next_f64()))
                    .clamp(lower[num_variables], per_segment_budget);
                initial.push(time_guess);
                for _ in &indicators {
                    initial.push(0.6 + 0.4 * rng.next_f64());
                }
                let outcome = solver
                    .solve(&residual_fn, Vector::from(initial), &lower, &upper)
                    .map_err(BaselineError::from)?;
                let cost = outcome.residual_l1();
                if best.as_ref().is_none_or(|(best_cost, _)| cost < *best_cost) {
                    best = Some((cost, outcome.solution));
                }
            }
            let (_, mut solution) = best.ok_or(BaselineError::NoSolution {
                best_relative_error: f64::INFINITY,
            })?;

            // Round the indicator variables and polish with them pinned. An
            // indicator is rounded to 1 whenever the relaxed instruction makes
            // a non-negligible contribution (the relaxation freely trades the
            // indicator against the amplitude, so thresholding the raw value
            // would switch off instructions that are actually in use); its
            // time-critical amplitude absorbs the relaxed indicator so the
            // polish starts from an equivalent point.
            let mut pinned_lower = lower.clone();
            let mut pinned_upper = upper.clone();
            for (k, &instruction_index) in indicators.iter().enumerate() {
                let index = num_variables + 1 + k;
                let gate = solution[index];
                let instruction = &aais.instructions()[instruction_index];
                let lookup = |id: qturbo_aais::VariableId| solution[id.index()];
                let contribution = instruction
                    .generators()
                    .iter()
                    .map(|g| (g.expr().eval(&lookup) * gate).abs())
                    .fold(0.0_f64, f64::max);
                let rounded = if contribution > 1e-6 { 1.0 } else { 0.0 };
                if rounded == 1.0 {
                    if let Some(tc) = instruction.time_critical() {
                        let variable = aais.registry().get(tc);
                        solution[tc.index()] =
                            (solution[tc.index()] * gate).clamp(variable.lower(), variable.upper());
                    }
                }
                solution[index] = rounded;
                pinned_lower[index] = rounded;
                pinned_upper[index] = rounded;
            }
            let polished = solver
                .solve(&residual_fn, solution.clone(), &pinned_lower, &pinned_upper)
                .map_err(BaselineError::from)?;
            let solution = if polished.residual_l1()
                <= residual_fn(solution.as_slice())
                    .iter()
                    .map(|r| r.abs())
                    .sum::<f64>()
            {
                polished.solution
            } else {
                solution
            };

            // Materialize the segment.
            let mut values: Vec<f64> = solution.as_slice()[..num_variables].to_vec();
            let time = solution[num_variables];
            let indicator_map: BTreeMap<usize, f64> = indicators
                .iter()
                .enumerate()
                .map(|(k, &instruction)| (instruction, solution[num_variables + 1 + k]))
                .collect();
            // Indicator = 0: force the instruction's time-critical amplitude to
            // zero so the hardware actually realizes the gated-off instruction.
            for (&instruction, &gate) in &indicator_map {
                if gate == 0.0 {
                    if let Some(tc) = aais.instructions()[instruction].time_critical() {
                        values[tc.index()] = 0.0_f64.clamp(
                            aais.registry().get(tc).lower(),
                            aais.registry().get(tc).upper(),
                        );
                    }
                }
            }

            absolute_error += system.absolute_error(aais, &values, time, &indicator_map);
            target_norm += system.target_norm_l1();
            if frozen_fixed.is_none() {
                frozen_fixed = Some(values.clone());
            }
            schedule.push(PulseSegment::new(time, values));
        }

        let relative_error = if target_norm == 0.0 {
            0.0
        } else {
            absolute_error / target_norm
        };
        if relative_error > self.options.failure_threshold {
            return Err(BaselineError::NoSolution {
                best_relative_error: relative_error,
            });
        }
        schedule.validate(aais)?;

        Ok(BaselineResult {
            execution_time: schedule.total_duration(),
            schedule,
            absolute_error,
            target_norm,
            stats: BaselineStats {
                compile_time: start.elapsed(),
                restarts: total_restarts,
                num_unknowns,
                num_segments: segments.len(),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qturbo_aais::heisenberg::{heisenberg_aais, HeisenbergOptions};
    use qturbo_aais::rydberg::{rydberg_aais, RydbergOptions};
    use qturbo_hamiltonian::models::{heisenberg_chain, ising_chain};

    #[test]
    fn compiles_small_heisenberg_targets() {
        let aais = heisenberg_aais(3, &HeisenbergOptions::default());
        let target = ising_chain(3, 1.0, 1.0);
        let result = BaselineCompiler::new()
            .compile(&target, 1.0, &aais)
            .unwrap();
        assert!(result.relative_error() < 0.25);
        assert!(result.execution_time <= aais.max_evolution_time());
        assert!(result.stats.restarts >= 1);
        assert!(result.stats.num_unknowns > aais.registry().len());
        assert!(result.schedule.validate(&aais).is_ok());
    }

    #[test]
    fn compiles_small_rydberg_targets() {
        let aais = rydberg_aais(3, &RydbergOptions::default());
        let target = ising_chain(3, 1.0, 1.0);
        let result = BaselineCompiler::new()
            .compile(&target, 1.0, &aais)
            .unwrap();
        assert!(
            result.relative_error() < 0.25,
            "relative error {}",
            result.relative_error()
        );
        assert!(result.execution_time > 0.0);
    }

    #[test]
    fn baseline_pulses_are_longer_than_the_theoretical_minimum() {
        // The Heisenberg chain needs at least 0.5 µs (two-qubit amplitude cap);
        // the baseline, which does not optimize the evolution time, settles on
        // something noticeably longer.
        let aais = heisenberg_aais(3, &HeisenbergOptions::default());
        let target = heisenberg_chain(3, 1.0, 1.0);
        let result = BaselineCompiler::new()
            .compile(&target, 1.0, &aais)
            .unwrap();
        assert!(
            result.execution_time > 0.5 * 1.2,
            "execution time {}",
            result.execution_time
        );
    }

    #[test]
    fn rejects_invalid_targets() {
        let aais = heisenberg_aais(2, &HeisenbergOptions::default());
        let too_large = ising_chain(4, 1.0, 1.0);
        assert!(matches!(
            BaselineCompiler::new().compile(&too_large, 1.0, &aais),
            Err(BaselineError::InvalidTarget { .. })
        ));
        let empty = Hamiltonian::new(2);
        assert!(BaselineCompiler::new().compile(&empty, 1.0, &aais).is_err());
        assert!(BaselineCompiler::new()
            .compile(&ising_chain(2, 1.0, 1.0), 0.0, &aais)
            .is_err());
    }

    #[test]
    fn failure_threshold_triggers_no_solution() {
        // With a tiny iteration budget and an impossible threshold the solver
        // reports failure instead of returning a bad pulse.
        let aais = rydberg_aais(4, &RydbergOptions::default());
        let target = ising_chain(4, 1.0, 1.0);
        let compiler = BaselineCompiler::with_options(BaselineOptions {
            solver_iterations: 1,
            base_restarts: 1,
            max_restarts: 1,
            failure_threshold: 1e-9,
            ..BaselineOptions::default()
        });
        let result = compiler.compile(&target, 1.0, &aais);
        assert!(matches!(result, Err(BaselineError::NoSolution { .. })));
        let message = result.unwrap_err().to_string();
        assert!(message.contains("did not find a solution"));
    }

    #[test]
    fn piecewise_targets_freeze_fixed_variables() {
        use qturbo_hamiltonian::models::mis_chain;
        let aais = rydberg_aais(3, &RydbergOptions::default());
        let target = mis_chain(3, 1.0, 1.0, 1.0, 1.0, 2);
        let result = BaselineCompiler::with_options(BaselineOptions {
            failure_threshold: 0.6,
            ..BaselineOptions::default()
        })
        .compile_piecewise(&target, &aais)
        .unwrap();
        assert_eq!(result.stats.num_segments, 2);
        // Atom positions must not move between segments.
        let first = result.schedule.segments()[0].values();
        let second = result.schedule.segments()[1].values();
        for coords in aais.site_positions() {
            for id in coords {
                assert!((first[id.index()] - second[id.index()]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn benchmark_preset_relaxes_only_the_threshold() {
        let preset = BaselineOptions::benchmark();
        assert_eq!(preset.failure_threshold, 0.6);
        assert_eq!(
            BaselineOptions {
                failure_threshold: BaselineOptions::default().failure_threshold,
                ..preset
            },
            BaselineOptions::default()
        );
    }

    #[test]
    fn results_lower_into_one_structure_run() {
        let aais = heisenberg_aais(3, &HeisenbergOptions::default());
        let target = ising_chain(3, 1.0, 1.0);
        let result = BaselineCompiler::new()
            .compile(&target, 1.0, &aais)
            .unwrap();
        let lowered = result.try_lower(&aais).unwrap();
        assert_eq!(lowered.num_segments(), 1);
        assert_eq!(lowered.structure_runs(), 1);
        assert!((lowered.total_duration() - result.execution_time).abs() < 1e-9);
        // A mismatched machine yields a typed error.
        let other = rydberg_aais(3, &RydbergOptions::default());
        assert!(matches!(
            result.try_lower(&other),
            Err(BaselineError::DeviceConstraint(_))
        ));
    }

    #[test]
    fn rejects_non_finite_durations() {
        let aais = heisenberg_aais(2, &HeisenbergOptions::default());
        let target = ising_chain(2, 1.0, 1.0);
        for time in [f64::NAN, f64::INFINITY] {
            assert!(matches!(
                BaselineCompiler::new().compile(&target, time, &aais),
                Err(BaselineError::InvalidTarget { .. })
            ));
        }
    }

    #[test]
    fn error_type_is_well_behaved() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<BaselineError>();
        let err: BaselineError = MathError::SingularMatrix.into();
        assert!(err.to_string().contains("numerical"));
        let err: BaselineError = AaisError::EvolutionTooLong {
            requested: 9.0,
            maximum: 4.0,
        }
        .into();
        assert!(err.to_string().contains("constraint"));
    }
}
