//! The QTurbo compiler driver: ties together the global linear system, the
//! localized mixed systems, evolution-time optimization, runtime-fixed
//! variable solving, time-dependent segmentation and accuracy refinement.

use crate::components::{partition, LocalComponent};
use crate::error::CompileError;
use crate::linear_system::GlobalLinearSystem;
use crate::local_system::{
    minimal_time_for_instruction, residual_for, solve_component_at_time, InstructionTiming,
    TimingDetail,
};
use crate::mapping::{greedy_line_mapping, Mapping};
use crate::metrics::theorem1_bound;
use crate::refine::refined_targets;
use qturbo_aais::{Aais, GeneratorRef, LoweredSchedule, PulseSchedule, PulseSegment, VariableId};
use qturbo_hamiltonian::{Hamiltonian, PiecewiseHamiltonian};
use qturbo_math::Vector;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// How target qubits are assigned to device sites.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum MappingStrategy {
    /// Target qubit `i` goes to device site `i`.
    #[default]
    Identity,
    /// Order the qubits along a path of the interaction graph (Fig. 5a case
    /// study: compiling a model with an initially unknown mapping).
    GreedyLine,
    /// An explicit qubit-to-site assignment.
    Explicit(Vec<usize>),
}

/// Configuration of the QTurbo compiler. The boolean switches correspond to
/// the ablations called out in DESIGN.md.
#[derive(Debug, Clone, PartialEq)]
pub struct CompilerOptions {
    /// Use the bottleneck analysis of paper §5.1 to pick the shortest feasible
    /// machine evolution time. When disabled a conservative (longer) feasible
    /// time is used instead.
    pub optimize_evolution_time: bool,
    /// Apply the iterative accuracy refinement of paper §6.2.
    pub refine: bool,
    /// Decompose the mixed system into localized components (paper §4.2).
    /// When disabled a single large mixed system is solved after the linear
    /// stage.
    pub localize: bool,
    /// Step `Δt` used when relaxing the evolution time to satisfy runtime
    /// fixed variable constraints (paper §5.2).
    pub time_resolution: f64,
    /// Maximum number of `Δt` relaxation steps before giving up.
    pub max_relaxation_steps: usize,
    /// Qubit-to-site mapping strategy.
    pub mapping: MappingStrategy,
}

impl Default for CompilerOptions {
    fn default() -> Self {
        CompilerOptions {
            optimize_evolution_time: true,
            refine: true,
            localize: true,
            time_resolution: 0.05,
            max_relaxation_steps: 60,
            mapping: MappingStrategy::Identity,
        }
    }
}

/// Timing and size statistics of one compilation.
#[derive(Debug, Clone, PartialEq)]
pub struct CompilationStats {
    /// Wall-clock compilation time.
    pub compile_time: Duration,
    /// Number of synthesized variables (generators) in the global linear system.
    pub num_synthesized_variables: usize,
    /// Number of localized mixed systems.
    pub num_local_systems: usize,
    /// Number of pulse segments produced.
    pub num_segments: usize,
    /// Number of `Δt` relaxation steps taken for runtime-fixed constraints.
    pub relaxation_steps: usize,
    /// Whether the refinement pass improved the error.
    pub refinement_improved: bool,
    /// Machine time of every segment.
    pub segment_times: Vec<f64>,
}

/// The result of a successful compilation.
#[derive(Debug, Clone, PartialEq)]
pub struct CompilationResult {
    /// The compiled pulse schedule (validated against the device).
    pub schedule: PulseSchedule,
    /// Total machine execution time (sum of segment durations).
    pub execution_time: f64,
    /// Absolute compilation error `‖B_sim − B_tar‖₁` summed over segments.
    pub absolute_error: f64,
    /// `‖B_tar‖₁` summed over segments (denominator of the relative error).
    pub target_norm: f64,
    /// The Theorem 1 a-priori error bound for this compilation.
    pub error_bound: f64,
    /// The qubit-to-site mapping that was applied.
    pub mapping: Mapping,
    /// Compilation statistics.
    pub stats: CompilationStats,
}

impl CompilationResult {
    /// The paper's relative error metric as a fraction (multiply by 100 for
    /// per cent).
    pub fn relative_error(&self) -> f64 {
        if self.target_norm == 0.0 {
            0.0
        } else {
            self.absolute_error / self.target_norm
        }
    }

    /// Lowers the compiled pulse schedule into a simulator-ready
    /// [`LoweredSchedule`] (per-segment Hamiltonians with a stabilized term
    /// structure, see [`qturbo_aais::lowering`]). `aais` must be the machine
    /// the schedule was compiled for.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::DeviceConstraint`] wrapping the underlying
    /// [`qturbo_aais::AaisError`] if the schedule does not validate against
    /// `aais` — in practice this means a different machine was passed in.
    pub fn try_lower(&self, aais: &Aais) -> Result<LoweredSchedule, CompileError> {
        Ok(self.schedule.try_lower(aais)?)
    }
}

/// The QTurbo compiler (paper §4–§6).
///
/// # Example
///
/// ```
/// use qturbo::{QTurboCompiler, CompilerOptions};
/// use qturbo_aais::rydberg::{rydberg_aais, RydbergOptions};
/// use qturbo_hamiltonian::models::ising_chain;
///
/// let aais = rydberg_aais(3, &RydbergOptions::default());
/// let target = ising_chain(3, 1.0, 1.0);
/// let result = QTurboCompiler::new().compile(&target, 1.0, &aais).unwrap();
/// assert!(result.relative_error() < 0.05);
/// assert!(result.execution_time <= aais.max_evolution_time());
/// ```
#[derive(Debug, Clone, Default)]
pub struct QTurboCompiler {
    options: CompilerOptions,
}

impl QTurboCompiler {
    /// A compiler with default options (all optimizations enabled).
    pub fn new() -> Self {
        Self::default()
    }

    /// A compiler with explicit options.
    pub fn with_options(options: CompilerOptions) -> Self {
        QTurboCompiler { options }
    }

    /// The active options.
    pub fn options(&self) -> &CompilerOptions {
        &self.options
    }

    /// Compiles a time-independent target Hamiltonian evolving for
    /// `target_time` onto the device described by `aais`.
    ///
    /// # Errors
    ///
    /// See [`CompileError`] for the failure modes (target too large, required
    /// machine time beyond the device limit, unsatisfiable constraints, …).
    pub fn compile(
        &self,
        target: &Hamiltonian,
        target_time: f64,
        aais: &Aais,
    ) -> Result<CompilationResult, CompileError> {
        if !(target_time.is_finite() && target_time > 0.0) {
            return Err(CompileError::InvalidTargetTime { time: target_time });
        }
        self.compile_segments(&[(target.clone(), target_time)], aais)
    }

    /// Compiles a piecewise-constant (time-dependent) target Hamiltonian
    /// (paper §5.3).
    ///
    /// # Errors
    ///
    /// See [`CompileError`].
    pub fn compile_piecewise(
        &self,
        target: &PiecewiseHamiltonian,
        aais: &Aais,
    ) -> Result<CompilationResult, CompileError> {
        let segments: Vec<(Hamiltonian, f64)> = target
            .segments()
            .iter()
            .map(|segment| (segment.hamiltonian.clone(), segment.duration))
            .collect();
        self.compile_segments(&segments, aais)
    }

    fn compile_segments(
        &self,
        segments: &[(Hamiltonian, f64)],
        aais: &Aais,
    ) -> Result<CompilationResult, CompileError> {
        let start = Instant::now();
        if segments.is_empty() {
            return Err(CompileError::EmptyTarget);
        }
        for (_, duration) in segments {
            if !(duration.is_finite() && *duration > 0.0) {
                return Err(CompileError::InvalidTargetTime { time: *duration });
            }
        }

        // -- Mapping -------------------------------------------------------
        let num_target_qubits = segments
            .iter()
            .map(|(h, _)| h.num_qubits())
            .max()
            .unwrap_or(0);
        let mapping = match &self.options.mapping {
            MappingStrategy::Identity => Mapping::identity(num_target_qubits),
            MappingStrategy::GreedyLine => greedy_line_mapping(&segments[0].0),
            MappingStrategy::Explicit(sites) => Mapping::from_assignment(sites.clone())?,
        };
        let mapped: Vec<(Hamiltonian, f64)> = segments
            .iter()
            .map(|(h, d)| Ok((mapping.apply(h, aais.num_sites())?, *d)))
            .collect::<Result<_, CompileError>>()?;

        // -- Stage 1: global linear systems (one per segment) ---------------
        let generator_refs = aais.generator_refs();
        let components = partition(aais, self.options.localize);
        let component_of_column: Vec<usize> = generator_refs
            .iter()
            .map(|gref| {
                // `partition` assigns every generator of the AAIS to exactly
                // one component, so the lookup cannot fail; a miss would be a
                // bug in `partition`, not a recoverable compile error.
                #[allow(clippy::expect_used)]
                components
                    .iter()
                    .position(|c| c.generators.contains(gref))
                    .expect("every generator belongs to a component")
            })
            .collect();
        let dynamic_columns: Vec<bool> = component_of_column
            .iter()
            .map(|&c| components[c].is_dynamic())
            .collect();
        let fixed_columns: Vec<usize> = (0..generator_refs.len())
            .filter(|&k| components[component_of_column[k]].is_fixed())
            .collect();

        let mut systems = Vec::with_capacity(mapped.len());
        let mut alphas = Vec::with_capacity(mapped.len());
        for (hamiltonian, duration) in &mapped {
            let system = GlobalLinearSystem::build(aais, hamiltonian, *duration)?;
            let alpha = system.solve()?;
            systems.push(system);
            alphas.push(alpha);
        }

        let target_pairs = |alpha: &Vector| -> Vec<(GeneratorRef, f64)> {
            generator_refs
                .iter()
                .enumerate()
                .map(|(k, g)| (*g, alpha[k]))
                .collect()
        };

        // -- Stage 2: evolution-time optimization (paper §5.1) --------------
        let mut segment_times = Vec::with_capacity(alphas.len());
        let mut timing_details: Vec<BTreeMap<usize, InstructionTiming>> = Vec::new();
        for alpha in &alphas {
            let pairs = target_pairs(alpha);
            let mut minimal = 0.0_f64;
            let mut details = BTreeMap::new();
            for component in &components {
                if !component.is_dynamic() {
                    continue;
                }
                for &instruction in &component.instructions {
                    let timing = minimal_time_for_instruction(
                        aais,
                        instruction,
                        &pairs,
                        aais.max_evolution_time(),
                    )?;
                    minimal = minimal.max(timing.minimal_time);
                    details.insert(instruction, timing);
                }
            }
            // A segment whose only non-zero targets sit on fixed instructions
            // still needs a non-zero duration.
            let has_targets = alpha.iter().any(|a| a.abs() > 1e-12);
            if has_targets && minimal < self.options.time_resolution {
                minimal = self.options.time_resolution;
            }
            if !self.options.optimize_evolution_time && minimal > 0.0 {
                // Ablation mode: a feasible but deliberately conservative
                // machine time (what a non-optimizing solver tends to return).
                minimal = (minimal * 4.0)
                    .min(aais.max_evolution_time() / segments.len() as f64)
                    .max(minimal);
            }
            segment_times.push(minimal);
            timing_details.push(details);
        }

        // -- Stage 3: runtime-fixed variables (paper §5.2 / §5.3) -----------
        let mut fixed_values: BTreeMap<VariableId, f64> = BTreeMap::new();
        let mut relaxation_steps = 0usize;
        let has_fixed_work = !fixed_columns.is_empty()
            && alphas
                .iter()
                .any(|alpha| fixed_columns.iter().any(|&k| alpha[k].abs() > 1e-12));
        if has_fixed_work {
            // Reference segment: the one demanding the strongest fixed
            // couplings per unit machine time.
            let demand = |i: usize| -> f64 {
                let t = segment_times[i].max(1e-9);
                fixed_columns
                    .iter()
                    .map(|&k| alphas[i][k].abs())
                    .fold(0.0_f64, f64::max)
                    / t
            };
            let reference = (0..alphas.len())
                .max_by(|&a, &b| {
                    demand(a)
                        .partial_cmp(&demand(b))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .unwrap_or(0);

            let mut reference_time = segment_times[reference].max(self.options.time_resolution);
            loop {
                let pairs = target_pairs(&alphas[reference]);
                let mut candidate: BTreeMap<VariableId, f64> = BTreeMap::new();
                for component in components.iter().filter(|c| c.is_fixed()) {
                    let solution =
                        solve_component_at_time(aais, component, &pairs, reference_time, None)?;
                    candidate.extend(solution.values);
                }
                let mut full = aais.default_values();
                for (var, value) in &candidate {
                    full[var.index()] = *value;
                }
                match aais.validate_values(&full) {
                    Ok(()) => {
                        fixed_values = candidate;
                        segment_times[reference] = reference_time;
                        break;
                    }
                    Err(constraint) => {
                        relaxation_steps += 1;
                        reference_time += self.options.time_resolution;
                        if relaxation_steps >= self.options.max_relaxation_steps
                            || reference_time > aais.max_evolution_time()
                        {
                            return Err(CompileError::DeviceConstraint(constraint));
                        }
                    }
                }
            }

            // Achieved fixed couplings; other segments stretch their machine
            // time so the (immutable) fixed couplings integrate to the right
            // targets (paper §5.3).
            let registry = aais.registry();
            let lookup = |id: VariableId| {
                fixed_values
                    .get(&id)
                    .copied()
                    .unwrap_or_else(|| registry.get(id).initial_guess())
            };
            let achieved_fixed: Vec<(usize, f64)> = fixed_columns
                .iter()
                .map(|&k| (k, aais.generator(generator_refs[k]).expr().eval(&lookup)))
                .collect();
            for (i, alpha) in alphas.iter().enumerate() {
                if i == reference {
                    continue;
                }
                let numerator: f64 = achieved_fixed.iter().map(|&(k, g)| g * alpha[k]).sum();
                let denominator: f64 = achieved_fixed.iter().map(|&(_, g)| g * g).sum();
                if denominator > 1e-12 {
                    let stretched = (numerator / denominator).max(0.0);
                    segment_times[i] = segment_times[i].max(stretched);
                }
            }
        }

        let total_time: f64 = segment_times.iter().sum();
        if total_time > aais.max_evolution_time() * (1.0 + 1e-9) {
            return Err(CompileError::EvolutionTimeExceedsDevice {
                required: total_time,
                maximum: aais.max_evolution_time(),
            });
        }

        // -- Stage 4: dynamic components per segment + refinement -----------
        let mut schedule = PulseSchedule::new();
        let mut absolute_error = 0.0;
        let mut target_norm = 0.0;
        let mut refinement_improved = false;
        let mut local_residuals = Vec::new();
        let mut linear_residual_total = 0.0;

        for (i, alpha) in alphas.iter().enumerate() {
            let time = segment_times[i];
            let system = &systems[i];
            let pairs = target_pairs(alpha);
            linear_residual_total += system.residual(alpha).norm_l1() + system.unrealizable_error();

            let mut values = aais.default_values();
            for (var, value) in &fixed_values {
                values[var.index()] = *value;
            }

            for component in &components {
                if component.is_fixed() {
                    let equations: Vec<(GeneratorRef, f64)> = pairs
                        .iter()
                        .filter(|(g, _)| component.generators.contains(g))
                        .copied()
                        .collect();
                    let assignment: BTreeMap<VariableId, f64> = component
                        .variables
                        .iter()
                        .map(|v| (*v, values[v.index()]))
                        .collect();
                    local_residuals.push(residual_for(aais, &equations, &assignment, time));
                    continue;
                }
                let warm = warm_start_for(component, &timing_details[i], time);
                let solution =
                    solve_component_at_time(aais, component, &pairs, time, warm.as_ref())?;
                local_residuals.push(solution.residual_l1);
                for (var, value) in solution.values {
                    values[var.index()] = value;
                }
            }

            let achieved = achieved_alpha(aais, &generator_refs, &values, time);
            let mut segment_error = system.absolute_error(&achieved);

            if self.options.refine {
                let refined = refined_targets(system, &dynamic_columns, &achieved)?;
                let refined_pairs: Vec<(GeneratorRef, f64)> = generator_refs
                    .iter()
                    .enumerate()
                    .map(|(k, g)| (*g, refined[k]))
                    .collect();
                let mut candidate_values = values.clone();
                let mut solved = true;
                for component in components.iter().filter(|c| c.is_dynamic()) {
                    let warm: BTreeMap<VariableId, f64> = component
                        .variables
                        .iter()
                        .map(|v| (*v, values[v.index()]))
                        .collect();
                    match solve_component_at_time(
                        aais,
                        component,
                        &refined_pairs,
                        time,
                        Some(&warm),
                    ) {
                        Ok(solution) => {
                            for (var, value) in solution.values {
                                candidate_values[var.index()] = value;
                            }
                        }
                        Err(_) => {
                            solved = false;
                            break;
                        }
                    }
                }
                if solved {
                    let candidate_achieved =
                        achieved_alpha(aais, &generator_refs, &candidate_values, time);
                    let candidate_error = system.absolute_error(&candidate_achieved);
                    if candidate_error < segment_error {
                        values = candidate_values;
                        segment_error = candidate_error;
                        refinement_improved = true;
                    }
                }
            }

            absolute_error += segment_error;
            target_norm += system.target_norm_l1();
            schedule.push(PulseSegment::new(time, values));
        }

        schedule.validate(aais)?;

        let matrix_norm = systems.first().map(|s| s.matrix_norm_l1()).unwrap_or(0.0);
        let error_bound = theorem1_bound(matrix_norm, linear_residual_total, &local_residuals);

        let stats = CompilationStats {
            compile_time: start.elapsed(),
            num_synthesized_variables: generator_refs.len(),
            num_local_systems: components.len(),
            num_segments: schedule.num_segments(),
            relaxation_steps,
            refinement_improved,
            segment_times,
        };

        Ok(CompilationResult {
            execution_time: schedule.total_duration(),
            schedule,
            absolute_error,
            target_norm,
            error_bound,
            mapping,
            stats,
        })
    }
}

/// Warm-start values for a dynamic component derived from the evolution-time
/// analysis: the time-critical variable is the absorbed product divided by the
/// chosen machine time; the other variables keep their absorbed solutions.
fn warm_start_for(
    component: &LocalComponent,
    timings: &BTreeMap<usize, InstructionTiming>,
    time: f64,
) -> Option<BTreeMap<VariableId, f64>> {
    if time <= 0.0 {
        return None;
    }
    let mut warm = BTreeMap::new();
    for instruction in &component.instructions {
        match timings.get(instruction).map(|t| &t.detail) {
            Some(TimingDetail::Absorbed {
                time_critical,
                scaled_value,
                others,
            }) => {
                warm.insert(*time_critical, scaled_value / time);
                for (var, value) in others {
                    warm.insert(*var, *value);
                }
            }
            Some(TimingDetail::Minimized { values }) => {
                for (var, value) in values {
                    warm.insert(*var, *value);
                }
            }
            Some(TimingDetail::Idle) | None => {}
        }
    }
    if warm.is_empty() {
        None
    } else {
        Some(warm)
    }
}

/// Evaluates every synthesized variable `α_k = g_k(x)·T` for a concrete
/// variable assignment.
fn achieved_alpha(
    aais: &Aais,
    generator_refs: &[GeneratorRef],
    values: &[f64],
    time: f64,
) -> Vector {
    generator_refs
        .iter()
        .map(|gref| aais.generator(*gref).expr().eval_slice(values) * time)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qturbo_aais::heisenberg::{heisenberg_aais, HeisenbergOptions};
    use qturbo_aais::rydberg::{rydberg_aais, RydbergOptions};
    use qturbo_hamiltonian::models::{heisenberg_chain, ising_chain, mis_chain};

    #[test]
    fn compiles_paper_running_example_to_0_8_microseconds() {
        // The three-qubit Ising chain on the Rydberg AAIS: the bottleneck is
        // the Rabi drive at Ω_max = 2.5 MHz, so T_sim = 0.8 µs (paper §5.1).
        let aais = rydberg_aais(
            3,
            &RydbergOptions {
                interaction_cutoff: None,
                ..RydbergOptions::default()
            },
        );
        let target = ising_chain(3, 1.0, 1.0);
        let result = QTurboCompiler::new().compile(&target, 1.0, &aais).unwrap();
        assert!(
            (result.execution_time - 0.8).abs() < 0.02,
            "execution time was {}",
            result.execution_time
        );
        assert!(
            result.relative_error() < 0.02,
            "relative error {}",
            result.relative_error()
        );
        assert_eq!(result.stats.num_segments, 1);
        assert_eq!(result.stats.num_synthesized_variables, 12);
        assert!(result.stats.num_local_systems >= 7);
        assert!(result.error_bound >= result.absolute_error - 1e-9);
        assert!(result.schedule.validate(&aais).is_ok());
    }

    #[test]
    fn heisenberg_chain_on_heisenberg_device_is_exact() {
        let aais = heisenberg_aais(4, &HeisenbergOptions::default());
        let target = heisenberg_chain(4, 1.0, 1.0);
        let result = QTurboCompiler::new().compile(&target, 1.0, &aais).unwrap();
        assert!(result.relative_error() < 1e-6);
        // Bottleneck: two-qubit amplitude 2 MHz must integrate to 1 -> 0.5 µs.
        assert!((result.execution_time - 0.5).abs() < 1e-3);
    }

    #[test]
    fn evolution_time_optimization_ablation_gives_longer_pulses() {
        let aais = heisenberg_aais(4, &HeisenbergOptions::default());
        let target = ising_chain(4, 1.0, 1.0);
        let optimized = QTurboCompiler::new().compile(&target, 1.0, &aais).unwrap();
        let unoptimized = QTurboCompiler::with_options(CompilerOptions {
            optimize_evolution_time: false,
            ..CompilerOptions::default()
        })
        .compile(&target, 1.0, &aais)
        .unwrap();
        assert!(unoptimized.execution_time > optimized.execution_time * 1.5);
        // Both remain accurate — only the duration differs.
        assert!(unoptimized.relative_error() < 1e-6);
    }

    #[test]
    fn localization_ablation_still_compiles() {
        let aais = heisenberg_aais(3, &HeisenbergOptions::default());
        let target = ising_chain(3, 1.0, 1.0);
        let result = QTurboCompiler::with_options(CompilerOptions {
            localize: false,
            ..CompilerOptions::default()
        })
        .compile(&target, 1.0, &aais)
        .unwrap();
        assert_eq!(result.stats.num_local_systems, 1);
        assert!(result.relative_error() < 1e-6);
    }

    #[test]
    fn time_dependent_mis_chain_compiles_piecewise() {
        let aais = rydberg_aais(4, &RydbergOptions::default());
        let target = mis_chain(4, 1.0, 1.0, 1.0, 1.0, 4);
        let result = QTurboCompiler::new()
            .compile_piecewise(&target, &aais)
            .unwrap();
        assert_eq!(result.stats.num_segments, 4);
        assert!(result.execution_time <= aais.max_evolution_time());
        assert!(
            result.relative_error() < 0.2,
            "relative error {}",
            result.relative_error()
        );
        assert!(result.schedule.validate(&aais).is_ok());
    }

    #[test]
    fn greedy_mapping_handles_shuffled_qubit_labels() {
        use qturbo_hamiltonian::{Pauli, PauliString};
        // A 4-qubit chain with shuffled labels: path 2-0-3-1.
        let mut target = Hamiltonian::new(4);
        for (a, b) in [(2usize, 0usize), (0, 3), (3, 1)] {
            target.add_term(1.0, PauliString::two(a, Pauli::Z, b, Pauli::Z));
        }
        for i in 0..4 {
            target.add_term(1.0, PauliString::single(i, Pauli::X));
        }
        let aais = rydberg_aais(4, &RydbergOptions::default());
        let identity = QTurboCompiler::new().compile(&target, 1.0, &aais).unwrap();
        let mapped = QTurboCompiler::with_options(CompilerOptions {
            mapping: MappingStrategy::GreedyLine,
            ..CompilerOptions::default()
        })
        .compile(&target, 1.0, &aais)
        .unwrap();
        // With the identity mapping the shuffled couplings fall on distant
        // atom pairs that the truncated AAIS cannot realize; the greedy line
        // mapping recovers an (almost) exact compilation.
        assert!(mapped.relative_error() < identity.relative_error());
        assert!(mapped.relative_error() < 0.02);
        assert!(!mapped.mapping.is_identity());
    }

    #[test]
    fn rejects_targets_beyond_device_capabilities() {
        let aais = heisenberg_aais(3, &HeisenbergOptions::default());
        // Requires |a|·T = 1000 with |a| ≤ 20 → T = 50 µs < 100 µs: fine.
        // With 10 000 the required time exceeds the device window.
        let target = ising_chain(3, 1.0, 10_000.0);
        let result = QTurboCompiler::new().compile(&target, 1.0, &aais);
        assert!(matches!(
            result,
            Err(CompileError::EvolutionTimeExceedsDevice { .. })
        ));
    }

    #[test]
    fn explicit_mapping_is_validated() {
        let aais = heisenberg_aais(3, &HeisenbergOptions::default());
        let target = ising_chain(3, 1.0, 1.0);
        let bad = QTurboCompiler::with_options(CompilerOptions {
            mapping: MappingStrategy::Explicit(vec![0, 0, 1]),
            ..CompilerOptions::default()
        })
        .compile(&target, 1.0, &aais);
        assert!(matches!(bad, Err(CompileError::InvalidMapping { .. })));
        let good = QTurboCompiler::with_options(CompilerOptions {
            mapping: MappingStrategy::Explicit(vec![2, 1, 0]),
            ..CompilerOptions::default()
        })
        .compile(&target, 1.0, &aais)
        .unwrap();
        assert!(good.relative_error() < 1e-6);
    }

    #[test]
    fn refinement_never_hurts() {
        let options_on = CompilerOptions::default();
        let options_off = CompilerOptions {
            refine: false,
            ..CompilerOptions::default()
        };
        let aais = rydberg_aais(
            4,
            &RydbergOptions {
                interaction_cutoff: None,
                ..RydbergOptions::default()
            },
        );
        let target = ising_chain(4, 1.0, 1.0);
        let with = QTurboCompiler::with_options(options_on)
            .compile(&target, 1.0, &aais)
            .unwrap();
        let without = QTurboCompiler::with_options(options_off)
            .compile(&target, 1.0, &aais)
            .unwrap();
        assert!(with.absolute_error <= without.absolute_error + 1e-9);
    }

    #[test]
    fn rejects_non_positive_target_times() {
        let aais = heisenberg_aais(3, &HeisenbergOptions::default());
        let target = ising_chain(3, 1.0, 1.0);
        for time in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let result = QTurboCompiler::new().compile(&target, time, &aais);
            assert!(
                matches!(result, Err(CompileError::InvalidTargetTime { .. })),
                "time {time} must be rejected"
            );
        }
        use qturbo_hamiltonian::Segment;
        let piecewise = PiecewiseHamiltonian::new(vec![
            Segment {
                hamiltonian: target.clone(),
                duration: 0.5,
            },
            Segment {
                hamiltonian: target,
                duration: -0.5,
            },
        ]);
        assert!(matches!(
            QTurboCompiler::new().compile_piecewise(&piecewise, &aais),
            Err(CompileError::InvalidTargetTime { .. })
        ));
    }

    #[test]
    fn compiled_results_lower_into_one_structure_run() {
        let aais = rydberg_aais(4, &RydbergOptions::default());
        let target = mis_chain(4, 1.0, 1.0, 1.0, 1.0, 4);
        let result = QTurboCompiler::new()
            .compile_piecewise(&target, &aais)
            .unwrap();
        let lowered = result.try_lower(&aais).unwrap();
        assert_eq!(lowered.num_segments(), result.stats.num_segments);
        assert_eq!(lowered.num_qubits(), aais.num_sites());
        assert_eq!(lowered.structure_runs(), 1);
        assert!((lowered.total_duration() - result.execution_time).abs() < 1e-9);
        // Lowering against a machine with a different variable registry is a
        // typed error, not a panic.
        let other = heisenberg_aais(4, &HeisenbergOptions::default());
        assert!(matches!(
            result.try_lower(&other),
            Err(CompileError::DeviceConstraint(_))
        ));
    }

    #[test]
    fn stats_report_compile_time_and_segments() {
        let aais = heisenberg_aais(3, &HeisenbergOptions::default());
        let target = ising_chain(3, 1.0, 1.0);
        let result = QTurboCompiler::new().compile(&target, 1.0, &aais).unwrap();
        assert!(result.stats.compile_time.as_nanos() > 0);
        assert_eq!(result.stats.segment_times.len(), 1);
        assert_eq!(result.stats.relaxation_steps, 0);
        assert_eq!(result.mapping, Mapping::identity(3));
    }
}
