//! Iterative accuracy refinement (paper §6.2).
//!
//! After the runtime-fixed variables have been solved, the synthesized
//! variables they drive may deviate slightly from the linear-system solution
//! (e.g. the Van der Waals tail `α₃ = 0.020` instead of `0`). The refinement
//! step fixes the achieved values `ᾱ_r` of the fixed-driven synthesized
//! variables and re-optimizes the dynamic-driven ones by minimizing
//! `‖M_r·ᾱ_r + M_c·α_c − B_tar‖₁` — an L1 regression solved with IRLS.

use crate::error::CompileError;
use crate::linear_system::GlobalLinearSystem;
use qturbo_math::{l1, Vector};

/// Computes refined targets for the dynamic-driven synthesized variables.
///
/// * `dynamic_columns[k]` marks whether column `k` of the global linear system
///   is driven by runtime-dynamic variables,
/// * `achieved` is the vector of synthesized-variable values actually realized
///   by the current solution (fixed and dynamic alike).
///
/// Returns a full-length target vector: fixed-driven entries are the achieved
/// values (they cannot be changed any more), dynamic-driven entries are the
/// refined targets.
///
/// # Errors
///
/// Propagates numerical failures from the L1 solver.
pub fn refined_targets(
    system: &GlobalLinearSystem,
    dynamic_columns: &[bool],
    achieved: &Vector,
) -> Result<Vector, CompileError> {
    let num_columns = system.columns().len();
    assert_eq!(
        dynamic_columns.len(),
        num_columns,
        "column mask length mismatch"
    );
    assert_eq!(
        achieved.len(),
        num_columns,
        "achieved vector length mismatch"
    );

    let dynamic_indices: Vec<usize> = (0..num_columns).filter(|&k| dynamic_columns[k]).collect();
    if dynamic_indices.is_empty() {
        return Ok(achieved.clone());
    }

    // Residual contribution of the frozen (fixed-driven) columns:
    // c = M_r·ᾱ_r − B_tar.
    let mut frozen = achieved.clone();
    for &k in &dynamic_indices {
        frozen[k] = 0.0;
    }
    let c = system.matrix().mul_vector(&frozen) - system.rhs().clone();

    // Minimize ‖c + M_c·α_c‖₁ over the dynamic targets α_c.
    let m_c = system.matrix().select_columns(&dynamic_indices);
    let (correction, _residual) =
        l1::minimize_l1_affine(&m_c, &c, 60).map_err(CompileError::from)?;

    let mut refined = achieved.clone();
    for (position, &k) in dynamic_indices.iter().enumerate() {
        refined[k] = correction[position];
    }
    Ok(refined)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qturbo_aais::rydberg::{rydberg_aais, RydbergOptions};
    use qturbo_hamiltonian::models::ising_chain;

    /// Reconstructs the paper's §6.2 worked example: after solving positions
    /// at T = 0.8 µs the vdW synthesized variables come out as
    /// (1.001, 1.001, 0.020); refinement updates the detuning targets to
    /// (1.021, 2.002, 1.021) and leaves the Rabi targets at 1.
    #[test]
    fn reproduces_paper_refinement_example() {
        let aais = rydberg_aais(
            3,
            &RydbergOptions {
                interaction_cutoff: None,
                ..RydbergOptions::default()
            },
        );
        let target = ising_chain(3, 1.0, 1.0);
        let system = GlobalLinearSystem::build(&aais, &target, 1.0).unwrap();

        // Column bookkeeping through instruction names.
        let names: Vec<(String, usize)> = system
            .columns()
            .iter()
            .map(|gref| {
                (
                    aais.instruction_of(*gref).name().to_string(),
                    gref.generator,
                )
            })
            .collect();
        let col = |name: &str, generator: usize| {
            names
                .iter()
                .position(|(n, g)| n == name && *g == generator)
                .unwrap()
        };

        let mut dynamic_columns = vec![true; names.len()];
        let mut achieved = Vector::zeros(names.len());
        // Fixed-driven (vdW) columns with the achieved values from the paper.
        for (pair, value) in [("vdw_0_1", 1.001), ("vdw_1_2", 1.001), ("vdw_0_2", 0.020)] {
            let k = col(pair, 0);
            dynamic_columns[k] = false;
            achieved[k] = value;
        }
        // Dynamic columns currently at the unrefined linear solution.
        for (name, value) in [
            ("detuning_0", 1.0),
            ("detuning_1", 2.0),
            ("detuning_2", 1.0),
        ] {
            achieved[col(name, 0)] = value;
        }
        for name in ["rabi_0", "rabi_1", "rabi_2"] {
            achieved[col(name, 0)] = 1.0;
            achieved[col(name, 1)] = 0.0;
        }

        let before = system.absolute_error(&achieved);
        let refined = refined_targets(&system, &dynamic_columns, &achieved).unwrap();
        let after = system.absolute_error(&refined);
        assert!(
            after <= before + 1e-12,
            "refinement must not increase the error"
        );
        // The ZZ deviations (0.001 + 0.001 + 0.020) are driven by the frozen
        // position variables and cannot be repaired by dynamic instructions;
        // refinement removes everything else (the Z-row errors), so the
        // remaining error is exactly that irreducible floor.
        assert!(
            after < before - 0.03,
            "refinement should remove the Z-row errors"
        );
        assert!(
            (after - 0.022).abs() < 1e-3,
            "expected the irreducible ZZ floor, got {after}"
        );

        // The detuning targets move to compensate the vdW deviations
        // (paper: α₄ = 1.021, α₅ = 2.002, α₆ = 1.021).
        assert!((refined[col("detuning_0", 0)] - 1.021).abs() < 1e-3);
        assert!((refined[col("detuning_1", 0)] - 2.002).abs() < 1e-3);
        assert!((refined[col("detuning_2", 0)] - 1.021).abs() < 1e-3);
        // Fixed columns are untouched.
        assert!((refined[col("vdw_0_2", 0)] - 0.020).abs() < 1e-12);
        // Rabi targets stay at 1.
        assert!((refined[col("rabi_0", 0)] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn all_fixed_columns_returns_achieved_unchanged() {
        let aais = rydberg_aais(3, &RydbergOptions::default());
        let target = ising_chain(3, 1.0, 1.0);
        let system = GlobalLinearSystem::build(&aais, &target, 1.0).unwrap();
        let achieved = Vector::filled(system.columns().len(), 0.5);
        let dynamic_columns = vec![false; system.columns().len()];
        let refined = refined_targets(&system, &dynamic_columns, &achieved).unwrap();
        assert_eq!(refined, achieved);
    }

    #[test]
    #[should_panic(expected = "column mask length mismatch")]
    fn rejects_wrong_mask_length() {
        let aais = rydberg_aais(3, &RydbergOptions::default());
        let target = ising_chain(3, 1.0, 1.0);
        let system = GlobalLinearSystem::build(&aais, &target, 1.0).unwrap();
        let achieved = Vector::zeros(system.columns().len());
        let _ = refined_targets(&system, &[true], &achieved);
    }
}
