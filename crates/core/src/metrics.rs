//! Compilation-accuracy metrics (paper §6.1 and §7.1).

use qturbo_math::Vector;

/// The paper's absolute compilation error `E = ‖B_sim − B_tar‖₁` (Equation 9).
pub fn absolute_error(b_sim: &Vector, b_tar: &Vector) -> f64 {
    assert_eq!(
        b_sim.len(),
        b_tar.len(),
        "coefficient vectors must have the same length"
    );
    (b_sim.clone() - b_tar.clone()).norm_l1()
}

/// The paper's relative error metric
/// `E = ‖B_sim − B_tar‖₁ / ‖B_tar‖₁ × 100%` (§7.1), returned as a fraction
/// (multiply by 100 for per cent).
///
/// Returns `0` when the target norm is zero (an empty target cannot be
/// mis-compiled).
pub fn relative_error(b_sim: &Vector, b_tar: &Vector) -> f64 {
    let denominator = b_tar.norm_l1();
    if denominator == 0.0 {
        0.0
    } else {
        absolute_error(b_sim, b_tar) / denominator
    }
}

/// The Theorem 1 error bound: `‖M‖₁ · Σ_i ε₂ⁱ + ε₁`, where `ε₁` is the L1
/// error of the global linear solve and `ε₂ⁱ` the L1 error of the `i`-th
/// localized mixed system.
pub fn theorem1_bound(matrix_norm_l1: f64, linear_error: f64, local_errors: &[f64]) -> f64 {
    matrix_norm_l1 * local_errors.iter().sum::<f64>() + linear_error
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absolute_and_relative_error() {
        let b_tar = Vector::from(vec![1.0, 1.0, 2.0]);
        let b_sim = Vector::from(vec![1.0, 0.5, 2.5]);
        assert!((absolute_error(&b_sim, &b_tar) - 1.0).abs() < 1e-15);
        assert!((relative_error(&b_sim, &b_tar) - 0.25).abs() < 1e-15);
        assert_eq!(relative_error(&Vector::zeros(2), &Vector::zeros(2)), 0.0);
    }

    #[test]
    fn perfect_compilation_has_zero_error() {
        let b = Vector::from(vec![0.3, -1.2]);
        assert_eq!(absolute_error(&b, &b), 0.0);
        assert_eq!(relative_error(&b, &b), 0.0);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn mismatched_lengths_panic() {
        let _ = absolute_error(&Vector::zeros(2), &Vector::zeros(3));
    }

    #[test]
    fn theorem1_bound_combines_contributions() {
        // ‖M‖₁ = 3, local errors 0.1 + 0.2, linear error 0.05 => 3·0.3 + 0.05.
        let bound = theorem1_bound(3.0, 0.05, &[0.1, 0.2]);
        assert!((bound - 0.95).abs() < 1e-15);
        assert_eq!(theorem1_bound(3.0, 0.0, &[]), 0.0);
    }

    #[test]
    fn theorem1_bound_dominates_observed_error_in_a_toy_case() {
        // A 2x2 system where we can compute everything by hand:
        // M = I, so the total error is exactly the sum of local errors plus
        // the (zero) linear error, and the bound is tight.
        let b_tar = Vector::from(vec![1.0, 1.0]);
        let b_sim = Vector::from(vec![1.01, 0.98]);
        let observed = absolute_error(&b_sim, &b_tar);
        let bound = theorem1_bound(1.0, 0.0, &[0.01, 0.02]);
        assert!(observed <= bound + 1e-12);
    }
}
