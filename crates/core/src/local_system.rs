//! Localized mixed equation systems: per-component nonlinear solving and the
//! per-instruction evolution-time analysis (paper §4.2 and §5).

use crate::components::LocalComponent;
use crate::error::CompileError;
use qturbo_aais::{Aais, GeneratorRef, VariableId};
use qturbo_math::{LevenbergMarquardt, NelderMead, Vector};
use std::collections::BTreeMap;

/// Targets below this magnitude are treated as "instruction switched off".
const TARGET_EPSILON: f64 = 1e-12;

/// Result of solving one localized mixed system at a fixed evolution time.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalSolution {
    /// Solved values of the component's amplitude variables.
    pub values: BTreeMap<VariableId, f64>,
    /// L1 norm of the residual `g_k(x)·T − α_k` over the component equations.
    pub residual_l1: f64,
}

/// How the minimal evolution time of a dynamic instruction was obtained.
#[derive(Debug, Clone, PartialEq)]
pub enum TimingDetail {
    /// All targets were zero; the instruction stays off.
    Idle,
    /// The time-critical variable was absorbed into the evolution time
    /// (paper §5.1 cases 1 and 2).
    Absorbed {
        /// The time-critical variable.
        time_critical: VariableId,
        /// The solved product `w = v·T` of the time-critical variable and the
        /// evolution time.
        scaled_value: f64,
        /// Solved values of the instruction's other variables (e.g. phases).
        others: BTreeMap<VariableId, f64>,
    },
    /// No time-critical variable: the evolution time was minimized directly
    /// under the equation constraints (paper §5.1 case 3).
    Minimized {
        /// Solved values of the instruction's variables at the minimal time.
        values: BTreeMap<VariableId, f64>,
    },
}

/// Minimal-evolution-time analysis of one dynamic instruction.
#[derive(Debug, Clone, PartialEq)]
pub struct InstructionTiming {
    /// Index of the instruction in the AAIS.
    pub instruction: usize,
    /// Shortest machine time at which this instruction can realize its
    /// synthesized-variable targets without violating amplitude bounds.
    pub minimal_time: f64,
    /// Details used to warm-start the subsequent fixed-time solve.
    pub detail: TimingDetail,
}

/// Computes the shortest evolution time at which a dynamic instruction can
/// meet its synthesized-variable targets (paper §5.1).
///
/// `targets` are `(generator, α)` pairs; only those belonging to
/// `instruction_index` are considered.
///
/// # Errors
///
/// Returns [`CompileError::LocalSolveFailed`] when the absorbed system cannot
/// be solved to reasonable accuracy.
pub fn minimal_time_for_instruction(
    aais: &Aais,
    instruction_index: usize,
    targets: &[(GeneratorRef, f64)],
    max_time: f64,
) -> Result<InstructionTiming, CompileError> {
    let instruction = &aais.instructions()[instruction_index];
    let equations: Vec<(GeneratorRef, f64)> = targets
        .iter()
        .filter(|(gref, _)| gref.instruction == instruction_index)
        .copied()
        .collect();

    let all_zero = equations
        .iter()
        .all(|(_, alpha)| alpha.abs() < TARGET_EPSILON);
    if all_zero {
        return Ok(InstructionTiming {
            instruction: instruction_index,
            minimal_time: 0.0,
            detail: TimingDetail::Idle,
        });
    }

    match instruction.time_critical() {
        Some(time_critical) => {
            absorbed_minimal_time(aais, instruction_index, time_critical, &equations)
        }
        None => direct_minimal_time(aais, instruction_index, &equations, max_time),
    }
}

/// Paper §5.1 cases 1–2: absorb the time-critical variable `v` into `w = v·T`,
/// solve the small nonlinear system for `w` and the remaining variables, and
/// derive the minimal time from the hardware bound on `v`.
fn absorbed_minimal_time(
    aais: &Aais,
    instruction_index: usize,
    time_critical: VariableId,
    equations: &[(GeneratorRef, f64)],
) -> Result<InstructionTiming, CompileError> {
    let instruction = &aais.instructions()[instruction_index];
    let registry = aais.registry();
    let tc_variable = registry.get(time_critical);

    // Unknowns: w (the absorbed product) followed by the other variables.
    let other_variables: Vec<VariableId> = instruction
        .variables()
        .iter()
        .copied()
        .filter(|v| *v != time_critical)
        .collect();

    let alpha_scale = equations
        .iter()
        .map(|(_, a)| a.abs())
        .fold(0.0_f64, f64::max)
        .max(1.0);
    let big = 1e6 * alpha_scale;
    // The sign range of w mirrors the sign range of v (Ω ≥ 0 stays ≥ 0).
    let w_lower = if tc_variable.lower() >= 0.0 {
        0.0
    } else {
        -big
    };
    let w_upper = if tc_variable.upper() <= 0.0 { 0.0 } else { big };

    let mut lower = vec![w_lower];
    let mut upper = vec![w_upper];
    let base_initial = alpha_scale.min(w_upper.abs().max(w_lower.abs()));
    for &var in &other_variables {
        let v = registry.get(var);
        lower.push(v.lower());
        upper.push(v.upper());
    }

    let grefs: Vec<GeneratorRef> = equations.iter().map(|(g, _)| *g).collect();
    let alphas: Vec<f64> = equations.iter().map(|(_, a)| *a).collect();
    let aais_ref = aais;
    let residual_fn = |params: &[f64]| -> Vec<f64> {
        let w = params[0];
        let lookup = |id: VariableId| -> f64 {
            if id == time_critical {
                w
            } else {
                other_variables
                    .iter()
                    .position(|&v| v == id)
                    .map(|pos| params[pos + 1])
                    .unwrap_or(0.0)
            }
        };
        grefs
            .iter()
            .zip(alphas.iter())
            .map(|(gref, alpha)| aais_ref.generator(*gref).expr().eval(&lookup) - alpha)
            .collect()
    };

    // The absorbed system is tiny but can have spurious local minima (e.g. a
    // Rabi drive that must point along −X starts with the wrong phase), so a
    // handful of spread starting points over the non-time-critical variables
    // is used and the best result kept.
    let solver = LevenbergMarquardt::new()
        .with_max_iterations(300)
        .with_residual_tolerance(0.5 * (1e-9 * alpha_scale.max(1e-6)).powi(2));
    let tolerance = 1e-8 * alpha_scale.max(1.0) * equations.len() as f64;
    let mut best: Option<qturbo_math::LmOutcome> = None;
    for fraction in [f64::NAN, 0.125, 0.375, 0.625, 0.875] {
        let mut initial = vec![base_initial];
        for &var in &other_variables {
            let v = registry.get(var);
            let guess = if fraction.is_nan() {
                v.initial_guess()
            } else {
                v.lower() + fraction * (v.upper() - v.lower())
            };
            initial.push(guess);
        }
        let outcome = solver
            .solve(&residual_fn, Vector::from(initial), &lower, &upper)
            .map_err(CompileError::from)?;
        let better = best
            .as_ref()
            .is_none_or(|b| outcome.residual_l1() < b.residual_l1());
        if better {
            best = Some(outcome);
        }
        if best.as_ref().is_some_and(|b| b.residual_l1() < tolerance) {
            break;
        }
    }
    let outcome = best.ok_or_else(|| CompileError::LocalSolveFailed {
        component: instruction.name().to_string(),
        residual: f64::INFINITY,
    })?;
    let residual = outcome.residual_l1();
    if residual > 1e-6 * alpha_scale.max(1.0) * equations.len() as f64 {
        return Err(CompileError::LocalSolveFailed {
            component: instruction.name().to_string(),
            residual,
        });
    }

    let w = outcome.solution[0];
    let limit = if w >= 0.0 {
        tc_variable.upper().abs()
    } else {
        tc_variable.lower().abs()
    };
    let minimal_time = if limit > 0.0 {
        w.abs() / limit
    } else {
        f64::INFINITY
    };

    let mut others = BTreeMap::new();
    for (pos, &var) in other_variables.iter().enumerate() {
        others.insert(var, outcome.solution[pos + 1]);
    }

    Ok(InstructionTiming {
        instruction: instruction_index,
        minimal_time,
        detail: TimingDetail::Absorbed {
            time_critical,
            scaled_value: w,
            others,
        },
    })
}

/// Paper §5.1 case 3: no time-critical variable — minimize the evolution time
/// directly with a penalty formulation.
fn direct_minimal_time(
    aais: &Aais,
    instruction_index: usize,
    equations: &[(GeneratorRef, f64)],
    max_time: f64,
) -> Result<InstructionTiming, CompileError> {
    let instruction = &aais.instructions()[instruction_index];
    let registry = aais.registry();
    let variables: Vec<VariableId> = instruction.variables().to_vec();

    let mut lower = Vec::with_capacity(variables.len() + 1);
    let mut upper = Vec::with_capacity(variables.len() + 1);
    let mut initial = Vec::with_capacity(variables.len() + 1);
    for &var in &variables {
        let v = registry.get(var);
        lower.push(v.lower());
        upper.push(v.upper());
        initial.push(v.initial_guess());
    }
    // The last parameter is the evolution time itself.
    lower.push(0.0);
    upper.push(max_time);
    initial.push(max_time * 0.5);

    let alpha_scale = equations
        .iter()
        .map(|(_, a)| a.abs())
        .fold(0.0_f64, f64::max)
        .max(1.0);
    let grefs: Vec<GeneratorRef> = equations.iter().map(|(g, _)| *g).collect();
    let alphas: Vec<f64> = equations.iter().map(|(_, a)| *a).collect();
    let penalty_weight = 1e5 * alpha_scale;

    let objective = |params: &[f64]| -> f64 {
        let time = params[variables.len()];
        let lookup = |id: VariableId| -> f64 {
            variables
                .iter()
                .position(|&v| v == id)
                .map(|pos| params[pos])
                .unwrap_or(0.0)
        };
        let mut penalty = 0.0;
        for (gref, alpha) in grefs.iter().zip(alphas.iter()) {
            let value = aais.generator(*gref).expr().eval(&lookup) * time;
            penalty += (value - alpha).powi(2);
        }
        penalty_weight * penalty + time
    };

    let outcome = NelderMead::new()
        .with_max_iterations(4000)
        .minimize(&objective, Vector::from(initial), &lower, &upper)
        .map_err(CompileError::from)?;

    let minimal_time = outcome.solution[variables.len()];
    // Check the constraints are actually met at the reported minimum.
    let lookup = |id: VariableId| -> f64 {
        variables
            .iter()
            .position(|&v| v == id)
            .map(|pos| outcome.solution[pos])
            .unwrap_or(0.0)
    };
    let residual: f64 = grefs
        .iter()
        .zip(alphas.iter())
        .map(|(gref, alpha)| {
            (aais.generator(*gref).expr().eval(&lookup) * minimal_time - alpha).abs()
        })
        .sum();
    if residual > 1e-3 * alpha_scale * equations.len() as f64 {
        return Err(CompileError::LocalSolveFailed {
            component: instruction.name().to_string(),
            residual,
        });
    }

    let mut values = BTreeMap::new();
    for (pos, &var) in variables.iter().enumerate() {
        values.insert(var, outcome.solution[pos]);
    }

    Ok(InstructionTiming {
        instruction: instruction_index,
        minimal_time,
        detail: TimingDetail::Minimized { values },
    })
}

/// Solves one localized mixed system at a fixed evolution time: find variable
/// values such that `g_k(x)·T = α_k` for every generator in the component.
///
/// `warm_start` overrides the registry initial guesses for selected variables
/// (used with the values suggested by the timing analysis).
///
/// # Errors
///
/// Returns [`CompileError::Numerical`] when the underlying solver fails; a
/// large residual is *not* an error here — it is reported in the solution and
/// contributes to the compilation error metric.
pub fn solve_component_at_time(
    aais: &Aais,
    component: &LocalComponent,
    targets: &[(GeneratorRef, f64)],
    time: f64,
    warm_start: Option<&BTreeMap<VariableId, f64>>,
) -> Result<LocalSolution, CompileError> {
    let registry = aais.registry();
    let variables = &component.variables;

    let equations: Vec<(GeneratorRef, f64)> = targets
        .iter()
        .filter(|(gref, _)| component.generators.contains(gref))
        .copied()
        .collect();
    if equations.is_empty() || variables.is_empty() {
        return Ok(LocalSolution {
            values: BTreeMap::new(),
            residual_l1: 0.0,
        });
    }

    // If every target is zero the component can simply stay switched off when
    // it is dynamic (amplitude zero is always admissible); runtime-fixed
    // components (atom positions) still need a feasible geometry, handled by
    // the general path below.
    let all_zero = equations.iter().all(|(_, a)| a.abs() < TARGET_EPSILON);
    if all_zero && component.is_dynamic() {
        let mut values = BTreeMap::new();
        for &var in variables {
            let v = registry.get(var);
            values.insert(var, 0.0_f64.clamp(v.lower(), v.upper()));
        }
        let residual_l1 = residual_for(aais, &equations, &values, time);
        return Ok(LocalSolution {
            values,
            residual_l1,
        });
    }

    let mut lower = Vec::with_capacity(variables.len());
    let mut upper = Vec::with_capacity(variables.len());
    let mut initial = Vec::with_capacity(variables.len());
    for &var in variables {
        let v = registry.get(var);
        lower.push(v.lower());
        upper.push(v.upper());
        let guess = warm_start
            .and_then(|w| w.get(&var).copied())
            .unwrap_or(v.initial_guess());
        initial.push(guess.clamp(v.lower(), v.upper()));
    }

    let grefs: Vec<GeneratorRef> = equations.iter().map(|(g, _)| *g).collect();
    let alphas: Vec<f64> = equations.iter().map(|(_, a)| *a).collect();
    let residual_fn = |params: &[f64]| -> Vec<f64> {
        let lookup = |id: VariableId| -> f64 {
            variables
                .iter()
                .position(|&v| v == id)
                .map(|pos| params[pos])
                .unwrap_or(0.0)
        };
        grefs
            .iter()
            .zip(alphas.iter())
            .map(|(gref, alpha)| aais.generator(*gref).expr().eval(&lookup) * time - alpha)
            .collect()
    };

    // Tolerance relative to the magnitude of the targets so that targets with
    // small coefficients are still met to high *relative* accuracy.
    let alpha_scale = alphas
        .iter()
        .map(|a| a.abs())
        .fold(0.0_f64, f64::max)
        .max(1e-6);
    let solver = LevenbergMarquardt::new()
        .with_max_iterations(250)
        .with_residual_tolerance(0.5 * (1e-9 * alpha_scale).powi(2));
    let mut outcome = solver
        .solve(&residual_fn, Vector::from(initial), &lower, &upper)
        .map_err(CompileError::from)?;

    // Small components occasionally land in a spurious local minimum (phases
    // with the wrong sign); retry from a few spread starting points.
    let alpha_scale = alpha_scale.max(1.0);
    let acceptable = 1e-6 * alpha_scale * equations.len() as f64;
    if outcome.residual_l1() > acceptable && variables.len() <= 6 {
        for fraction in [0.125, 0.375, 0.625, 0.875] {
            let spread: Vec<f64> = variables
                .iter()
                .map(|&var| {
                    let v = registry.get(var);
                    v.lower() + fraction * (v.upper() - v.lower())
                })
                .collect();
            let retry = solver
                .solve(&residual_fn, Vector::from(spread), &lower, &upper)
                .map_err(CompileError::from)?;
            if retry.residual_l1() < outcome.residual_l1() {
                outcome = retry;
            }
            if outcome.residual_l1() < acceptable {
                break;
            }
        }
    }

    let mut values = BTreeMap::new();
    for (pos, &var) in variables.iter().enumerate() {
        values.insert(var, outcome.solution[pos]);
    }
    let residual_l1 = residual_for(aais, &equations, &values, time);
    Ok(LocalSolution {
        values,
        residual_l1,
    })
}

/// L1 residual of a component's equations for a concrete variable assignment.
pub fn residual_for(
    aais: &Aais,
    equations: &[(GeneratorRef, f64)],
    values: &BTreeMap<VariableId, f64>,
    time: f64,
) -> f64 {
    let lookup = |id: VariableId| values.get(&id).copied().unwrap_or(0.0);
    equations
        .iter()
        .map(|(gref, alpha)| (aais.generator(*gref).expr().eval(&lookup) * time - alpha).abs())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::partition;
    use qturbo_aais::heisenberg::{heisenberg_aais, HeisenbergOptions};
    use qturbo_aais::rydberg::{rydberg_aais, RydbergOptions};

    fn rydberg3() -> Aais {
        rydberg_aais(
            3,
            &RydbergOptions {
                interaction_cutoff: None,
                ..RydbergOptions::default()
            },
        )
    }

    fn gref_of(aais: &Aais, name: &str, generator: usize) -> GeneratorRef {
        let instruction = aais
            .instructions()
            .iter()
            .position(|i| i.name() == name)
            .unwrap_or_else(|| panic!("instruction {name} not found"));
        GeneratorRef {
            instruction,
            generator,
        }
    }

    #[test]
    fn detuning_minimal_time_matches_paper_case_1() {
        // Paper §5.1 case 1: Δ/2 · T = 1 with Δ_max = 20 MHz ⇒ T = 0.1 µs.
        let aais = rydberg3();
        let gref = gref_of(&aais, "detuning_0", 0);
        let timing =
            minimal_time_for_instruction(&aais, gref.instruction, &[(gref, 1.0)], 4.0).unwrap();
        assert!(
            (timing.minimal_time - 0.1).abs() < 1e-6,
            "T was {}",
            timing.minimal_time
        );
        match timing.detail {
            TimingDetail::Absorbed { scaled_value, .. } => {
                assert!((scaled_value - 2.0).abs() < 1e-6)
            }
            _ => panic!("expected absorbed detail"),
        }
    }

    #[test]
    fn rabi_minimal_time_matches_paper_case_2() {
        // Paper §5.1 case 2: Ω/2 cos φ · T = 1, Ω/2 sin φ · T = 0 with
        // Ω_max = 2.5 MHz ⇒ T = 0.8 µs, φ = 0.
        let aais = rydberg3();
        let cos_ref = gref_of(&aais, "rabi_0", 0);
        let sin_ref = gref_of(&aais, "rabi_0", 1);
        let timing = minimal_time_for_instruction(
            &aais,
            cos_ref.instruction,
            &[(cos_ref, 1.0), (sin_ref, 0.0)],
            4.0,
        )
        .unwrap();
        assert!(
            (timing.minimal_time - 0.8).abs() < 1e-4,
            "T was {}",
            timing.minimal_time
        );
        match timing.detail {
            TimingDetail::Absorbed {
                scaled_value,
                others,
                ..
            } => {
                assert!((scaled_value - 2.0).abs() < 1e-4);
                let phi = *others.values().next().unwrap();
                assert!(phi.abs() < 1e-4);
            }
            _ => panic!("expected absorbed detail"),
        }
    }

    #[test]
    fn detuning_second_qubit_needs_twice_the_time() {
        // Paper: Δ₂/2 · T = 2 (α₅ = 2) ⇒ T = 0.2 µs.
        let aais = rydberg3();
        let gref = gref_of(&aais, "detuning_1", 0);
        let timing =
            minimal_time_for_instruction(&aais, gref.instruction, &[(gref, 2.0)], 4.0).unwrap();
        assert!((timing.minimal_time - 0.2).abs() < 1e-6);
    }

    #[test]
    fn idle_instruction_needs_no_time() {
        let aais = rydberg3();
        let gref = gref_of(&aais, "rabi_2", 0);
        let timing =
            minimal_time_for_instruction(&aais, gref.instruction, &[(gref, 0.0)], 4.0).unwrap();
        assert_eq!(timing.minimal_time, 0.0);
        assert_eq!(timing.detail, TimingDetail::Idle);
    }

    #[test]
    fn heisenberg_amplitude_sign_uses_negative_bound() {
        // A negative target uses the negative amplitude range: a·T = −3 with
        // |a| ≤ 2 ⇒ T = 1.5.
        let aais = heisenberg_aais(2, &HeisenbergOptions::default());
        let gref = gref_of(&aais, "coupling_Z_0_1", 0);
        let timing =
            minimal_time_for_instruction(&aais, gref.instruction, &[(gref, -3.0)], 100.0).unwrap();
        assert!((timing.minimal_time - 1.5).abs() < 1e-6);
    }

    #[test]
    fn solve_rabi_component_at_fixed_time() {
        // With T = 0.8 µs the Rabi targets (1, 0) give Ω = 2.5 MHz, φ = 0.
        let aais = rydberg3();
        let components = partition(&aais, true);
        let cos_ref = gref_of(&aais, "rabi_0", 0);
        let sin_ref = gref_of(&aais, "rabi_0", 1);
        let component = components
            .iter()
            .find(|c| c.generators.contains(&cos_ref))
            .expect("rabi component exists");
        let solution = solve_component_at_time(
            &aais,
            component,
            &[(cos_ref, 1.0), (sin_ref, 0.0)],
            0.8,
            None,
        )
        .unwrap();
        assert!(solution.residual_l1 < 1e-6);
        let omega_id = aais
            .registry()
            .iter()
            .find(|v| v.name() == "Omega_0")
            .unwrap()
            .id();
        let phi_id = aais
            .registry()
            .iter()
            .find(|v| v.name() == "phi_0")
            .unwrap()
            .id();
        assert!((solution.values[&omega_id] - 2.5).abs() < 1e-4);
        assert!(solution.values[&phi_id].abs() < 1e-4);
    }

    #[test]
    fn solve_position_component_reproduces_paper_geometry() {
        // Paper §5.2: with T = 0.8 µs, vdW targets (1, 1, 0) give a chain with
        // spacing ≈ 7.46 µm.
        let options = RydbergOptions {
            interaction_cutoff: None,
            ..RydbergOptions::one_dimensional()
        };
        let aais = rydberg_aais(3, &options);
        let components = partition(&aais, true);
        let fixed = components
            .iter()
            .find(|c| c.is_fixed())
            .expect("fixed component");
        let targets = vec![
            (gref_of(&aais, "vdw_0_1", 0), 1.0),
            (gref_of(&aais, "vdw_1_2", 0), 1.0),
            (gref_of(&aais, "vdw_0_2", 0), 0.0),
        ];
        let solution = solve_component_at_time(&aais, fixed, &targets, 0.8, None).unwrap();
        // Residual is dominated by the unavoidable 0→(0.02) tail of the
        // third equation (paper §6.2 reports α₃ = 0.020).
        assert!(
            solution.residual_l1 < 0.05,
            "residual {}",
            solution.residual_l1
        );
        let x: Vec<f64> = aais
            .site_positions()
            .iter()
            .map(|coords| solution.values[&coords[0]])
            .collect();
        let spacing_01 = (x[1] - x[0]).abs();
        let spacing_12 = (x[2] - x[1]).abs();
        assert!((spacing_01 - 7.46).abs() < 0.1, "spacing {spacing_01}");
        assert!((spacing_12 - 7.46).abs() < 0.1, "spacing {spacing_12}");
    }

    #[test]
    fn zero_targets_turn_dynamic_components_off() {
        let aais = rydberg3();
        let components = partition(&aais, true);
        let cos_ref = gref_of(&aais, "rabi_1", 0);
        let sin_ref = gref_of(&aais, "rabi_1", 1);
        let component = components
            .iter()
            .find(|c| c.generators.contains(&cos_ref))
            .unwrap();
        let solution = solve_component_at_time(
            &aais,
            component,
            &[(cos_ref, 0.0), (sin_ref, 0.0)],
            0.8,
            None,
        )
        .unwrap();
        assert!(solution.residual_l1 < 1e-12);
        assert!(solution.values.values().all(|v| v.abs() < 1e-12));
    }

    #[test]
    fn warm_start_is_respected() {
        let aais = rydberg3();
        let components = partition(&aais, true);
        let cos_ref = gref_of(&aais, "rabi_0", 0);
        let sin_ref = gref_of(&aais, "rabi_0", 1);
        let component = components
            .iter()
            .find(|c| c.generators.contains(&cos_ref))
            .unwrap();
        let omega_id = aais
            .registry()
            .iter()
            .find(|v| v.name() == "Omega_0")
            .unwrap()
            .id();
        let mut warm = BTreeMap::new();
        warm.insert(omega_id, 2.5);
        let solution = solve_component_at_time(
            &aais,
            component,
            &[(cos_ref, 1.0), (sin_ref, 0.0)],
            0.8,
            Some(&warm),
        )
        .unwrap();
        assert!(solution.residual_l1 < 1e-6);
    }
}
