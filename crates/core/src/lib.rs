//! # QTurbo — a robust and efficient compiler for analog quantum simulation
//!
//! This crate is the core of a from-scratch Rust reproduction of
//! *“QTurbo: A Robust and Efficient Compiler for Analog Quantum Simulation”*
//! (ASPLOS 2026). It compiles a target Hamiltonian (a weighted sum of Pauli
//! strings plus a target evolution time) onto an analog quantum simulator
//! described by an Abstract Analog Instruction Set, producing a pulse
//! schedule that is short, hardware-feasible, and accurate.
//!
//! The pipeline follows the paper:
//!
//! 1. **Global linear system** ([`linear_system`]) — one synthesized variable
//!    `α_k = g_k(x)·T_sim` per instruction generator; matching simulator and
//!    target evolutions term by term is *linear* in the `α_k`.
//! 2. **Localization** ([`components`]) — the synthesized variables decouple
//!    into small localized mixed systems via connected components of the
//!    variable-dependency graph.
//! 3. **Evolution-time optimization** ([`local_system`]) — the time-critical
//!    variable of each instruction is absorbed into the machine time; the
//!    slowest instruction at full amplitude sets `T_sim`.
//! 4. **Runtime-fixed variables** — atom positions are solved at the chosen
//!    `T_sim`, with `Δt` relaxation when hardware constraints bite, and shared
//!    across the segments of time-dependent targets.
//! 5. **Accuracy refinement** ([`refine`]) — one L1 re-optimization of the
//!    dynamic synthesized variables against the achieved fixed ones.
//!
//! The main entry point is [`QTurboCompiler`].
//!
//! ```
//! use qturbo::QTurboCompiler;
//! use qturbo_aais::rydberg::{rydberg_aais, RydbergOptions};
//! use qturbo_hamiltonian::models::ising_chain;
//!
//! // The paper's running example: a 3-qubit Ising chain on a Rydberg device.
//! let aais = rydberg_aais(3, &RydbergOptions::default());
//! let result = QTurboCompiler::new()
//!     .compile(&ising_chain(3, 1.0, 1.0), 1.0, &aais)
//!     .unwrap();
//! assert!(result.execution_time < 1.0); // shorter than the target evolution
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod compiler;
pub mod components;
pub mod error;
pub mod linear_system;
pub mod local_system;
pub mod mapping;
pub mod metrics;
pub mod refine;

pub use compiler::{
    CompilationResult, CompilationStats, CompilerOptions, MappingStrategy, QTurboCompiler,
};
pub use error::CompileError;
pub use linear_system::GlobalLinearSystem;
pub use mapping::Mapping;
