//! Target-qubit to device-site mapping (paper §7.3, Fig. 5a).
//!
//! The physics models of Table 2 have regular coupling structures (chains,
//! cycles), so mapping is not the compilation bottleneck; like the paper we
//! adopt a simple layout strategy: either the identity, an explicit
//! user-provided permutation, or a greedy path ordering of the interaction
//! graph that places strongly coupled qubits on adjacent device sites.

use crate::error::CompileError;
use qturbo_hamiltonian::{Hamiltonian, PauliString};
use std::collections::{BTreeMap, BTreeSet};

/// A qubit-to-site assignment: target qubit `q` is placed on device site
/// `sites()[q]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mapping {
    sites: Vec<usize>,
}

impl Mapping {
    /// The identity mapping on `n` qubits.
    pub fn identity(n: usize) -> Self {
        Mapping {
            sites: (0..n).collect(),
        }
    }

    /// Builds a mapping from an explicit permutation (target qubit → site).
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::InvalidMapping`] if the assignment contains a
    /// duplicate site.
    pub fn from_assignment(sites: Vec<usize>) -> Result<Self, CompileError> {
        let unique: BTreeSet<usize> = sites.iter().copied().collect();
        if unique.len() != sites.len() {
            return Err(CompileError::InvalidMapping {
                reason: "duplicate device site in assignment".to_string(),
            });
        }
        Ok(Mapping { sites })
    }

    /// The site assigned to each target qubit.
    pub fn sites(&self) -> &[usize] {
        &self.sites
    }

    /// Number of mapped qubits.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Returns `true` for the empty mapping.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Largest device site used by the mapping.
    pub fn max_site(&self) -> Option<usize> {
        self.sites.iter().max().copied()
    }

    /// Returns `true` when the mapping leaves every qubit in place.
    pub fn is_identity(&self) -> bool {
        self.sites.iter().enumerate().all(|(q, &s)| q == s)
    }

    /// Relabels a target Hamiltonian into the device frame.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::InvalidMapping`] if the Hamiltonian touches a
    /// qubit the mapping does not cover or the mapping needs more sites than
    /// `device_sites`.
    pub fn apply(
        &self,
        target: &Hamiltonian,
        device_sites: usize,
    ) -> Result<Hamiltonian, CompileError> {
        if let Some(max_site) = self.max_site() {
            if max_site >= device_sites {
                return Err(CompileError::InvalidMapping {
                    reason: format!(
                        "mapping uses site {max_site} but the device has {device_sites}"
                    ),
                });
            }
        }
        let mut mapped = Hamiltonian::new(device_sites);
        for (coefficient, string) in target.terms() {
            let relabeled: Result<Vec<(usize, qturbo_hamiltonian::Pauli)>, CompileError> = string
                .iter()
                .map(|(qubit, op)| {
                    self.sites
                        .get(qubit)
                        .copied()
                        .map(|site| (site, op))
                        .ok_or_else(|| CompileError::InvalidMapping {
                            reason: format!("target qubit {qubit} is not mapped"),
                        })
                })
                .collect();
            mapped.add_term(coefficient, PauliString::from_ops(relabeled?));
        }
        Ok(mapped)
    }
}

/// Greedy path mapping: orders the target qubits along a path of the
/// interaction graph (strongest couplings first) and assigns them to device
/// sites `0, 1, 2, …` in that order. For chains and cycles this recovers the
/// natural embedding regardless of how the input qubits were numbered.
pub fn greedy_line_mapping(target: &Hamiltonian) -> Mapping {
    let n = target.num_qubits();
    // Build the weighted interaction graph from two-qubit terms.
    let mut weight: BTreeMap<(usize, usize), f64> = BTreeMap::new();
    for (coefficient, string) in target.terms() {
        let support = string.support();
        if support.len() == 2 {
            let key = (support[0].min(support[1]), support[0].max(support[1]));
            *weight.entry(key).or_insert(0.0) += coefficient.abs();
        }
    }
    let mut adjacency: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for (&(a, b), &w) in &weight {
        adjacency[a].push((b, w));
        adjacency[b].push((a, w));
    }
    for neighbours in &mut adjacency {
        neighbours.sort_by(|x, y| y.1.partial_cmp(&x.1).unwrap_or(std::cmp::Ordering::Equal));
    }

    // Start from a vertex of minimal degree (an endpoint for chains) and walk
    // greedily to the strongest-coupled unvisited neighbour.
    let start = (0..n).min_by_key(|&q| adjacency[q].len()).unwrap_or(0);
    let mut order = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut current = start;
    visited[start] = true;
    order.push(start);
    while order.len() < n {
        let next = adjacency[current]
            .iter()
            .find(|(q, _)| !visited[*q])
            .map(|(q, _)| *q)
            .or_else(|| (0..n).find(|&q| !visited[q]));
        match next {
            Some(q) => {
                visited[q] = true;
                order.push(q);
                current = q;
            }
            None => break,
        }
    }

    // order[k] is the target qubit placed on site k; invert it.
    let mut sites = vec![0usize; n];
    for (site, &qubit) in order.iter().enumerate() {
        sites[qubit] = site;
    }
    Mapping { sites }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qturbo_hamiltonian::models::{ising_chain, ising_cycle};
    use qturbo_hamiltonian::Pauli;

    #[test]
    fn identity_mapping_roundtrip() {
        let mapping = Mapping::identity(4);
        assert!(mapping.is_identity());
        assert_eq!(mapping.len(), 4);
        assert!(!mapping.is_empty());
        assert_eq!(mapping.max_site(), Some(3));
        let target = ising_chain(4, 1.0, 1.0);
        let mapped = mapping.apply(&target, 4).unwrap();
        assert_eq!(mapped, target);
    }

    #[test]
    fn permutation_relabels_terms() {
        // Swap qubits 0 and 2 of a 3-qubit chain.
        let mapping = Mapping::from_assignment(vec![2, 1, 0]).unwrap();
        assert!(!mapping.is_identity());
        let target = ising_chain(3, 1.0, 0.5);
        let mapped = mapping.apply(&target, 3).unwrap();
        // Z0Z1 becomes Z2Z1, i.e. Z1Z2 in canonical order.
        assert_eq!(
            mapped.coefficient(&PauliString::two(1, Pauli::Z, 2, Pauli::Z)),
            1.0
        );
        assert_eq!(mapped.coefficient(&PauliString::single(2, Pauli::X)), 0.5);
        assert_eq!(mapped.num_terms(), target.num_terms());
    }

    #[test]
    fn rejects_bad_assignments() {
        assert!(Mapping::from_assignment(vec![0, 0]).is_err());
        let mapping = Mapping::from_assignment(vec![0, 5]).unwrap();
        let target = ising_chain(2, 1.0, 1.0);
        assert!(mapping.apply(&target, 3).is_err());
        let short = Mapping::identity(1);
        assert!(short.apply(&target, 3).is_err());
    }

    #[test]
    fn greedy_mapping_unscrambles_a_shuffled_chain() {
        // Build a chain whose qubit labels are shuffled: couplings
        // 2-0, 0-3, 3-1 form the path 2-0-3-1.
        let mut target = Hamiltonian::new(4);
        for (a, b) in [(2usize, 0usize), (0, 3), (3, 1)] {
            target.add_term(1.0, PauliString::two(a, Pauli::Z, b, Pauli::Z));
        }
        for i in 0..4 {
            target.add_term(1.0, PauliString::single(i, Pauli::X));
        }
        let mapping = greedy_line_mapping(&target);
        let mapped = mapping.apply(&target, 4).unwrap();
        // After mapping, every coupling must be between adjacent sites.
        for (_, string) in mapped.terms() {
            let support = string.support();
            if support.len() == 2 {
                assert_eq!(support[1] - support[0], 1, "non-adjacent coupling {string}");
            }
        }
    }

    #[test]
    fn greedy_mapping_keeps_cycles_almost_adjacent() {
        let target = ising_cycle(6, 1.0, 1.0);
        let mapping = greedy_line_mapping(&target);
        let mapped = mapping.apply(&target, 6).unwrap();
        // A cycle mapped onto a line has exactly one long (closing) edge.
        let mut long_edges = 0;
        for (_, string) in mapped.terms() {
            let support = string.support();
            if support.len() == 2 && support[1] - support[0] > 1 {
                long_edges += 1;
            }
        }
        assert_eq!(long_edges, 1);
    }

    #[test]
    fn greedy_mapping_of_identity_chain_is_identity() {
        let target = ising_chain(5, 1.0, 1.0);
        let mapping = greedy_line_mapping(&target);
        let mapped = mapping.apply(&target, 5).unwrap();
        assert_eq!(mapped, target);
    }
}
