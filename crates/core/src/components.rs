//! Localization: grouping synthesized variables into independent local
//! systems (paper §4.2).
//!
//! Two synthesized variables belong to the same *local mixed system* when
//! their generator expressions share an amplitude variable (e.g. two Van der
//! Waals pairs sharing an atom position). Identifying these groups is a
//! connected-components problem on the bipartite graph of synthesized
//! variables and amplitude variables; each group can then be solved
//! independently, which is what makes QTurbo fast.

use qturbo_aais::{Aais, GeneratorRef, InstructionKind, VariableId, VariableKind};
use std::collections::BTreeMap;

/// A connected component of the synthesized-variable ↔ amplitude-variable
/// graph: one localized mixed equation system.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalComponent {
    /// Generator references (synthesized variables) in this component, in
    /// global column order.
    pub generators: Vec<GeneratorRef>,
    /// Amplitude variables appearing in the component.
    pub variables: Vec<VariableId>,
    /// Instruction indices participating in the component.
    pub instructions: Vec<usize>,
    /// Whether the component contains any runtime-fixed variable.
    pub has_fixed_variables: bool,
    /// Whether the component contains any runtime-dynamic variable.
    pub has_dynamic_variables: bool,
}

impl LocalComponent {
    /// A component is *dynamic* when it is controlled purely by
    /// runtime-dynamic variables; such components participate in the
    /// evolution-time optimization of paper §5.1.
    pub fn is_dynamic(&self) -> bool {
        self.has_dynamic_variables && !self.has_fixed_variables
    }

    /// A component is *fixed* when it involves at least one runtime-fixed
    /// variable; it is solved after the evolution time has been chosen
    /// (paper §5.2).
    pub fn is_fixed(&self) -> bool {
        self.has_fixed_variables
    }
}

/// Simple union–find structure.
#[derive(Debug)]
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// Partitions the generators of an AAIS into local components.
///
/// When `localize` is `false` every generator is put into a single component;
/// this is the ablation mode that mimics solving one big mixed system after
/// the linear stage.
pub fn partition(aais: &Aais, localize: bool) -> Vec<LocalComponent> {
    let generator_refs = aais.generator_refs();
    if generator_refs.is_empty() {
        return Vec::new();
    }
    let n = generator_refs.len();
    let mut union_find = UnionFind::new(n);

    if localize {
        // Union generators that share at least one amplitude variable.
        let mut first_seen: BTreeMap<VariableId, usize> = BTreeMap::new();
        for (index, gref) in generator_refs.iter().enumerate() {
            let expr_vars = aais.generator(*gref).expr().variables();
            // Generators of the same instruction always belong together, even
            // if one of them happens to reference fewer variables.
            for var in aais.instruction_of(*gref).variables() {
                if expr_vars.contains(var)
                    || aais.instruction_of(*gref).time_critical() == Some(*var)
                {
                    match first_seen.get(var) {
                        Some(&other) => union_find.union(index, other),
                        None => {
                            first_seen.insert(*var, index);
                        }
                    }
                }
            }
        }
        // Generators belonging to the same instruction are also coupled.
        let mut first_of_instruction: BTreeMap<usize, usize> = BTreeMap::new();
        for (index, gref) in generator_refs.iter().enumerate() {
            match first_of_instruction.get(&gref.instruction) {
                Some(&other) => union_find.union(index, other),
                None => {
                    first_of_instruction.insert(gref.instruction, index);
                }
            }
        }
    } else {
        for index in 1..n {
            union_find.union(0, index);
        }
    }

    // Gather components.
    let mut by_root: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for index in 0..n {
        let root = union_find.find(index);
        by_root.entry(root).or_default().push(index);
    }

    let mut components = Vec::new();
    for indices in by_root.values() {
        let generators: Vec<GeneratorRef> = indices.iter().map(|&i| generator_refs[i]).collect();
        let mut variables = std::collections::BTreeSet::new();
        let mut instructions = std::collections::BTreeSet::new();
        for gref in &generators {
            instructions.insert(gref.instruction);
            for var in aais.instruction_of(*gref).variables() {
                variables.insert(*var);
            }
        }
        let has_fixed_variables = variables
            .iter()
            .any(|v| aais.registry().get(*v).kind() == VariableKind::RuntimeFixed);
        let has_dynamic_variables = variables
            .iter()
            .any(|v| aais.registry().get(*v).kind() == VariableKind::RuntimeDynamic);
        components.push(LocalComponent {
            generators,
            variables: variables.into_iter().collect(),
            instructions: instructions.into_iter().collect(),
            has_fixed_variables,
            has_dynamic_variables,
        });
    }
    components
}

/// Returns, for every instruction index, whether the instruction is dynamic.
pub fn dynamic_instruction_mask(aais: &Aais) -> Vec<bool> {
    aais.instructions()
        .iter()
        .map(|i| i.kind() == InstructionKind::Dynamic)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qturbo_aais::heisenberg::{heisenberg_aais, HeisenbergOptions};
    use qturbo_aais::rydberg::{rydberg_aais, RydbergOptions};

    #[test]
    fn rydberg_chain_partitions_as_in_the_paper() {
        // Three atoms, all pairs: the three vdW generators share atom
        // positions and form ONE fixed component; each detuning is its own
        // component; each Rabi drive (two generators) is its own component.
        let aais = rydberg_aais(
            3,
            &RydbergOptions {
                interaction_cutoff: None,
                ..RydbergOptions::default()
            },
        );
        let components = partition(&aais, true);
        let fixed: Vec<_> = components.iter().filter(|c| c.is_fixed()).collect();
        let dynamic: Vec<_> = components.iter().filter(|c| c.is_dynamic()).collect();
        assert_eq!(fixed.len(), 1);
        assert_eq!(fixed[0].generators.len(), 3);
        assert_eq!(dynamic.len(), 6); // 3 detunings + 3 Rabi drives
        let rabi_components: Vec<_> = dynamic.iter().filter(|c| c.generators.len() == 2).collect();
        assert_eq!(rabi_components.len(), 3);
        // Total generators are conserved.
        let total: usize = components.iter().map(|c| c.generators.len()).sum();
        assert_eq!(total, aais.generator_refs().len());
    }

    #[test]
    fn heisenberg_components_are_all_singletons() {
        let aais = heisenberg_aais(4, &HeisenbergOptions::default());
        let components = partition(&aais, true);
        assert_eq!(components.len(), aais.instructions().len());
        assert!(components.iter().all(|c| c.is_dynamic()));
        assert!(components.iter().all(|c| c.generators.len() == 1));
        assert!(components.iter().all(|c| c.instructions.len() == 1));
    }

    #[test]
    fn disabling_localization_gives_one_component() {
        let aais = rydberg_aais(4, &RydbergOptions::default());
        let components = partition(&aais, false);
        assert_eq!(components.len(), 1);
        assert_eq!(components[0].generators.len(), aais.generator_refs().len());
        assert!(components[0].has_fixed_variables);
        assert!(components[0].has_dynamic_variables);
        assert!(!components[0].is_dynamic());
        assert!(components[0].is_fixed());
    }

    #[test]
    fn interaction_cutoff_splits_fixed_components_for_disjoint_pairs() {
        // With only nearest-neighbour pairs on 4 atoms in a line, the vdW
        // generators still chain into one component through shared atoms.
        let aais = rydberg_aais(
            4,
            &RydbergOptions {
                interaction_cutoff: Some(1),
                ..RydbergOptions::default()
            },
        );
        let components = partition(&aais, true);
        let fixed: Vec<_> = components.iter().filter(|c| c.is_fixed()).collect();
        assert_eq!(fixed.len(), 1);
        assert_eq!(fixed[0].generators.len(), 3);
        // 4 atoms * 2 coordinates.
        assert_eq!(fixed[0].variables.len(), 8);
    }

    #[test]
    fn dynamic_mask_matches_instruction_kinds() {
        let aais = rydberg_aais(3, &RydbergOptions::default());
        let mask = dynamic_instruction_mask(&aais);
        let n_dynamic = mask.iter().filter(|&&d| d).count();
        assert_eq!(n_dynamic, 6); // 3 detunings + 3 Rabi
        assert_eq!(mask.len(), aais.instructions().len());
    }
}
