//! The global linear equation system over synthesized variables (paper §4.1).
//!
//! Every generator of the AAIS defines one *synthesized variable*
//! `α_k = g_k(x) · T_sim`. Matching the simulator evolution with the target
//! evolution term-by-term gives a **linear** system `M·α = B_tar`, where the
//! rows range over all Hamiltonian terms the target requires or the device can
//! produce, and `M` holds the (constant) effect weights of each generator.
//! Solving this linear system is cheap; the nonlinear work is deferred to the
//! localized mixed systems of [`crate::components`].

use crate::error::CompileError;
use qturbo_aais::{Aais, GeneratorRef};
use qturbo_hamiltonian::{Hamiltonian, PauliString};
use qturbo_math::{linear, Matrix, Vector};
use std::collections::BTreeMap;

/// The global linear system `M·α = B_tar` for one target segment.
#[derive(Debug, Clone)]
pub struct GlobalLinearSystem {
    /// Row index of every Hamiltonian term.
    term_index: BTreeMap<PauliString, usize>,
    /// Terms in row order.
    terms: Vec<PauliString>,
    /// Synthesized-variable (column) order: one generator reference per column.
    columns: Vec<GeneratorRef>,
    /// The coefficient matrix `M`.
    matrix: Matrix,
    /// The right-hand side `B_tar` (target coefficient × target time).
    rhs: Vector,
    /// Total `L1` weight of target terms the device cannot produce at all;
    /// these rows are excluded from the solve and reported as irreducible
    /// compilation error.
    unrealizable_error: f64,
    /// The unrealizable Pauli strings (for diagnostics).
    unrealizable_terms: Vec<PauliString>,
}

impl GlobalLinearSystem {
    /// Builds the system for a target Hamiltonian evolving for `target_time`.
    ///
    /// The target must already be expressed in the device frame (qubit
    /// indices are device sites).
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::EmptyTarget`] if the target has no
    /// (non-identity) terms and [`CompileError::TargetTooLarge`] if it
    /// addresses more qubits than the device has sites.
    pub fn build(
        aais: &Aais,
        target: &Hamiltonian,
        target_time: f64,
    ) -> Result<Self, CompileError> {
        if target.num_qubits() > aais.num_sites() {
            return Err(CompileError::TargetTooLarge {
                target_qubits: target.num_qubits(),
                device_sites: aais.num_sites(),
            });
        }
        if target.without_identity().is_empty() {
            return Err(CompileError::EmptyTarget);
        }
        if !(target_time.is_finite() && target_time > 0.0) {
            return Err(CompileError::InvalidTargetTime { time: target_time });
        }

        let producible = aais.producible_terms();

        // Row space: everything the device can produce plus every target term
        // it can produce. Target terms the device cannot touch are recorded as
        // unrealizable error instead of being forced into the least-squares
        // solve (where they would distort the realizable part).
        let mut term_index = BTreeMap::new();
        let mut terms = Vec::new();
        let push_term = |string: &PauliString,
                         term_index: &mut BTreeMap<PauliString, usize>,
                         terms: &mut Vec<PauliString>| {
            if !term_index.contains_key(string) {
                term_index.insert(string.clone(), terms.len());
                terms.push(string.clone());
            }
        };
        for string in &producible {
            push_term(string, &mut term_index, &mut terms);
        }
        let mut unrealizable_error = 0.0;
        let mut unrealizable_terms = Vec::new();
        for (coefficient, string) in target.terms() {
            if string.is_identity() {
                continue;
            }
            if producible.contains(string) {
                push_term(string, &mut term_index, &mut terms);
            } else {
                unrealizable_error += (coefficient * target_time).abs();
                unrealizable_terms.push(string.clone());
            }
        }

        let columns = aais.generator_refs();
        let mut matrix = Matrix::zeros(terms.len(), columns.len());
        for (col, generator_ref) in columns.iter().enumerate() {
            let generator = aais.generator(*generator_ref);
            for (string, weight) in generator.effects() {
                let row = term_index[string];
                matrix[(row, col)] += *weight;
            }
        }

        let mut rhs = Vector::zeros(terms.len());
        for (coefficient, string) in target.terms() {
            if string.is_identity() {
                continue;
            }
            if let Some(&row) = term_index.get(string) {
                rhs[row] = coefficient * target_time;
            }
        }

        Ok(GlobalLinearSystem {
            term_index,
            terms,
            columns,
            matrix,
            rhs,
            unrealizable_error,
            unrealizable_terms,
        })
    }

    /// The Hamiltonian terms, in row order.
    pub fn terms(&self) -> &[PauliString] {
        &self.terms
    }

    /// The synthesized-variable column order.
    pub fn columns(&self) -> &[GeneratorRef] {
        &self.columns
    }

    /// The coefficient matrix `M`.
    pub fn matrix(&self) -> &Matrix {
        &self.matrix
    }

    /// The right-hand side `B_tar`.
    pub fn rhs(&self) -> &Vector {
        &self.rhs
    }

    /// Row index of a Hamiltonian term, if present.
    pub fn row_of(&self, string: &PauliString) -> Option<usize> {
        self.term_index.get(string).copied()
    }

    /// Total L1 weight of target terms the device cannot produce.
    pub fn unrealizable_error(&self) -> f64 {
        self.unrealizable_error
    }

    /// Target terms that no instruction can produce.
    pub fn unrealizable_terms(&self) -> &[PauliString] {
        &self.unrealizable_terms
    }

    /// Solves the linear system for the synthesized variables `α`.
    ///
    /// An exact solution is returned when one exists; otherwise the
    /// least-squares solution minimizing the residual.
    ///
    /// # Errors
    ///
    /// Propagates numerical failures as [`CompileError::Numerical`].
    pub fn solve(&self) -> Result<Vector, CompileError> {
        Ok(linear::min_norm_solve(&self.matrix, &self.rhs)?)
    }

    /// `‖M‖₁`, the induced L1 norm that appears in Theorem 1's error bound.
    pub fn matrix_norm_l1(&self) -> f64 {
        self.matrix.norm_l1()
    }

    /// The residual `M·α − B_tar` for a given synthesized-variable assignment.
    pub fn residual(&self, alpha: &Vector) -> Vector {
        self.matrix.mul_vector(alpha) - self.rhs.clone()
    }

    /// L1 norm of the residual plus the unrealizable-term error — the paper's
    /// absolute compilation error `E = ‖B_sim − B_tar‖₁` (Equation 9).
    pub fn absolute_error(&self, alpha: &Vector) -> f64 {
        self.residual(alpha).norm_l1() + self.unrealizable_error
    }

    /// `‖B_tar‖₁` including unrealizable terms; the denominator of the paper's
    /// relative-error metric.
    pub fn target_norm_l1(&self) -> f64 {
        self.rhs.norm_l1() + self.unrealizable_error
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qturbo_aais::heisenberg::{heisenberg_aais, HeisenbergOptions};
    use qturbo_aais::rydberg::{rydberg_aais, RydbergOptions};
    use qturbo_hamiltonian::models::{heisenberg_chain, ising_chain};
    use qturbo_hamiltonian::Pauli;

    #[test]
    fn reproduces_paper_running_example_dimensions() {
        // Three-qubit Ising chain on a three-atom Rydberg device with all
        // pairs included: 12 synthesized variables (3 vdW + 3 detuning +
        // 3 cos-Rabi + 3 sin-Rabi), and rows for ZZ(3) + Z(3) + X(3) + Y(3).
        let aais = rydberg_aais(
            3,
            &RydbergOptions {
                interaction_cutoff: None,
                ..RydbergOptions::default()
            },
        );
        let target = ising_chain(3, 1.0, 1.0);
        let system = GlobalLinearSystem::build(&aais, &target, 1.0).unwrap();
        assert_eq!(system.columns().len(), 12);
        assert_eq!(system.terms().len(), 12);
        assert_eq!(system.unrealizable_error(), 0.0);

        let alpha = system.solve().unwrap();
        // Read off the solution in the paper's alpha ordering by inspecting
        // the generator columns through their instruction names.
        let mut by_name = std::collections::BTreeMap::new();
        for (col, gref) in system.columns().iter().enumerate() {
            let name = aais.instruction_of(*gref).name().to_string();
            by_name.entry((name, gref.generator)).or_insert(alpha[col]);
        }
        // vdW pairs (0,1) and (1,2) must reach 1.0·T_tar, pair (0,2) must be 0.
        assert!((by_name[&("vdw_0_1".to_string(), 0)] - 1.0).abs() < 1e-9);
        assert!((by_name[&("vdw_1_2".to_string(), 0)] - 1.0).abs() < 1e-9);
        assert!(by_name[&("vdw_0_2".to_string(), 0)].abs() < 1e-9);
        // Detunings compensate the vdW Z-terms: paper's α4 = 1, α5 = 2, α6 = 1.
        assert!((by_name[&("detuning_0".to_string(), 0)] - 1.0).abs() < 1e-9);
        assert!((by_name[&("detuning_1".to_string(), 0)] - 2.0).abs() < 1e-9);
        assert!((by_name[&("detuning_2".to_string(), 0)] - 1.0).abs() < 1e-9);
        // Rabi cosine generators carry the X fields, sine generators are zero.
        assert!((by_name[&("rabi_0".to_string(), 0)] - 1.0).abs() < 1e-9);
        assert!(by_name[&("rabi_0".to_string(), 1)].abs() < 1e-9);

        // The residual of the solution is zero and the error metric agrees.
        assert!(system.absolute_error(&alpha) < 1e-9);
        assert!(system.target_norm_l1() > 0.0);
        assert!(system.matrix_norm_l1() >= 1.0);
    }

    #[test]
    fn heisenberg_device_solves_heisenberg_chain_exactly() {
        let aais = heisenberg_aais(4, &HeisenbergOptions::default());
        let target = heisenberg_chain(4, 1.0, 1.0);
        let system = GlobalLinearSystem::build(&aais, &target, 1.0).unwrap();
        let alpha = system.solve().unwrap();
        assert!(system.absolute_error(&alpha) < 1e-9);
        assert_eq!(system.unrealizable_terms().len(), 0);
    }

    #[test]
    fn unrealizable_terms_are_reported_not_forced() {
        // An Ising cycle on a chain-connected Heisenberg device: the closing
        // ZZ bond cannot be produced.
        let aais = heisenberg_aais(4, &HeisenbergOptions::default());
        let target = qturbo_hamiltonian::models::ising_cycle(4, 1.0, 1.0);
        let system = GlobalLinearSystem::build(&aais, &target, 2.0).unwrap();
        assert_eq!(system.unrealizable_terms().len(), 1);
        assert!((system.unrealizable_error() - 2.0).abs() < 1e-12);
        let alpha = system.solve().unwrap();
        // The realizable part is still solved exactly.
        assert!((system.absolute_error(&alpha) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_targets() {
        let aais = heisenberg_aais(2, &HeisenbergOptions::default());
        let too_large = ising_chain(5, 1.0, 1.0);
        assert!(matches!(
            GlobalLinearSystem::build(&aais, &too_large, 1.0),
            Err(CompileError::TargetTooLarge { .. })
        ));
        let empty = Hamiltonian::new(2);
        assert!(matches!(
            GlobalLinearSystem::build(&aais, &empty, 1.0),
            Err(CompileError::EmptyTarget)
        ));
        let ok_target = ising_chain(2, 1.0, 1.0);
        assert!(matches!(
            GlobalLinearSystem::build(&aais, &ok_target, 0.0),
            Err(CompileError::InvalidTargetTime { .. })
        ));
    }

    #[test]
    fn row_lookup_and_rhs_scaling() {
        let aais = heisenberg_aais(3, &HeisenbergOptions::default());
        let target = ising_chain(3, 2.0, 0.5);
        let system = GlobalLinearSystem::build(&aais, &target, 3.0).unwrap();
        let zz_row = system
            .row_of(&PauliString::two(0, Pauli::Z, 1, Pauli::Z))
            .expect("ZZ row exists");
        assert!((system.rhs()[zz_row] - 6.0).abs() < 1e-12);
        let x_row = system.row_of(&PauliString::single(2, Pauli::X)).unwrap();
        assert!((system.rhs()[x_row] - 1.5).abs() < 1e-12);
        assert!(system.row_of(&PauliString::single(0, Pauli::I)).is_none());
    }
}
