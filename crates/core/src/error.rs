//! Error type of the QTurbo compiler.

use qturbo_aais::AaisError;
use qturbo_math::MathError;

/// Errors produced by the QTurbo compilation pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The target Hamiltonian acts on more qubits than the device has sites.
    TargetTooLarge {
        /// Qubits required by the target.
        target_qubits: usize,
        /// Sites available on the device.
        device_sites: usize,
    },
    /// The target (or one of its segments) is empty.
    EmptyTarget,
    /// The target evolution time is not positive.
    InvalidTargetTime {
        /// The offending time value.
        time: f64,
    },
    /// The provided qubit-to-site mapping is not a permutation of the right size.
    InvalidMapping {
        /// Explanation of the problem.
        reason: String,
    },
    /// Even at maximum instruction amplitudes, the required evolution cannot
    /// fit within the device's maximum evolution time.
    EvolutionTimeExceedsDevice {
        /// Shortest machine time able to realize the target.
        required: f64,
        /// Device maximum.
        maximum: f64,
    },
    /// A nonlinear local system failed to produce a usable solution.
    LocalSolveFailed {
        /// Name of the instruction or component that failed.
        component: String,
        /// Residual L1 error at the failure point.
        residual: f64,
    },
    /// The compiled schedule violates a device constraint that could not be
    /// repaired by relaxing the evolution time.
    DeviceConstraint(AaisError),
    /// An underlying numerical routine failed.
    Numerical(MathError),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::TargetTooLarge { target_qubits, device_sites } => write!(
                f,
                "target needs {target_qubits} qubits but the device has only {device_sites} sites"
            ),
            CompileError::EmptyTarget => write!(f, "target Hamiltonian has no terms"),
            CompileError::InvalidTargetTime { time } => {
                write!(f, "target evolution time {time} must be positive")
            }
            CompileError::InvalidMapping { reason } => write!(f, "invalid mapping: {reason}"),
            CompileError::EvolutionTimeExceedsDevice { required, maximum } => write!(
                f,
                "the target requires at least {required} machine time but the device allows {maximum}"
            ),
            CompileError::LocalSolveFailed { component, residual } => {
                write!(f, "local system '{component}' could not be solved (residual {residual:.3e})")
            }
            CompileError::DeviceConstraint(inner) => write!(f, "device constraint violated: {inner}"),
            CompileError::Numerical(inner) => write!(f, "numerical failure: {inner}"),
        }
    }
}

impl std::error::Error for CompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompileError::DeviceConstraint(inner) => Some(inner),
            CompileError::Numerical(inner) => Some(inner),
            _ => None,
        }
    }
}

impl From<MathError> for CompileError {
    fn from(err: MathError) -> Self {
        CompileError::Numerical(err)
    }
}

impl From<AaisError> for CompileError {
    fn from(err: AaisError) -> Self {
        CompileError::DeviceConstraint(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CompileError::TargetTooLarge {
            target_qubits: 5,
            device_sites: 3,
        };
        assert!(e.to_string().contains('5'));
        assert!(e.to_string().contains('3'));
        assert!(CompileError::EmptyTarget.to_string().contains("no terms"));
        let e = CompileError::EvolutionTimeExceedsDevice {
            required: 8.0,
            maximum: 4.0,
        };
        assert!(e.to_string().contains('8'));
        let e = CompileError::LocalSolveFailed {
            component: "rabi_1".into(),
            residual: 0.5,
        };
        assert!(e.to_string().contains("rabi_1"));
        let e = CompileError::InvalidMapping {
            reason: "duplicate site".into(),
        };
        assert!(e.to_string().contains("duplicate"));
        let e = CompileError::InvalidTargetTime { time: -1.0 };
        assert!(e.to_string().contains("-1"));
    }

    #[test]
    fn conversions_preserve_source() {
        use std::error::Error;
        let e: CompileError = MathError::SingularMatrix.into();
        assert!(e.source().is_some());
        let e: CompileError = AaisError::EvolutionTooLong {
            requested: 5.0,
            maximum: 4.0,
        }
        .into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("device constraint"));
        assert!(CompileError::EmptyTarget.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CompileError>();
    }
}
