//! The Heisenberg AAIS: superconducting / trapped-ion style analog simulators
//! (paper §2.1.2).
//!
//! Instruction set: `{ a_{P_i} · P_i,  a_{P_iP_j} · P_iP_j }` with `P ∈ {X, Y, Z}`
//! and the two-qubit instructions restricted to the device connectivity. All
//! amplitudes are runtime-dynamic and each amplitude is the time-critical
//! variable of its own instruction.
//!
//! The amplitude bounds default to values representative of the pulse-level
//! calibrations the paper cites (Qiskit Experiments / IonQ); absolute numbers
//! only set the scale of the machine evolution time, not the comparison shape.

use crate::aais::{Aais, AaisError};
use crate::expr::Expr;
use crate::instruction::{Generator, Instruction, InstructionKind};
use crate::variable::{VariableKind, VariableRegistry};
use qturbo_hamiltonian::{Pauli, PauliString};

/// Which qubit pairs support two-qubit instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Connectivity {
    /// Nearest-neighbour chain `(i, i+1)`.
    Chain,
    /// Nearest-neighbour cycle `(i, i+1 mod N)`.
    Cycle,
    /// An explicit edge list.
    Custom(Vec<(usize, usize)>),
}

impl Connectivity {
    /// The edge list for a device with `num_qubits` qubits.
    pub fn edges(&self, num_qubits: usize) -> Vec<(usize, usize)> {
        match self {
            Connectivity::Chain => (0..num_qubits.saturating_sub(1))
                .map(|i| (i, i + 1))
                .collect(),
            Connectivity::Cycle => (0..num_qubits).map(|i| (i, (i + 1) % num_qubits)).collect(),
            Connectivity::Custom(edges) => edges.clone(),
        }
    }
}

/// Configuration of the Heisenberg AAIS.
#[derive(Debug, Clone, PartialEq)]
pub struct HeisenbergOptions {
    /// Maximum magnitude of single-qubit amplitudes `a_{P_i}` (MHz).
    pub single_qubit_max: f64,
    /// Maximum magnitude of two-qubit amplitudes `a_{P_iP_j}` (MHz).
    pub two_qubit_max: f64,
    /// Maximum machine evolution time (µs).
    pub max_evolution_time: f64,
    /// Two-qubit connectivity of the device.
    pub connectivity: Connectivity,
}

impl Default for HeisenbergOptions {
    fn default() -> Self {
        HeisenbergOptions {
            single_qubit_max: 20.0,
            two_qubit_max: 2.0,
            max_evolution_time: 100.0,
            connectivity: Connectivity::Chain,
        }
    }
}

impl HeisenbergOptions {
    /// Options with a cyclic connectivity, used when the target model is a
    /// ring (e.g. the Ising cycle benchmarks).
    pub fn with_cycle_connectivity() -> Self {
        HeisenbergOptions {
            connectivity: Connectivity::Cycle,
            ..HeisenbergOptions::default()
        }
    }
}

/// Builds the Heisenberg AAIS for `num_qubits` qubits.
///
/// # Panics
///
/// Panics if `num_qubits < 2` or the connectivity references qubits out of
/// range. Use [`try_heisenberg_aais`] to receive a typed error instead.
///
/// # Example
///
/// ```
/// use qturbo_aais::heisenberg::{heisenberg_aais, HeisenbergOptions};
/// let aais = heisenberg_aais(4, &HeisenbergOptions::default());
/// // 3 single-qubit instructions per qubit + 3 per chain edge.
/// assert_eq!(aais.instructions().len(), 4 * 3 + 3 * 3);
/// ```
pub fn heisenberg_aais(num_qubits: usize, options: &HeisenbergOptions) -> Aais {
    try_heisenberg_aais(num_qubits, options).unwrap_or_else(|error| panic!("{error}"))
}

/// Fallible variant of [`heisenberg_aais`].
///
/// # Errors
///
/// Returns [`AaisError::InvalidMachine`] when `num_qubits < 2`, the
/// connectivity references qubits out of range, or the options describe
/// unrealizable hardware bounds (e.g. a negative amplitude maximum).
pub fn try_heisenberg_aais(
    num_qubits: usize,
    options: &HeisenbergOptions,
) -> Result<Aais, AaisError> {
    if num_qubits < 2 {
        return Err(AaisError::InvalidMachine {
            reason: "a Heisenberg AAIS needs at least two qubits".to_string(),
        });
    }
    let mut registry = VariableRegistry::new();
    let mut instructions = Vec::new();

    for i in 0..num_qubits {
        for pauli in Pauli::NON_IDENTITY {
            let amplitude = registry.try_register(
                format!("a_{pauli}{i}"),
                VariableKind::RuntimeDynamic,
                -options.single_qubit_max,
                options.single_qubit_max,
                0.0,
            )?;
            let generator = Generator::try_new(
                Expr::var(amplitude),
                vec![(PauliString::single(i, pauli), 1.0)],
            )?;
            instructions.push(Instruction::try_new(
                format!("single_{pauli}_{i}"),
                InstructionKind::Dynamic,
                vec![amplitude],
                vec![generator],
                Some(amplitude),
            )?);
        }
    }

    for (i, j) in options.connectivity.edges(num_qubits) {
        if i >= num_qubits || j >= num_qubits || i == j {
            return Err(AaisError::InvalidMachine {
                reason: format!("invalid connectivity edge ({i}, {j})"),
            });
        }
        for pauli in Pauli::NON_IDENTITY {
            let amplitude = registry.try_register(
                format!("a_{pauli}{i}{pauli}{j}"),
                VariableKind::RuntimeDynamic,
                -options.two_qubit_max,
                options.two_qubit_max,
                0.0,
            )?;
            let generator = Generator::try_new(
                Expr::var(amplitude),
                vec![(PauliString::two(i, pauli, j, pauli), 1.0)],
            )?;
            instructions.push(Instruction::try_new(
                format!("coupling_{pauli}_{i}_{j}"),
                InstructionKind::Dynamic,
                vec![amplitude],
                vec![generator],
                Some(amplitude),
            )?);
        }
    }

    Aais::try_new(
        "heisenberg",
        num_qubits,
        registry,
        instructions,
        options.max_evolution_time,
        None,
        Vec::new(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_connectivity_counts() {
        let aais = heisenberg_aais(5, &HeisenbergOptions::default());
        assert_eq!(aais.instructions().len(), 5 * 3 + 4 * 3);
        assert_eq!(aais.num_sites(), 5);
        assert!(aais.fixed_variables().is_empty());
        assert_eq!(aais.dynamic_variables().len(), 5 * 3 + 4 * 3);
    }

    #[test]
    fn cycle_connectivity_adds_wraparound_edge() {
        let aais = heisenberg_aais(5, &HeisenbergOptions::with_cycle_connectivity());
        assert_eq!(aais.instructions().len(), 5 * 3 + 5 * 3);
        assert!(aais
            .instructions()
            .iter()
            .any(|i| i.name() == "coupling_Z_4_0"));
    }

    #[test]
    fn custom_connectivity() {
        let options = HeisenbergOptions {
            connectivity: Connectivity::Custom(vec![(0, 2)]),
            ..HeisenbergOptions::default()
        };
        let aais = heisenberg_aais(3, &options);
        assert_eq!(aais.instructions().len(), 3 * 3 + 3);
        assert_eq!(Connectivity::Custom(vec![(0, 2)]).edges(3), vec![(0, 2)]);
    }

    #[test]
    fn hamiltonian_evaluation_is_linear_in_amplitudes() {
        let aais = heisenberg_aais(2, &HeisenbergOptions::default());
        let mut values = aais.default_values();
        let a_x0 = aais
            .registry()
            .iter()
            .find(|v| v.name() == "a_X0")
            .unwrap()
            .id()
            .index();
        let a_zz = aais
            .registry()
            .iter()
            .find(|v| v.name() == "a_Z0Z1")
            .unwrap()
            .id()
            .index();
        values[a_x0] = 1.5;
        values[a_zz] = -0.75;
        let h = aais.hamiltonian(&values).unwrap();
        assert_eq!(h.coefficient(&PauliString::single(0, Pauli::X)), 1.5);
        assert_eq!(
            h.coefficient(&PauliString::two(0, Pauli::Z, 1, Pauli::Z)),
            -0.75
        );
    }

    #[test]
    fn bounds_follow_options() {
        let options = HeisenbergOptions {
            single_qubit_max: 7.0,
            two_qubit_max: 0.5,
            ..HeisenbergOptions::default()
        };
        let aais = heisenberg_aais(3, &options);
        let single = aais.registry().iter().find(|v| v.name() == "a_Y1").unwrap();
        assert_eq!(single.upper(), 7.0);
        assert_eq!(single.lower(), -7.0);
        let pair = aais
            .registry()
            .iter()
            .find(|v| v.name() == "a_X1X2")
            .unwrap();
        assert_eq!(pair.upper(), 0.5);
    }

    #[test]
    fn every_instruction_has_a_time_critical_variable() {
        let aais = heisenberg_aais(4, &HeisenbergOptions::default());
        assert!(aais
            .instructions()
            .iter()
            .all(|i| i.time_critical().is_some()));
        assert!(aais
            .instructions()
            .iter()
            .all(|i| i.kind() == InstructionKind::Dynamic));
    }

    #[test]
    #[should_panic(expected = "at least two qubits")]
    fn rejects_single_qubit_device() {
        let _ = heisenberg_aais(1, &HeisenbergOptions::default());
    }

    #[test]
    fn try_builder_returns_typed_errors() {
        let err = try_heisenberg_aais(1, &HeisenbergOptions::default()).unwrap_err();
        assert!(matches!(err, AaisError::InvalidMachine { .. }));
        assert!(err.to_string().contains("at least two qubits"));
        let options = HeisenbergOptions {
            connectivity: Connectivity::Custom(vec![(0, 0)]),
            ..HeisenbergOptions::default()
        };
        let err = try_heisenberg_aais(3, &options).unwrap_err();
        assert!(err.to_string().contains("invalid connectivity edge"));
        let bad_bounds = HeisenbergOptions {
            two_qubit_max: -2.0,
            ..HeisenbergOptions::default()
        };
        assert!(try_heisenberg_aais(3, &bad_bounds).is_err());
        assert!(try_heisenberg_aais(3, &HeisenbergOptions::default()).is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid connectivity edge")]
    fn rejects_out_of_range_edges() {
        let options = HeisenbergOptions {
            connectivity: Connectivity::Custom(vec![(0, 9)]),
            ..HeisenbergOptions::default()
        };
        let _ = heisenberg_aais(3, &options);
    }
}
