//! The Rydberg AAIS: neutral-atom analog quantum simulators such as QuEra's
//! Aquila (paper §2.1.1).
//!
//! Instruction set (per atom `i`, atom pair `(i, j)`):
//!
//! * Van der Waals interaction `C6/|x_i − x_j|⁶ · n̂_i n̂_j` — controlled by the
//!   runtime-fixed atom positions,
//! * detuning `−Δ_i · n̂_i`,
//! * Rabi drive `Ω_i/2 · cos φ_i · X_i  −  Ω_i/2 · sin φ_i · Y_i`.
//!
//! Expanding `n̂ = (I − Z)/2` gives the generator effects used below; identity
//! contributions are dropped as a global phase.
//!
//! ## Substitutions relative to the physical Aquila device
//!
//! * Atom positions may be laid out in 1-D or 2-D. The physical chamber is
//!   roughly 75 µm × 76 µm; for benchmark sizes that cannot geometrically fit
//!   (e.g. 93-atom chains) the position window is widened automatically and
//!   this is reported through [`RydbergOptions::position_window`].
//! * Van der Waals pairs beyond [`RydbergOptions::interaction_cutoff`] (in
//!   layout-graph distance) are truncated; at twice the nearest-neighbour
//!   spacing the coupling is already 64× weaker, and the paper's
//!   "Ising cycle +" model captures exactly that next-nearest tail.

use crate::aais::{Aais, AaisError};
use crate::expr::Expr;
use crate::instruction::{Generator, Instruction, InstructionKind};
use crate::variable::{VariableId, VariableKind, VariableRegistry};
use qturbo_hamiltonian::{Pauli, PauliString};

/// Geometric layout hint used to seed the runtime-fixed position variables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Layout {
    /// Atoms on a straight line with the given initial spacing (µm).
    Line {
        /// Initial nearest-neighbour spacing in µm.
        spacing: f64,
    },
    /// Atoms on a ring with the given initial spacing (µm); requires 2-D.
    Ring {
        /// Initial nearest-neighbour spacing in µm.
        spacing: f64,
    },
}

/// Number of spatial dimensions of the atom positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dimensions {
    /// One-dimensional positions (the scalar case of the paper's examples).
    One,
    /// Two-dimensional positions (the physical Aquila geometry).
    Two,
}

/// Configuration of the Rydberg AAIS.
#[derive(Debug, Clone, PartialEq)]
pub struct RydbergOptions {
    /// Van der Waals coefficient `C6` (862 690 MHz·µm⁶ on Aquila).
    pub c6: f64,
    /// Maximum detuning magnitude `|Δ|` (MHz).
    pub delta_max: f64,
    /// Maximum Rabi amplitude `Ω` (MHz).
    pub omega_max: f64,
    /// Maximum machine evolution time (µs). Aquila allows 4 µs.
    pub max_evolution_time: f64,
    /// Minimum allowed spacing between atoms (µm).
    pub min_spacing: f64,
    /// Side length of the square position window (µm); `None` widens the
    /// physical 75 µm window automatically when the layout needs more room.
    pub position_window: Option<f64>,
    /// Van der Waals pairs farther apart than this in layout-graph distance
    /// are omitted from the instruction set; `None` keeps every pair.
    pub interaction_cutoff: Option<usize>,
    /// Initial geometric layout of the atoms.
    pub layout: Layout,
    /// Spatial dimensionality of the position variables.
    pub dimensions: Dimensions,
}

impl Default for RydbergOptions {
    fn default() -> Self {
        RydbergOptions {
            c6: 862_690.0,
            delta_max: 20.0,
            omega_max: 2.5,
            max_evolution_time: 4.0,
            min_spacing: 4.0,
            position_window: None,
            interaction_cutoff: Some(2),
            layout: Layout::Line { spacing: 9.0 },
            dimensions: Dimensions::Two,
        }
    }
}

impl RydbergOptions {
    /// Aquila-like options in angular-frequency units (rad/µs), matching the
    /// paper's real-device experiments (§7.4). `omega_max` differs between the
    /// Ising-cycle (6.28 rad/µs) and PXP (13.8 rad/µs) studies, so it is a
    /// parameter here.
    pub fn aquila_rad_per_us(omega_max: f64) -> Self {
        RydbergOptions {
            // 2π × 862 690 MHz µm⁶ expressed in rad/µs µm⁶.
            c6: 5_420_441.0,
            delta_max: 125.0,
            omega_max,
            max_evolution_time: 4.0,
            min_spacing: 4.0,
            position_window: None,
            interaction_cutoff: Some(2),
            layout: Layout::Ring { spacing: 6.0 },
            dimensions: Dimensions::Two,
        }
    }

    /// One-dimensional variant used by small worked examples (mirrors the
    /// scalar-position simplification of the paper's §5.2).
    pub fn one_dimensional() -> Self {
        RydbergOptions {
            dimensions: Dimensions::One,
            layout: Layout::Line { spacing: 9.0 },
            ..RydbergOptions::default()
        }
    }
}

/// Builds the Rydberg AAIS for `num_atoms` atoms with the given options.
///
/// # Panics
///
/// Panics if `num_atoms < 2`, or if a ring layout is requested with 1-D
/// positions. Use [`try_rydberg_aais`] to receive a typed error instead.
///
/// # Example
///
/// ```
/// use qturbo_aais::rydberg::{rydberg_aais, RydbergOptions};
/// let aais = rydberg_aais(3, &RydbergOptions::default());
/// // 3 atoms in a line with cutoff 2: vdW pairs (0,1), (1,2), (0,2)
/// // plus 3 detunings and 3 Rabi drives.
/// assert_eq!(aais.instructions().len(), 3 + 3 + 3);
/// assert_eq!(aais.num_sites(), 3);
/// ```
pub fn rydberg_aais(num_atoms: usize, options: &RydbergOptions) -> Aais {
    try_rydberg_aais(num_atoms, options).unwrap_or_else(|error| panic!("{error}"))
}

/// Fallible variant of [`rydberg_aais`].
///
/// # Errors
///
/// Returns [`AaisError::InvalidMachine`] when `num_atoms < 2`, a ring layout
/// is combined with 1-D positions, or the options describe unrealizable
/// hardware bounds (e.g. a negative `delta_max`).
pub fn try_rydberg_aais(num_atoms: usize, options: &RydbergOptions) -> Result<Aais, AaisError> {
    if num_atoms < 2 {
        return Err(AaisError::InvalidMachine {
            reason: "a Rydberg AAIS needs at least two atoms".to_string(),
        });
    }
    if matches!(options.layout, Layout::Ring { .. }) && options.dimensions != Dimensions::Two {
        return Err(AaisError::InvalidMachine {
            reason: "a ring layout requires two-dimensional positions".to_string(),
        });
    }

    let initial_positions = initial_positions(num_atoms, options);
    let window = options.position_window.unwrap_or_else(|| {
        let needed = initial_positions
            .iter()
            .flat_map(|coords| coords.iter().copied())
            .fold(0.0_f64, f64::max)
            + options.min_spacing;
        needed.max(75.0)
    });

    let mut registry = VariableRegistry::new();
    let mut site_positions: Vec<Vec<VariableId>> = Vec::with_capacity(num_atoms);
    for (i, coords) in initial_positions.iter().enumerate() {
        let mut ids = Vec::with_capacity(coords.len());
        for (axis, &value) in coords.iter().enumerate() {
            let axis_name = ["x", "y"][axis];
            let id = registry.try_register(
                format!("{axis_name}_{i}"),
                VariableKind::RuntimeFixed,
                0.0,
                window,
                value,
            )?;
            ids.push(id);
        }
        site_positions.push(ids);
    }

    let mut instructions = Vec::new();

    // Van der Waals interactions.
    for i in 0..num_atoms {
        for j in (i + 1)..num_atoms {
            let graph_distance = match options.layout {
                Layout::Line { .. } => j - i,
                Layout::Ring { .. } => (j - i).min(num_atoms - (j - i)),
            };
            if let Some(cutoff) = options.interaction_cutoff {
                if graph_distance > cutoff {
                    continue;
                }
            }
            let expr = pair_coupling_expr(options.c6, &site_positions[i], &site_positions[j]);
            let mut variables: Vec<VariableId> = site_positions[i].clone();
            variables.extend(site_positions[j].iter().copied());
            let generator = Generator::try_new(
                expr,
                vec![
                    (PauliString::two(i, Pauli::Z, j, Pauli::Z), 1.0),
                    (PauliString::single(i, Pauli::Z), -1.0),
                    (PauliString::single(j, Pauli::Z), -1.0),
                ],
            )?;
            instructions.push(Instruction::try_new(
                format!("vdw_{i}_{j}"),
                InstructionKind::Fixed,
                variables,
                vec![generator],
                None,
            )?);
        }
    }

    // Detuning instructions: −Δ_i n̂_i contributes +Δ_i/2 to Z_i.
    for i in 0..num_atoms {
        let delta = registry.try_register(
            format!("Delta_{i}"),
            VariableKind::RuntimeDynamic,
            -options.delta_max,
            options.delta_max,
            0.0,
        )?;
        let generator = Generator::try_new(
            Expr::var(delta).scaled(0.5),
            vec![(PauliString::single(i, Pauli::Z), 1.0)],
        )?;
        instructions.push(Instruction::try_new(
            format!("detuning_{i}"),
            InstructionKind::Dynamic,
            vec![delta],
            vec![generator],
            Some(delta),
        )?);
    }

    // Rabi drives: Ω_i/2 cos φ_i X_i  −  Ω_i/2 sin φ_i Y_i.
    for i in 0..num_atoms {
        let omega = registry.try_register(
            format!("Omega_{i}"),
            VariableKind::RuntimeDynamic,
            0.0,
            options.omega_max,
            0.0,
        )?;
        let phi = registry.try_register(
            format!("phi_{i}"),
            VariableKind::RuntimeDynamic,
            -std::f64::consts::PI,
            std::f64::consts::PI,
            0.0,
        )?;
        let cos_generator = Generator::try_new(
            Expr::Product(vec![
                Expr::var(omega),
                Expr::constant(0.5),
                Expr::Cos(Box::new(Expr::var(phi))),
            ]),
            vec![(PauliString::single(i, Pauli::X), 1.0)],
        )?;
        let sin_generator = Generator::try_new(
            Expr::Product(vec![
                Expr::var(omega),
                Expr::constant(-0.5),
                Expr::Sin(Box::new(Expr::var(phi))),
            ]),
            vec![(PauliString::single(i, Pauli::Y), 1.0)],
        )?;
        instructions.push(Instruction::try_new(
            format!("rabi_{i}"),
            InstructionKind::Dynamic,
            vec![omega, phi],
            vec![cos_generator, sin_generator],
            Some(omega),
        )?);
    }

    Aais::try_new(
        "rydberg",
        num_atoms,
        registry,
        instructions,
        options.max_evolution_time,
        Some(options.min_spacing),
        site_positions,
    )
}

/// `C6/4 · r⁻⁶` with `r` the distance between two sites (1-D or 2-D).
fn pair_coupling_expr(c6: f64, a: &[VariableId], b: &[VariableId]) -> Expr {
    if a.len() == 1 {
        Expr::inverse_power_distance(c6 / 4.0, a[0], b[0], 6)
    } else {
        // (dx² + dy²)⁻³ · C6/4
        let squared_terms: Vec<Expr> = a
            .iter()
            .zip(b.iter())
            .map(|(&ia, &ib)| {
                Expr::Pow(Box::new(Expr::difference(Expr::var(ia), Expr::var(ib))), 2)
            })
            .collect();
        Expr::Product(vec![
            Expr::constant(c6 / 4.0),
            Expr::Pow(Box::new(Expr::Sum(squared_terms)), -3),
        ])
    }
}

/// Initial coordinates for every atom according to the layout hint.
fn initial_positions(num_atoms: usize, options: &RydbergOptions) -> Vec<Vec<f64>> {
    match (options.layout, options.dimensions) {
        (Layout::Line { spacing }, Dimensions::One) => (0..num_atoms)
            .map(|i| vec![options.min_spacing + i as f64 * spacing])
            .collect(),
        (Layout::Line { spacing }, Dimensions::Two) => (0..num_atoms)
            .map(|i| {
                vec![
                    options.min_spacing + i as f64 * spacing,
                    options.min_spacing,
                ]
            })
            .collect(),
        (Layout::Ring { spacing }, _) => {
            let radius = (spacing * num_atoms as f64 / (2.0 * std::f64::consts::PI))
                .max(options.min_spacing);
            let center = radius + options.min_spacing;
            (0..num_atoms)
                .map(|i| {
                    let angle = 2.0 * std::f64::consts::PI * i as f64 / num_atoms as f64;
                    vec![center + radius * angle.cos(), center + radius * angle.sin()]
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qturbo_hamiltonian::PauliString;

    #[test]
    fn instruction_counts_scale_with_cutoff() {
        let n = 6;
        let chain = rydberg_aais(n, &RydbergOptions::default());
        // cutoff 2 on a line: (n-1) + (n-2) pairs + n detunings + n rabi.
        assert_eq!(chain.instructions().len(), (n - 1) + (n - 2) + n + n);
        let all_pairs = rydberg_aais(
            n,
            &RydbergOptions {
                interaction_cutoff: None,
                ..RydbergOptions::default()
            },
        );
        assert_eq!(all_pairs.instructions().len(), n * (n - 1) / 2 + 2 * n);
    }

    #[test]
    fn ring_layout_includes_wraparound_pair() {
        let n = 6;
        let options = RydbergOptions {
            layout: Layout::Ring { spacing: 6.0 },
            interaction_cutoff: Some(1),
            ..RydbergOptions::default()
        };
        let aais = rydberg_aais(n, &options);
        // Ring with cutoff 1: n nearest-neighbour pairs (including (0, n-1)).
        assert_eq!(aais.instructions().len(), n + 2 * n);
        assert!(aais.instructions().iter().any(|i| i.name() == "vdw_0_5"));
    }

    #[test]
    fn worked_example_from_the_paper_one_dimensional() {
        // Paper §5.2: with T = 0.8 µs and the three-atom Ising chain, the
        // solved positions are x = (0, 7.46, 14.92) µm and the Van der Waals
        // coupling C6/(4·7.46⁶) ≈ 1.25 MHz.
        let options = RydbergOptions::one_dimensional();
        let aais = rydberg_aais(3, &options);
        let mut values = aais.default_values();
        // Positions are the first three registered variables.
        values[0] = 0.0;
        values[1] = 7.46;
        values[2] = 14.92;
        let vdw01 = aais
            .instructions()
            .iter()
            .find(|i| i.name() == "vdw_0_1")
            .expect("vdw_0_1 exists");
        let coupling = vdw01.generators()[0].value(&values);
        assert!((coupling - 1.25).abs() < 0.01, "coupling was {coupling}");
    }

    #[test]
    fn two_dimensional_coupling_matches_euclidean_distance() {
        let aais = rydberg_aais(2, &RydbergOptions::default());
        let mut values = aais.default_values();
        // Place atoms at (0, 0) and (3, 4): distance 5.
        values[0] = 0.0;
        values[1] = 0.0;
        values[2] = 3.0;
        values[3] = 4.0;
        let vdw = &aais.instructions()[0];
        let coupling = vdw.generators()[0].value(&values);
        let expected = 862_690.0 / (4.0 * 5.0_f64.powi(6));
        assert!((coupling - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn hamiltonian_contains_expected_terms() {
        let aais = rydberg_aais(3, &RydbergOptions::default());
        let mut values = aais.default_values();
        // Switch on the first detuning and the second Rabi drive.
        let delta_0 = aais
            .registry()
            .iter()
            .find(|v| v.name() == "Delta_0")
            .map(|v| v.id().index())
            .unwrap();
        let omega_1 = aais
            .registry()
            .iter()
            .find(|v| v.name() == "Omega_1")
            .map(|v| v.id().index())
            .unwrap();
        values[delta_0] = 2.0;
        values[omega_1] = 2.0;
        let h = aais.hamiltonian(&values).unwrap();
        // Z_0 receives +Delta_0/2 = 1.0 from the detuning minus the (always-on)
        // Van der Waals contributions of the default layout (~0.41 at 9 µm).
        let vdw_nn = 862_690.0 / (4.0 * 9.0_f64.powi(6));
        let vdw_nnn = 862_690.0 / (4.0 * 18.0_f64.powi(6));
        let z0 = h.coefficient(&PauliString::single(0, Pauli::Z));
        assert!((z0 - (1.0 - vdw_nn - vdw_nnn)).abs() < 1e-9, "z0 was {z0}");
        assert!((h.coefficient(&PauliString::single(1, Pauli::X)) - 1.0).abs() < 1e-9);
        // Van der Waals terms from the default layout are present on ZZ.
        assert!(h.coefficient(&PauliString::two(0, Pauli::Z, 1, Pauli::Z)) > 0.0);
    }

    #[test]
    fn aquila_preset_and_bounds() {
        let options = RydbergOptions::aquila_rad_per_us(std::f64::consts::TAU);
        let aais = rydberg_aais(12, &options);
        let omega = aais
            .registry()
            .iter()
            .find(|v| v.name() == "Omega_3")
            .unwrap();
        assert_eq!(omega.upper(), std::f64::consts::TAU);
        let delta = aais
            .registry()
            .iter()
            .find(|v| v.name() == "Delta_3")
            .unwrap();
        assert_eq!(delta.upper(), 125.0);
        assert_eq!(aais.max_evolution_time(), 4.0);
        assert_eq!(aais.site_positions().len(), 12);
        assert_eq!(aais.site_positions()[0].len(), 2);
    }

    #[test]
    fn default_layout_respects_min_spacing() {
        let aais = rydberg_aais(10, &RydbergOptions::default());
        let values = aais.default_values();
        assert!(aais.validate_values(&values).is_ok());
    }

    #[test]
    #[should_panic(expected = "at least two atoms")]
    fn rejects_single_atom() {
        let _ = rydberg_aais(1, &RydbergOptions::default());
    }

    #[test]
    fn try_builder_returns_typed_errors() {
        let err = try_rydberg_aais(1, &RydbergOptions::default()).unwrap_err();
        assert!(matches!(err, crate::AaisError::InvalidMachine { .. }));
        assert!(err.to_string().contains("at least two atoms"));
        let bad_bounds = RydbergOptions {
            delta_max: -1.0,
            ..RydbergOptions::default()
        };
        let err = try_rydberg_aais(3, &bad_bounds).unwrap_err();
        assert!(matches!(err, crate::AaisError::InvalidMachine { .. }));
        assert!(try_rydberg_aais(3, &RydbergOptions::default()).is_ok());
    }

    #[test]
    #[should_panic(expected = "requires two-dimensional")]
    fn ring_requires_two_dimensions() {
        let options = RydbergOptions {
            layout: Layout::Ring { spacing: 6.0 },
            dimensions: Dimensions::One,
            ..RydbergOptions::default()
        };
        let _ = rydberg_aais(4, &options);
    }
}
