//! Lowering: turn a compiled [`PulseSchedule`] into a simulator-ready
//! [`PiecewiseHamiltonian`].
//!
//! This is the bridge between the compiler half of the workspace (`qturbo`,
//! `qturbo-baseline` produce pulse schedules for an [`Aais`] machine) and the
//! emulator half (`qturbo-quantum` propagates piecewise Hamiltonians through
//! `CompiledSchedule` / `Propagator` / `EmulatedDevice`). Lowering evaluates
//! every segment's instruction expressions into concrete Hamiltonian terms and
//! — crucially for the emulator's compile-once economics — *stabilizes the
//! term structure across segments*.
//!
//! # Why padding matters
//!
//! [`Aais::hamiltonian`] skips generators whose coefficient evaluates to zero,
//! so a segment with its Rabi drive off simply has no `X`/`Y` strings. Two
//! adjacent segments then disagree on their canonical string set, the
//! piecewise Hamiltonian's structure run breaks, and a mask-compiled schedule
//! must build (and cache) one layout per run instead of one for the whole
//! pulse. Lowering therefore pads every segment with zero-coefficient
//! placeholders for the union of strings appearing anywhere in the schedule:
//! the dynamics are untouched (the placeholders contribute nothing) while
//! `Hamiltonian::structure_fingerprint` becomes identical across segments, so
//! the lowered schedule always compiles to a single shared mask layout.

use crate::aais::{Aais, AaisError};
use crate::pulse::PulseSchedule;
use qturbo_hamiltonian::{Hamiltonian, PauliString, PiecewiseHamiltonian, Segment};
use std::collections::BTreeSet;

/// A pulse schedule lowered to concrete per-segment Hamiltonians, with the
/// term structure stabilized for mask-layout sharing.
#[derive(Debug, Clone, PartialEq)]
pub struct LoweredSchedule {
    piecewise: PiecewiseHamiltonian,
    num_qubits: usize,
    raw_structure_runs: usize,
    padded_terms: usize,
}

impl LoweredSchedule {
    /// The lowered piecewise Hamiltonian (padded, single structure run).
    pub fn piecewise(&self) -> &PiecewiseHamiltonian {
        &self.piecewise
    }

    /// Consumes the lowering and returns the piecewise Hamiltonian.
    pub fn into_piecewise(self) -> PiecewiseHamiltonian {
        self.piecewise
    }

    /// The per-segment `(Hamiltonian, duration)` pairs, cloned into the shape
    /// accepted by the segment-slice emulator APIs (`evolve_piecewise`,
    /// `EmulatedDevice::run`).
    pub fn hamiltonian_segments(&self) -> Vec<(Hamiltonian, f64)> {
        self.piecewise
            .segments()
            .iter()
            .map(|segment| (segment.hamiltonian.clone(), segment.duration))
            .collect()
    }

    /// Number of device sites (every segment Hamiltonian has this many qubits).
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of segments.
    pub fn num_segments(&self) -> usize {
        self.piecewise.num_segments()
    }

    /// Total machine execution time of the lowered schedule.
    pub fn total_duration(&self) -> f64 {
        self.piecewise.total_time()
    }

    /// Number of structure runs after padding (always 1: padding gives every
    /// segment the same canonical string set).
    pub fn structure_runs(&self) -> usize {
        self.piecewise.structure_runs().len()
    }

    /// Number of structure runs the raw (unpadded) segment Hamiltonians would
    /// have had — a diagnostic for how much layout sharing the padding
    /// recovered.
    pub fn raw_structure_runs(&self) -> usize {
        self.raw_structure_runs
    }

    /// Total number of zero-coefficient placeholder terms inserted across all
    /// segments to stabilize the structure.
    pub fn padded_terms(&self) -> usize {
        self.padded_terms
    }
}

/// Lowers a pulse schedule against its machine.
///
/// Validates the schedule (hardware bounds, site spacing, total duration,
/// runtime-fixed immutability), evaluates every segment's Hamiltonian, and
/// pads each segment with the union of Pauli strings appearing anywhere in
/// the schedule so the result carries a single structure run.
///
/// # Errors
///
/// * [`AaisError::InvalidSchedule`] for an empty schedule,
/// * any validation error from [`PulseSchedule::validate`],
/// * [`AaisError::WrongValueCount`] when a segment's assignment does not
///   match the machine's variable registry.
pub fn try_lower(schedule: &PulseSchedule, aais: &Aais) -> Result<LoweredSchedule, AaisError> {
    if schedule.is_empty() {
        return Err(AaisError::InvalidSchedule {
            reason: "cannot lower an empty pulse schedule".to_string(),
        });
    }
    schedule.validate(aais)?;

    let mut evaluated: Vec<(Hamiltonian, f64)> = Vec::with_capacity(schedule.num_segments());
    for segment in schedule.segments() {
        evaluated.push((aais.hamiltonian(segment.values())?, segment.duration()));
    }

    // Union of every Pauli string any segment realizes. Padding to this set
    // (rather than the machine's full producible-term set) keeps the layouts
    // minimal while still making all segments structure-equal.
    let mut union: BTreeSet<PauliString> = BTreeSet::new();
    for (hamiltonian, _) in &evaluated {
        for (_, string) in hamiltonian.terms() {
            union.insert(string.clone());
        }
    }

    let raw_structure_runs = 1 + evaluated
        .windows(2)
        .filter(|pair| !pair[0].0.same_structure(&pair[1].0))
        .count();

    let mut padded_terms = 0usize;
    let segments: Vec<Segment> = evaluated
        .into_iter()
        .map(|(mut hamiltonian, duration)| {
            padded_terms += union.len() - hamiltonian.num_terms();
            hamiltonian.pad_structure(&union);
            Segment {
                hamiltonian,
                duration,
            }
        })
        .collect();

    Ok(LoweredSchedule {
        piecewise: PiecewiseHamiltonian::new(segments),
        num_qubits: aais.num_sites(),
        raw_structure_runs,
        padded_terms,
    })
}

/// Panicking variant of [`try_lower`].
///
/// # Panics
///
/// Panics on any [`AaisError`] that [`try_lower`] would return.
pub fn lower(schedule: &PulseSchedule, aais: &Aais) -> LoweredSchedule {
    try_lower(schedule, aais).unwrap_or_else(|error| panic!("{error}"))
}

impl PulseSchedule {
    /// Lowers this schedule against its machine; see [`try_lower`].
    ///
    /// # Errors
    ///
    /// See [`try_lower`].
    pub fn try_lower(&self, aais: &Aais) -> Result<LoweredSchedule, AaisError> {
        try_lower(self, aais)
    }

    /// Panicking variant of [`PulseSchedule::try_lower`]; see [`lower`].
    ///
    /// # Panics
    ///
    /// Panics on any [`AaisError`] that [`try_lower`] would return.
    pub fn lower(&self, aais: &Aais) -> LoweredSchedule {
        lower(self, aais)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pulse::PulseSegment;
    use crate::rydberg::{rydberg_aais, RydbergOptions};
    use qturbo_hamiltonian::Pauli;

    /// A two-segment schedule whose first segment has the Rabi drive on and
    /// whose second has it off — the structure-breaking case.
    fn drive_on_off_schedule(aais: &Aais) -> PulseSchedule {
        let mut on = aais.default_values();
        let omega_0 = aais
            .registry()
            .iter()
            .find(|v| v.name() == "Omega_0")
            .map(|v| v.id().index())
            .unwrap();
        on[omega_0] = 1.0;
        let off = aais.default_values();
        PulseSchedule::from_segments(vec![
            PulseSegment::new(0.3, on),
            PulseSegment::new(0.3, off),
        ])
    }

    #[test]
    fn lowering_pads_to_a_single_structure_run() {
        let aais = rydberg_aais(3, &RydbergOptions::default());
        let schedule = drive_on_off_schedule(&aais);
        let lowered = schedule.try_lower(&aais).unwrap();
        assert_eq!(lowered.num_segments(), 2);
        assert_eq!(lowered.num_qubits(), 3);
        // Unpadded, the drive-off segment loses its X string and the run
        // breaks; padding restores a single run.
        assert_eq!(lowered.raw_structure_runs(), 2);
        assert_eq!(lowered.structure_runs(), 1);
        assert!(lowered.padded_terms() > 0);
        assert!((lowered.total_duration() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn padding_does_not_change_coefficients() {
        let aais = rydberg_aais(3, &RydbergOptions::default());
        let schedule = drive_on_off_schedule(&aais);
        let lowered = schedule.try_lower(&aais).unwrap();
        let raw = schedule.hamiltonians(&aais).unwrap();
        for ((padded, duration), (unpadded, raw_duration)) in lowered
            .piecewise()
            .segments()
            .iter()
            .map(|s| (&s.hamiltonian, s.duration))
            .zip(raw.iter().map(|(h, d)| (h, *d)))
        {
            assert_eq!(duration, raw_duration);
            // Every unpadded coefficient survives unchanged...
            for (coefficient, string) in unpadded.terms() {
                assert_eq!(padded.coefficient(string), coefficient);
            }
            // ...and every extra term is a zero placeholder.
            for (coefficient, string) in padded.terms() {
                if unpadded.coefficient(string) == 0.0 {
                    assert_eq!(coefficient, 0.0, "placeholder {string} must be zero");
                }
            }
        }
        // The X string the off segment lost is back as a placeholder.
        let off_segment = &lowered.piecewise().segments()[1].hamiltonian;
        assert_eq!(
            off_segment.coefficient(&PauliString::single(0, Pauli::X)),
            0.0
        );
        assert!(off_segment
            .terms()
            .any(|(_, s)| *s == PauliString::single(0, Pauli::X)));
    }

    #[test]
    fn empty_schedules_are_rejected_with_a_typed_error() {
        let aais = rydberg_aais(3, &RydbergOptions::default());
        let err = PulseSchedule::new().try_lower(&aais).unwrap_err();
        assert!(matches!(err, AaisError::InvalidSchedule { .. }));
        assert!(err.to_string().contains("empty"));
    }

    #[test]
    fn invalid_schedules_propagate_validation_errors() {
        let aais = rydberg_aais(3, &RydbergOptions::default());
        // Exceeds the device's maximum evolution time.
        let long =
            PulseSchedule::from_segments(vec![PulseSegment::new(10.0, aais.default_values())]);
        assert!(matches!(
            long.try_lower(&aais),
            Err(AaisError::EvolutionTooLong { .. })
        ));
        // Wrong value count.
        let short = PulseSchedule::from_segments(vec![PulseSegment::new(0.1, vec![0.0; 2])]);
        assert!(matches!(
            short.try_lower(&aais),
            Err(AaisError::WrongValueCount { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn panicking_wrapper_reports_the_error() {
        let aais = rydberg_aais(3, &RydbergOptions::default());
        let _ = PulseSchedule::new().lower(&aais);
    }

    #[test]
    fn hamiltonian_segments_match_the_piecewise_form() {
        let aais = rydberg_aais(3, &RydbergOptions::default());
        let schedule = drive_on_off_schedule(&aais);
        let lowered = schedule.try_lower(&aais).unwrap();
        let pairs = lowered.hamiltonian_segments();
        assert_eq!(pairs.len(), lowered.num_segments());
        for ((hamiltonian, duration), segment) in pairs.iter().zip(lowered.piecewise().segments()) {
            assert_eq!(*hamiltonian, segment.hamiltonian);
            assert_eq!(*duration, segment.duration);
        }
        let piecewise = lowered.clone().into_piecewise();
        assert_eq!(piecewise.num_segments(), 2);
    }
}
