//! Pulse schedules: the compiled output handed to the analog device.

use crate::aais::{Aais, AaisError};
use crate::variable::VariableKind;
use qturbo_hamiltonian::Hamiltonian;

/// One piecewise-constant segment of a pulse schedule: a full assignment of
/// every device variable held for `duration`.
#[derive(Debug, Clone, PartialEq)]
pub struct PulseSegment {
    duration: f64,
    values: Vec<f64>,
}

impl PulseSegment {
    /// Creates a segment from a duration and a dense variable assignment
    /// (indexed by [`crate::variable::VariableId::index`]).
    ///
    /// # Panics
    ///
    /// Panics if the duration is negative or not finite. Use
    /// [`PulseSegment::try_new`] to receive a typed error instead.
    pub fn new(duration: f64, values: Vec<f64>) -> Self {
        Self::try_new(duration, values).unwrap_or_else(|error| panic!("{error}"))
    }

    /// Fallible variant of [`PulseSegment::new`].
    ///
    /// # Errors
    ///
    /// Returns [`AaisError::InvalidSchedule`] if the duration is negative or
    /// not finite.
    pub fn try_new(duration: f64, values: Vec<f64>) -> Result<Self, AaisError> {
        if !(duration.is_finite() && duration >= 0.0) {
            return Err(AaisError::InvalidSchedule {
                reason: format!("segment duration must be non-negative and finite, got {duration}"),
            });
        }
        Ok(PulseSegment { duration, values })
    }

    /// Duration of the segment (machine time).
    pub fn duration(&self) -> f64 {
        self.duration
    }

    /// The variable assignment during this segment.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

/// A compiled pulse schedule: a sequence of piecewise-constant segments.
///
/// The total duration is the "execution time" metric of the paper's
/// evaluation; the per-segment Hamiltonians drive the device emulator in
/// `qturbo-quantum`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PulseSchedule {
    segments: Vec<PulseSegment>,
}

impl PulseSchedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a schedule from segments.
    pub fn from_segments(segments: Vec<PulseSegment>) -> Self {
        PulseSchedule { segments }
    }

    /// Appends a segment.
    pub fn push(&mut self, segment: PulseSegment) {
        self.segments.push(segment);
    }

    /// The segments in execution order.
    pub fn segments(&self) -> &[PulseSegment] {
        &self.segments
    }

    /// Number of segments.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Returns `true` when the schedule has no segments.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Total machine execution time (the paper's "Execution Time" metric).
    pub fn total_duration(&self) -> f64 {
        self.segments.iter().map(PulseSegment::duration).sum()
    }

    /// Evaluates the simulator Hamiltonian of every segment.
    ///
    /// # Errors
    ///
    /// Propagates [`AaisError::WrongValueCount`] when a segment's assignment
    /// does not match the AAIS registry.
    pub fn hamiltonians(&self, aais: &Aais) -> Result<Vec<(Hamiltonian, f64)>, AaisError> {
        self.segments
            .iter()
            .map(|segment| Ok((aais.hamiltonian(segment.values())?, segment.duration())))
            .collect()
    }

    /// Validates the schedule against the device: variable bounds, site
    /// spacing, total duration, and immutability of runtime-fixed variables
    /// across segments.
    ///
    /// # Errors
    ///
    /// Returns the first violated device constraint.
    pub fn validate(&self, aais: &Aais) -> Result<(), AaisError> {
        for segment in &self.segments {
            aais.validate_values(segment.values())?;
        }
        aais.validate_duration(self.total_duration())?;
        // Runtime-fixed variables must not change between segments.
        if let Some(first) = self.segments.first() {
            for variable in aais.registry().iter() {
                if variable.kind() != VariableKind::RuntimeFixed {
                    continue;
                }
                let reference = first.values()[variable.id().index()];
                for segment in &self.segments[1..] {
                    let value = segment.values()[variable.id().index()];
                    if (value - reference).abs() > 1e-9 {
                        return Err(AaisError::VariableOutOfBounds {
                            name: format!(
                                "{} (runtime-fixed changed between segments)",
                                variable.name()
                            ),
                            value,
                            lower: reference,
                            upper: reference,
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

impl std::fmt::Display for PulseSchedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "PulseSchedule: {} segment(s), total duration {:.4}",
            self.num_segments(),
            self.total_duration()
        )?;
        for (i, segment) in self.segments.iter().enumerate() {
            writeln!(f, "  segment {i}: duration {:.4}", segment.duration())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rydberg::{rydberg_aais, RydbergOptions};

    fn toy_schedule(aais: &Aais) -> PulseSchedule {
        let values = aais.default_values();
        PulseSchedule::from_segments(vec![
            PulseSegment::new(0.4, values.clone()),
            PulseSegment::new(0.4, values),
        ])
    }

    #[test]
    fn durations_accumulate() {
        let aais = rydberg_aais(3, &RydbergOptions::default());
        let schedule = toy_schedule(&aais);
        assert_eq!(schedule.num_segments(), 2);
        assert!(!schedule.is_empty());
        assert!((schedule.total_duration() - 0.8).abs() < 1e-12);
        assert!(PulseSchedule::new().is_empty());
    }

    #[test]
    fn hamiltonians_per_segment() {
        let aais = rydberg_aais(3, &RydbergOptions::default());
        let schedule = toy_schedule(&aais);
        let hs = schedule.hamiltonians(&aais).unwrap();
        assert_eq!(hs.len(), 2);
        // Default values: drives off, but Van der Waals from the initial
        // layout is always on.
        assert!(hs[0].0.num_terms() > 0);
        assert_eq!(hs[0].1, 0.4);
    }

    #[test]
    fn validation_checks_bounds_duration_and_fixed_vars() {
        let aais = rydberg_aais(3, &RydbergOptions::default());
        let good = toy_schedule(&aais);
        assert!(good.validate(&aais).is_ok());

        // Exceeding the device's maximum evolution time.
        let long =
            PulseSchedule::from_segments(vec![PulseSegment::new(10.0, aais.default_values())]);
        assert!(matches!(
            long.validate(&aais),
            Err(AaisError::EvolutionTooLong { .. })
        ));

        // Out-of-range dynamic variable.
        let mut values = aais.default_values();
        let omega_index = aais
            .registry()
            .iter()
            .find(|v| v.name() == "Omega_0")
            .unwrap()
            .id()
            .index();
        values[omega_index] = 100.0;
        let bad = PulseSchedule::from_segments(vec![PulseSegment::new(0.1, values)]);
        assert!(matches!(
            bad.validate(&aais),
            Err(AaisError::VariableOutOfBounds { .. })
        ));

        // Runtime-fixed variable changing between segments.
        let mut moved = aais.default_values();
        moved[0] += 5.0;
        let drift = PulseSchedule::from_segments(vec![
            PulseSegment::new(0.1, aais.default_values()),
            PulseSegment::new(0.1, moved),
        ]);
        let err = drift.validate(&aais).unwrap_err();
        assert!(err.to_string().contains("runtime-fixed"));
    }

    #[test]
    fn wrong_value_count_is_reported() {
        let aais = rydberg_aais(3, &RydbergOptions::default());
        let schedule = PulseSchedule::from_segments(vec![PulseSegment::new(0.1, vec![0.0; 2])]);
        assert!(matches!(
            schedule.hamiltonians(&aais),
            Err(AaisError::WrongValueCount { .. })
        ));
        assert!(schedule.validate(&aais).is_err());
    }

    #[test]
    fn display_mentions_segments() {
        let aais = rydberg_aais(3, &RydbergOptions::default());
        let schedule = toy_schedule(&aais);
        let text = schedule.to_string();
        assert!(text.contains("2 segment(s)"));
        assert!(text.contains("segment 1"));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_duration() {
        let _ = PulseSegment::new(-1.0, vec![]);
    }
}
