//! Symbolic coefficient expressions over device variables.
//!
//! Each analog instruction contributes Hamiltonian terms whose strengths are
//! algebraic expressions of the device variables — for example the Van der
//! Waals coupling `C6 / |x_i − x_j|⁶` or the Rabi drive `Ω/2 · cos φ`. The
//! compiler needs to evaluate these expressions, discover which variables they
//! depend on, and (for evolution-time optimization) factor out the
//! time-critical variable. A small expression tree covers all of that without
//! pulling in a computer-algebra dependency.

use crate::variable::VariableId;
use std::collections::BTreeSet;
use std::fmt;

/// A symbolic expression over device variables.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal constant.
    Constant(f64),
    /// A device variable.
    Var(VariableId),
    /// Sum of sub-expressions.
    Sum(Vec<Expr>),
    /// Product of sub-expressions.
    Product(Vec<Expr>),
    /// Negation.
    Neg(Box<Expr>),
    /// Integer power (may be negative, e.g. `r⁻⁶`).
    Pow(Box<Expr>, i32),
    /// Absolute value.
    Abs(Box<Expr>),
    /// Cosine.
    Cos(Box<Expr>),
    /// Sine.
    Sin(Box<Expr>),
}

impl Expr {
    /// Convenience constructor for a constant.
    pub fn constant(value: f64) -> Expr {
        Expr::Constant(value)
    }

    /// Convenience constructor for a variable.
    pub fn var(id: VariableId) -> Expr {
        Expr::Var(id)
    }

    /// `factor · expr`.
    pub fn scaled(self, factor: f64) -> Expr {
        Expr::Product(vec![Expr::Constant(factor), self])
    }

    /// `a − b`.
    pub fn difference(a: Expr, b: Expr) -> Expr {
        Expr::Sum(vec![a, Expr::Neg(Box::new(b))])
    }

    /// The Van der Waals style coupling `constant / |a − b|^power`.
    pub fn inverse_power_distance(constant: f64, a: VariableId, b: VariableId, power: i32) -> Expr {
        Expr::Product(vec![
            Expr::Constant(constant),
            Expr::Pow(
                Box::new(Expr::Abs(Box::new(Expr::difference(
                    Expr::var(a),
                    Expr::var(b),
                )))),
                -power,
            ),
        ])
    }

    /// Evaluates the expression with variable values provided by `lookup`.
    pub fn eval<F>(&self, lookup: &F) -> f64
    where
        F: Fn(VariableId) -> f64,
    {
        match self {
            Expr::Constant(c) => *c,
            Expr::Var(id) => lookup(*id),
            Expr::Sum(terms) => terms.iter().map(|t| t.eval(lookup)).sum(),
            Expr::Product(factors) => factors.iter().map(|f| f.eval(lookup)).product(),
            Expr::Neg(inner) => -inner.eval(lookup),
            Expr::Pow(base, exponent) => {
                let b = base.eval(lookup);
                if *exponent >= 0 {
                    b.powi(*exponent)
                } else {
                    // Guard against division by zero when two atoms coincide
                    // during an intermediate solver step.
                    let denom = b.powi(-*exponent);
                    if denom.abs() < 1e-300 {
                        f64::MAX.sqrt()
                    } else {
                        1.0 / denom
                    }
                }
            }
            Expr::Abs(inner) => inner.eval(lookup).abs(),
            Expr::Cos(inner) => inner.eval(lookup).cos(),
            Expr::Sin(inner) => inner.eval(lookup).sin(),
        }
    }

    /// Evaluates using a dense slice indexed by [`VariableId::index`].
    pub fn eval_slice(&self, values: &[f64]) -> f64 {
        self.eval(&|id: VariableId| values[id.index()])
    }

    /// Collects every variable the expression depends on.
    pub fn variables(&self) -> BTreeSet<VariableId> {
        let mut out = BTreeSet::new();
        self.collect_variables(&mut out);
        out
    }

    fn collect_variables(&self, out: &mut BTreeSet<VariableId>) {
        match self {
            Expr::Constant(_) => {}
            Expr::Var(id) => {
                out.insert(*id);
            }
            Expr::Sum(items) | Expr::Product(items) => {
                for item in items {
                    item.collect_variables(out);
                }
            }
            Expr::Neg(inner)
            | Expr::Pow(inner, _)
            | Expr::Abs(inner)
            | Expr::Cos(inner)
            | Expr::Sin(inner) => inner.collect_variables(out),
        }
    }

    /// Returns `true` when the expression is linear and homogeneous in `id`,
    /// i.e. of the form `id · f(other variables)`.
    ///
    /// The evolution-time optimization (paper §5.1) relies on the generator of
    /// a runtime-dynamic instruction having this structure so that the
    /// time-critical variable can be absorbed into the evolution time. The
    /// check is numerical: the expression must vanish at `id = 0` and scale
    /// linearly with `id` at two probe points, for several random assignments
    /// of the other variables.
    pub fn is_linear_homogeneous_in(&self, id: VariableId) -> bool {
        if !self.variables().contains(&id) {
            return false;
        }
        let others: Vec<VariableId> = self.variables().into_iter().filter(|v| *v != id).collect();
        // Deterministic pseudo-random probe values.
        let mut seed = 0x9E3779B97F4A7C15_u64;
        let mut next = || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            ((seed >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 0.5
        };
        for _ in 0..4 {
            let assignment: Vec<(VariableId, f64)> = others.iter().map(|&v| (v, next())).collect();
            let eval_at = |value: f64| {
                self.eval(&|v: VariableId| {
                    if v == id {
                        value
                    } else {
                        assignment
                            .iter()
                            .find(|(other, _)| *other == v)
                            .map(|(_, x)| *x)
                            .unwrap_or(0.0)
                    }
                })
            };
            let f0 = eval_at(0.0);
            let f1 = eval_at(1.0);
            let f2 = eval_at(2.0);
            let scale = f1.abs().max(f2.abs()).max(1e-12);
            if f0.abs() > 1e-9 * scale || (f2 - 2.0 * f1).abs() > 1e-7 * scale {
                return false;
            }
        }
        true
    }

    /// Evaluates the expression with the given variable set to `value` and all
    /// other variables provided by `lookup`.
    pub fn eval_with_override<F>(&self, id: VariableId, value: f64, lookup: &F) -> f64
    where
        F: Fn(VariableId) -> f64,
    {
        self.eval(&|v: VariableId| if v == id { value } else { lookup(v) })
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Constant(c) => write!(f, "{c}"),
            Expr::Var(id) => write!(f, "{id}"),
            Expr::Sum(items) => {
                write!(f, "(")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " + ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, ")")
            }
            Expr::Product(items) => {
                write!(f, "(")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, "*")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, ")")
            }
            Expr::Neg(inner) => write!(f, "-({inner})"),
            Expr::Pow(base, e) => write!(f, "({base})^{e}"),
            Expr::Abs(inner) => write!(f, "|{inner}|"),
            Expr::Cos(inner) => write!(f, "cos({inner})"),
            Expr::Sin(inner) => write!(f, "sin({inner})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variable::{VariableKind, VariableRegistry};

    fn registry_with(n: usize) -> (VariableRegistry, Vec<VariableId>) {
        let mut reg = VariableRegistry::new();
        let ids = (0..n)
            .map(|i| {
                reg.register(
                    format!("v{i}"),
                    VariableKind::RuntimeDynamic,
                    -100.0,
                    100.0,
                    0.0,
                )
            })
            .collect();
        (reg, ids)
    }

    #[test]
    fn evaluates_basic_arithmetic() {
        let (_reg, ids) = registry_with(2);
        let expr = Expr::Sum(vec![
            Expr::var(ids[0]).scaled(2.0),
            Expr::Neg(Box::new(Expr::var(ids[1]))),
            Expr::constant(1.0),
        ]);
        assert_eq!(expr.eval_slice(&[3.0, 4.0]), 3.0);
        assert_eq!(expr.variables().len(), 2);
    }

    #[test]
    fn evaluates_trig_and_powers() {
        let (_reg, ids) = registry_with(2);
        // Omega/2 * cos(phi)
        let expr = Expr::Product(vec![
            Expr::var(ids[0]),
            Expr::constant(0.5),
            Expr::Cos(Box::new(Expr::var(ids[1]))),
        ]);
        let v = expr.eval_slice(&[2.5, 0.0]);
        assert!((v - 1.25).abs() < 1e-15);
        let p = Expr::Pow(Box::new(Expr::constant(2.0)), 3);
        assert_eq!(p.eval_slice(&[]), 8.0);
        let s = Expr::Sin(Box::new(Expr::constant(std::f64::consts::FRAC_PI_2)));
        assert!((s.eval_slice(&[]) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn van_der_waals_expression() {
        let (_reg, ids) = registry_with(2);
        let c6 = 862690.0;
        let expr = Expr::inverse_power_distance(c6 / 4.0, ids[0], ids[1], 6);
        let r: f64 = 7.46;
        let value = expr.eval_slice(&[0.0, r]);
        let expected = c6 / (4.0 * r.powi(6));
        assert!((value - expected).abs() / expected < 1e-12);
        // Symmetric in the two positions.
        let swapped = expr.eval_slice(&[r, 0.0]);
        assert!((swapped - expected).abs() / expected < 1e-12);
        // Coinciding atoms do not produce infinity.
        assert!(expr.eval_slice(&[1.0, 1.0]).is_finite());
    }

    #[test]
    fn linear_homogeneity_detection() {
        let (_reg, ids) = registry_with(3);
        // Omega * cos(phi) / 2 is linear homogeneous in Omega but not in phi.
        let rabi = Expr::Product(vec![
            Expr::var(ids[0]),
            Expr::constant(0.5),
            Expr::Cos(Box::new(Expr::var(ids[1]))),
        ]);
        assert!(rabi.is_linear_homogeneous_in(ids[0]));
        assert!(!rabi.is_linear_homogeneous_in(ids[1]));
        assert!(!rabi.is_linear_homogeneous_in(ids[2])); // not even present

        // Delta / 2 is linear homogeneous in Delta.
        let detuning = Expr::var(ids[2]).scaled(0.5);
        assert!(detuning.is_linear_homogeneous_in(ids[2]));

        // Delta/2 + 1 is not homogeneous.
        let shifted = Expr::Sum(vec![Expr::var(ids[2]).scaled(0.5), Expr::constant(1.0)]);
        assert!(!shifted.is_linear_homogeneous_in(ids[2]));

        // Quadratic is not linear.
        let quad = Expr::Pow(Box::new(Expr::var(ids[0])), 2);
        assert!(!quad.is_linear_homogeneous_in(ids[0]));
    }

    #[test]
    fn override_evaluation() {
        let (_reg, ids) = registry_with(1);
        let expr = Expr::var(ids[0]).scaled(3.0);
        let v = expr.eval_with_override(ids[0], 2.0, &|_| 100.0);
        assert_eq!(v, 6.0);
    }

    #[test]
    fn display_is_readable() {
        let (_reg, ids) = registry_with(2);
        let expr = Expr::Product(vec![
            Expr::constant(0.5),
            Expr::var(ids[0]),
            Expr::Cos(Box::new(Expr::var(ids[1]))),
        ]);
        let text = expr.to_string();
        assert!(text.contains("cos"));
        assert!(text.contains("v0"));
        let vdw = Expr::inverse_power_distance(1.0, ids[0], ids[1], 6);
        assert!(vdw.to_string().contains("^-6"));
        assert!(Expr::Neg(Box::new(Expr::constant(1.0)))
            .to_string()
            .contains('-'));
        assert!(Expr::Sum(vec![Expr::constant(1.0), Expr::constant(2.0)])
            .to_string()
            .contains('+'));
    }
}
