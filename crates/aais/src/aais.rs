//! The Abstract Analog Instruction Set container.

use crate::instruction::{Generator, GeneratorRef, Instruction};
use crate::variable::{Variable, VariableId, VariableKind, VariableRegistry};
use qturbo_hamiltonian::{Hamiltonian, PauliString};
use std::collections::BTreeSet;

/// Errors raised when validating device programs against an AAIS.
#[derive(Debug, Clone, PartialEq)]
pub enum AaisError {
    /// A variable value violates its hardware bounds.
    VariableOutOfBounds {
        /// Name of the offending variable.
        name: String,
        /// The assigned value.
        value: f64,
        /// Allowed lower bound.
        lower: f64,
        /// Allowed upper bound.
        upper: f64,
    },
    /// Two sites are closer than the minimum allowed spacing.
    SitesTooClose {
        /// First site index.
        site_a: usize,
        /// Second site index.
        site_b: usize,
        /// Distance between the two sites.
        distance: f64,
        /// Minimum allowed spacing.
        minimum: f64,
    },
    /// The pulse would run longer than the device coherence window allows.
    EvolutionTooLong {
        /// Requested duration.
        requested: f64,
        /// Maximum allowed duration.
        maximum: f64,
    },
    /// A value slice of the wrong length was supplied.
    WrongValueCount {
        /// Expected number of values (one per registered variable).
        expected: usize,
        /// Number of values provided.
        provided: usize,
    },
    /// The machine description itself is invalid (bad variable bounds, an
    /// instruction referencing unlisted variables, a layout the builder cannot
    /// realize, …).
    InvalidMachine {
        /// Explanation of the problem.
        reason: String,
    },
    /// A pulse schedule (or one of its segments) is malformed independently of
    /// any device bound — e.g. a negative segment duration or an empty
    /// schedule where dynamics are required.
    InvalidSchedule {
        /// Explanation of the problem.
        reason: String,
    },
}

impl std::fmt::Display for AaisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AaisError::VariableOutOfBounds { name, value, lower, upper } => write!(
                f,
                "variable {name} = {value} is outside its hardware range [{lower}, {upper}]"
            ),
            AaisError::SitesTooClose { site_a, site_b, distance, minimum } => write!(
                f,
                "sites {site_a} and {site_b} are {distance} apart, below the minimum spacing {minimum}"
            ),
            AaisError::EvolutionTooLong { requested, maximum } => {
                write!(f, "evolution time {requested} exceeds the device maximum {maximum}")
            }
            AaisError::WrongValueCount { expected, provided } => {
                write!(f, "expected {expected} variable values, got {provided}")
            }
            AaisError::InvalidMachine { reason } => write!(f, "invalid machine: {reason}"),
            AaisError::InvalidSchedule { reason } => write!(f, "invalid schedule: {reason}"),
        }
    }
}

impl std::error::Error for AaisError {}

/// An Abstract Analog Instruction Set: the programmable Hamiltonian of an
/// analog quantum simulator (paper §2.1).
///
/// An AAIS owns a [`VariableRegistry`] of device variables and a list of
/// [`Instruction`]s whose generators describe how variable settings translate
/// into Hamiltonian-term strengths. Concrete AAIS builders for Rydberg and
/// Heisenberg devices live in [`crate::rydberg`] and [`crate::heisenberg`].
#[derive(Debug, Clone, PartialEq)]
pub struct Aais {
    name: String,
    num_sites: usize,
    registry: VariableRegistry,
    instructions: Vec<Instruction>,
    max_evolution_time: f64,
    min_site_spacing: Option<f64>,
    site_positions: Vec<Vec<VariableId>>,
}

impl Aais {
    /// Creates an AAIS. Intended for the device-specific builders in this
    /// crate; most users obtain an AAIS from [`crate::rydberg::rydberg_aais`]
    /// or [`crate::heisenberg::heisenberg_aais`].
    ///
    /// `site_positions` holds, per site, the coordinate variables of that site
    /// (one entry for 1-D layouts, two for 2-D layouts); it is empty for
    /// devices without position degrees of freedom.
    ///
    /// # Panics
    ///
    /// Panics if `site_positions` references variables outside the registry
    /// or `max_evolution_time` is not positive. Use [`Aais::try_new`] to
    /// receive a typed [`AaisError`] instead.
    pub fn new(
        name: impl Into<String>,
        num_sites: usize,
        registry: VariableRegistry,
        instructions: Vec<Instruction>,
        max_evolution_time: f64,
        min_site_spacing: Option<f64>,
        site_positions: Vec<Vec<VariableId>>,
    ) -> Self {
        Self::try_new(
            name,
            num_sites,
            registry,
            instructions,
            max_evolution_time,
            min_site_spacing,
            site_positions,
        )
        .unwrap_or_else(|error| panic!("{error}"))
    }

    /// Fallible variant of [`Aais::new`].
    ///
    /// # Errors
    ///
    /// Returns [`AaisError::InvalidMachine`] when `max_evolution_time` is not
    /// positive or `site_positions` references variables outside the registry.
    pub fn try_new(
        name: impl Into<String>,
        num_sites: usize,
        registry: VariableRegistry,
        instructions: Vec<Instruction>,
        max_evolution_time: f64,
        min_site_spacing: Option<f64>,
        site_positions: Vec<Vec<VariableId>>,
    ) -> Result<Self, AaisError> {
        // Negated comparison (not `<= 0.0`) so a NaN maximum is rejected too.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(max_evolution_time > 0.0) {
            return Err(AaisError::InvalidMachine {
                reason: "maximum evolution time must be positive".to_string(),
            });
        }
        for coords in &site_positions {
            for id in coords {
                if id.index() >= registry.len() {
                    return Err(AaisError::InvalidMachine {
                        reason: "site position variable out of range".to_string(),
                    });
                }
            }
        }
        Ok(Aais {
            name: name.into(),
            num_sites,
            registry,
            instructions,
            max_evolution_time,
            min_site_spacing,
            site_positions,
        })
    }

    /// Device name (e.g. `"rydberg"`, `"heisenberg"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of qubits / atoms the AAIS addresses.
    pub fn num_sites(&self) -> usize {
        self.num_sites
    }

    /// Registry of all device variables.
    pub fn registry(&self) -> &VariableRegistry {
        &self.registry
    }

    /// The instructions of the AAIS.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Maximum machine evolution time supported by the device (e.g. 4 µs for
    /// QuEra's Aquila).
    pub fn max_evolution_time(&self) -> f64 {
        self.max_evolution_time
    }

    /// Minimum spacing between site-position variables, if the device has
    /// position constraints.
    pub fn min_site_spacing(&self) -> Option<f64> {
        self.min_site_spacing
    }

    /// The coordinate variables of every site, in site order (empty when the
    /// device has no position degrees of freedom). Each inner slice holds one
    /// variable per spatial dimension.
    pub fn site_positions(&self) -> &[Vec<VariableId>] {
        &self.site_positions
    }

    /// Euclidean distance between two sites for a given variable assignment.
    ///
    /// # Panics
    ///
    /// Panics if either site has no position variables.
    pub fn site_distance(&self, site_a: usize, site_b: usize, values: &[f64]) -> f64 {
        let a = &self.site_positions[site_a];
        let b = &self.site_positions[site_b];
        assert!(
            !a.is_empty() && !b.is_empty(),
            "sites have no position variables"
        );
        a.iter()
            .zip(b.iter())
            .map(|(ia, ib)| {
                let d = values[ia.index()] - values[ib.index()];
                d * d
            })
            .sum::<f64>()
            .sqrt()
    }

    /// All `(instruction, generator)` references, in canonical order. Each
    /// reference corresponds to one synthesized variable of the compiler.
    pub fn generator_refs(&self) -> Vec<GeneratorRef> {
        let mut refs = Vec::new();
        for (i, instruction) in self.instructions.iter().enumerate() {
            for g in 0..instruction.generators().len() {
                refs.push(GeneratorRef {
                    instruction: i,
                    generator: g,
                });
            }
        }
        refs
    }

    /// Looks up a generator by reference.
    ///
    /// # Panics
    ///
    /// Panics if the reference does not belong to this AAIS.
    pub fn generator(&self, generator_ref: GeneratorRef) -> &Generator {
        &self.instructions[generator_ref.instruction].generators()[generator_ref.generator]
    }

    /// Looks up the instruction owning a generator reference.
    ///
    /// # Panics
    ///
    /// Panics if the reference does not belong to this AAIS.
    pub fn instruction_of(&self, generator_ref: GeneratorRef) -> &Instruction {
        &self.instructions[generator_ref.instruction]
    }

    /// The set of non-identity Pauli strings any instruction can produce.
    pub fn producible_terms(&self) -> BTreeSet<PauliString> {
        let mut set = BTreeSet::new();
        for instruction in &self.instructions {
            for generator in instruction.generators() {
                for (string, _) in generator.effects() {
                    set.insert(string.clone());
                }
            }
        }
        set
    }

    /// Default variable assignment: every variable at its initial guess.
    pub fn default_values(&self) -> Vec<f64> {
        self.registry.iter().map(Variable::initial_guess).collect()
    }

    /// Evaluates the device Hamiltonian `H_sim` for a full variable assignment
    /// (indexed by [`VariableId::index`]).
    ///
    /// # Errors
    ///
    /// Returns [`AaisError::WrongValueCount`] when the slice length does not
    /// match the registry size.
    pub fn hamiltonian(&self, values: &[f64]) -> Result<Hamiltonian, AaisError> {
        if values.len() != self.registry.len() {
            return Err(AaisError::WrongValueCount {
                expected: self.registry.len(),
                provided: values.len(),
            });
        }
        let mut h = Hamiltonian::new(self.num_sites);
        for instruction in &self.instructions {
            for generator in instruction.generators() {
                let strength = generator.value(values);
                if strength == 0.0 {
                    continue;
                }
                for (string, weight) in generator.effects() {
                    h.add_term(strength * weight, string.clone());
                }
            }
        }
        Ok(h)
    }

    /// Validates a variable assignment against hardware bounds and (when the
    /// device has positions) the minimum site spacing.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate_values(&self, values: &[f64]) -> Result<(), AaisError> {
        if values.len() != self.registry.len() {
            return Err(AaisError::WrongValueCount {
                expected: self.registry.len(),
                provided: values.len(),
            });
        }
        for variable in self.registry.iter() {
            let value = values[variable.id().index()];
            if !variable.admits(value) {
                return Err(AaisError::VariableOutOfBounds {
                    name: variable.name().to_string(),
                    value,
                    lower: variable.lower(),
                    upper: variable.upper(),
                });
            }
        }
        if let Some(minimum) = self.min_site_spacing {
            for a in 0..self.site_positions.len() {
                for b in (a + 1)..self.site_positions.len() {
                    let distance = self.site_distance(a, b, values);
                    if distance < minimum {
                        return Err(AaisError::SitesTooClose {
                            site_a: a,
                            site_b: b,
                            distance,
                            minimum,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Validates a requested machine evolution time.
    ///
    /// # Errors
    ///
    /// Returns [`AaisError::EvolutionTooLong`] when `duration` exceeds
    /// [`Aais::max_evolution_time`].
    pub fn validate_duration(&self, duration: f64) -> Result<(), AaisError> {
        if duration > self.max_evolution_time * (1.0 + 1e-9) {
            return Err(AaisError::EvolutionTooLong {
                requested: duration,
                maximum: self.max_evolution_time,
            });
        }
        Ok(())
    }

    /// Ids of all runtime-dynamic variables.
    pub fn dynamic_variables(&self) -> Vec<VariableId> {
        self.registry.ids_of_kind(VariableKind::RuntimeDynamic)
    }

    /// Ids of all runtime-fixed variables.
    pub fn fixed_variables(&self) -> Vec<VariableId> {
        self.registry.ids_of_kind(VariableKind::RuntimeFixed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::instruction::InstructionKind;
    use qturbo_hamiltonian::Pauli;

    /// A tiny hand-built AAIS: one detuning-like instruction on a single site.
    fn toy_aais() -> Aais {
        let mut registry = VariableRegistry::new();
        let delta = registry.register("Delta", VariableKind::RuntimeDynamic, -20.0, 20.0, 0.0);
        let instruction = Instruction::new(
            "detuning_0",
            InstructionKind::Dynamic,
            vec![delta],
            vec![Generator::new(
                Expr::var(delta).scaled(0.5),
                vec![(PauliString::single(0, Pauli::Z), 1.0)],
            )],
            Some(delta),
        );
        Aais::new("toy", 1, registry, vec![instruction], 4.0, None, Vec::new())
    }

    #[test]
    fn basic_accessors() {
        let aais = toy_aais();
        assert_eq!(aais.name(), "toy");
        assert_eq!(aais.num_sites(), 1);
        assert_eq!(aais.instructions().len(), 1);
        assert_eq!(aais.max_evolution_time(), 4.0);
        assert_eq!(aais.generator_refs().len(), 1);
        assert_eq!(aais.dynamic_variables().len(), 1);
        assert!(aais.fixed_variables().is_empty());
        assert!(aais.min_site_spacing().is_none());
        assert!(aais.site_positions().is_empty());
        let gref = aais.generator_refs()[0];
        assert_eq!(aais.instruction_of(gref).name(), "detuning_0");
        assert_eq!(aais.generator(gref).effects().len(), 1);
    }

    #[test]
    fn hamiltonian_evaluation() {
        let aais = toy_aais();
        let h = aais.hamiltonian(&[4.0]).unwrap();
        assert_eq!(h.coefficient(&PauliString::single(0, Pauli::Z)), 2.0);
        let zero = aais.hamiltonian(&[0.0]).unwrap();
        assert!(zero.is_empty());
        assert!(aais.hamiltonian(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn producible_terms_and_defaults() {
        let aais = toy_aais();
        let terms = aais.producible_terms();
        assert_eq!(terms.len(), 1);
        assert!(terms.contains(&PauliString::single(0, Pauli::Z)));
        assert_eq!(aais.default_values(), vec![0.0]);
    }

    #[test]
    fn validation_of_bounds_and_duration() {
        let aais = toy_aais();
        assert!(aais.validate_values(&[10.0]).is_ok());
        let err = aais.validate_values(&[50.0]).unwrap_err();
        assert!(matches!(err, AaisError::VariableOutOfBounds { .. }));
        assert!(err.to_string().contains("Delta"));
        assert!(aais.validate_values(&[1.0, 2.0]).is_err());
        assert!(aais.validate_duration(3.9).is_ok());
        let err = aais.validate_duration(10.0).unwrap_err();
        assert!(matches!(err, AaisError::EvolutionTooLong { .. }));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn spacing_validation() {
        let mut registry = VariableRegistry::new();
        let x0 = registry.register("x_0", VariableKind::RuntimeFixed, 0.0, 75.0, 0.0);
        let x1 = registry.register("x_1", VariableKind::RuntimeFixed, 0.0, 75.0, 10.0);
        let instruction = Instruction::new(
            "vdw_0_1",
            InstructionKind::Fixed,
            vec![x0, x1],
            vec![Generator::new(
                Expr::inverse_power_distance(862690.0 / 4.0, x0, x1, 6),
                vec![(PauliString::two(0, Pauli::Z, 1, Pauli::Z), 1.0)],
            )],
            None,
        );
        let aais = Aais::new(
            "spacing",
            2,
            registry,
            vec![instruction],
            4.0,
            Some(4.0),
            vec![vec![x0], vec![x1]],
        );
        assert!(aais.validate_values(&[0.0, 10.0]).is_ok());
        assert!((aais.site_distance(0, 1, &[0.0, 10.0]) - 10.0).abs() < 1e-12);
        let err = aais.validate_values(&[0.0, 2.0]).unwrap_err();
        assert!(matches!(err, AaisError::SitesTooClose { .. }));
        assert!(err.to_string().contains("minimum"));
    }

    #[test]
    fn error_type_is_well_behaved() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<AaisError>();
        let err = AaisError::WrongValueCount {
            expected: 2,
            provided: 3,
        };
        assert!(err.to_string().contains('2'));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_non_positive_max_time() {
        let registry = VariableRegistry::new();
        let _ = Aais::new("bad", 1, registry, Vec::new(), 0.0, None, Vec::new());
    }

    #[test]
    fn try_new_returns_typed_errors() {
        let err = Aais::try_new(
            "bad",
            1,
            VariableRegistry::new(),
            Vec::new(),
            0.0,
            None,
            Vec::new(),
        )
        .unwrap_err();
        assert!(matches!(err, AaisError::InvalidMachine { .. }));
        assert!(err.to_string().contains("must be positive"));

        // Position variables must exist in the registry.
        let mut registry = VariableRegistry::new();
        let x0 = registry.register("x_0", VariableKind::RuntimeFixed, 0.0, 75.0, 0.0);
        let foreign = {
            let mut other = VariableRegistry::new();
            let _ = other.register("a", VariableKind::RuntimeFixed, 0.0, 1.0, 0.0);
            other.register("b", VariableKind::RuntimeFixed, 0.0, 1.0, 0.0)
        };
        let err = Aais::try_new(
            "bad",
            2,
            registry,
            Vec::new(),
            4.0,
            None,
            vec![vec![x0], vec![foreign]],
        )
        .unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }
}
