//! Device variables: runtime-fixed and runtime-dynamic amplitude variables.

use std::fmt;

/// Identifier of a device variable inside a [`VariableRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VariableId(pub(crate) usize);

impl VariableId {
    /// Index of the variable inside its registry.
    pub fn index(&self) -> usize {
        self.0
    }
}

impl fmt::Display for VariableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Whether a variable can change during program execution.
///
/// * Runtime **fixed** variables (e.g. atom positions in a Rydberg array)
///   must be chosen before the program starts and stay constant.
/// * Runtime **dynamic** variables (e.g. Rabi amplitude, detuning, phase)
///   can change between time segments of the pulse schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VariableKind {
    /// Fixed once program execution starts (paper: "runtime fixed variables").
    RuntimeFixed,
    /// Adjustable during execution (paper: "runtime dynamic variables").
    RuntimeDynamic,
}

/// A device amplitude variable with its hardware bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct Variable {
    id: VariableId,
    name: String,
    kind: VariableKind,
    lower: f64,
    upper: f64,
    initial_guess: f64,
}

impl Variable {
    /// Identifier of this variable.
    pub fn id(&self) -> VariableId {
        self.id
    }

    /// Human readable name (e.g. `"x_3"`, `"Omega_1"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Runtime fixed or runtime dynamic.
    pub fn kind(&self) -> VariableKind {
        self.kind
    }

    /// Hardware lower bound.
    pub fn lower(&self) -> f64 {
        self.lower
    }

    /// Hardware upper bound.
    pub fn upper(&self) -> f64 {
        self.upper
    }

    /// Initial guess used to seed nonlinear solvers.
    pub fn initial_guess(&self) -> f64 {
        self.initial_guess
    }

    /// Returns `true` when `value` lies within the hardware bounds, with a
    /// small relative tolerance.
    pub fn admits(&self, value: f64) -> bool {
        let span = (self.upper - self.lower).abs().max(1.0);
        let tol = 1e-9 * span;
        value >= self.lower - tol && value <= self.upper + tol
    }
}

/// Registry owning every variable of an AAIS.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VariableRegistry {
    variables: Vec<Variable>,
}

impl VariableRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new variable and returns its identifier.
    ///
    /// # Panics
    ///
    /// Panics if `lower > upper`. Use [`VariableRegistry::try_register`] to
    /// receive a typed error instead.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        kind: VariableKind,
        lower: f64,
        upper: f64,
        initial_guess: f64,
    ) -> VariableId {
        self.try_register(name, kind, lower, upper, initial_guess)
            .unwrap_or_else(|error| panic!("{error}"))
    }

    /// Fallible variant of [`VariableRegistry::register`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::AaisError::InvalidMachine`] if `lower > upper`.
    pub fn try_register(
        &mut self,
        name: impl Into<String>,
        kind: VariableKind,
        lower: f64,
        upper: f64,
        initial_guess: f64,
    ) -> Result<VariableId, crate::AaisError> {
        let name = name.into();
        // Written as a negated `<=` (rather than `lower > upper`) so NaN
        // bounds are rejected too.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(lower <= upper) {
            return Err(crate::AaisError::InvalidMachine {
                reason: format!(
                    "variable {name}: variable lower bound exceeds upper bound ({lower} > {upper})"
                ),
            });
        }
        let id = VariableId(self.variables.len());
        self.variables.push(Variable {
            id,
            name,
            kind,
            lower,
            upper,
            initial_guess: initial_guess.clamp(lower, upper),
        });
        Ok(id)
    }

    /// Number of registered variables.
    pub fn len(&self) -> usize {
        self.variables.len()
    }

    /// Returns `true` when no variable has been registered.
    pub fn is_empty(&self) -> bool {
        self.variables.is_empty()
    }

    /// Looks up a variable by id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this registry.
    pub fn get(&self, id: VariableId) -> &Variable {
        &self.variables[id.0]
    }

    /// Iterates over all variables in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &Variable> {
        self.variables.iter()
    }

    /// Ids of all variables of the given kind.
    pub fn ids_of_kind(&self, kind: VariableKind) -> Vec<VariableId> {
        self.variables
            .iter()
            .filter(|v| v.kind == kind)
            .map(|v| v.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut reg = VariableRegistry::new();
        assert!(reg.is_empty());
        let a = reg.register("x_0", VariableKind::RuntimeFixed, 0.0, 75.0, 10.0);
        let b = reg.register("Omega_0", VariableKind::RuntimeDynamic, 0.0, 2.5, 0.0);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.get(a).name(), "x_0");
        assert_eq!(reg.get(b).kind(), VariableKind::RuntimeDynamic);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(a.to_string(), "v0");
    }

    #[test]
    fn bounds_and_admits() {
        let mut reg = VariableRegistry::new();
        let id = reg.register("Delta", VariableKind::RuntimeDynamic, -20.0, 20.0, 0.0);
        let v = reg.get(id);
        assert!(v.admits(0.0));
        assert!(v.admits(20.0));
        assert!(v.admits(-20.0));
        assert!(!v.admits(25.0));
        assert_eq!(v.lower(), -20.0);
        assert_eq!(v.upper(), 20.0);
    }

    #[test]
    fn initial_guess_is_clamped() {
        let mut reg = VariableRegistry::new();
        let id = reg.register("phi", VariableKind::RuntimeDynamic, -1.0, 1.0, 5.0);
        assert_eq!(reg.get(id).initial_guess(), 1.0);
    }

    #[test]
    fn ids_of_kind_filters() {
        let mut reg = VariableRegistry::new();
        let a = reg.register("x", VariableKind::RuntimeFixed, 0.0, 1.0, 0.0);
        let _b = reg.register("w", VariableKind::RuntimeDynamic, 0.0, 1.0, 0.0);
        let c = reg.register("y", VariableKind::RuntimeFixed, 0.0, 1.0, 0.0);
        assert_eq!(reg.ids_of_kind(VariableKind::RuntimeFixed), vec![a, c]);
        assert_eq!(reg.iter().count(), 3);
    }

    #[test]
    #[should_panic(expected = "lower bound exceeds upper bound")]
    fn rejects_inverted_bounds() {
        let mut reg = VariableRegistry::new();
        reg.register("bad", VariableKind::RuntimeDynamic, 1.0, 0.0, 0.0);
    }
}
