//! Analog instructions and their Hamiltonian-term generators.

use crate::expr::Expr;
use crate::variable::VariableId;
use qturbo_hamiltonian::PauliString;

/// One coefficient generator of an instruction.
///
/// A generator is a pair of a coefficient expression `g(x)` over device
/// variables and a list of Hamiltonian-term effects: switching the
/// instruction on contributes `weight · g(x)` to the strength of every listed
/// Pauli string. The synthesized variables of QTurbo's global linear system
/// (paper §4.1) are exactly `α = g(x) · T_sim`, one per generator.
///
/// For example the Van der Waals instruction of the Rydberg AAIS has a single
/// generator with `g(x) = C6 / (4·|x_i − x_j|⁶)` and effects
/// `{Z_iZ_j: +1, Z_i: −1, Z_j: −1}` (the identity part is dropped as a global
/// phase).
#[derive(Debug, Clone, PartialEq)]
pub struct Generator {
    expr: Expr,
    effects: Vec<(PauliString, f64)>,
}

impl Generator {
    /// Creates a generator from its coefficient expression and term effects.
    ///
    /// Identity effects are dropped; they only shift the global phase.
    ///
    /// # Panics
    ///
    /// Panics if no non-identity effect remains. Use [`Generator::try_new`]
    /// to receive a typed error instead.
    pub fn new(expr: Expr, effects: Vec<(PauliString, f64)>) -> Self {
        Self::try_new(expr, effects).unwrap_or_else(|error| panic!("{error}"))
    }

    /// Fallible variant of [`Generator::new`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::AaisError::InvalidMachine`] if no non-identity effect
    /// remains after dropping identity and zero-weight effects.
    pub fn try_new(expr: Expr, effects: Vec<(PauliString, f64)>) -> Result<Self, crate::AaisError> {
        let effects: Vec<(PauliString, f64)> = effects
            .into_iter()
            .filter(|(s, w)| !s.is_identity() && *w != 0.0)
            .collect();
        if effects.is_empty() {
            return Err(crate::AaisError::InvalidMachine {
                reason: "generator must affect at least one non-identity term".to_string(),
            });
        }
        Ok(Generator { expr, effects })
    }

    /// The coefficient expression `g(x)`.
    pub fn expr(&self) -> &Expr {
        &self.expr
    }

    /// The `(Pauli string, weight)` effects of this generator.
    pub fn effects(&self) -> &[(PauliString, f64)] {
        &self.effects
    }

    /// Evaluates `g(x)` for a dense variable-value slice.
    pub fn value(&self, values: &[f64]) -> f64 {
        self.expr.eval_slice(values)
    }
}

/// Whether the instruction is controlled by runtime-fixed or runtime-dynamic
/// variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstructionKind {
    /// Controlled by runtime-fixed variables (e.g. Van der Waals interaction
    /// set by atom positions).
    Fixed,
    /// Controlled by runtime-dynamic variables (e.g. detuning, Rabi drive).
    Dynamic,
}

/// One instruction of an Abstract Analog Instruction Set.
#[derive(Debug, Clone, PartialEq)]
pub struct Instruction {
    name: String,
    kind: InstructionKind,
    variables: Vec<VariableId>,
    generators: Vec<Generator>,
    time_critical: Option<VariableId>,
}

impl Instruction {
    /// Creates an instruction.
    ///
    /// `time_critical` is the variable that directly scales the instruction's
    /// amplitude (paper §5.1); it must be listed in `variables` and every
    /// generator expression must be linear and homogeneous in it.
    ///
    /// # Panics
    ///
    /// Panics when the generator expressions reference variables outside
    /// `variables`, when `time_critical` is not one of `variables`, or when a
    /// generator is not linear-homogeneous in the time-critical variable. Use
    /// [`Instruction::try_new`] to receive a typed error instead.
    pub fn new(
        name: impl Into<String>,
        kind: InstructionKind,
        variables: Vec<VariableId>,
        generators: Vec<Generator>,
        time_critical: Option<VariableId>,
    ) -> Self {
        Self::try_new(name, kind, variables, generators, time_critical)
            .unwrap_or_else(|error| panic!("{error}"))
    }

    /// Fallible variant of [`Instruction::new`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::AaisError::InvalidMachine`] for every condition listed
    /// under [`Instruction::new`]'s panics.
    pub fn try_new(
        name: impl Into<String>,
        kind: InstructionKind,
        variables: Vec<VariableId>,
        generators: Vec<Generator>,
        time_critical: Option<VariableId>,
    ) -> Result<Self, crate::AaisError> {
        let name = name.into();
        let invalid = |reason: String| crate::AaisError::InvalidMachine { reason };
        if generators.is_empty() {
            return Err(invalid(format!("instruction {name} has no generators")));
        }
        for generator in &generators {
            for var in generator.expr().variables() {
                if !variables.contains(&var) {
                    return Err(invalid(format!(
                        "instruction {name}: generator references unlisted variable {var}"
                    )));
                }
            }
        }
        if let Some(tc) = time_critical {
            if !variables.contains(&tc) {
                return Err(invalid(format!(
                    "instruction {name}: time-critical variable {tc} is not listed"
                )));
            }
            for generator in &generators {
                if !generator.expr().is_linear_homogeneous_in(tc) {
                    return Err(invalid(format!(
                        "instruction {name}: generator {} is not linear-homogeneous in its \
                         time-critical variable {tc}",
                        generator.expr()
                    )));
                }
            }
        }
        Ok(Instruction {
            name,
            kind,
            variables,
            generators,
            time_critical,
        })
    }

    /// Instruction name (e.g. `"vdw_0_1"`, `"rabi_2"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Fixed or dynamic.
    pub fn kind(&self) -> InstructionKind {
        self.kind
    }

    /// The device variables this instruction is controlled by.
    pub fn variables(&self) -> &[VariableId] {
        &self.variables
    }

    /// The coefficient generators.
    pub fn generators(&self) -> &[Generator] {
        &self.generators
    }

    /// The time-critical variable, if the instruction has one.
    pub fn time_critical(&self) -> Option<VariableId> {
        self.time_critical
    }
}

/// Reference to one generator of one instruction within an AAIS; this is the
/// index space of the synthesized variables in the compiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GeneratorRef {
    /// Index of the instruction in the AAIS.
    pub instruction: usize,
    /// Index of the generator within the instruction.
    pub generator: usize,
}

impl std::fmt::Display for GeneratorRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "g{}.{}", self.instruction, self.generator)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variable::{VariableKind, VariableRegistry};
    use qturbo_hamiltonian::Pauli;

    fn setup() -> (VariableRegistry, VariableId, VariableId) {
        let mut reg = VariableRegistry::new();
        let omega = reg.register("Omega", VariableKind::RuntimeDynamic, 0.0, 2.5, 0.0);
        let phi = reg.register("phi", VariableKind::RuntimeDynamic, -3.2, 3.2, 0.0);
        (reg, omega, phi)
    }

    fn rabi_generators(omega: VariableId, phi: VariableId) -> Vec<Generator> {
        vec![
            Generator::new(
                Expr::Product(vec![
                    Expr::var(omega),
                    Expr::constant(0.5),
                    Expr::Cos(Box::new(Expr::var(phi))),
                ]),
                vec![(PauliString::single(0, Pauli::X), 1.0)],
            ),
            Generator::new(
                Expr::Product(vec![
                    Expr::var(omega),
                    Expr::constant(-0.5),
                    Expr::Sin(Box::new(Expr::var(phi))),
                ]),
                vec![(PauliString::single(0, Pauli::Y), 1.0)],
            ),
        ]
    }

    #[test]
    fn builds_a_rabi_instruction() {
        let (_reg, omega, phi) = setup();
        let instr = Instruction::new(
            "rabi_0",
            InstructionKind::Dynamic,
            vec![omega, phi],
            rabi_generators(omega, phi),
            Some(omega),
        );
        assert_eq!(instr.name(), "rabi_0");
        assert_eq!(instr.kind(), InstructionKind::Dynamic);
        assert_eq!(instr.generators().len(), 2);
        assert_eq!(instr.time_critical(), Some(omega));
        assert_eq!(instr.variables().len(), 2);
        let g = &instr.generators()[0];
        assert_eq!(g.effects().len(), 1);
        assert!((g.value(&[2.5, 0.0]) - 1.25).abs() < 1e-12);
    }

    #[test]
    fn generator_drops_identity_effects() {
        let (_reg, omega, _phi) = setup();
        let g = Generator::new(
            Expr::var(omega),
            vec![
                (PauliString::identity(), 0.25),
                (PauliString::single(0, Pauli::Z), -0.5),
                (PauliString::single(1, Pauli::Z), 0.0),
            ],
        );
        assert_eq!(g.effects().len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one non-identity term")]
    fn generator_requires_real_effects() {
        let (_reg, omega, _phi) = setup();
        let _ = Generator::new(Expr::var(omega), vec![(PauliString::identity(), 1.0)]);
    }

    #[test]
    #[should_panic(expected = "unlisted variable")]
    fn instruction_rejects_unlisted_variables() {
        let (_reg, omega, phi) = setup();
        let _ = Instruction::new(
            "bad",
            InstructionKind::Dynamic,
            vec![omega],
            rabi_generators(omega, phi),
            Some(omega),
        );
    }

    #[test]
    #[should_panic(expected = "not linear-homogeneous")]
    fn instruction_rejects_non_homogeneous_time_critical() {
        let (_reg, omega, phi) = setup();
        let _ = Instruction::new(
            "bad",
            InstructionKind::Dynamic,
            vec![omega, phi],
            rabi_generators(omega, phi),
            Some(phi),
        );
    }

    #[test]
    #[should_panic(expected = "is not listed")]
    fn instruction_rejects_foreign_time_critical() {
        let mut reg = VariableRegistry::new();
        let omega = reg.register("Omega", VariableKind::RuntimeDynamic, 0.0, 2.5, 0.0);
        let phi = reg.register("phi", VariableKind::RuntimeDynamic, -3.2, 3.2, 0.0);
        let other = reg.register("other", VariableKind::RuntimeDynamic, 0.0, 1.0, 0.0);
        let _ = Instruction::new(
            "bad",
            InstructionKind::Dynamic,
            vec![omega, phi],
            rabi_generators(omega, phi),
            Some(other),
        );
    }

    #[test]
    fn generator_ref_display_and_order() {
        let a = GeneratorRef {
            instruction: 0,
            generator: 1,
        };
        let b = GeneratorRef {
            instruction: 1,
            generator: 0,
        };
        assert!(a < b);
        assert_eq!(a.to_string(), "g0.1");
    }
}
