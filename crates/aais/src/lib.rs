//! Abstract Analog Instruction Sets (AAIS) for the QTurbo compiler.
//!
//! An AAIS (paper §2.1) describes the programmable Hamiltonian of an analog
//! quantum simulator: a set of [`Instruction`]s whose [`Generator`]s map
//! device [`Variable`] settings (amplitudes, phases, atom positions) onto
//! Hamiltonian-term strengths via symbolic [`Expr`]essions.
//!
//! Two concrete instruction sets are provided, matching the paper:
//!
//! * [`rydberg`] — neutral-atom devices (QuEra Aquila): Van der Waals
//!   interactions set by runtime-fixed atom positions, plus detuning and Rabi
//!   drive instructions;
//! * [`heisenberg`] — superconducting / trapped-ion devices: directly tunable
//!   single- and two-qubit Pauli amplitudes.
//!
//! The compiled output is a [`PulseSchedule`]: per-segment variable
//! assignments with durations, validated against hardware bounds.
//!
//! # Example
//!
//! ```
//! use qturbo_aais::rydberg::{rydberg_aais, RydbergOptions};
//!
//! let aais = rydberg_aais(3, &RydbergOptions::default());
//! assert_eq!(aais.num_sites(), 3);
//! // One synthesized variable (generator) per instruction coefficient.
//! assert!(aais.generator_refs().len() >= aais.instructions().len());
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod aais;
pub mod expr;
pub mod heisenberg;
pub mod instruction;
pub mod lowering;
pub mod pulse;
pub mod rydberg;
pub mod variable;

pub use aais::{Aais, AaisError};
pub use expr::Expr;
pub use instruction::{Generator, GeneratorRef, Instruction, InstructionKind};
pub use lowering::{lower, try_lower, LoweredSchedule};
pub use pulse::{PulseSchedule, PulseSegment};
pub use variable::{Variable, VariableId, VariableKind, VariableRegistry};
