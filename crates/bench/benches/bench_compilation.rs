//! Criterion benchmarks of end-to-end compilation: QTurbo vs the SimuQ-style
//! baseline, plus the ablation variants called out in DESIGN.md
//! (no evolution-time optimization, no refinement, no localization).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qturbo::{CompilerOptions, QTurboCompiler};
use qturbo_bench::{baseline_compiler, device_for, target_for, Device};
use qturbo_hamiltonian::models::Model;

fn bench_qturbo_vs_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("compilation");
    group.sample_size(10);

    for &(device, n) in &[(Device::Heisenberg, 8usize), (Device::Rydberg, 6usize)] {
        let target = target_for(Model::IsingChain, n);
        let aais = device_for(Model::IsingChain, n, device);
        group.bench_with_input(
            BenchmarkId::new("qturbo", format!("{device}_{n}q")),
            &(&target, &aais),
            |b, (target, aais)| {
                let compiler = QTurboCompiler::new();
                b.iter(|| compiler.compile(target, 1.0, aais).unwrap());
            },
        );
        group.bench_with_input(
            BenchmarkId::new("baseline", format!("{device}_{n}q")),
            &(&target, &aais),
            |b, (target, aais)| {
                let compiler = baseline_compiler();
                b.iter(|| compiler.compile(target, 1.0, aais));
            },
        );
    }
    group.finish();
}

fn bench_qturbo_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("qturbo_scaling");
    group.sample_size(10);
    for &n in &[8usize, 16, 32, 64] {
        let target = target_for(Model::IsingChain, n);
        let aais = device_for(Model::IsingChain, n, Device::Rydberg);
        group.bench_with_input(BenchmarkId::from_parameter(n), &(&target, &aais), |b, (target, aais)| {
            let compiler = QTurboCompiler::new();
            b.iter(|| compiler.compile(target, 1.0, aais).unwrap());
        });
    }
    group.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    let n = 10;
    let target = target_for(Model::IsingChain, n);
    let aais = device_for(Model::IsingChain, n, Device::Rydberg);

    let variants: [(&str, CompilerOptions); 4] = [
        ("full", CompilerOptions::default()),
        ("no_refine", CompilerOptions { refine: false, ..CompilerOptions::default() }),
        ("no_localize", CompilerOptions { localize: false, ..CompilerOptions::default() }),
        (
            "no_time_opt",
            CompilerOptions { optimize_evolution_time: false, ..CompilerOptions::default() },
        ),
    ];
    for (name, options) in variants {
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &(&target, &aais),
            |b, (target, aais)| {
                let compiler = QTurboCompiler::with_options(options.clone());
                b.iter(|| compiler.compile(target, 1.0, aais).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_qturbo_vs_baseline, bench_qturbo_scaling, bench_ablations);
criterion_main!(benches);
