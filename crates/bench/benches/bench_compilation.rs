//! Benchmarks of end-to-end compilation: QTurbo vs the SimuQ-style baseline,
//! plus the ablation variants called out in DESIGN.md (no evolution-time
//! optimization, no refinement, no localization).
//!
//! Runs on the crate's own timing harness ([`qturbo_bench::timing`]); invoke
//! with `cargo bench --bench bench_compilation`.

use qturbo::{CompilerOptions, QTurboCompiler};
use qturbo_bench::timing::bench;
use qturbo_bench::{baseline_compiler, device_for, target_for, Device};
use qturbo_hamiltonian::models::Model;

const REPS: usize = 10;

fn report(group: &str, name: &str, median: f64) {
    println!("{group:<16} {name:<24} {:>12.6} ms", median * 1e3);
}

fn bench_qturbo_vs_baseline() {
    for &(device, n) in &[(Device::Heisenberg, 8usize), (Device::Rydberg, 6usize)] {
        let target = target_for(Model::IsingChain, n);
        let aais = device_for(Model::IsingChain, n, device);

        let compiler = QTurboCompiler::new();
        let sample = bench(REPS, || {
            std::hint::black_box(compiler.compile(&target, 1.0, &aais).unwrap());
        });
        report(
            "compilation",
            &format!("qturbo/{device}_{n}q"),
            sample.median,
        );

        let baseline = baseline_compiler();
        let sample = bench(REPS, || {
            std::hint::black_box(baseline.compile(&target, 1.0, &aais).ok());
        });
        report(
            "compilation",
            &format!("baseline/{device}_{n}q"),
            sample.median,
        );
    }
}

fn bench_qturbo_scaling() {
    for &n in &[8usize, 16, 32, 64] {
        let target = target_for(Model::IsingChain, n);
        let aais = device_for(Model::IsingChain, n, Device::Rydberg);
        let compiler = QTurboCompiler::new();
        let sample = bench(REPS, || {
            std::hint::black_box(compiler.compile(&target, 1.0, &aais).unwrap());
        });
        report("qturbo_scaling", &format!("{n}q"), sample.median);
    }
}

fn bench_ablations() {
    let n = 10;
    let target = target_for(Model::IsingChain, n);
    let aais = device_for(Model::IsingChain, n, Device::Rydberg);

    let variants: [(&str, CompilerOptions); 4] = [
        ("full", CompilerOptions::default()),
        (
            "no_refine",
            CompilerOptions {
                refine: false,
                ..CompilerOptions::default()
            },
        ),
        (
            "no_localize",
            CompilerOptions {
                localize: false,
                ..CompilerOptions::default()
            },
        ),
        (
            "no_time_opt",
            CompilerOptions {
                optimize_evolution_time: false,
                ..CompilerOptions::default()
            },
        ),
    ];
    for (name, options) in variants {
        let compiler = QTurboCompiler::with_options(options);
        let sample = bench(REPS, || {
            std::hint::black_box(compiler.compile(&target, 1.0, &aais).unwrap());
        });
        report("ablations", name, sample.median);
    }
}

fn main() {
    bench_qturbo_vs_baseline();
    bench_qturbo_scaling();
    bench_ablations();
}
