//! Micro-benchmarks of the individual pipeline stages: the global linear
//! solve, the localized mixed solves (evolution-time analysis and the
//! position solve), the L1 refinement, and the state-vector propagator
//! (naive reference vs the mask-compiled kernel).
//!
//! Runs on the crate's own timing harness ([`qturbo_bench::timing`]); invoke
//! with `cargo bench --bench bench_solvers`.

use qturbo::components::partition;
use qturbo::linear_system::GlobalLinearSystem;
use qturbo::local_system::{minimal_time_for_instruction, solve_component_at_time};
use qturbo::refine::refined_targets;
use qturbo_bench::timing::bench;
use qturbo_bench::{device_for, target_for, Device};
use qturbo_hamiltonian::models::Model;
use qturbo_quantum::compiled::CompiledHamiltonian;
use qturbo_quantum::propagate::{evolve_naive, Propagator};
use qturbo_quantum::StateVector;

const REPS: usize = 10;

fn report(group: &str, name: &str, median: f64) {
    println!("{group:<24} {name:<28} {:>12.6} ms", median * 1e3);
}

fn bench_global_linear_system() {
    for &n in &[10usize, 30, 60] {
        let target = target_for(Model::IsingChain, n);
        let aais = device_for(Model::IsingChain, n, Device::Rydberg);
        let sample = bench(REPS, || {
            let system = GlobalLinearSystem::build(&aais, &target, 1.0).unwrap();
            std::hint::black_box(system.solve().unwrap());
        });
        report("global_linear_system", &format!("{n}q"), sample.median);
    }
}

fn bench_local_systems() {
    let n = 12;
    let target = target_for(Model::IsingChain, n);
    let aais = device_for(Model::IsingChain, n, Device::Rydberg);
    let system = GlobalLinearSystem::build(&aais, &target, 1.0).unwrap();
    let alpha = system.solve().unwrap();
    let targets: Vec<_> = system
        .columns()
        .iter()
        .enumerate()
        .map(|(k, g)| (*g, alpha[k]))
        .collect();
    let components = partition(&aais, true);

    // Evolution-time analysis of one Rabi instruction.
    let rabi_index = aais
        .instructions()
        .iter()
        .position(|i| i.name() == "rabi_0")
        .unwrap();
    let sample = bench(REPS, || {
        std::hint::black_box(
            minimal_time_for_instruction(&aais, rabi_index, &targets, 4.0).unwrap(),
        );
    });
    report("local_systems", "minimal_time_rabi", sample.median);

    // The (large) fixed component holding every atom position.
    let fixed = components.iter().find(|c| c.is_fixed()).unwrap();
    let sample = bench(REPS, || {
        std::hint::black_box(solve_component_at_time(&aais, fixed, &targets, 0.8, None).unwrap());
    });
    report("local_systems", "position_component_solve", sample.median);

    // L1 refinement over the dynamic synthesized variables.
    let dynamic_mask: Vec<bool> = system
        .columns()
        .iter()
        .map(|gref| {
            components
                .iter()
                .find(|c| c.generators.contains(gref))
                .map(|c| c.is_dynamic())
                .unwrap_or(false)
        })
        .collect();
    let sample = bench(REPS, || {
        std::hint::black_box(refined_targets(&system, &dynamic_mask, &alpha).unwrap());
    });
    report("local_systems", "l1_refinement", sample.median);
}

fn bench_state_vector_propagation() {
    for &n in &[8usize, 12] {
        let target = target_for(Model::IsingChain, n);
        let initial = StateVector::zero_state(target.num_qubits());

        let sample = bench(REPS, || {
            std::hint::black_box(evolve_naive(&initial, &target, 0.5));
        });
        report(
            "state_vector_evolution",
            &format!("naive_{n}q"),
            sample.median,
        );

        let compiled = CompiledHamiltonian::compile(&target);
        let mut propagator = Propagator::new();
        let mut work = StateVector::zeros(n);
        let sample = bench(REPS, || {
            work.copy_from(&initial);
            propagator.evolve_in_place(&compiled, &mut work, 0.5);
            std::hint::black_box(&work);
        });
        report(
            "state_vector_evolution",
            &format!("compiled_{n}q"),
            sample.median,
        );
    }
}

fn main() {
    bench_global_linear_system();
    bench_local_systems();
    bench_state_vector_propagation();
}
