//! Criterion micro-benchmarks of the individual pipeline stages: the global
//! linear solve, the localized mixed solves (evolution-time analysis and the
//! position solve), the L1 refinement, and the state-vector propagator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qturbo::components::partition;
use qturbo::linear_system::GlobalLinearSystem;
use qturbo::local_system::{minimal_time_for_instruction, solve_component_at_time};
use qturbo::refine::refined_targets;
use qturbo_bench::{device_for, target_for, Device};
use qturbo_hamiltonian::models::Model;
use qturbo_quantum::propagate::evolve;
use qturbo_quantum::StateVector;

fn bench_global_linear_system(c: &mut Criterion) {
    let mut group = c.benchmark_group("global_linear_system");
    group.sample_size(10);
    for &n in &[10usize, 30, 60] {
        let target = target_for(Model::IsingChain, n);
        let aais = device_for(Model::IsingChain, n, Device::Rydberg);
        group.bench_with_input(BenchmarkId::from_parameter(n), &(&target, &aais), |b, (target, aais)| {
            b.iter(|| {
                let system = GlobalLinearSystem::build(aais, target, 1.0).unwrap();
                system.solve().unwrap()
            });
        });
    }
    group.finish();
}

fn bench_local_systems(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_systems");
    group.sample_size(10);
    let n = 12;
    let target = target_for(Model::IsingChain, n);
    let aais = device_for(Model::IsingChain, n, Device::Rydberg);
    let system = GlobalLinearSystem::build(&aais, &target, 1.0).unwrap();
    let alpha = system.solve().unwrap();
    let targets: Vec<_> =
        system.columns().iter().enumerate().map(|(k, g)| (*g, alpha[k])).collect();
    let components = partition(&aais, true);

    // Evolution-time analysis of one Rabi instruction.
    let rabi_index = aais.instructions().iter().position(|i| i.name() == "rabi_0").unwrap();
    group.bench_function("minimal_time_rabi", |b| {
        b.iter(|| minimal_time_for_instruction(&aais, rabi_index, &targets, 4.0).unwrap());
    });

    // The (large) fixed component holding every atom position.
    let fixed = components.iter().find(|c| c.is_fixed()).unwrap();
    group.bench_function("position_component_solve", |b| {
        b.iter(|| solve_component_at_time(&aais, fixed, &targets, 0.8, None).unwrap());
    });

    // L1 refinement over the dynamic synthesized variables.
    let dynamic_mask: Vec<bool> = system
        .columns()
        .iter()
        .map(|gref| {
            components
                .iter()
                .find(|c| c.generators.contains(gref))
                .map(|c| c.is_dynamic())
                .unwrap_or(false)
        })
        .collect();
    group.bench_function("l1_refinement", |b| {
        b.iter(|| refined_targets(&system, &dynamic_mask, &alpha).unwrap());
    });
    group.finish();
}

fn bench_state_vector_propagation(c: &mut Criterion) {
    let mut group = c.benchmark_group("state_vector_evolution");
    group.sample_size(10);
    for &n in &[8usize, 12] {
        let target = target_for(Model::IsingChain, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &target, |b, target| {
            let initial = StateVector::zero_state(target.num_qubits());
            b.iter(|| evolve(&initial, target, 0.5));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_global_linear_system,
    bench_local_systems,
    bench_state_vector_propagation
);
criterion_main!(benches);
