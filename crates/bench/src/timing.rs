//! Minimal wall-clock timing harness and JSON report writer.
//!
//! No external benchmark framework is vendored in this environment, so the
//! micro-benchmarks and the `BENCH_*.json` emitters use this from-scratch
//! substitute: warm up once, run a closure `reps` times, and report
//! min/median/mean seconds. The JSON writer covers exactly the subset the
//! reports need (objects, arrays, strings, finite numbers, null).

use std::time::Instant;

/// Timing statistics of one benchmarked closure, in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Fastest repetition.
    pub min: f64,
    /// Median repetition — the headline number (robust against one-off
    /// scheduling noise).
    pub median: f64,
    /// Mean over repetitions.
    pub mean: f64,
    /// Number of timed repetitions.
    pub reps: usize,
}

/// Times `f` over `reps` repetitions (after one untimed warm-up run).
///
/// # Panics
///
/// Panics if `reps` is zero.
pub fn bench<F: FnMut()>(reps: usize, mut f: F) -> Sample {
    assert!(reps > 0, "need at least one repetition");
    f(); // Warm-up: page in buffers, populate caches.
    let mut times = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        f();
        times.push(start.elapsed().as_secs_f64());
    }
    times.sort_by(|a, b| a.total_cmp(b));
    Sample {
        min: times[0],
        median: times[times.len() / 2],
        mean: times.iter().sum::<f64>() / times.len() as f64,
        reps,
    }
}

/// Achieved amplitude traffic of one workload: `passes` state-sized
/// traversals of a `dim`-amplitude vector (16 bytes per complex amplitude)
/// over the fastest repetition's wall time.
pub fn achieved_bytes_per_sec(passes: f64, dim: usize, wall_min: f64) -> f64 {
    passes * dim as f64 * 16.0 / wall_min.max(1e-12)
}

/// A JSON value, sufficient for benchmark reports.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A finite number (non-finite values render as `null`).
    Number(f64),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for object values.
    pub fn object(fields: Vec<(&str, Json)>) -> Json {
        Json::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Convenience constructor for string values.
    pub fn string(s: impl Into<String>) -> Json {
        Json::String(s.into())
    }

    /// An optional number: `None` renders as `null`.
    pub fn opt_number(value: Option<f64>) -> Json {
        value.map_or(Json::Null, Json::Number)
    }

    /// Renders the value as pretty-printed JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad_inner = "  ".repeat(indent + 1);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(x) => {
                if x.is_finite() {
                    // Integral values print without a trailing ".0" so qubit
                    // counts read naturally.
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        out.push_str(&format!("{}", *x as i64));
                    } else {
                        out.push_str(&format!("{x}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::String(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (k, item) in items.iter().enumerate() {
                    out.push_str(&pad_inner);
                    item.write(out, indent + 1);
                    if k + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (k, (key, value)) in fields.iter().enumerate() {
                    out.push_str(&pad_inner);
                    Json::String(key.clone()).write(out, indent + 1);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                    if k + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_ordered_statistics() {
        let mut count = 0usize;
        let sample = bench(5, || count += 1);
        assert_eq!(sample.reps, 5);
        assert_eq!(count, 6); // warm-up + 5 timed
        assert!(sample.min <= sample.median);
        assert!(sample.min >= 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one repetition")]
    fn zero_reps_panics() {
        let _ = bench(0, || ());
    }

    #[test]
    fn json_renders_nested_structures() {
        let value = Json::object(vec![
            ("name", Json::string("bench")),
            ("qubits", Json::Number(16.0)),
            ("seconds", Json::Number(0.25)),
            ("skipped", Json::Null),
            ("ok", Json::Bool(true)),
            (
                "sizes",
                Json::Array(vec![Json::Number(8.0), Json::Number(12.0)]),
            ),
        ]);
        let text = value.render();
        assert!(text.contains("\"qubits\": 16"));
        assert!(text.contains("\"seconds\": 0.25"));
        assert!(text.contains("\"skipped\": null"));
        assert!(text.contains("\"ok\": true"));
        assert!(text.contains('['));
        assert_eq!(Json::opt_number(None), Json::Null);
        assert_eq!(Json::Number(f64::NAN).render(), "null");
    }

    #[test]
    fn json_escapes_strings() {
        let text = Json::string("a\"b\\c\nd").render();
        assert_eq!(text, "\"a\\\"b\\\\c\\nd\"");
    }
}
