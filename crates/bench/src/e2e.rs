//! End-to-end scenario matrix: target model → compile (QTurbo and baseline)
//! → lower → emulate, with simulated observables compared against the ideal
//! target evolution.
//!
//! This is the "compiler in the loop" harness: instead of judging a compiler
//! by its algebraic residual alone, every cell simulates the *lowered* pulse
//! on the fast emulator and measures how far the resulting state's
//! observables drift from the state the target Hamiltonian would have
//! produced. Both `tests/conformance_e2e.rs` and the `bench_e2e` binary run
//! on this module so the CI gates and the test assertions see the same
//! numbers.

use crate::Device;
use qturbo::QTurboCompiler;
use qturbo_aais::heisenberg::{heisenberg_aais, HeisenbergOptions};
use qturbo_aais::rydberg::{rydberg_aais, RydbergOptions};
use qturbo_aais::{Aais, LoweredSchedule};
use qturbo_baseline::{BaselineCompiler, BaselineOptions};
use qturbo_hamiltonian::models::{heisenberg_chain, ising_chain, ising_cycle, kitaev, mis_chain};
use qturbo_hamiltonian::PiecewiseHamiltonian;
use qturbo_quantum::observable::{z_average, zz_average};
use qturbo_quantum::propagate::{evolve_naive, evolve_piecewise, evolve_schedule};
use qturbo_quantum::{CompiledSchedule, StateVector};
use std::time::Instant;

/// One cell of the end-to-end matrix: a target model on a concrete machine.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Cell name (stable, used as the JSON key in `BENCH_e2e.json`).
    pub name: &'static str,
    /// Device family of the machine.
    pub device: Device,
    /// System size.
    pub num_qubits: usize,
    /// Whether the `⟨ZZ⟩` observable closes the ring.
    pub cyclic: bool,
    /// The target (piecewise-constant) Hamiltonian evolution.
    pub target: PiecewiseHamiltonian,
    /// The machine the target is compiled onto.
    pub aais: Aais,
}

/// The emulated outcome of one compiled-and-lowered schedule.
#[derive(Debug, Clone)]
pub struct LoweredOutcome {
    /// Compilation wall-clock time in seconds.
    pub compile_s: f64,
    /// Lowering wall-clock time in seconds.
    pub lower_s: f64,
    /// The compiler's own algebraic relative error (fraction).
    pub relative_error: f64,
    /// Machine execution time of the pulse (µs).
    pub execution_time: f64,
    /// Simulated observable error versus the ideal target evolution:
    /// `|Δ⟨Z⟩| + |Δ⟨ZZ⟩|`.
    pub observable_error: f64,
    /// Infidelity between the mask-compiled fast path and the naive dense
    /// propagation of the same lowered segments (conformance check).
    pub vs_naive_infidelity: f64,
    /// Mask layouts the emulator compiled for the lowered schedule.
    pub layouts: usize,
    /// Structure runs the unpadded segments would have had.
    pub raw_structure_runs: usize,
}

/// The full result of one scenario cell.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// Scenario name.
    pub name: &'static str,
    /// Device family.
    pub device: Device,
    /// System size.
    pub num_qubits: usize,
    /// QTurbo's outcome (the harness expects QTurbo to compile every cell).
    pub qturbo: LoweredOutcome,
    /// The baseline's outcome, when it produced a solution.
    pub baseline: Option<LoweredOutcome>,
    /// The baseline's typed error rendering, when it failed.
    pub baseline_failure: Option<String>,
}

/// The default end-to-end scenario matrix: open/cyclic Ising chains, the
/// Heisenberg chain and Kitaev chain on the Heisenberg machine, plus an Ising
/// chain and a PXP-style detuned MIS ramp on the Rydberg machine.
pub fn scenario_matrix() -> Vec<Scenario> {
    let heisenberg = |n: usize| heisenberg_aais(n, &HeisenbergOptions::default());
    vec![
        Scenario {
            name: "ising_chain_heisenberg",
            device: Device::Heisenberg,
            num_qubits: 4,
            cyclic: false,
            target: PiecewiseHamiltonian::constant(ising_chain(4, 1.0, 1.0), 1.0),
            aais: heisenberg(4),
        },
        Scenario {
            name: "ising_cycle_heisenberg",
            device: Device::Heisenberg,
            num_qubits: 5,
            cyclic: true,
            target: PiecewiseHamiltonian::constant(ising_cycle(5, 1.0, 1.0), 1.0),
            aais: heisenberg_aais(5, &HeisenbergOptions::with_cycle_connectivity()),
        },
        Scenario {
            name: "heisenberg_chain_heisenberg",
            device: Device::Heisenberg,
            num_qubits: 4,
            cyclic: false,
            target: PiecewiseHamiltonian::constant(heisenberg_chain(4, 1.0, 1.0), 1.0),
            aais: heisenberg(4),
        },
        Scenario {
            name: "kitaev_heisenberg",
            device: Device::Heisenberg,
            num_qubits: 4,
            cyclic: false,
            target: PiecewiseHamiltonian::constant(kitaev(4, 1.0, 1.0, 1.0), 1.0),
            aais: heisenberg(4),
        },
        Scenario {
            name: "ising_chain_rydberg",
            device: Device::Rydberg,
            num_qubits: 4,
            cyclic: false,
            target: PiecewiseHamiltonian::constant(ising_chain(4, 1.0, 1.0), 1.0),
            aais: rydberg_aais(
                4,
                &RydbergOptions {
                    interaction_cutoff: None,
                    ..RydbergOptions::default()
                },
            ),
        },
        Scenario {
            name: "mis_ramp_rydberg",
            device: Device::Rydberg,
            num_qubits: 4,
            cyclic: false,
            target: mis_chain(4, 1.0, 1.0, 1.0, 1.0, 4),
            aais: rydberg_aais(4, &RydbergOptions::default()),
        },
    ]
}

/// Simulates the ideal target evolution of a scenario from `|0…0⟩`.
pub fn ideal_final_state(scenario: &Scenario) -> StateVector {
    let initial = StateVector::zero_state(scenario.target.num_qubits());
    let segments: Vec<_> = scenario
        .target
        .segments()
        .iter()
        .map(|s| (s.hamiltonian.clone(), s.duration))
        .collect();
    evolve_piecewise(&initial, &segments)
}

/// Emulates one lowered schedule and scores it against the ideal state.
///
/// Runs the mask-compiled fast path for the observables and the naive dense
/// path for the conformance infidelity.
pub fn emulate_lowered(
    lowered: &LoweredSchedule,
    ideal: &StateVector,
    cyclic: bool,
) -> (f64, f64, usize) {
    let initial = StateVector::zero_state(lowered.num_qubits());
    let schedule = CompiledSchedule::compile_piecewise(lowered.piecewise());
    let fast = evolve_schedule(&initial, &schedule);
    let mut naive = initial;
    for (hamiltonian, duration) in lowered.hamiltonian_segments() {
        naive = evolve_naive(&naive, &hamiltonian, duration);
    }
    let infidelity = 1.0 - fast.fidelity(&naive);
    let observable_error = (z_average(&fast) - z_average(ideal)).abs()
        + (zz_average(&fast, cyclic) - zz_average(ideal, cyclic)).abs();
    (observable_error, infidelity, schedule.num_layouts())
}

/// Runs one scenario cell: QTurbo always, the baseline with the documented
/// [`BaselineOptions::benchmark`] preset (its failure is recorded as a typed
/// error string, not a panic).
///
/// # Panics
///
/// Panics if QTurbo itself fails to compile or lower — every cell of the
/// default matrix is within the machine's capabilities, so a failure is a
/// harness bug.
pub fn run_cell(scenario: &Scenario) -> CellOutcome {
    let ideal = ideal_final_state(scenario);

    let qturbo_result = QTurboCompiler::new()
        .compile_piecewise(&scenario.target, &scenario.aais)
        .unwrap_or_else(|e| panic!("QTurbo failed on {}: {e}", scenario.name));
    let started = Instant::now();
    let qturbo_lowered = qturbo_result
        .try_lower(&scenario.aais)
        .unwrap_or_else(|e| panic!("lowering failed on {}: {e}", scenario.name));
    let qturbo_lower_s = started.elapsed().as_secs_f64();
    let (observable_error, vs_naive_infidelity, layouts) =
        emulate_lowered(&qturbo_lowered, &ideal, scenario.cyclic);
    let qturbo = LoweredOutcome {
        compile_s: qturbo_result.stats.compile_time.as_secs_f64(),
        lower_s: qturbo_lower_s,
        relative_error: qturbo_result.relative_error(),
        execution_time: qturbo_result.execution_time,
        observable_error,
        vs_naive_infidelity,
        layouts,
        raw_structure_runs: qturbo_lowered.raw_structure_runs(),
    };

    let (baseline, baseline_failure) =
        match BaselineCompiler::with_options(BaselineOptions::benchmark())
            .compile_piecewise(&scenario.target, &scenario.aais)
        {
            Ok(result) => {
                let started = Instant::now();
                let lower_outcome = result
                    .try_lower(&scenario.aais)
                    .map(|lowered| (lowered, started.elapsed().as_secs_f64()));
                match lower_outcome {
                    Ok((lowered, lower_s)) => {
                        let (observable_error, vs_naive_infidelity, layouts) =
                            emulate_lowered(&lowered, &ideal, scenario.cyclic);
                        (
                            Some(LoweredOutcome {
                                compile_s: result.stats.compile_time.as_secs_f64(),
                                lower_s,
                                relative_error: result.relative_error(),
                                execution_time: result.execution_time,
                                observable_error,
                                vs_naive_infidelity,
                                layouts,
                                raw_structure_runs: lowered.raw_structure_runs(),
                            }),
                            None,
                        )
                    }
                    Err(error) => (None, Some(error.to_string())),
                }
            }
            Err(error) => (None, Some(error.to_string())),
        };

    CellOutcome {
        name: scenario.name,
        device: scenario.device,
        num_qubits: scenario.num_qubits,
        qturbo,
        baseline,
        baseline_failure,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_has_six_distinct_cells_on_both_devices() {
        let matrix = scenario_matrix();
        assert_eq!(matrix.len(), 6);
        let mut names: Vec<_> = matrix.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6);
        assert!(matrix.iter().any(|s| s.device == Device::Rydberg));
        assert!(matrix.iter().any(|s| s.device == Device::Heisenberg));
        assert!(matrix.iter().any(|s| s.target.num_segments() > 1));
        for scenario in &matrix {
            assert_eq!(scenario.target.num_qubits(), scenario.num_qubits);
            assert_eq!(scenario.aais.num_sites(), scenario.num_qubits);
        }
    }

    #[test]
    fn run_cell_produces_consistent_numbers() {
        let matrix = scenario_matrix();
        let cell = run_cell(&matrix[0]);
        assert_eq!(cell.name, "ising_chain_heisenberg");
        assert!(cell.qturbo.compile_s > 0.0);
        assert!(cell.qturbo.vs_naive_infidelity < 1e-10);
        assert_eq!(cell.qturbo.layouts, 1);
        assert!(cell.qturbo.observable_error < 0.05);
    }
}
