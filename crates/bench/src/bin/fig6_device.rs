//! Figure 6: emulated "real device" study. Compiled pulses from QTurbo and the
//! baseline are executed on the noisy emulated Aquila device and compared with
//! the noiseless theory curves ("TH"), for (a) a 12-atom Ising cycle and (b) a
//! 6-atom PXP chain.
//!
//! Run with: `cargo run --release -p qturbo-bench --bin fig6_device`

use qturbo::QTurboCompiler;
use qturbo_aais::rydberg::{rydberg_aais, Layout, RydbergOptions};
use qturbo_aais::Aais;
use qturbo_baseline::{BaselineCompiler, BaselineOptions};
use qturbo_bench::quick_mode;
use qturbo_hamiltonian::models::{ising_cycle, pxp};
use qturbo_hamiltonian::Hamiltonian;
use qturbo_quantum::observable::{z_average, zz_average};
use qturbo_quantum::propagate::{evolve, evolve_piecewise};
use qturbo_quantum::{EmulatedDevice, NoiseModel, StateVector};

struct SeriesPoint {
    target_time: f64,
    theory_z: f64,
    theory_zz: f64,
    qturbo: CompilerSeries,
    baseline: Option<CompilerSeries>,
}

struct CompilerSeries {
    execution_time: f64,
    noiseless_z: f64,
    noiseless_zz: f64,
    device_z: f64,
    device_zz: f64,
}

fn run_compiler_series(
    segments: &[(Hamiltonian, f64)],
    num_atoms: usize,
    cyclic: bool,
    device: &EmulatedDevice,
) -> CompilerSeries {
    let noiseless = evolve_piecewise(&StateVector::zero_state(num_atoms), segments);
    let run = device.run(segments, num_atoms, cyclic);
    CompilerSeries {
        execution_time: segments.iter().map(|(_, d)| d).sum(),
        noiseless_z: z_average(&noiseless),
        noiseless_zz: zz_average(&noiseless, cyclic),
        device_z: run.z_average(),
        device_zz: run.zz_average(),
    }
}

fn study(
    label: &str,
    target: &Hamiltonian,
    target_times: &[f64],
    aais: &Aais,
    cyclic: bool,
    seed: u64,
) {
    let num_atoms = target.num_qubits();
    let noisy = EmulatedDevice::new(NoiseModel::aquila_like(), seed);
    let baseline = BaselineCompiler::with_options(BaselineOptions {
        failure_threshold: 0.6,
        ..BaselineOptions::default()
    });

    let mut points = Vec::new();
    for &target_time in target_times {
        let theory = evolve(&StateVector::zero_state(num_atoms), target, target_time);
        let qturbo = QTurboCompiler::new()
            .compile(target, target_time, aais)
            .expect("QTurbo compiles the device study");
        let qturbo_segments = qturbo.schedule.hamiltonians(aais).unwrap();
        let baseline_series = baseline
            .compile(target, target_time, aais)
            .ok()
            .map(|result| {
                let segments = result.schedule.hamiltonians(aais).unwrap();
                run_compiler_series(&segments, num_atoms, cyclic, &noisy)
            });
        points.push(SeriesPoint {
            target_time,
            theory_z: z_average(&theory),
            theory_zz: zz_average(&theory, cyclic),
            qturbo: run_compiler_series(&qturbo_segments, num_atoms, cyclic, &noisy),
            baseline: baseline_series,
        });
    }

    println!("\n=== Figure 6 ({label}) ===");
    println!(
        "{:>7} | {:>8} {:>8} | {:>8} {:>8} {:>8} {:>8} {:>9} | {:>8} {:>8} {:>8} {:>8} {:>9}",
        "T_tar",
        "Z TH",
        "ZZ TH",
        "Z qt(TH)",
        "Z qt",
        "ZZqt(TH)",
        "ZZ qt",
        "T_qt",
        "Z sq(TH)",
        "Z sq",
        "ZZsq(TH)",
        "ZZ sq",
        "T_sq"
    );
    for p in &points {
        let baseline_cells = match &p.baseline {
            Some(b) => format!(
                "{:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>9.3}",
                b.noiseless_z, b.device_z, b.noiseless_zz, b.device_zz, b.execution_time
            ),
            None => format!(
                "{:>8} {:>8} {:>8} {:>8} {:>9}",
                "fail", "fail", "fail", "fail", "-"
            ),
        };
        println!(
            "{:>7.2} | {:>8.3} {:>8.3} | {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>9.3} | {}",
            p.target_time,
            p.theory_z,
            p.theory_zz,
            p.qturbo.noiseless_z,
            p.qturbo.device_z,
            p.qturbo.noiseless_zz,
            p.qturbo.device_zz,
            p.qturbo.execution_time,
            baseline_cells
        );
    }

    // Error-reduction summary against the theory curve (the paper's metric).
    let mut z_reductions = Vec::new();
    let mut zz_reductions = Vec::new();
    for p in &points {
        if let Some(b) = &p.baseline {
            let qturbo_z_error = (p.qturbo.device_z - p.theory_z).abs();
            let baseline_z_error = (b.device_z - p.theory_z).abs();
            if baseline_z_error > 1e-9 {
                z_reductions.push(1.0 - qturbo_z_error / baseline_z_error);
            }
            let qturbo_zz_error = (p.qturbo.device_zz - p.theory_zz).abs();
            let baseline_zz_error = (b.device_zz - p.theory_zz).abs();
            if baseline_zz_error > 1e-9 {
                zz_reductions.push(1.0 - qturbo_zz_error / baseline_zz_error);
            }
        }
    }
    let mean = |v: &[f64]| {
        if v.is_empty() {
            f64::NAN
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    println!(
        "[{label}] average device-error reduction vs theory: Z_avg {:.0}%, ZZ_avg {:.0}%",
        mean(&z_reductions) * 100.0,
        mean(&zz_reductions) * 100.0
    );
}

fn main() {
    // (a) 12-atom Ising cycle: J = 0.157, h = 0.785 rad/µs, Ω_max = 6.28 rad/µs.
    let cycle_atoms = if quick_mode() { 8 } else { 12 };
    let cycle_target = ising_cycle(cycle_atoms, 0.157, 0.785);
    let cycle_aais = rydberg_aais(
        cycle_atoms,
        &RydbergOptions {
            layout: Layout::Ring { spacing: 6.5 },
            ..RydbergOptions::aquila_rad_per_us(std::f64::consts::TAU)
        },
    );
    let cycle_times: Vec<f64> = if quick_mode() {
        vec![0.5, 1.0]
    } else {
        vec![0.5, 0.6, 0.7, 0.8, 0.9, 1.0]
    };
    study(
        "a: Ising cycle",
        &cycle_target,
        &cycle_times,
        &cycle_aais,
        true,
        42,
    );

    // (b) 6-atom PXP chain: J = 1.26, h = 0.126 rad/µs, Ω_max = 13.8 rad/µs.
    let pxp_atoms = 6;
    let pxp_target = pxp(pxp_atoms, 1.26, 0.126);
    let pxp_aais = rydberg_aais(pxp_atoms, &RydbergOptions::aquila_rad_per_us(13.8));
    let pxp_times: Vec<f64> = if quick_mode() {
        vec![5.0, 20.0]
    } else {
        vec![5.0, 10.0, 15.0, 20.0]
    };
    study(
        "b: 6-atom PXP chain",
        &pxp_target,
        &pxp_times,
        &pxp_aais,
        false,
        17,
    );
}
