//! End-to-end compiler-in-the-loop benchmark: for every cell of the
//! [`qturbo_bench::e2e::scenario_matrix`] (open/cyclic Ising chains, the
//! Heisenberg and Kitaev chains, a Rydberg Ising chain and a PXP-style
//! detuned MIS ramp), compile the target with QTurbo and the SimuQ-style
//! baseline, lower both pulse schedules into the fast emulator, and compare
//! the *simulated* observables of each against the ideal target evolution.
//!
//! Writes `BENCH_e2e.json` into the current directory and **asserts** the
//! acceptance gates (ci.sh runs this binary, so they are CI gates):
//!
//! * the mask-compiled fast path agrees with naive dense propagation of the
//!   same lowered segments to 1e-10 infidelity, for every compiled pulse;
//! * every lowered schedule compiles to exactly one mask layout (the
//!   lowering's structure padding holds on real compiler output);
//! * QTurbo's simulated observable error is no worse than the baseline's
//!   plus a small tolerance, on every cell where the baseline yields a
//!   solution — and the baseline must yield one on most of the matrix.

use qturbo_bench::e2e::{run_cell, scenario_matrix, LoweredOutcome};
use qturbo_bench::timing::Json;

/// Fast-vs-naive conformance bound (infidelity) per lowered schedule.
const CONFORMANCE: f64 = 1e-10;
/// Slack on the `QTurbo ≤ baseline` simulated-observable gate: both errors
/// are physical observables in `[-1, 1]` units, so 0.02 absorbs cells where
/// both compilers are essentially exact and ordering is numerical noise.
const OBSERVABLE_TOLERANCE: f64 = 0.02;
/// Minimum number of cells where the baseline must produce a solution.
const MIN_BASELINE_SOLUTIONS: usize = 4;

fn outcome_json(outcome: &LoweredOutcome) -> Json {
    Json::object(vec![
        ("compile_s", Json::Number(outcome.compile_s)),
        ("lower_s", Json::Number(outcome.lower_s)),
        ("relative_error", Json::Number(outcome.relative_error)),
        ("execution_time_us", Json::Number(outcome.execution_time)),
        ("observable_error", Json::Number(outcome.observable_error)),
        (
            "vs_naive_infidelity",
            Json::Number(outcome.vs_naive_infidelity),
        ),
        ("layouts", Json::Number(outcome.layouts as f64)),
        (
            "raw_structure_runs",
            Json::Number(outcome.raw_structure_runs as f64),
        ),
    ])
}

fn main() {
    let matrix = scenario_matrix();
    println!("end-to-end matrix: {} cells", matrix.len());
    let mut entries: Vec<Json> = Vec::new();
    let mut baseline_solutions = 0usize;

    for scenario in &matrix {
        let cell = run_cell(scenario);

        // --- Conformance gates: the fast emulator path must reproduce the
        // naive dense propagation, through exactly one shared mask layout. ---
        assert!(
            cell.qturbo.vs_naive_infidelity < CONFORMANCE,
            "{}: QTurbo fast-vs-naive infidelity {} exceeds {CONFORMANCE}",
            cell.name,
            cell.qturbo.vs_naive_infidelity
        );
        assert_eq!(
            cell.qturbo.layouts, 1,
            "{}: lowered QTurbo schedule split into {} mask layouts",
            cell.name, cell.qturbo.layouts
        );

        // --- Comparison gate: simulated observable error, QTurbo vs baseline. ---
        if let Some(baseline) = &cell.baseline {
            baseline_solutions += 1;
            assert!(
                baseline.vs_naive_infidelity < CONFORMANCE,
                "{}: baseline fast-vs-naive infidelity {} exceeds {CONFORMANCE}",
                cell.name,
                baseline.vs_naive_infidelity
            );
            assert_eq!(
                baseline.layouts, 1,
                "{}: lowered baseline schedule split into {} mask layouts",
                cell.name, baseline.layouts
            );
            assert!(
                cell.qturbo.observable_error <= baseline.observable_error + OBSERVABLE_TOLERANCE,
                "{}: QTurbo simulated observable error {} is worse than baseline {}",
                cell.name,
                cell.qturbo.observable_error,
                baseline.observable_error
            );
        }

        let baseline_note = match (&cell.baseline, &cell.baseline_failure) {
            (Some(b), _) => format!(
                "baseline obs err {:.4} ({:.3}s)",
                b.observable_error, b.compile_s
            ),
            (None, Some(reason)) => format!("baseline failed: {reason}"),
            (None, None) => "baseline not run".to_string(),
        };
        println!(
            "  {:<28} {}q {:<9} | QTurbo obs err {:.4} ({:.3}s compile, {:.2e} lower, {:.1e} vs naive) | {}",
            cell.name,
            cell.num_qubits,
            cell.device.to_string(),
            cell.qturbo.observable_error,
            cell.qturbo.compile_s,
            cell.qturbo.lower_s,
            cell.qturbo.vs_naive_infidelity,
            baseline_note
        );

        let mut fields = vec![
            ("name", Json::string(cell.name)),
            ("device", Json::string(cell.device.to_string())),
            ("qubits", Json::Number(cell.num_qubits as f64)),
            ("qturbo", outcome_json(&cell.qturbo)),
        ];
        match (&cell.baseline, &cell.baseline_failure) {
            (Some(baseline), _) => fields.push(("baseline", outcome_json(baseline))),
            (None, Some(reason)) => fields.push(("baseline_failure", Json::string(reason))),
            (None, None) => fields.push(("baseline", Json::Null)),
        }
        entries.push(Json::object(fields));
    }

    assert!(
        baseline_solutions >= MIN_BASELINE_SOLUTIONS,
        "baseline produced only {baseline_solutions} solutions on the matrix \
         (expected at least {MIN_BASELINE_SOLUTIONS})"
    );

    let report = Json::object(vec![
        ("benchmark", Json::string("e2e")),
        ("conformance_threshold", Json::Number(CONFORMANCE)),
        ("observable_tolerance", Json::Number(OBSERVABLE_TOLERANCE)),
        (
            "baseline_solutions",
            Json::Number(baseline_solutions as f64),
        ),
        ("entries", Json::Array(entries)),
    ]);
    let path = "BENCH_e2e.json";
    std::fs::write(path, report.render() + "\n").expect("write benchmark report");
    println!("wrote {path}");
}
