//! Stepper-backend benchmark: Taylor vs Lanczos–Krylov vs Chebyshev on the
//! two workload shapes the subsystem targets.
//!
//! Writes `BENCH_stepper.json` into the current directory. Workloads:
//!
//! * **MIS annealing ramp** (§5.3 shape): 100 piecewise-constant segments
//!   over 1 µs — many *short* segments, where the per-segment setup cost of
//!   the high-order backends competes with Taylor's minimal overhead;
//! * **Heisenberg quench**: a Néel state evolved for a *long* time under a
//!   constant Heisenberg chain (`‖H‖·t` in the hundreds) — the regime the
//!   Krylov and Chebyshev propagators exist for, where Taylor's
//!   `‖H‖·Δt ≤ ½` splitting burns thousands of kernel applications.
//!
//! For every backend the report records total `H|ψ⟩` kernel applications
//! (the backend-independent work measure), wall time, and the deviation from
//! the Taylor reference state — all three must agree at the 1e-10 level for
//! the comparison to count.

use qturbo_bench::timing::{bench, Json};
use qturbo_hamiltonian::models::{heisenberg_chain, mis_chain};
use qturbo_hamiltonian::Hamiltonian;
use qturbo_math::Complex;
use qturbo_quantum::compiled::CompiledHamiltonian;
use qturbo_quantum::schedule::CompiledSchedule;
use qturbo_quantum::stepper::StepperKind;
use qturbo_quantum::{Propagator, StateVector};

const RAMP_SIZES: [usize; 2] = [8, 12];
const RAMP_SEGMENTS: usize = 100;
const RAMP_TOTAL_TIME: f64 = 1.0;
const QUENCH_SIZES: [usize; 2] = [8, 12];
const QUENCH_TIME: f64 = 20.0;
/// Backends must agree with the Taylor reference at this amplitude level
/// for the work comparison to be meaningful.
const AGREEMENT: f64 = 1e-9;

/// The Néel state `|0101…⟩` — the standard quench initial condition (a
/// non-eigenstate with weight across the full Heisenberg spectrum).
fn neel_state(num_qubits: usize) -> StateVector {
    let mut amplitudes = vec![Complex::ZERO; 1 << num_qubits];
    let mut index = 0usize;
    for qubit in (1..num_qubits).step_by(2) {
        index |= 1 << qubit;
    }
    amplitudes[index] = Complex::ONE;
    StateVector::from_amplitudes(amplitudes)
}

fn max_abs_deviation(a: &StateVector, b: &StateVector) -> f64 {
    a.amplitudes()
        .iter()
        .zip(b.amplitudes())
        .map(|(x, y)| (*x - *y).abs())
        .fold(0.0, f64::max)
}

struct BackendResult {
    kind: StepperKind,
    kernel_applications: u64,
    wall_median_s: f64,
    wall_min_s: f64,
    final_state: StateVector,
}

fn backend_json(result: &BackendResult, reference: &StateVector) -> Json {
    let deviation = max_abs_deviation(&result.final_state, reference);
    assert!(
        deviation < AGREEMENT,
        "{} deviates from the Taylor reference by {deviation}",
        result.kind.name()
    );
    Json::object(vec![
        ("backend", Json::string(result.kind.name())),
        (
            "kernel_applications",
            Json::Number(result.kernel_applications as f64),
        ),
        ("wall_median_s", Json::Number(result.wall_median_s)),
        ("wall_min_s", Json::Number(result.wall_min_s)),
        ("max_abs_dev_vs_taylor", Json::Number(deviation)),
        (
            "fidelity_vs_taylor",
            Json::Number(result.final_state.fidelity(reference)),
        ),
    ])
}

/// Runs every backend over `evolve`, returning per-backend work and timing.
fn run_backends(
    reps: usize,
    initial: &StateVector,
    mut evolve: impl FnMut(&mut Propagator, &mut StateVector),
) -> Vec<BackendResult> {
    StepperKind::all()
        .into_iter()
        .map(|kind| {
            let mut propagator = Propagator::with_stepper(kind);
            // Count kernel applications on one untimed run.
            let mut state = initial.clone();
            evolve(&mut propagator, &mut state);
            let kernel_applications = propagator.kernel_applications();
            let final_state = state.clone();
            let sample = bench(reps, || {
                let mut state = initial.clone();
                evolve(&mut propagator, &mut state);
                std::hint::black_box(&state);
            });
            BackendResult {
                kind,
                kernel_applications,
                wall_median_s: sample.median,
                wall_min_s: sample.min,
                final_state,
            }
        })
        .collect()
}

fn print_backends(results: &[BackendResult]) {
    let taylor = &results[0];
    for result in results {
        println!(
            "      {:<9}  {:>8} applications ({:>5.1}x fewer)  {:>10.4}s wall ({:>5.2}x)",
            result.kind.name(),
            result.kernel_applications,
            taylor.kernel_applications as f64 / result.kernel_applications.max(1) as f64,
            result.wall_median_s,
            taylor.wall_median_s / result.wall_median_s.max(1e-12),
        );
    }
}

fn ramp_entry(qubits: usize) -> Json {
    println!("  MIS ramp, {qubits} qubits, {RAMP_SEGMENTS} segments:");
    let ramp = mis_chain(qubits, 1.0, 1.0, 1.0, RAMP_TOTAL_TIME, RAMP_SEGMENTS);
    let segments: Vec<(Hamiltonian, f64)> = ramp
        .segments()
        .iter()
        .map(|s| (s.hamiltonian.clone(), s.duration))
        .collect();
    let schedule = CompiledSchedule::compile(&segments);
    let initial = StateVector::zero_state(qubits);
    let reps = if qubits >= 12 { 3 } else { 5 };
    let results = run_backends(reps, &initial, |propagator, state| {
        propagator.reset_kernel_applications();
        propagator.evolve_schedule_in_place(&schedule, state);
    });
    print_backends(&results);
    let reference = results[0].final_state.clone();
    Json::object(vec![
        ("workload", Json::string("mis_ramp")),
        ("qubits", Json::Number(qubits as f64)),
        ("segments", Json::Number(RAMP_SEGMENTS as f64)),
        ("total_time_us", Json::Number(RAMP_TOTAL_TIME)),
        (
            "backends",
            Json::Array(
                results
                    .iter()
                    .map(|r| backend_json(r, &reference))
                    .collect(),
            ),
        ),
    ])
}

fn quench_entry(qubits: usize) -> Json {
    println!("  Heisenberg quench, {qubits} qubits, t = {QUENCH_TIME}:");
    let hamiltonian = heisenberg_chain(qubits, 1.0, 0.5);
    let compiled = CompiledHamiltonian::compile(&hamiltonian);
    let phase = compiled.step_strength() * QUENCH_TIME;
    let initial = neel_state(qubits);
    let reps = if qubits >= 12 { 3 } else { 5 };
    let results = run_backends(reps, &initial, |propagator, state| {
        propagator.reset_kernel_applications();
        propagator.evolve_in_place(&compiled, state, QUENCH_TIME);
    });
    print_backends(&results);
    let reference = results[0].final_state.clone();

    // The acceptance gate of the stepper subsystem: at least one high-order
    // backend must beat Taylor on BOTH kernel applications and wall time on
    // the long-time quench.
    let taylor = &results[0];
    let beats = results[1..].iter().any(|r| {
        r.kernel_applications < taylor.kernel_applications && r.wall_median_s < taylor.wall_median_s
    });
    assert!(
        beats,
        "no high-order backend beat Taylor on the {qubits}-qubit quench"
    );

    Json::object(vec![
        ("workload", Json::string("heisenberg_quench")),
        ("qubits", Json::Number(qubits as f64)),
        ("time_us", Json::Number(QUENCH_TIME)),
        ("strength_time_product", Json::Number(phase)),
        (
            "backends",
            Json::Array(
                results
                    .iter()
                    .map(|r| backend_json(r, &reference))
                    .collect(),
            ),
        ),
    ])
}

fn main() {
    println!(
        "stepper benchmark: Taylor vs Krylov vs Chebyshev, {} worker threads available",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    let mut entries: Vec<Json> = Vec::new();
    for &qubits in &RAMP_SIZES {
        entries.push(ramp_entry(qubits));
    }
    for &qubits in &QUENCH_SIZES {
        entries.push(quench_entry(qubits));
    }

    let report = Json::object(vec![
        ("benchmark", Json::string("stepper")),
        (
            "backends",
            Json::Array(
                StepperKind::all()
                    .into_iter()
                    .map(|k| Json::string(k.name()))
                    .collect(),
            ),
        ),
        ("agreement_threshold", Json::Number(AGREEMENT)),
        (
            "worker_threads_available",
            Json::Number(std::thread::available_parallelism().map_or(1, |n| n.get()) as f64),
        ),
        ("entries", Json::Array(entries)),
    ]);
    let path = "BENCH_stepper.json";
    std::fs::write(path, report.render() + "\n").expect("write benchmark report");
    println!("wrote {path}");
}
