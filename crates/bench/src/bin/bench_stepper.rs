//! Stepper-backend benchmark: Taylor (per-segment and batched) vs
//! Lanczos–Krylov vs Chebyshev vs the automatic per-segment selection, on
//! the two workload shapes the subsystem targets.
//!
//! Writes `BENCH_stepper.json` into the current directory. Workloads:
//!
//! * **MIS annealing ramp** (§5.3 shape): 100 piecewise-constant segments
//!   over 1 µs — many *short* segments, where the per-segment setup cost of
//!   the high-order backends competes with Taylor's minimal overhead;
//! * **Heisenberg quench**: a Néel state evolved for a *long* time under a
//!   constant Heisenberg chain (`‖H‖·t` in the hundreds) — the regime the
//!   Krylov and Chebyshev propagators exist for, where Taylor's
//!   `‖H‖·Δt ≤ ½` splitting burns thousands of kernel applications.
//!
//! For every backend the report records total `H|ψ⟩` kernel applications
//! (the backend-independent work measure), state-sized amplitude passes
//! (the memory-traffic measure the batched sweep reduces), wall time, and
//! the deviation from the Taylor reference state — all must agree at the
//! 1e-10 level for the comparison to count. The `auto` entry additionally
//! records its per-segment decisions (`auto_decisions`), and the run
//! **asserts** the acceptance gates (ci.sh runs this binary, so they are CI
//! gates): on every workload `auto` is never slower than the worst fixed
//! backend and lands within 10% of the best fixed backend's wall time, and
//! on every ramp workload the batched sweep runs the identical series with
//! strictly fewer amplitude passes, never slower than per-segment Taylor.
//! Every workload entry additionally carries a `telemetry` JSON block (work
//! totals, recovery counts, worker-pool utilization) from one extra untimed
//! traced run.

use qturbo_bench::telemetry_report::{telemetry_json, traced_profile};
use qturbo_bench::timing::{achieved_bytes_per_sec, bench, Json};
use qturbo_hamiltonian::models::{heisenberg_chain, mis_chain};
use qturbo_hamiltonian::Hamiltonian;
use qturbo_math::Complex;
use qturbo_quantum::compiled::CompiledHamiltonian;
use qturbo_quantum::exec::LANE_WIDTH;
use qturbo_quantum::schedule::CompiledSchedule;
use qturbo_quantum::stepper::StepperKind;
use qturbo_quantum::{EvolveOptions, ExecutionContext, Propagator, StateVector};

const RAMP_SIZES: [usize; 2] = [8, 12];
const RAMP_SEGMENTS: usize = 100;
const RAMP_TOTAL_TIME: f64 = 1.0;
const QUENCH_SIZES: [usize; 2] = [8, 12];
const QUENCH_TIME: f64 = 20.0;
/// Backends must agree with the Taylor reference at this amplitude level
/// for the work comparison to be meaningful.
const AGREEMENT: f64 = 1e-9;

/// The Néel state `|0101…⟩` — the standard quench initial condition (a
/// non-eigenstate with weight across the full Heisenberg spectrum).
fn neel_state(num_qubits: usize) -> StateVector {
    let mut amplitudes = vec![Complex::ZERO; 1 << num_qubits];
    let mut index = 0usize;
    for qubit in (1..num_qubits).step_by(2) {
        index |= 1 << qubit;
    }
    amplitudes[index] = Complex::ONE;
    StateVector::from_amplitudes(amplitudes)
}

fn max_abs_deviation(a: &StateVector, b: &StateVector) -> f64 {
    a.amplitudes()
        .iter()
        .zip(b.amplitudes())
        .map(|(x, y)| (*x - *y).abs())
        .fold(0.0, f64::max)
}

struct BackendResult {
    kind: StepperKind,
    kernel_applications: u64,
    /// State-sized amplitude passes — the memory-traffic measure the
    /// batched multi-segment sweep is gated on.
    state_passes: u64,
    wall_median_s: f64,
    wall_min_s: f64,
    final_state: StateVector,
    /// Per-segment decision counts in [`StepperKind::fixed`] order;
    /// `Some` only for the `auto` backend.
    decisions: Option<[u64; 4]>,
}

fn backend_json(result: &BackendResult, reference: &StateVector) -> Json {
    let deviation = max_abs_deviation(&result.final_state, reference);
    assert!(
        deviation < AGREEMENT,
        "{} deviates from the Taylor reference by {deviation}",
        result.kind.name()
    );
    let mut fields = vec![
        ("backend", Json::string(result.kind.name())),
        (
            "kernel_applications",
            Json::Number(result.kernel_applications as f64),
        ),
        ("state_passes", Json::Number(result.state_passes as f64)),
        ("wall_median_s", Json::Number(result.wall_median_s)),
        ("wall_min_s", Json::Number(result.wall_min_s)),
        (
            "bytes_per_sec",
            Json::Number(achieved_bytes_per_sec(
                result.state_passes as f64,
                result.final_state.amplitudes().len(),
                result.wall_min_s,
            )),
        ),
        ("max_abs_dev_vs_taylor", Json::Number(deviation)),
        (
            "fidelity_vs_taylor",
            Json::Number(result.final_state.fidelity(reference)),
        ),
    ];
    if let Some(decisions) = result.decisions {
        fields.push((
            "auto_decisions",
            Json::object(
                StepperKind::fixed()
                    .into_iter()
                    .zip(decisions)
                    .map(|(kind, count)| (kind.name(), Json::Number(count as f64)))
                    .collect(),
            ),
        ));
    }
    Json::object(fields)
}

/// Runs every backend (fixed plus `auto`) over `evolve`, returning
/// per-backend work, timing, and — for `auto` — the per-segment decisions.
fn run_backends(
    reps: usize,
    initial: &StateVector,
    mut evolve: impl FnMut(&mut Propagator, &mut StateVector),
) -> Vec<BackendResult> {
    StepperKind::all()
        .into_iter()
        .map(|kind| {
            // Telemetry explicitly off: the gated measurements must stay
            // untraced even when `QTURBO_TRACE=1` flips the default.
            let mut propagator =
                Propagator::with_options(EvolveOptions::new(kind).with_telemetry(false));
            // Count kernel applications (and decisions) on one untimed run.
            let mut state = initial.clone();
            evolve(&mut propagator, &mut state);
            let kernel_applications = propagator.kernel_applications();
            let state_passes = propagator.state_passes();
            let decisions = (kind == StepperKind::Auto).then(|| {
                let mut counts = [0u64; 4];
                for decision in propagator.segment_decisions() {
                    let slot = StepperKind::fixed()
                        .into_iter()
                        .position(|fixed| fixed == *decision)
                        .expect("decisions are fixed backends");
                    counts[slot] += 1;
                }
                counts
            });
            let final_state = state.clone();
            let sample = bench(reps, || {
                let mut state = initial.clone();
                evolve(&mut propagator, &mut state);
                std::hint::black_box(&state);
            });
            BackendResult {
                kind,
                kernel_applications,
                state_passes,
                wall_median_s: sample.median,
                wall_min_s: sample.min,
                final_state,
                decisions,
            }
        })
        .collect()
}

fn print_backends(results: &[BackendResult]) {
    let taylor = &results[0];
    for result in results {
        let decisions = result.decisions.map_or(String::new(), |counts| {
            let summary: Vec<String> = StepperKind::fixed()
                .into_iter()
                .zip(counts)
                .filter(|(_, count)| *count > 0)
                .map(|(kind, count)| format!("{}x{count}", kind.name()))
                .collect();
            format!("  [{}]", summary.join(" "))
        });
        println!(
            "      {:<14}  {:>8} applications ({:>5.1}x fewer)  {:>8} passes  {:>10.4}s wall ({:>5.2}x){decisions}",
            result.kind.name(),
            result.kernel_applications,
            taylor.kernel_applications as f64 / result.kernel_applications.max(1) as f64,
            result.state_passes,
            result.wall_median_s,
            taylor.wall_median_s / result.wall_median_s.max(1e-12),
        );
    }
}

/// The acceptance gates of the automatic selection, asserted on every
/// workload entry: `auto` must never be slower than the **worst** fixed
/// backend, and must land within 10% of the **best** fixed backend's wall
/// time. The gates compare the **minimum** wall time over the repetitions —
/// the noise-robust statistic (a median from a separate 3–5-rep measurement
/// window shifts with concurrent load and CPU-frequency changes, and `auto`
/// runs the identical code path as its chosen backend) — plus a 2 ms
/// absolute allowance for timer jitter on sub-10 ms runs. The reported JSON
/// keeps both median and min.
fn assert_auto_is_competitive(results: &[BackendResult], context: &str) {
    let auto = results
        .iter()
        .find(|r| r.kind == StepperKind::Auto)
        .expect("auto result present");
    let fixed: Vec<&BackendResult> = results
        .iter()
        .filter(|r| r.kind != StepperKind::Auto)
        .collect();
    let best = fixed
        .iter()
        .map(|r| r.wall_min_s)
        .fold(f64::INFINITY, f64::min);
    let worst = fixed.iter().map(|r| r.wall_min_s).fold(0.0, f64::max);
    assert!(
        auto.wall_min_s <= worst + 0.002,
        "{context}: auto ({:.4}s) is slower than the worst fixed backend ({worst:.4}s)",
        auto.wall_min_s
    );
    assert!(
        auto.wall_min_s <= best * 1.10 + 0.002,
        "{context}: auto ({:.4}s) is more than 10% behind the best fixed backend ({best:.4}s)",
        auto.wall_min_s
    );
}

/// The batched-sweep acceptance gates, asserted on every ramp-shaped
/// workload: the batched path runs the identical Taylor series (equal
/// kernel applications), traverses strictly fewer amplitude passes, and is
/// never slower than per-segment Taylor on wall time (min statistic, with
/// the same 2 ms jitter allowance as the auto gates).
fn assert_batched_beats_per_segment_taylor(results: &[BackendResult], context: &str) {
    let taylor = results
        .iter()
        .find(|r| r.kind == StepperKind::Taylor)
        .expect("taylor result present");
    let batched = results
        .iter()
        .find(|r| r.kind == StepperKind::BatchedTaylor)
        .expect("batched result present");
    assert_eq!(
        batched.kernel_applications, taylor.kernel_applications,
        "{context}: the batched sweep must run the identical series"
    );
    assert!(
        batched.state_passes < taylor.state_passes,
        "{context}: batched spent {} amplitude passes vs per-segment Taylor's {}",
        batched.state_passes,
        taylor.state_passes
    );
    assert!(
        batched.wall_min_s <= taylor.wall_min_s + 0.002,
        "{context}: batched ({:.4}s) is slower than per-segment Taylor ({:.4}s)",
        batched.wall_min_s,
        taylor.wall_min_s
    );
}

fn ramp_entry(qubits: usize) -> Json {
    println!("  MIS ramp, {qubits} qubits, {RAMP_SEGMENTS} segments:");
    let ramp = mis_chain(qubits, 1.0, 1.0, 1.0, RAMP_TOTAL_TIME, RAMP_SEGMENTS);
    let segments: Vec<(Hamiltonian, f64)> = ramp
        .segments()
        .iter()
        .map(|s| (s.hamiltonian.clone(), s.duration))
        .collect();
    let schedule = CompiledSchedule::compile(&segments);
    let initial = StateVector::zero_state(qubits);
    let reps = if qubits >= 12 { 3 } else { 5 };
    let results = run_backends(reps, &initial, |propagator, state| {
        propagator.reset_kernel_applications();
        propagator.evolve_schedule_in_place(&schedule, state);
    });
    print_backends(&results);
    assert_auto_is_competitive(&results, &format!("{qubits}q MIS ramp"));
    assert_batched_beats_per_segment_taylor(&results, &format!("{qubits}q MIS ramp"));
    let reference = results[0].final_state.clone();
    // One extra untimed traced run provides the workload's telemetry block.
    let profile = traced_profile(&initial, StepperKind::Auto, |propagator, state| {
        propagator.evolve_schedule_in_place(&schedule, state)
    });
    Json::object(vec![
        ("workload", Json::string("mis_ramp")),
        ("qubits", Json::Number(qubits as f64)),
        ("segments", Json::Number(RAMP_SEGMENTS as f64)),
        ("total_time_us", Json::Number(RAMP_TOTAL_TIME)),
        ("telemetry", telemetry_json(StepperKind::Auto, &profile)),
        (
            "backends",
            Json::Array(
                results
                    .iter()
                    .map(|r| backend_json(r, &reference))
                    .collect(),
            ),
        ),
    ])
}

fn quench_entry(qubits: usize) -> Json {
    println!("  Heisenberg quench, {qubits} qubits, t = {QUENCH_TIME}:");
    let hamiltonian = heisenberg_chain(qubits, 1.0, 0.5);
    let compiled = CompiledHamiltonian::compile(&hamiltonian);
    let phase = compiled.step_strength() * QUENCH_TIME;
    let initial = neel_state(qubits);
    let reps = if qubits >= 12 { 3 } else { 5 };
    let results = run_backends(reps, &initial, |propagator, state| {
        propagator.reset_kernel_applications();
        propagator.evolve_in_place(&compiled, state, QUENCH_TIME);
    });
    print_backends(&results);
    assert_auto_is_competitive(&results, &format!("{qubits}q Heisenberg quench"));
    let reference = results[0].final_state.clone();

    // The acceptance gate of the stepper subsystem: at least one high-order
    // backend must beat Taylor on BOTH kernel applications and wall time on
    // the long-time quench.
    let taylor = &results[0];
    let beats = results[1..].iter().any(|r| {
        r.kernel_applications < taylor.kernel_applications && r.wall_median_s < taylor.wall_median_s
    });
    assert!(
        beats,
        "no high-order backend beat Taylor on the {qubits}-qubit quench"
    );

    // One extra untimed traced run provides the workload's telemetry block.
    let profile = traced_profile(&initial, StepperKind::Auto, |propagator, state| {
        propagator.evolve_in_place(&compiled, state, QUENCH_TIME)
    });
    Json::object(vec![
        ("workload", Json::string("heisenberg_quench")),
        ("qubits", Json::Number(qubits as f64)),
        ("time_us", Json::Number(QUENCH_TIME)),
        ("strength_time_product", Json::Number(phase)),
        ("telemetry", telemetry_json(StepperKind::Auto, &profile)),
        (
            "backends",
            Json::Array(
                results
                    .iter()
                    .map(|r| backend_json(r, &reference))
                    .collect(),
            ),
        ),
    ])
}

fn main() {
    println!(
        "stepper benchmark: Taylor vs Krylov vs Chebyshev vs Auto, {} worker threads available",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    let mut entries: Vec<Json> = Vec::new();
    for &qubits in &RAMP_SIZES {
        entries.push(ramp_entry(qubits));
    }
    for &qubits in &QUENCH_SIZES {
        entries.push(quench_entry(qubits));
    }

    let report = Json::object(vec![
        ("benchmark", Json::string("stepper")),
        (
            "backends",
            Json::Array(
                StepperKind::all()
                    .into_iter()
                    .map(|k| Json::string(k.name()))
                    .collect(),
            ),
        ),
        ("agreement_threshold", Json::Number(AGREEMENT)),
        (
            "worker_threads_available",
            Json::Number(std::thread::available_parallelism().map_or(1, |n| n.get()) as f64),
        ),
        (
            "worker_threads_resolved",
            Json::Number(ExecutionContext::auto().resolved_threads() as f64),
        ),
        ("lane_width", Json::Number(LANE_WIDTH as f64)),
        ("entries", Json::Array(entries)),
    ]);
    let path = "BENCH_stepper.json";
    std::fs::write(path, report.render() + "\n").expect("write benchmark report");
    println!("wrote {path}");
}
