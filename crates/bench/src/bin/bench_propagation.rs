//! Propagation benchmark: naive per-qubit reference vs the mask-compiled
//! allocation-free kernel, at 8/12/16/20 qubits.
//!
//! Writes `BENCH_propagation.json` into the current directory so the perf
//! trajectory of the simulator hot path is tracked from PR 1 onward. The
//! model is the transverse-field Ising chain (`J = h = 1 MHz`), the dominant
//! workload of the end-to-end dynamics tests, evolved from `|0…0⟩` for
//! 0.1 µs.
//!
//! The naive `evolve` reference is skipped above 16 qubits (it takes minutes
//! there — which is exactly the point of the compiled kernel); its `H|ψ⟩`
//! application is still timed at every size.

use qturbo_bench::timing::{bench, Json, Sample};
use qturbo_hamiltonian::models::ising_chain;
use qturbo_quantum::compiled::CompiledHamiltonian;
use qturbo_quantum::propagate::{apply_hamiltonian_naive, evolve_naive, Propagator};
use qturbo_quantum::{StateVector, StepperKind};

const SIZES: [usize; 4] = [8, 12, 16, 20];
const EVOLVE_TIME: f64 = 0.1;
/// Naive `evolve` is only timed up to this size.
const NAIVE_EVOLVE_LIMIT: usize = 16;

fn reps_for(qubits: usize) -> usize {
    if qubits >= 16 {
        3
    } else {
        10
    }
}

fn entry(
    qubits: usize,
    kind: &str,
    terms: usize,
    naive: Option<Sample>,
    compiled: Sample,
    note: Option<&str>,
) -> Json {
    let speedup = naive.map(|n| n.median / compiled.median.max(1e-12));
    let mut fields = vec![
        ("qubits", Json::Number(qubits as f64)),
        ("kind", Json::string(kind)),
        ("terms", Json::Number(terms as f64)),
        ("naive_median_s", Json::opt_number(naive.map(|s| s.median))),
        ("naive_min_s", Json::opt_number(naive.map(|s| s.min))),
        ("compiled_median_s", Json::Number(compiled.median)),
        ("compiled_min_s", Json::Number(compiled.min)),
        ("speedup", Json::opt_number(speedup)),
    ];
    if let Some(note) = note {
        fields.push(("note", Json::string(note)));
    }
    if let Some(speedup) = speedup {
        println!(
            "  {qubits:>2}q {kind:<6} naive {:>10.6}s  compiled {:>10.6}s  speedup {speedup:>7.1}x",
            naive.unwrap().median,
            compiled.median
        );
    } else {
        println!(
            "  {qubits:>2}q {kind:<6} naive {:>10}  compiled {:>10.6}s",
            "skipped", compiled.median
        );
    }
    Json::object(fields)
}

fn main() {
    println!(
        "propagation benchmark: transverse-field Ising chain, t = {EVOLVE_TIME} µs, {} worker threads available",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    // Correctness gate before timing anything: the two paths must agree.
    let check_h = ising_chain(8, 1.0, 1.0);
    let check_state = StateVector::zero_state(8);
    let fast = qturbo_quantum::propagate::evolve(&check_state, &check_h, EVOLVE_TIME);
    let slow = evolve_naive(&check_state, &check_h, EVOLVE_TIME);
    let fidelity = fast.fidelity(&slow);
    assert!(
        fidelity > 1.0 - 1e-10,
        "compiled/naive disagree: fidelity {fidelity}"
    );

    let mut entries = Vec::new();
    for &n in &SIZES {
        let hamiltonian = ising_chain(n, 1.0, 1.0);
        let compiled_h = CompiledHamiltonian::compile(&hamiltonian);
        let terms = compiled_h.num_terms();
        let state = StateVector::zero_state(n);
        let reps = reps_for(n);

        // --- One H|ψ⟩ application. ---
        let naive_apply = bench(reps, || {
            let out = apply_hamiltonian_naive(&hamiltonian, &state);
            std::hint::black_box(&out);
        });
        let mut out = StateVector::zeros(n);
        let compiled_apply = bench(reps, || {
            compiled_h.apply_into(&state, &mut out);
            std::hint::black_box(&out);
        });
        entries.push(entry(
            n,
            "apply",
            terms,
            Some(naive_apply),
            compiled_apply,
            None,
        ));

        // --- Full Taylor evolve. ---
        let naive_evolve = (n <= NAIVE_EVOLVE_LIMIT).then(|| {
            bench(if n >= 16 { 1 } else { reps }, || {
                let out = evolve_naive(&state, &hamiltonian, EVOLVE_TIME);
                std::hint::black_box(&out);
            })
        });
        // Pin the Taylor backend: this benchmark isolates the kernel speedup
        // (naive vs mask-compiled) under identical stepping, so the default
        // automatic backend selection must not change the algorithm here —
        // BENCH_stepper.json is where the backends compete.
        let mut propagator = Propagator::with_stepper(StepperKind::Taylor);
        let mut work = StateVector::zeros(n);
        let compiled_evolve = bench(reps, || {
            work.copy_from(&state);
            propagator.evolve_in_place(&compiled_h, &mut work, EVOLVE_TIME);
            std::hint::black_box(&work);
        });
        let note = (n > NAIVE_EVOLVE_LIMIT)
            .then_some("naive evolve skipped above 16 qubits (minutes of runtime)");
        entries.push(entry(
            n,
            "evolve",
            terms,
            naive_evolve,
            compiled_evolve,
            note,
        ));
    }

    let report = Json::object(vec![
        ("benchmark", Json::string("propagation")),
        ("model", Json::string("ising_chain(J=1,h=1)")),
        ("evolve_time_us", Json::Number(EVOLVE_TIME)),
        ("initial_state", Json::string("|0...0>")),
        (
            "worker_threads_available",
            Json::Number(std::thread::available_parallelism().map_or(1, |n| n.get()) as f64),
        ),
        ("cross_check_fidelity", Json::Number(fidelity)),
        ("entries", Json::Array(entries)),
    ]);
    let path = "BENCH_propagation.json";
    std::fs::write(path, report.render() + "\n").expect("write benchmark report");
    println!("wrote {path}");
}
