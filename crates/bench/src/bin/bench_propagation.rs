//! Propagation benchmark: naive per-qubit reference vs the mask-compiled
//! allocation-free kernel, at 8/12/16/20 qubits.
//!
//! Writes `BENCH_propagation.json` into the current directory so the perf
//! trajectory of the simulator hot path is tracked from PR 1 onward. The
//! model is the transverse-field Ising chain (`J = h = 1 MHz`), the dominant
//! workload of the end-to-end dynamics tests, evolved from `|0…0⟩` for
//! 0.1 µs.
//!
//! The naive `evolve` reference is skipped above 16 qubits (it takes minutes
//! there — which is exactly the point of the compiled kernel); its `H|ψ⟩`
//! application is still timed at every size.

use qturbo_bench::telemetry_report::{telemetry_json, traced_profile};
use qturbo_bench::timing::{achieved_bytes_per_sec as bytes_per_sec, bench, Json, Sample};
use qturbo_hamiltonian::models::ising_chain;
use qturbo_quantum::compiled::CompiledHamiltonian;
use qturbo_quantum::exec::LANE_WIDTH;
use qturbo_quantum::propagate::{apply_hamiltonian_naive, evolve_naive, Propagator};
use qturbo_quantum::{EvolveOptions, ExecutionContext, KernelPath, StateVector, StepperKind};

const SIZES: [usize; 4] = [8, 12, 16, 20];
const EVOLVE_TIME: f64 = 0.1;
/// Naive `evolve` is only timed up to this size.
const NAIVE_EVOLVE_LIMIT: usize = 16;

fn reps_for(qubits: usize) -> usize {
    if qubits >= 16 {
        3
    } else {
        10
    }
}

fn entry(
    qubits: usize,
    kind: &str,
    terms: usize,
    naive: Option<Sample>,
    compiled: Sample,
    achieved_bytes_per_sec: f64,
    note: Option<&str>,
) -> Json {
    let speedup = naive.map(|n| n.median / compiled.median.max(1e-12));
    let mut fields = vec![
        ("qubits", Json::Number(qubits as f64)),
        ("kind", Json::string(kind)),
        ("terms", Json::Number(terms as f64)),
        ("naive_median_s", Json::opt_number(naive.map(|s| s.median))),
        ("naive_min_s", Json::opt_number(naive.map(|s| s.min))),
        ("compiled_median_s", Json::Number(compiled.median)),
        ("compiled_min_s", Json::Number(compiled.min)),
        ("speedup", Json::opt_number(speedup)),
        ("bytes_per_sec", Json::Number(achieved_bytes_per_sec)),
    ];
    if let Some(note) = note {
        fields.push(("note", Json::string(note)));
    }
    if let Some(speedup) = speedup {
        println!(
            "  {qubits:>2}q {kind:<6} naive {:>10.6}s  compiled {:>10.6}s  speedup {speedup:>7.1}x",
            naive.unwrap().median,
            compiled.median
        );
    } else {
        println!(
            "  {qubits:>2}q {kind:<6} naive {:>10}  compiled {:>10.6}s",
            "skipped", compiled.median
        );
    }
    Json::object(fields)
}

fn main() {
    println!(
        "propagation benchmark: transverse-field Ising chain, t = {EVOLVE_TIME} µs, {} worker threads available",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    // Correctness gate before timing anything: the two paths must agree.
    let check_h = ising_chain(8, 1.0, 1.0);
    let check_state = StateVector::zero_state(8);
    let fast = qturbo_quantum::propagate::evolve(&check_state, &check_h, EVOLVE_TIME);
    let slow = evolve_naive(&check_state, &check_h, EVOLVE_TIME);
    let fidelity = fast.fidelity(&slow);
    assert!(
        fidelity > 1.0 - 1e-10,
        "compiled/naive disagree: fidelity {fidelity}"
    );

    let mut entries = Vec::new();
    let mut lane_speedups: Vec<(usize, f64)> = Vec::new();
    for &n in &SIZES {
        let hamiltonian = ising_chain(n, 1.0, 1.0);
        let compiled_h = CompiledHamiltonian::compile(&hamiltonian);
        let terms = compiled_h.num_terms();
        let state = StateVector::zero_state(n);
        let reps = reps_for(n);

        // --- One H|ψ⟩ application. ---
        let naive_apply = bench(reps, || {
            let out = apply_hamiltonian_naive(&hamiltonian, &state);
            std::hint::black_box(&out);
        });
        let mut out = StateVector::zeros(n);
        let compiled_apply = bench(reps, || {
            compiled_h.apply_into(&state, &mut out);
            std::hint::black_box(&out);
        });
        entries.push(entry(
            n,
            "apply",
            terms,
            Some(naive_apply),
            compiled_apply,
            bytes_per_sec(2.0, 1 << n, compiled_apply.min),
            None,
        ));

        // --- Lane path vs the scalar conformance reference, isolated from
        // threading (inline execution on both sides): the SIMD-lane rewrite
        // of the fused kernel is the perf story on single-core hosts. ---
        let kernel = compiled_h.kernel();
        let lane_context = ExecutionContext::auto().with_threads(1);
        let scalar_context = lane_context.with_kernel_path(KernelPath::Scalar);
        let lane_reps = reps.max(5);
        let lane_apply = bench(lane_reps, || {
            kernel.apply_into_with(&lane_context, &state, &mut out);
            std::hint::black_box(&out);
        });
        let scalar_apply = bench(lane_reps, || {
            kernel.apply_into_with(&scalar_context, &state, &mut out);
            std::hint::black_box(&out);
        });
        let lane_speedup = scalar_apply.min / lane_apply.min.max(1e-12);
        println!(
            "  {n:>2}q lanes  scalar {:>10.6}s  lane     {:>10.6}s  speedup {lane_speedup:>7.2}x",
            scalar_apply.min, lane_apply.min
        );
        entries.push(Json::object(vec![
            ("qubits", Json::Number(n as f64)),
            ("kind", Json::string("lane_vs_scalar_apply")),
            ("terms", Json::Number(terms as f64)),
            ("scalar_min_s", Json::Number(scalar_apply.min)),
            ("lane_min_s", Json::Number(lane_apply.min)),
            ("lane_speedup", Json::Number(lane_speedup)),
            (
                "bytes_per_sec",
                Json::Number(bytes_per_sec(2.0, 1 << n, lane_apply.min)),
            ),
        ]));
        lane_speedups.push((n, lane_speedup));

        // --- Full Taylor evolve. ---
        let naive_evolve = (n <= NAIVE_EVOLVE_LIMIT).then(|| {
            bench(if n >= 16 { 1 } else { reps }, || {
                let out = evolve_naive(&state, &hamiltonian, EVOLVE_TIME);
                std::hint::black_box(&out);
            })
        });
        // Pin the Taylor backend: this benchmark isolates the kernel speedup
        // (naive vs mask-compiled) under identical stepping, so the default
        // automatic backend selection must not change the algorithm here —
        // BENCH_stepper.json is where the backends compete. Telemetry is
        // explicitly off so the timed runs stay untraced under QTURBO_TRACE.
        let mut propagator =
            Propagator::with_options(EvolveOptions::new(StepperKind::Taylor).with_telemetry(false));
        let mut work = StateVector::zeros(n);
        propagator.reset_kernel_applications();
        let compiled_evolve = bench(reps, || {
            work.copy_from(&state);
            propagator.evolve_in_place(&compiled_h, &mut work, EVOLVE_TIME);
            std::hint::black_box(&work);
        });
        // The pass counter accumulated over warm-up + reps identical runs;
        // per-rep traffic is the exact per-evolution pass count.
        let evolve_passes = propagator.state_passes() as f64 / (reps + 1) as f64;
        let note = (n > NAIVE_EVOLVE_LIMIT)
            .then_some("naive evolve skipped above 16 qubits (minutes of runtime)");
        entries.push(entry(
            n,
            "evolve",
            terms,
            naive_evolve,
            compiled_evolve,
            bytes_per_sec(evolve_passes, 1 << n, compiled_evolve.min),
            note,
        ));

        // One extra untimed traced run of the Taylor evolve attaches the
        // workload's telemetry block (the timed runs above are untraced).
        let profile = traced_profile(&state, StepperKind::Taylor, |propagator, work| {
            propagator.evolve_in_place(&compiled_h, work, EVOLVE_TIME)
        });
        entries.push(Json::object(vec![
            ("qubits", Json::Number(n as f64)),
            ("kind", Json::string("telemetry")),
            ("telemetry", telemetry_json(StepperKind::Taylor, &profile)),
        ]));
    }

    // The SIMD-lane headline: on the 16q+ dense workloads the lane path
    // must not lose to the scalar reference (the full ≥1.5x target is
    // recorded in the JSON for trend tracking; the hard gate here is
    // never-worse, robust to autovectorizer variance across hosts).
    let large_speedup = lane_speedups
        .iter()
        .filter(|(n, _)| *n >= 16)
        .map(|(_, s)| *s)
        .fold(f64::INFINITY, f64::min);
    assert!(
        large_speedup > 0.95,
        "lane kernel path slower than scalar on a 16q+ workload: {large_speedup:.2}x"
    );

    let report = Json::object(vec![
        ("benchmark", Json::string("propagation")),
        ("model", Json::string("ising_chain(J=1,h=1)")),
        ("evolve_time_us", Json::Number(EVOLVE_TIME)),
        ("initial_state", Json::string("|0...0>")),
        (
            "worker_threads_available",
            Json::Number(std::thread::available_parallelism().map_or(1, |n| n.get()) as f64),
        ),
        (
            "worker_threads_resolved",
            Json::Number(ExecutionContext::auto().resolved_threads() as f64),
        ),
        ("lane_width", Json::Number(LANE_WIDTH as f64)),
        ("lane_speedup_16q_plus", Json::Number(large_speedup)),
        ("cross_check_fidelity", Json::Number(fidelity)),
        ("entries", Json::Array(entries)),
    ]);
    let path = "BENCH_propagation.json";
    std::fs::write(path, report.render() + "\n").expect("write benchmark report");
    println!("wrote {path}");
}
