//! Figure 3: compilation time, execution time and relative error for QTurbo
//! vs the SimuQ-style baseline on the Rydberg device, across four benchmark
//! models and a sweep of system sizes.
//!
//! QTurbo is swept to large sizes; the baseline is run up to a cut-off size
//! (its monolithic solve becomes the dominant cost — which is the point of
//! the figure) and reported as missing beyond it, mirroring the missing
//! SimuQ data points in the paper.
//!
//! Run with: `cargo run --release -p qturbo-bench --bin fig3_rydberg`

use qturbo_bench::{compare, print_rows, print_summary, quick_mode, Device};
use qturbo_hamiltonian::models::Model;

fn main() {
    let (qturbo_sizes, baseline_cutoff): (Vec<usize>, usize) = if quick_mode() {
        (vec![5, 9, 13], 9)
    } else {
        (vec![5, 9, 13, 21, 33, 48, 63, 93], 13)
    };
    let models = [
        Model::IsingChain,
        Model::IsingCycle,
        Model::Kitaev,
        Model::IsingCyclePlus,
    ];

    for model in models {
        let mut rows = Vec::new();
        for &n in &qturbo_sizes {
            let n = n.max(model.min_qubits());
            let run_baseline = n <= baseline_cutoff;
            rows.push(compare(model, n, Device::Rydberg, run_baseline));
        }
        print_rows(
            &format!("Figure 3 — {} on the Rydberg device", model.name()),
            &rows,
        );
        print_summary(model.name(), &rows);
    }
}
