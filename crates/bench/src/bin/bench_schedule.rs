//! Schedule-compilation benchmark: recompile-per-segment vs shared-layout
//! reuse on a discretized time-dependent ramp, plus the fused Z/ZZ
//! observable sweep vs the per-observable route, plus the **dense-ramp**
//! workload gating the batched multi-segment evolution sweep.
//!
//! Writes `BENCH_schedule.json` into the current directory. The base
//! workload is the paper's MIS annealing chain (§5.3) discretized into 100
//! piecewise-constant segments — every segment shares the same term
//! structure, so [`CompiledSchedule`] compiles exactly one mask layout and
//! materializes each segment as an `O(#terms)` weight vector, while the
//! reference path re-runs the full `CompiledHamiltonian::compile` (including
//! its `O(#diag · 2ⁿ)` diagonal table) per segment.
//!
//! The dense-ramp entries (8q × 1000, 12q × 300, 16q × 100 segments) run
//! per-segment Taylor, the batched multi-segment sweep, and Auto end to end,
//! recording wall time **and amplitude-pass counts**, and **assert** the
//! batched acceptance gates (ci.sh runs this binary, so they are CI gates):
//! identical kernel applications, strictly fewer amplitude passes, wall time
//! never worse than per-segment Taylor, final states pairwise-matched to
//! 1e-10, and Auto within 10% of the best of the two. A **traced** batched
//! run must match a back-to-back untraced one within the same 2 ms jitter
//! allowance — the CI proof that telemetry stays off the hot path, which
//! chained with the batched-vs-taylor bound keeps the dense-ramp wall gate
//! true with tracing enabled — and every workload entry carries a
//! `telemetry` JSON block (work totals, recovery counts, worker-pool
//! utilization) from one extra untimed traced run.

use qturbo_bench::telemetry_report::{telemetry_json, traced_profile};
use qturbo_bench::timing::{achieved_bytes_per_sec, bench, Json, Sample};
use qturbo_hamiltonian::models::mis_chain;
use qturbo_hamiltonian::{Hamiltonian, Pauli, PauliString, PiecewiseHamiltonian};
use qturbo_quantum::compiled::CompiledHamiltonian;
use qturbo_quantum::exec::LANE_WIDTH;
use qturbo_quantum::observable::{measure_z_zz, zz_pairs};
use qturbo_quantum::propagate::Propagator;
use qturbo_quantum::schedule::CompiledSchedule;
use qturbo_quantum::{EvolveOptions, ExecutionContext, StateVector, StepperKind};

const SIZES: [usize; 3] = [8, 12, 16];
const NUM_SEGMENTS: usize = 100;
const TOTAL_TIME: f64 = 1.0;
/// Dense-ramp configurations: `(qubits, segments)` — long trains of tiny
/// segments, the batched sweep's target shape.
const DENSE_RAMPS: [(usize, usize); 3] = [(8, 1000), (12, 300), (16, 100)];
/// Pairwise amplitude agreement required between the batched and
/// per-segment evolutions of a dense ramp.
const DENSE_AGREEMENT: f64 = 1e-10;

fn reps_for(qubits: usize) -> usize {
    if qubits >= 16 {
        3
    } else {
        7
    }
}

/// Max |fused − per-observable| over all Z and ZZ values.
fn observable_deviation(state: &StateVector, cyclic: bool) -> f64 {
    let fused = measure_z_zz(state, cyclic);
    let mut max_diff = 0.0f64;
    for (i, z) in fused.z.iter().enumerate() {
        let direct = state.expectation(&PauliString::single(i, Pauli::Z));
        max_diff = max_diff.max((z - direct).abs());
    }
    for (&(i, j), zz) in fused.pairs.iter().zip(&fused.zz) {
        let direct = state.expectation(&PauliString::two(i, Pauli::Z, j, Pauli::Z));
        max_diff = max_diff.max((zz - direct).abs());
    }
    max_diff
}

fn size_entry(qubits: usize) -> Json {
    let ramp: PiecewiseHamiltonian = mis_chain(qubits, 1.0, 1.0, 1.0, TOTAL_TIME, NUM_SEGMENTS);
    // The ramp's structure-sharing shape, as the hamiltonian crate sees it:
    // one run means every segment can share a single compiled layout.
    let structure_runs = ramp.structure_runs().len();
    let segments: Vec<(Hamiltonian, f64)> = ramp
        .segments()
        .iter()
        .map(|s| (s.hamiltonian.clone(), s.duration))
        .collect();
    let reps = reps_for(qubits);

    // --- Compilation: full recompile per segment vs one shared layout. ---
    let compile_per_segment = bench(reps, || {
        let compiled: Vec<CompiledHamiltonian> = segments
            .iter()
            .map(|(h, _)| CompiledHamiltonian::compile(h))
            .collect();
        std::hint::black_box(&compiled);
    });
    let compile_schedule = bench(reps, || {
        let schedule = CompiledSchedule::compile(&segments);
        std::hint::black_box(&schedule);
    });
    let compile_speedup = compile_per_segment.median / compile_schedule.median.max(1e-12);

    let schedule = CompiledSchedule::compile(&segments);
    let terms = segments[0].0.num_terms();

    // --- End-to-end evolution of the ramp from |0…0⟩. Telemetry explicitly
    // off: timed runs must stay untraced even under `QTURBO_TRACE=1`. ---
    let mut propagator = Propagator::with_options(EvolveOptions::auto().with_telemetry(false));
    let mut work = StateVector::zero_state(qubits);
    let evolve_recompile = bench(reps, || {
        let mut state = StateVector::zero_state(qubits);
        propagator.evolve_piecewise_in_place(&segments, &mut state);
        work.copy_from(&state);
        std::hint::black_box(&work);
    });
    let recompile_state = work.clone();
    propagator.reset_kernel_applications();
    let evolve_schedule_sample = bench(reps, || {
        let mut state = StateVector::zero_state(qubits);
        propagator.evolve_schedule_in_place(&schedule, &mut state);
        work.copy_from(&state);
        std::hint::black_box(&work);
    });
    // Pass counter accumulated over warm-up + reps identical evolutions.
    let schedule_passes = propagator.state_passes() as f64 / (reps + 1) as f64;
    let schedule_state = work.clone();
    let evolve_speedup = evolve_recompile.median / evolve_schedule_sample.median.max(1e-12);
    let fidelity = recompile_state.fidelity(&schedule_state);

    // --- Observables on the final state: fused sweep vs 2N passes. ---
    let pairs = zz_pairs(qubits, false);
    let fused_sample = bench(reps.max(5), || {
        let observables = measure_z_zz(&schedule_state, false);
        std::hint::black_box(&observables);
    });
    let per_observable_sample = bench(reps.max(5), || {
        let z: Vec<f64> = (0..qubits)
            .map(|i| schedule_state.expectation(&PauliString::single(i, Pauli::Z)))
            .collect();
        let zz: Vec<f64> = pairs
            .iter()
            .map(|&(i, j)| schedule_state.expectation(&PauliString::two(i, Pauli::Z, j, Pauli::Z)))
            .collect();
        std::hint::black_box((&z, &zz));
    });
    let observable_speedup = per_observable_sample.median / fused_sample.median.max(1e-12);
    let max_observable_diff = observable_deviation(&schedule_state, false)
        .max(observable_deviation(&schedule_state, true));

    println!(
        "  {qubits:>2}q  compile {:>10.6}s -> {:>10.6}s ({compile_speedup:>7.1}x)  \
         evolve {:>9.4}s -> {:>9.4}s ({evolve_speedup:>5.2}x)  obs {observable_speedup:>5.2}x  \
         layouts {}  fidelity {fidelity:.12}",
        compile_per_segment.median,
        compile_schedule.median,
        evolve_recompile.median,
        evolve_schedule_sample.median,
        schedule.num_layouts(),
    );
    assert!(
        fidelity > 1.0 - 1e-10,
        "schedule/recompile evolution disagree: fidelity {fidelity}"
    );
    assert!(
        max_observable_diff < 1e-12,
        "fused observables deviate: {max_observable_diff}"
    );

    // One extra traced run (untimed) attaches the workload's telemetry
    // block; the timed measurements above all ran with telemetry off.
    let profile = traced_profile(
        &StateVector::zero_state(qubits),
        StepperKind::Auto,
        |propagator, state| propagator.evolve_schedule_in_place(&schedule, state),
    );

    let sample_fields = |s: Sample| (Json::Number(s.median), Json::Number(s.min));
    let (cps_med, cps_min) = sample_fields(compile_per_segment);
    let (cs_med, cs_min) = sample_fields(compile_schedule);
    Json::object(vec![
        ("qubits", Json::Number(qubits as f64)),
        ("segments", Json::Number(NUM_SEGMENTS as f64)),
        ("terms_per_segment", Json::Number(terms as f64)),
        ("structure_runs", Json::Number(structure_runs as f64)),
        ("layouts", Json::Number(schedule.num_layouts() as f64)),
        ("compile_per_segment_median_s", cps_med),
        ("compile_per_segment_min_s", cps_min),
        ("compile_schedule_median_s", cs_med),
        ("compile_schedule_min_s", cs_min),
        ("compile_speedup", Json::Number(compile_speedup)),
        (
            "evolve_recompile_median_s",
            Json::Number(evolve_recompile.median),
        ),
        (
            "evolve_schedule_median_s",
            Json::Number(evolve_schedule_sample.median),
        ),
        ("evolve_speedup", Json::Number(evolve_speedup)),
        (
            "evolve_bytes_per_sec",
            Json::Number(achieved_bytes_per_sec(
                schedule_passes,
                1 << qubits,
                evolve_schedule_sample.min,
            )),
        ),
        (
            "observables_fused_median_s",
            Json::Number(fused_sample.median),
        ),
        (
            "observables_per_pass_median_s",
            Json::Number(per_observable_sample.median),
        ),
        ("observable_speedup", Json::Number(observable_speedup)),
        ("cross_check_fidelity", Json::Number(fidelity)),
        ("max_observable_abs_diff", Json::Number(max_observable_diff)),
        ("telemetry", telemetry_json(StepperKind::Auto, &profile)),
    ])
}

/// One backend's end-to-end dense-ramp measurement.
struct DenseResult {
    kernel_applications: u64,
    state_passes: u64,
    wall_median_s: f64,
    wall_min_s: f64,
    final_state: StateVector,
}

fn run_dense_backend(
    schedule: &CompiledSchedule,
    qubits: usize,
    kind: StepperKind,
    reps: usize,
) -> DenseResult {
    // Telemetry explicitly off: the gated measurements must stay untraced
    // even when `QTURBO_TRACE=1` flips the process-wide default.
    let mut propagator = Propagator::with_options(EvolveOptions::new(kind).with_telemetry(false));
    let mut state = StateVector::zero_state(qubits);
    propagator.evolve_schedule_in_place(schedule, &mut state);
    let kernel_applications = propagator.kernel_applications();
    let state_passes = propagator.state_passes();
    let final_state = state.clone();
    let sample = bench(reps, || {
        let mut state = StateVector::zero_state(qubits);
        propagator.evolve_schedule_in_place(schedule, &mut state);
        std::hint::black_box(&state);
    });
    DenseResult {
        kernel_applications,
        state_passes,
        wall_median_s: sample.median,
        wall_min_s: sample.min,
        final_state,
    }
}

/// The dense-ramp workload: a long train of tiny same-layout segments
/// driven end to end by per-segment Taylor, the batched multi-segment
/// sweep, and Auto — with the batched acceptance gates asserted.
fn dense_ramp_entry(qubits: usize, segments: usize) -> Json {
    let ramp = mis_chain(qubits, 1.0, 1.0, 1.0, TOTAL_TIME, segments);
    let compiled_segments: Vec<(Hamiltonian, f64)> = ramp
        .segments()
        .iter()
        .map(|s| (s.hamiltonian.clone(), s.duration))
        .collect();
    let schedule = CompiledSchedule::compile(&compiled_segments);
    let batch_runs = schedule.batch_runs();
    let reps = reps_for(qubits);

    let taylor = run_dense_backend(&schedule, qubits, StepperKind::Taylor, reps);
    let batched = run_dense_backend(&schedule, qubits, StepperKind::BatchedTaylor, reps);
    let auto = run_dense_backend(&schedule, qubits, StepperKind::Auto, reps);

    let max_deviation = batched
        .final_state
        .amplitudes()
        .iter()
        .zip(taylor.final_state.amplitudes())
        .map(|(a, b)| (*a - *b).abs())
        .fold(0.0f64, f64::max);
    let pass_ratio = taylor.state_passes as f64 / batched.state_passes.max(1) as f64;
    let wall_speedup = taylor.wall_median_s / batched.wall_median_s.max(1e-12);
    println!(
        "  dense {qubits:>2}q x {segments:>4}  taylor {:>8} passes {:>9.4}s | batched {:>8} passes \
         {:>9.4}s ({pass_ratio:.2}x fewer passes, {wall_speedup:.2}x wall) | auto {:>9.4}s | \
         dev {max_deviation:.2e} | {} runs",
        taylor.state_passes,
        taylor.wall_median_s,
        batched.state_passes,
        batched.wall_median_s,
        auto.wall_median_s,
        batch_runs.len(),
    );

    // --- The batched CI gates. ---
    assert!(
        max_deviation < DENSE_AGREEMENT,
        "{qubits}q dense ramp: batched deviates from per-segment Taylor by {max_deviation}"
    );
    assert_eq!(
        batched.kernel_applications, taylor.kernel_applications,
        "{qubits}q dense ramp: the batched sweep must run the identical series"
    );
    assert!(
        batched.state_passes < taylor.state_passes,
        "{qubits}q dense ramp: batched passes {} !< taylor passes {}",
        batched.state_passes,
        taylor.state_passes
    );
    assert!(
        batched.wall_min_s <= taylor.wall_min_s + 0.002,
        "{qubits}q dense ramp: batched ({:.4}s) slower than per-segment Taylor ({:.4}s)",
        batched.wall_min_s,
        taylor.wall_min_s
    );
    let best = taylor.wall_min_s.min(batched.wall_min_s);
    assert!(
        auto.wall_min_s <= best * 1.10 + 0.002,
        "{qubits}q dense ramp: auto ({:.4}s) more than 10% behind the best backend ({best:.4}s)",
        auto.wall_min_s
    );

    // --- The traced gate: the batched wall bound must also hold with
    // telemetry ON, proving tracing stays off the hot path. A fresh
    // untraced measurement and a traced one run back to back — same code
    // path modulo telemetry, no thermal/load drift between windows (the
    // `taylor`/`batched` samples above are minutes old by now, so comparing
    // against them would gate on machine drift, not tracing cost). Chained
    // with the batched-vs-taylor gate above, this keeps the dense-ramp
    // batched-vs-taylor wall gate true with tracing enabled. One untimed
    // traced run additionally provides the telemetry JSON block. ---
    let profile = traced_profile(
        &StateVector::zero_state(qubits),
        StepperKind::BatchedTaylor,
        |propagator, state| propagator.evolve_schedule_in_place(&schedule, state),
    );
    let mut untraced_propagator = Propagator::with_options(
        EvolveOptions::new(StepperKind::BatchedTaylor).with_telemetry(false),
    );
    let untraced_sample = bench(reps, || {
        let mut state = StateVector::zero_state(qubits);
        untraced_propagator.evolve_schedule_in_place(&schedule, &mut state);
        std::hint::black_box(&state);
    });
    let mut traced_propagator = Propagator::with_options(
        EvolveOptions::new(StepperKind::BatchedTaylor).with_telemetry(true),
    );
    let traced_sample = bench(reps, || {
        let mut state = StateVector::zero_state(qubits);
        traced_propagator.evolve_schedule_in_place(&schedule, &mut state);
        std::hint::black_box(&state);
    });
    println!(
        "  dense {qubits:>2}q x {segments:>4}  traced batched {:>9.4}s (gate: <= untraced {:.4}s + 2ms)",
        traced_sample.min, untraced_sample.min
    );
    assert!(
        traced_sample.min <= untraced_sample.min + 0.002,
        "{qubits}q dense ramp: TRACED batched ({:.4}s) slower than the back-to-back untraced run ({:.4}s)",
        traced_sample.min,
        untraced_sample.min
    );

    let backend_json = |name: &str, r: &DenseResult| {
        Json::object(vec![
            ("backend", Json::string(name)),
            (
                "kernel_applications",
                Json::Number(r.kernel_applications as f64),
            ),
            ("state_passes", Json::Number(r.state_passes as f64)),
            ("wall_median_s", Json::Number(r.wall_median_s)),
            ("wall_min_s", Json::Number(r.wall_min_s)),
            (
                "bytes_per_sec",
                Json::Number(achieved_bytes_per_sec(
                    r.state_passes as f64,
                    1 << qubits,
                    r.wall_min_s,
                )),
            ),
        ])
    };
    Json::object(vec![
        ("workload", Json::string("dense_ramp")),
        ("qubits", Json::Number(qubits as f64)),
        ("segments", Json::Number(segments as f64)),
        ("batch_runs", Json::Number(batch_runs.len() as f64)),
        ("layouts", Json::Number(schedule.num_layouts() as f64)),
        ("pass_ratio", Json::Number(pass_ratio)),
        ("wall_speedup_batched_vs_taylor", Json::Number(wall_speedup)),
        ("max_abs_dev_batched_vs_taylor", Json::Number(max_deviation)),
        ("traced_batched_wall_min_s", Json::Number(traced_sample.min)),
        (
            "retimed_untraced_batched_wall_min_s",
            Json::Number(untraced_sample.min),
        ),
        (
            "telemetry",
            telemetry_json(StepperKind::BatchedTaylor, &profile),
        ),
        (
            "backends",
            Json::Array(vec![
                backend_json("taylor", &taylor),
                backend_json("batched_taylor", &batched),
                backend_json("auto", &auto),
            ]),
        ),
    ])
}

fn main() {
    println!(
        "schedule benchmark: MIS annealing ramp, {NUM_SEGMENTS} segments over {TOTAL_TIME} µs, \
         {} worker threads available",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    let mut entries: Vec<Json> = SIZES.iter().map(|&n| size_entry(n)).collect();
    println!("dense-ramp workload (batched multi-segment sweep gates):");
    for &(qubits, segments) in &DENSE_RAMPS {
        entries.push(dense_ramp_entry(qubits, segments));
    }

    let report = Json::object(vec![
        ("benchmark", Json::string("schedule")),
        ("model", Json::string("mis_chain(U=1,omega=1,alpha=1)")),
        ("total_time_us", Json::Number(TOTAL_TIME)),
        ("num_segments", Json::Number(NUM_SEGMENTS as f64)),
        ("initial_state", Json::string("|0...0>")),
        (
            "worker_threads_available",
            Json::Number(std::thread::available_parallelism().map_or(1, |n| n.get()) as f64),
        ),
        (
            "worker_threads_resolved",
            Json::Number(ExecutionContext::auto().resolved_threads() as f64),
        ),
        ("lane_width", Json::Number(LANE_WIDTH as f64)),
        ("entries", Json::Array(entries)),
    ]);
    let path = "BENCH_schedule.json";
    std::fs::write(path, report.render() + "\n").expect("write benchmark report");
    println!("wrote {path}");
}
