//! Schedule-compilation benchmark: recompile-per-segment vs shared-layout
//! reuse on a discretized time-dependent ramp, plus the fused Z/ZZ
//! observable sweep vs the per-observable route.
//!
//! Writes `BENCH_schedule.json` into the current directory. The workload is
//! the paper's MIS annealing chain (§5.3) discretized into 100
//! piecewise-constant segments — every segment shares the same term
//! structure, so [`CompiledSchedule`] compiles exactly one mask layout and
//! materializes each segment as an `O(#terms)` weight vector, while the
//! reference path re-runs the full `CompiledHamiltonian::compile` (including
//! its `O(#diag · 2ⁿ)` diagonal table) per segment.

use qturbo_bench::timing::{bench, Json, Sample};
use qturbo_hamiltonian::models::mis_chain;
use qturbo_hamiltonian::{Hamiltonian, Pauli, PauliString, PiecewiseHamiltonian};
use qturbo_quantum::compiled::CompiledHamiltonian;
use qturbo_quantum::observable::{measure_z_zz, zz_pairs};
use qturbo_quantum::propagate::Propagator;
use qturbo_quantum::schedule::CompiledSchedule;
use qturbo_quantum::StateVector;

const SIZES: [usize; 3] = [8, 12, 16];
const NUM_SEGMENTS: usize = 100;
const TOTAL_TIME: f64 = 1.0;

fn reps_for(qubits: usize) -> usize {
    if qubits >= 16 {
        3
    } else {
        7
    }
}

/// Max |fused − per-observable| over all Z and ZZ values.
fn observable_deviation(state: &StateVector, cyclic: bool) -> f64 {
    let fused = measure_z_zz(state, cyclic);
    let mut max_diff = 0.0f64;
    for (i, z) in fused.z.iter().enumerate() {
        let direct = state.expectation(&PauliString::single(i, Pauli::Z));
        max_diff = max_diff.max((z - direct).abs());
    }
    for (&(i, j), zz) in fused.pairs.iter().zip(&fused.zz) {
        let direct = state.expectation(&PauliString::two(i, Pauli::Z, j, Pauli::Z));
        max_diff = max_diff.max((zz - direct).abs());
    }
    max_diff
}

fn size_entry(qubits: usize) -> Json {
    let ramp: PiecewiseHamiltonian = mis_chain(qubits, 1.0, 1.0, 1.0, TOTAL_TIME, NUM_SEGMENTS);
    // The ramp's structure-sharing shape, as the hamiltonian crate sees it:
    // one run means every segment can share a single compiled layout.
    let structure_runs = ramp.structure_runs().len();
    let segments: Vec<(Hamiltonian, f64)> = ramp
        .segments()
        .iter()
        .map(|s| (s.hamiltonian.clone(), s.duration))
        .collect();
    let reps = reps_for(qubits);

    // --- Compilation: full recompile per segment vs one shared layout. ---
    let compile_per_segment = bench(reps, || {
        let compiled: Vec<CompiledHamiltonian> = segments
            .iter()
            .map(|(h, _)| CompiledHamiltonian::compile(h))
            .collect();
        std::hint::black_box(&compiled);
    });
    let compile_schedule = bench(reps, || {
        let schedule = CompiledSchedule::compile(&segments);
        std::hint::black_box(&schedule);
    });
    let compile_speedup = compile_per_segment.median / compile_schedule.median.max(1e-12);

    let schedule = CompiledSchedule::compile(&segments);
    let terms = segments[0].0.num_terms();

    // --- End-to-end evolution of the ramp from |0…0⟩. ---
    let mut propagator = Propagator::new();
    let mut work = StateVector::zero_state(qubits);
    let evolve_recompile = bench(reps, || {
        let mut state = StateVector::zero_state(qubits);
        propagator.evolve_piecewise_in_place(&segments, &mut state);
        work.copy_from(&state);
        std::hint::black_box(&work);
    });
    let recompile_state = work.clone();
    let evolve_schedule_sample = bench(reps, || {
        let mut state = StateVector::zero_state(qubits);
        propagator.evolve_schedule_in_place(&schedule, &mut state);
        work.copy_from(&state);
        std::hint::black_box(&work);
    });
    let schedule_state = work.clone();
    let evolve_speedup = evolve_recompile.median / evolve_schedule_sample.median.max(1e-12);
    let fidelity = recompile_state.fidelity(&schedule_state);

    // --- Observables on the final state: fused sweep vs 2N passes. ---
    let pairs = zz_pairs(qubits, false);
    let fused_sample = bench(reps.max(5), || {
        let observables = measure_z_zz(&schedule_state, false);
        std::hint::black_box(&observables);
    });
    let per_observable_sample = bench(reps.max(5), || {
        let z: Vec<f64> = (0..qubits)
            .map(|i| schedule_state.expectation(&PauliString::single(i, Pauli::Z)))
            .collect();
        let zz: Vec<f64> = pairs
            .iter()
            .map(|&(i, j)| schedule_state.expectation(&PauliString::two(i, Pauli::Z, j, Pauli::Z)))
            .collect();
        std::hint::black_box((&z, &zz));
    });
    let observable_speedup = per_observable_sample.median / fused_sample.median.max(1e-12);
    let max_observable_diff = observable_deviation(&schedule_state, false)
        .max(observable_deviation(&schedule_state, true));

    println!(
        "  {qubits:>2}q  compile {:>10.6}s -> {:>10.6}s ({compile_speedup:>7.1}x)  \
         evolve {:>9.4}s -> {:>9.4}s ({evolve_speedup:>5.2}x)  obs {observable_speedup:>5.2}x  \
         layouts {}  fidelity {fidelity:.12}",
        compile_per_segment.median,
        compile_schedule.median,
        evolve_recompile.median,
        evolve_schedule_sample.median,
        schedule.num_layouts(),
    );
    assert!(
        fidelity > 1.0 - 1e-10,
        "schedule/recompile evolution disagree: fidelity {fidelity}"
    );
    assert!(
        max_observable_diff < 1e-12,
        "fused observables deviate: {max_observable_diff}"
    );

    let sample_fields = |s: Sample| (Json::Number(s.median), Json::Number(s.min));
    let (cps_med, cps_min) = sample_fields(compile_per_segment);
    let (cs_med, cs_min) = sample_fields(compile_schedule);
    Json::object(vec![
        ("qubits", Json::Number(qubits as f64)),
        ("segments", Json::Number(NUM_SEGMENTS as f64)),
        ("terms_per_segment", Json::Number(terms as f64)),
        ("structure_runs", Json::Number(structure_runs as f64)),
        ("layouts", Json::Number(schedule.num_layouts() as f64)),
        ("compile_per_segment_median_s", cps_med),
        ("compile_per_segment_min_s", cps_min),
        ("compile_schedule_median_s", cs_med),
        ("compile_schedule_min_s", cs_min),
        ("compile_speedup", Json::Number(compile_speedup)),
        (
            "evolve_recompile_median_s",
            Json::Number(evolve_recompile.median),
        ),
        (
            "evolve_schedule_median_s",
            Json::Number(evolve_schedule_sample.median),
        ),
        ("evolve_speedup", Json::Number(evolve_speedup)),
        (
            "observables_fused_median_s",
            Json::Number(fused_sample.median),
        ),
        (
            "observables_per_pass_median_s",
            Json::Number(per_observable_sample.median),
        ),
        ("observable_speedup", Json::Number(observable_speedup)),
        ("cross_check_fidelity", Json::Number(fidelity)),
        ("max_observable_abs_diff", Json::Number(max_observable_diff)),
    ])
}

fn main() {
    println!(
        "schedule benchmark: MIS annealing ramp, {NUM_SEGMENTS} segments over {TOTAL_TIME} µs, \
         {} worker threads available",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    let entries: Vec<Json> = SIZES.iter().map(|&n| size_entry(n)).collect();

    let report = Json::object(vec![
        ("benchmark", Json::string("schedule")),
        ("model", Json::string("mis_chain(U=1,omega=1,alpha=1)")),
        ("total_time_us", Json::Number(TOTAL_TIME)),
        ("num_segments", Json::Number(NUM_SEGMENTS as f64)),
        ("initial_state", Json::string("|0...0>")),
        (
            "worker_threads_available",
            Json::Number(std::thread::available_parallelism().map_or(1, |n| n.get()) as f64),
        ),
        ("entries", Json::Array(entries)),
    ]);
    let path = "BENCH_schedule.json";
    std::fs::write(path, report.render() + "\n").expect("write benchmark report");
    println!("wrote {path}");
}
