//! Figure 4: compilation time, execution time and relative error for QTurbo
//! vs the SimuQ-style baseline on the Heisenberg device, across four benchmark
//! models and a sweep of system sizes.
//!
//! Run with: `cargo run --release -p qturbo-bench --bin fig4_heisenberg`

use qturbo_bench::{compare, print_rows, print_summary, quick_mode, Device};
use qturbo_hamiltonian::models::Model;

fn main() {
    let (qturbo_sizes, baseline_cutoff): (Vec<usize>, usize) = if quick_mode() {
        (vec![4, 8, 12], 8)
    } else {
        (vec![4, 8, 12, 20, 32, 48, 64, 93], 16)
    };
    let models = [
        Model::IsingChain,
        Model::IsingCycle,
        Model::HeisenbergChain,
        Model::Kitaev,
    ];

    for model in models {
        let mut rows = Vec::new();
        for &n in &qturbo_sizes {
            let n = n.max(model.min_qubits());
            let run_baseline = n <= baseline_cutoff;
            rows.push(compare(model, n, Device::Heisenberg, run_baseline));
        }
        print_rows(
            &format!("Figure 4 — {} on the Heisenberg device", model.name()),
            &rows,
        );
        print_summary(model.name(), &rows);
    }
}
