//! Device noise-sweep benchmark: the sequential per-realization reference
//! path vs the structure-of-arrays realization block path
//! ([`EvolveOptions::with_realization_block`]) on a dense detuning ramp.
//!
//! Writes `BENCH_device.json` into the current directory. The workload is a
//! discretized ramp with per-qubit Z detunings (the diagonal table engages
//! and is shared unscaled across the block), a **phase-modulated drive**
//! (`cos φ · X + sin φ · Y` per qubit, the amplitude/phase controls of an
//! analog neutral-atom machine — the `Y` gathers carry per-basis-state
//! signs, the term class where within-state lanes pay per-amplitude sign
//! and permute work that the block path computes once per basis row), and
//! nearest-neighbour ZZ couplings, swept under coherent amplitude
//! miscalibration with exact (infinite-shot) readout — so every realization
//! evolves under a *different* Hamiltonian scale and the block path's
//! per-realization scale lanes are genuinely exercised.
//!
//! For every register size × realization count the report records wall
//! time and realizations/sec for both paths plus the block/sequential
//! speedup, and the run **asserts** the acceptance gates (ci.sh runs this
//! binary, so they are CI gates):
//!
//! * block and sequential observables agree to 1e-10 on every entry,
//! * a seeded block sweep is bitwise reproducible across two runs,
//! * the sequential sweep's realization 0 is bitwise identical to a
//!   standalone [`EmulatedDevice::run`],
//! * at 16 qubits the block path is at least as fast as the sequential
//!   path at R = 16, and at least 1.5× its realizations/sec at R = 64.

use qturbo_bench::timing::{bench, Json};
use qturbo_hamiltonian::{Hamiltonian, Pauli, PauliString};
use qturbo_quantum::schedule::CompiledSchedule;
use qturbo_quantum::{DeviceRun, EmulatedDevice, EvolveOptions, NoiseModel};

const SIZES: [usize; 3] = [8, 12, 16];
const REALIZATIONS: [usize; 3] = [4, 16, 64];
const SEGMENTS: usize = 10;
const SEGMENT_DT: f64 = 0.03;
const AGREEMENT: f64 = 1e-10;
/// Wall-clock jitter allowance on the throughput gates (sub-10 ms runs).
const JITTER_S: f64 = 0.002;

/// The dense ramp: per-qubit Z detunings sweeping sign, a phase-modulated
/// `cos φ · X + sin φ · Y` drive, nearest-neighbour ZZ couplings.
fn ramp(num_qubits: usize) -> Vec<(Hamiltonian, f64)> {
    (0..SEGMENTS)
        .map(|index| {
            let s = index as f64 / SEGMENTS as f64;
            let phase = std::f64::consts::PI * (0.25 + 0.5 * s);
            let mut terms: Vec<(f64, PauliString)> = Vec::new();
            for qubit in 0..num_qubits {
                terms.push((1.2 * (1.0 - 2.0 * s), PauliString::single(qubit, Pauli::Z)));
                terms.push((0.9 * phase.cos(), PauliString::single(qubit, Pauli::X)));
                terms.push((0.9 * phase.sin(), PauliString::single(qubit, Pauli::Y)));
            }
            for qubit in 0..num_qubits - 1 {
                terms.push((0.7, PauliString::two(qubit, Pauli::Z, qubit + 1, Pauli::Z)));
            }
            (Hamiltonian::from_terms(num_qubits, terms), SEGMENT_DT)
        })
        .collect()
}

/// Exact-expectation noise with coherent amplitude miscalibration: the
/// realizations genuinely differ (distinct Hamiltonian scales), and the
/// block/sequential comparison stays analog (finite-shot Bernoulli draws
/// could flip on 1e-13 expectation differences).
fn noise() -> NoiseModel {
    NoiseModel {
        depolarizing_rate: 0.01,
        amplitude_miscalibration: 0.05,
        readout_error: 0.01,
        shots: None,
    }
}

fn max_observable_deviation(a: &[DeviceRun], b: &[DeviceRun]) -> f64 {
    a.iter()
        .zip(b)
        .flat_map(|(x, y)| {
            x.z.iter()
                .zip(&y.z)
                .chain(x.zz.iter().zip(&y.zz))
                .map(|(p, q)| (p - q).abs())
        })
        .fold(0.0, f64::max)
}

fn path_json(wall_median_s: f64, wall_min_s: f64, realizations: usize) -> Json {
    Json::object(vec![
        ("wall_median_s", Json::Number(wall_median_s)),
        ("wall_min_s", Json::Number(wall_min_s)),
        (
            "realizations_per_sec",
            Json::Number(realizations as f64 / wall_min_s.max(1e-12)),
        ),
    ])
}

fn entry(
    qubits: usize,
    realizations: usize,
    segments: &[(Hamiltonian, f64)],
    schedule: &CompiledSchedule,
) -> Json {
    let sequential_device = EmulatedDevice::new(noise(), 23)
        .with_options(EvolveOptions::batched_taylor().with_telemetry(false));
    let block_device = EmulatedDevice::new(noise(), 23).with_options(
        EvolveOptions::batched_taylor()
            .with_telemetry(false)
            .with_realization_block(true),
    );

    // --- Conformance gates (untimed): 1e-10 agreement, bitwise block
    // reproducibility, and sweep[0] == run on the sequential reference. ---
    let sequential_runs = sequential_device.run_compiled(schedule, qubits, false, realizations);
    let block_runs = block_device.run_compiled(schedule, qubits, false, realizations);
    let deviation = max_observable_deviation(&sequential_runs, &block_runs);
    assert!(
        deviation < AGREEMENT,
        "{qubits}q R={realizations}: block deviates from sequential by {deviation}"
    );
    let block_again = block_device.run_compiled(schedule, qubits, false, realizations);
    assert_eq!(
        block_runs, block_again,
        "{qubits}q R={realizations}: seeded block sweep is not bitwise reproducible"
    );
    assert_eq!(
        sequential_runs[0],
        sequential_device.run(segments, qubits, false),
        "{qubits}q R={realizations}: sequential sweep realization 0 drifted from run()"
    );

    // --- Timed sweeps. ---
    let reps = if qubits >= 16 { 1 } else { 2 };
    let sequential_sample = bench(reps, || {
        let runs = sequential_device.run_compiled(schedule, qubits, false, realizations);
        std::hint::black_box(&runs);
    });
    let block_sample = bench(reps, || {
        let runs = block_device.run_compiled(schedule, qubits, false, realizations);
        std::hint::black_box(&runs);
    });
    let speedup = sequential_sample.min / block_sample.min.max(1e-12);
    println!(
        "  {qubits:>2}q R={realizations:<3}  sequential {:>8.4}s  block {:>8.4}s  ({speedup:>5.2}x, max dev {deviation:.2e})",
        sequential_sample.min, block_sample.min
    );

    // --- Throughput gates at the largest register. ---
    if qubits == 16 && realizations == 16 {
        assert!(
            block_sample.min <= sequential_sample.min + JITTER_S,
            "16q R=16: block ({:.4}s) is slower than sequential ({:.4}s)",
            block_sample.min,
            sequential_sample.min
        );
    }
    if qubits == 16 && realizations == 64 {
        assert!(
            block_sample.min * 1.5 <= sequential_sample.min + JITTER_S,
            "16q R=64: block ({:.4}s) is under 1.5x sequential ({:.4}s)",
            block_sample.min,
            sequential_sample.min
        );
    }

    Json::object(vec![
        ("qubits", Json::Number(qubits as f64)),
        ("realizations", Json::Number(realizations as f64)),
        ("segments", Json::Number(SEGMENTS as f64)),
        (
            "sequential",
            path_json(
                sequential_sample.median,
                sequential_sample.min,
                realizations,
            ),
        ),
        (
            "block",
            path_json(block_sample.median, block_sample.min, realizations),
        ),
        ("speedup", Json::Number(speedup)),
        ("max_abs_dev", Json::Number(deviation)),
    ])
}

fn main() {
    println!(
        "device sweep benchmark: sequential vs realization-block, {} worker threads available",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    let mut entries: Vec<Json> = Vec::new();
    for &qubits in &SIZES {
        let segments = ramp(qubits);
        let schedule = CompiledSchedule::compile(&segments);
        for &realizations in &REALIZATIONS {
            entries.push(entry(qubits, realizations, &segments, &schedule));
        }
    }
    let report = Json::object(vec![
        ("benchmark", Json::string("device")),
        ("workload", Json::string("dense_ramp_miscalibration_sweep")),
        ("agreement_threshold", Json::Number(AGREEMENT)),
        (
            "worker_threads_available",
            Json::Number(std::thread::available_parallelism().map_or(1, |n| n.get()) as f64),
        ),
        ("entries", Json::Array(entries)),
    ]);
    let path = "BENCH_device.json";
    std::fs::write(path, report.render() + "\n").expect("write benchmark report");
    println!("wrote {path}");
}
