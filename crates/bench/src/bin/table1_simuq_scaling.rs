//! Table 1: SimuQ-style baseline compilation time for the Ising cycle as the
//! system size grows, contrasted with QTurbo on the same instances.
//!
//! The paper runs 20–100 qubits (11 s to 23 902 s with SciPy); this
//! reproduction uses a scaled-down grid so the table regenerates in minutes.
//! The quantity of interest is the growth *shape*: the baseline's time grows
//! steeply with the number of unknowns while QTurbo stays near-flat.
//!
//! Run with: `cargo run --release -p qturbo-bench --bin table1_simuq_scaling`

use qturbo_bench::{baseline_compile, device_for, qturbo_compile, quick_mode, Device};
use qturbo_hamiltonian::models::Model;

fn main() {
    let sizes: Vec<usize> = if quick_mode() {
        vec![4, 8, 12]
    } else {
        vec![4, 8, 12, 16, 20, 24]
    };
    println!("Table 1 — compilation time for the Ising cycle (Rydberg AAIS)");
    println!(
        "{:>8} {:>16} {:>16} {:>10}",
        "Qubit#", "SimuQ-style (s)", "QTurbo (s)", "speedup"
    );

    for &n in &sizes {
        let target = qturbo_bench::target_for(Model::IsingCycle, n);
        let aais = device_for(Model::IsingCycle, n, Device::Rydberg);

        let qturbo = qturbo_compile(&target, 1.0, &aais);
        let qturbo_seconds = qturbo.stats.compile_time.as_secs_f64();

        let baseline_seconds = match baseline_compile(&target, 1.0, &aais) {
            Ok(result) => Some(result.stats.compile_time.as_secs_f64()),
            Err(_) => None,
        };

        match baseline_seconds {
            Some(seconds) => println!(
                "{n:>8} {seconds:>16.3} {qturbo_seconds:>16.4} {:>9.0}x",
                seconds / qturbo_seconds.max(1e-9)
            ),
            None => println!("{n:>8} {:>16} {qturbo_seconds:>16.4} {:>10}", "fail", "-"),
        }
    }
    println!("\n(The baseline numbers include its multi-start monolithic solve; 'fail' marks");
    println!(" instances where it did not reach the accuracy threshold, as observed for SimuQ.)");
}
