//! Figure 5: case studies beyond the equation-system core.
//!
//! (a) **Mapping**: an Ising chain whose qubit labels are scrambled is
//!     compiled onto the Rydberg device with an initially unknown mapping;
//!     QTurbo recovers a line embedding with its greedy mapping pass and the
//!     comparison against the baseline mirrors Figure 3.
//! (b) **Time-dependent Hamiltonian**: the MIS chain sweep is split into four
//!     piecewise-constant segments and compiled by both compilers.
//!
//! Run with: `cargo run --release -p qturbo-bench --bin fig5_case_study`

use qturbo::{CompilerOptions, MappingStrategy, QTurboCompiler};
use qturbo_aais::rydberg::{rydberg_aais, RydbergOptions};
use qturbo_bench::{baseline_compiler, quick_mode};
use qturbo_hamiltonian::models::mis_chain;
use qturbo_hamiltonian::{Hamiltonian, Pauli, PauliString};

/// An Ising chain whose qubit labels have been scrambled, so the natural
/// embedding is unknown to the compiler.
fn scrambled_ising_chain(n: usize) -> Hamiltonian {
    let order: Vec<usize> = (0..n).map(|i| (i * 7 + 3) % n).collect();
    let mut target = Hamiltonian::new(n);
    for window in order.windows(2) {
        target.add_term(
            1.0,
            PauliString::two(window[0], Pauli::Z, window[1], Pauli::Z),
        );
    }
    for i in 0..n {
        target.add_term(1.0, PauliString::single(i, Pauli::X));
    }
    target
}

fn main() {
    // ---------------- (a) mapping case study -------------------------------
    let n = if quick_mode() { 6 } else { 10 };
    let target = scrambled_ising_chain(n);
    let aais = rydberg_aais(n, &RydbergOptions::default());

    let qturbo = QTurboCompiler::with_options(CompilerOptions {
        mapping: MappingStrategy::GreedyLine,
        ..CompilerOptions::default()
    })
    .compile(&target, 1.0, &aais)
    .expect("mapping case study compiles");
    println!("Figure 5(a) — Ising chain ({n} qubits) with unknown mapping, Rydberg device");
    println!(
        "  QTurbo  : compile {:.4} s, execution {:.3} µs, relative error {:.2} %",
        qturbo.stats.compile_time.as_secs_f64(),
        qturbo.execution_time,
        qturbo.relative_error() * 100.0
    );
    match baseline_compiler().compile(&target, 1.0, &aais) {
        Ok(baseline) => {
            println!(
                "  Baseline: compile {:.4} s, execution {:.3} µs, relative error {:.2} %",
                baseline.stats.compile_time.as_secs_f64(),
                baseline.execution_time,
                baseline.relative_error() * 100.0
            );
            println!(
                "  -> compile speedup {:.0}x",
                baseline.stats.compile_time.as_secs_f64()
                    / qturbo.stats.compile_time.as_secs_f64().max(1e-9)
            );
        }
        Err(error) => println!("  Baseline: failed ({error})"),
    }

    // ---------------- (b) time-dependent MIS chain -------------------------
    let n = if quick_mode() { 4 } else { 6 };
    let segments = 4;
    let target = mis_chain(n, 1.0, 1.0, 1.0, 1.0, segments);
    let aais = rydberg_aais(n, &RydbergOptions::default());
    let qturbo = QTurboCompiler::new()
        .compile_piecewise(&target, &aais)
        .expect("MIS chain compiles");
    println!("\nFigure 5(b) — time-dependent MIS chain ({n} qubits, {segments} segments)");
    println!(
        "  QTurbo  : compile {:.4} s, execution {:.3} µs, relative error {:.2} %",
        qturbo.stats.compile_time.as_secs_f64(),
        qturbo.execution_time,
        qturbo.relative_error() * 100.0
    );
    match baseline_compiler().compile_piecewise(&target, &aais) {
        Ok(baseline) => {
            println!(
                "  Baseline: compile {:.4} s, execution {:.3} µs, relative error {:.2} %",
                baseline.stats.compile_time.as_secs_f64(),
                baseline.execution_time,
                baseline.relative_error() * 100.0
            );
            println!(
                "  -> compile speedup {:.0}x, execution reduction {:.0}%, error reduction {:.1} pp",
                baseline.stats.compile_time.as_secs_f64()
                    / qturbo.stats.compile_time.as_secs_f64().max(1e-9),
                (1.0 - qturbo.execution_time / baseline.execution_time) * 100.0,
                (baseline.relative_error() - qturbo.relative_error()) * 100.0
            );
        }
        Err(error) => println!("  Baseline: failed ({error})"),
    }
}
