//! Shared telemetry reporting for the bench binaries.
//!
//! Each `BENCH_*.json` workload entry gains a `telemetry` block produced by
//! one **extra, untimed** traced run of the workload — the timed (and gated)
//! measurements always run with telemetry off, so the block never perturbs
//! the wall-clock numbers it sits next to. (`bench_schedule` additionally
//! runs one *timed* traced measurement to gate tracing off the hot path.)

use crate::timing::Json;
use qturbo_quantum::telemetry::RunProfile;
use qturbo_quantum::{EvolveOptions, Propagator, StateVector, StepperKind};

/// Runs one traced evolution — `evolve` is handed a telemetry-enabled
/// [`Propagator`] and a clone of `initial` — and returns its [`RunProfile`].
pub fn traced_profile(
    initial: &StateVector,
    kind: StepperKind,
    evolve: impl FnOnce(&mut Propagator, &mut StateVector),
) -> RunProfile {
    let mut propagator = Propagator::with_options(EvolveOptions::new(kind).with_telemetry(true));
    let mut state = initial.clone();
    evolve(&mut propagator, &mut state);
    propagator.run_profile().expect("telemetry enabled")
}

/// Renders a [`RunProfile`]'s aggregate metrics as the `telemetry` JSON
/// block shared by the bench reports: work totals, recovery counts, and
/// worker-pool busy time / utilization.
pub fn telemetry_json(kind: StepperKind, profile: &RunProfile) -> Json {
    let metrics = profile.metrics;
    Json::object(vec![
        ("backend", Json::string(kind.name())),
        ("segments", Json::Number(metrics.segments as f64)),
        (
            "kernel_applications",
            Json::Number(metrics.kernel_applications as f64),
        ),
        (
            "amplitude_passes",
            Json::Number(metrics.amplitude_passes as f64),
        ),
        ("recoveries", Json::Number(metrics.recoveries as f64)),
        ("pool_busy_ns", Json::Number(metrics.pool_busy_ns as f64)),
        ("pool_utilization", Json::Number(metrics.pool_utilization)),
        (
            "dropped_events",
            Json::Number(profile.dropped_events as f64),
        ),
    ])
}
