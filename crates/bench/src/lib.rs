//! Shared harness utilities for regenerating the paper's tables and figures.
//!
//! Each binary in `src/bin/` reproduces one table or figure of the paper's
//! evaluation (see DESIGN.md for the experiment index); this library holds the
//! model/device construction and the QTurbo-vs-baseline comparison runner they
//! all share.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod e2e;
pub mod telemetry_report;
pub mod timing;

use qturbo::{CompilationResult, QTurboCompiler};
use qturbo_aais::heisenberg::{heisenberg_aais, Connectivity, HeisenbergOptions};
use qturbo_aais::rydberg::{rydberg_aais, Layout, RydbergOptions};
use qturbo_aais::Aais;
use qturbo_baseline::{BaselineCompiler, BaselineOptions, BaselineResult};
use qturbo_hamiltonian::models::{Model, ModelParams};
use qturbo_hamiltonian::Hamiltonian;

/// Which analog device family an experiment targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Device {
    /// Neutral-atom Rydberg device (Aquila-like AAIS).
    Rydberg,
    /// Superconducting / trapped-ion style Heisenberg device.
    Heisenberg,
}

impl std::fmt::Display for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Device::Rydberg => write!(f, "Rydberg"),
            Device::Heisenberg => write!(f, "Heisenberg"),
        }
    }
}

/// Builds the AAIS appropriate for a benchmark model on the given device.
///
/// Ring-shaped models get a ring layout (Rydberg) or cyclic connectivity
/// (Heisenberg) so the closing bond is realizable, mirroring how SimuQ
/// instantiates per-device AAIS descriptions.
pub fn device_for(model: Model, n: usize, device: Device) -> Aais {
    match device {
        Device::Rydberg => {
            let options = match model {
                Model::IsingCycle | Model::IsingCyclePlus => RydbergOptions {
                    layout: Layout::Ring { spacing: 8.0 },
                    ..RydbergOptions::default()
                },
                _ => RydbergOptions::default(),
            };
            rydberg_aais(n, &options)
        }
        Device::Heisenberg => {
            let options = match model {
                Model::IsingCycle => HeisenbergOptions::with_cycle_connectivity(),
                Model::IsingCyclePlus => {
                    let mut edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
                    edges.extend((0..n).map(|i| (i, (i + 2) % n)));
                    HeisenbergOptions {
                        connectivity: Connectivity::Custom(edges),
                        ..HeisenbergOptions::default()
                    }
                }
                _ => HeisenbergOptions::default(),
            };
            heisenberg_aais(n, &options)
        }
    }
}

/// Builds the target Hamiltonian of a (time-independent) benchmark model with
/// the paper's default parameters (all couplings 1 MHz).
///
/// # Panics
///
/// Panics for the time-dependent MIS chain; use
/// [`qturbo_hamiltonian::models::mis_chain`] directly for Fig. 5b.
pub fn target_for(model: Model, n: usize) -> Hamiltonian {
    model
        .build(n, &ModelParams::default())
        .expect("time-independent benchmark model")
}

/// One row of a QTurbo-vs-baseline comparison (one model at one size).
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Benchmark model name.
    pub model: String,
    /// System size (number of qubits).
    pub size: usize,
    /// QTurbo compilation wall-clock time in seconds.
    pub qturbo_compile: f64,
    /// QTurbo machine execution time (µs).
    pub qturbo_execution: f64,
    /// QTurbo relative error (fraction).
    pub qturbo_error: f64,
    /// Baseline compilation time, if the baseline was run and succeeded.
    pub baseline_compile: Option<f64>,
    /// Baseline machine execution time.
    pub baseline_execution: Option<f64>,
    /// Baseline relative error.
    pub baseline_error: Option<f64>,
    /// Whether the baseline was attempted but failed to produce a solution.
    pub baseline_failed: bool,
}

impl ComparisonRow {
    /// Compile-time speedup of QTurbo over the baseline, if available.
    pub fn speedup(&self) -> Option<f64> {
        self.baseline_compile
            .map(|b| b / self.qturbo_compile.max(1e-9))
    }

    /// Relative reduction of the machine execution time, if available.
    pub fn execution_reduction(&self) -> Option<f64> {
        self.baseline_execution
            .map(|b| 1.0 - self.qturbo_execution / b.max(1e-12))
    }

    /// Absolute reduction of the relative error, if available.
    pub fn error_reduction(&self) -> Option<f64> {
        self.baseline_error.map(|b| b - self.qturbo_error)
    }
}

/// Runs QTurbo (always) and the baseline (when `run_baseline` is set) on one
/// benchmark configuration.
///
/// # Panics
///
/// Panics if QTurbo itself fails — every benchmark configuration used by the
/// harness is expected to compile.
pub fn compare(model: Model, n: usize, device: Device, run_baseline: bool) -> ComparisonRow {
    let target = target_for(model, n);
    let aais = device_for(model, n, device);
    let qturbo = QTurboCompiler::new()
        .compile(&target, 1.0, &aais)
        .unwrap_or_else(|e| panic!("QTurbo failed on {model} ({n} qubits, {device}): {e}"));

    let mut row = ComparisonRow {
        model: model.name().to_string(),
        size: n,
        qturbo_compile: qturbo.stats.compile_time.as_secs_f64(),
        qturbo_execution: qturbo.execution_time,
        qturbo_error: qturbo.relative_error(),
        baseline_compile: None,
        baseline_execution: None,
        baseline_error: None,
        baseline_failed: false,
    };
    if run_baseline {
        match baseline_compiler().compile(&target, 1.0, &aais) {
            Ok(result) => {
                row.baseline_compile = Some(result.stats.compile_time.as_secs_f64());
                row.baseline_execution = Some(result.execution_time);
                row.baseline_error = Some(result.relative_error());
            }
            Err(_) => row.baseline_failed = true,
        }
    }
    row
}

/// The baseline compiler configuration used throughout the harness: the
/// documented [`BaselineOptions::benchmark`] preset, which accepts degraded
/// solutions the default threshold would classify as failures so comparisons
/// can quantify them.
pub fn baseline_compiler() -> BaselineCompiler {
    BaselineCompiler::with_options(BaselineOptions::benchmark())
}

/// Convenience: compile with QTurbo, panicking on failure (harness-internal).
pub fn qturbo_compile(target: &Hamiltonian, time: f64, aais: &Aais) -> CompilationResult {
    QTurboCompiler::new()
        .compile(target, time, aais)
        .expect("QTurbo compiles")
}

/// Convenience: compile with the harness baseline.
pub fn baseline_compile(
    target: &Hamiltonian,
    time: f64,
    aais: &Aais,
) -> Result<BaselineResult, qturbo_baseline::BaselineError> {
    baseline_compiler().compile(target, time, aais)
}

/// Formats an optional value for the comparison tables.
fn fmt_opt(value: Option<f64>, failed: bool, unit: &str) -> String {
    match value {
        Some(v) => format!("{v:10.4}{unit}"),
        None if failed => format!("{:>10}{unit}", "fail"),
        None => format!("{:>10}{unit}", "-"),
    }
}

/// Prints a table of comparison rows in the layout used by the figure binaries.
pub fn print_rows(title: &str, rows: &[ComparisonRow]) {
    println!("\n=== {title} ===");
    println!(
        "{:<14} {:>5} | {:>12} {:>12} {:>9} | {:>12} {:>12} {:>9}",
        "model",
        "N",
        "QT compile/s",
        "QT exec/µs",
        "QT err%",
        "SQ compile/s",
        "SQ exec/µs",
        "SQ err%"
    );
    for row in rows {
        println!(
            "{:<14} {:>5} | {:>12.5} {:>12.4} {:>9.3} | {} {} {}",
            row.model,
            row.size,
            row.qturbo_compile,
            row.qturbo_execution,
            row.qturbo_error * 100.0,
            fmt_opt(row.baseline_compile, row.baseline_failed, ""),
            fmt_opt(row.baseline_execution, row.baseline_failed, ""),
            fmt_opt(
                row.baseline_error.map(|e| e * 100.0),
                row.baseline_failed,
                ""
            ),
        );
    }
}

/// Prints the per-model summary (average speedup, execution-time reduction,
/// error reduction) that the paper reports in the box of each sub-figure.
pub fn print_summary(title: &str, rows: &[ComparisonRow]) {
    let speedups: Vec<f64> = rows.iter().filter_map(ComparisonRow::speedup).collect();
    let exec_reductions: Vec<f64> = rows
        .iter()
        .filter_map(ComparisonRow::execution_reduction)
        .collect();
    let error_reductions: Vec<f64> = rows
        .iter()
        .filter_map(ComparisonRow::error_reduction)
        .collect();
    let failures = rows.iter().filter(|r| r.baseline_failed).count();
    let mean = |v: &[f64]| {
        if v.is_empty() {
            f64::NAN
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    println!(
        "[{title}] avg compile speedup: {:.0}x | avg execution reduction: {:.0}% | avg error reduction: {:.1} pp | baseline failures: {failures}",
        mean(&speedups),
        mean(&exec_reductions) * 100.0,
        mean(&error_reductions) * 100.0,
    );
}

/// Returns `true` when the harness should use the reduced "quick" grids
/// (set the environment variable `QTURBO_BENCH_QUICK=1`).
pub fn quick_mode() -> bool {
    std::env::var("QTURBO_BENCH_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_produces_consistent_rows() {
        let row = compare(Model::IsingChain, 4, Device::Heisenberg, true);
        assert_eq!(row.model, "Ising chain");
        assert_eq!(row.size, 4);
        assert!(row.qturbo_compile > 0.0);
        assert!(row.qturbo_error < 1e-6);
        if let Some(speedup) = row.speedup() {
            assert!(speedup > 0.0);
        }
        if let Some(reduction) = row.execution_reduction() {
            assert!(reduction <= 1.0);
        }
    }

    #[test]
    fn device_builders_cover_both_families() {
        let rydberg = device_for(Model::IsingCycle, 5, Device::Rydberg);
        assert_eq!(rydberg.name(), "rydberg");
        let heisenberg = device_for(Model::IsingCyclePlus, 5, Device::Heisenberg);
        assert_eq!(heisenberg.name(), "heisenberg");
        assert_eq!(Device::Rydberg.to_string(), "Rydberg");
        let target = target_for(Model::Kitaev, 4);
        assert!(target.num_terms() > 0);
    }

    #[test]
    fn quick_mode_reads_environment() {
        // Not set in the test environment unless exported by the user.
        let _ = quick_mode();
    }
}
