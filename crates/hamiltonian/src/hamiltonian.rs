//! Target Hamiltonians: weighted sums of Pauli strings, optionally piecewise
//! time-dependent.

use crate::pauli::PauliString;
use std::collections::BTreeMap;
use std::fmt;

/// A time-independent Hamiltonian `H = Σ_i c_i · P_i` over `num_qubits` qubits.
///
/// Coefficients are in the compiler's working units (MHz when the target is a
/// physical model, rad/µs for the real-device experiments; the compiler is
/// agnostic as long as coefficient × time is dimensionless).
///
/// Terms are kept in a canonical (sorted, merged) form so that two
/// Hamiltonians built from the same physical model compare equal.
///
/// # Example
///
/// ```
/// use qturbo_hamiltonian::{Hamiltonian, Pauli, PauliString};
/// let mut h = Hamiltonian::new(2);
/// h.add_term(1.0, PauliString::two(0, Pauli::Z, 1, Pauli::Z));
/// h.add_term(0.5, PauliString::single(0, Pauli::X));
/// h.add_term(0.5, PauliString::single(0, Pauli::X)); // merged
/// assert_eq!(h.terms().count(), 2);
/// assert_eq!(h.coefficient(&PauliString::single(0, Pauli::X)), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Hamiltonian {
    num_qubits: usize,
    terms: BTreeMap<PauliString, f64>,
}

/// Coefficients with magnitude below this threshold are treated as zero and
/// removed from the canonical form.
const COEFFICIENT_EPSILON: f64 = 1e-15;

impl Hamiltonian {
    /// Creates an empty Hamiltonian on `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        Hamiltonian {
            num_qubits,
            terms: BTreeMap::new(),
        }
    }

    /// Builds a Hamiltonian from `(coefficient, Pauli string)` pairs.
    pub fn from_terms<I>(num_qubits: usize, terms: I) -> Self
    where
        I: IntoIterator<Item = (f64, PauliString)>,
    {
        let mut h = Hamiltonian::new(num_qubits);
        for (coefficient, string) in terms {
            h.add_term(coefficient, string);
        }
        h
    }

    /// Number of qubits the Hamiltonian acts on.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Adds `coefficient · string`, merging with an existing identical string.
    ///
    /// Identity strings (global energy shifts) are accepted and tracked; they
    /// do not influence dynamics and the compiler ignores them.
    ///
    /// # Panics
    ///
    /// Panics if the string acts on a qubit `≥ num_qubits`.
    pub fn add_term(&mut self, coefficient: f64, string: PauliString) {
        if let Some(max) = string.max_qubit() {
            assert!(
                max < self.num_qubits,
                "Pauli string {string} acts on qubit {max} but the Hamiltonian has {} qubits",
                self.num_qubits
            );
        }
        let entry = self.terms.entry(string).or_insert(0.0);
        *entry += coefficient;
        if entry.abs() < COEFFICIENT_EPSILON {
            // Remove cancelled terms to keep the form canonical.
            let key: Vec<PauliString> = self
                .terms
                .iter()
                .filter(|(_, c)| c.abs() < COEFFICIENT_EPSILON)
                .map(|(k, _)| k.clone())
                .collect();
            for k in key {
                self.terms.remove(&k);
            }
        }
    }

    /// Inserts a zero-coefficient placeholder for every listed string not
    /// already present, so the Hamiltonian's *term structure* (the canonical
    /// string set behind [`Hamiltonian::structure_fingerprint`]) matches a
    /// chosen superset while the dynamics are untouched.
    ///
    /// [`Hamiltonian::add_term`] keeps the form canonical by dropping
    /// coefficients below its internal epsilon, which is exactly right for
    /// physics but wrong for layout sharing: a pulse segment whose Rabi drive
    /// is off would lose its `X`/`Y` strings and break the structure run a
    /// mask-compiled schedule relies on. Padding restores a stable structure
    /// across such segments. Note that a subsequent [`Hamiltonian::add_term`]
    /// re-canonicalizes and may drop the placeholders again, so pad *after*
    /// all real terms are in place.
    ///
    /// # Panics
    ///
    /// Panics if a string acts on a qubit `≥ num_qubits`.
    pub fn pad_structure<'a, I>(&mut self, strings: I)
    where
        I: IntoIterator<Item = &'a PauliString>,
    {
        for string in strings {
            if let Some(max) = string.max_qubit() {
                assert!(
                    max < self.num_qubits,
                    "Pauli string {string} acts on qubit {max} but the Hamiltonian has {} qubits",
                    self.num_qubits
                );
            }
            self.terms.entry(string.clone()).or_insert(0.0);
        }
    }

    /// Iterates over `(coefficient, Pauli string)` pairs in canonical order.
    pub fn terms(&self) -> impl Iterator<Item = (f64, &PauliString)> + '_ {
        self.terms.iter().map(|(s, &c)| (c, s))
    }

    /// Number of (merged, non-zero) terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Returns `true` if there are no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Coefficient of `string` (zero if absent).
    pub fn coefficient(&self, string: &PauliString) -> f64 {
        self.terms.get(string).copied().unwrap_or(0.0)
    }

    /// The distinct non-identity Pauli strings appearing in the Hamiltonian.
    pub fn pauli_strings(&self) -> Vec<PauliString> {
        self.terms
            .keys()
            .filter(|s| !s.is_identity())
            .cloned()
            .collect()
    }

    /// Sum of absolute coefficients (L1 norm of the coefficient vector),
    /// excluding the identity term.
    pub fn coefficient_l1_norm(&self) -> f64 {
        self.terms
            .iter()
            .filter(|(s, _)| !s.is_identity())
            .map(|(_, c)| c.abs())
            .sum()
    }

    /// Returns a copy with every coefficient multiplied by `factor`.
    pub fn scaled(&self, factor: f64) -> Hamiltonian {
        let mut out = Hamiltonian::new(self.num_qubits);
        for (c, s) in self.terms() {
            out.add_term(c * factor, s.clone());
        }
        out
    }

    /// Returns a copy without the identity (global phase) term.
    pub fn without_identity(&self) -> Hamiltonian {
        let mut out = self.clone();
        out.terms.remove(&PauliString::identity());
        out
    }

    /// Sum of two Hamiltonians (must act on the same number of qubits).
    ///
    /// # Panics
    ///
    /// Panics if the qubit counts differ.
    pub fn add(&self, other: &Hamiltonian) -> Hamiltonian {
        assert_eq!(
            self.num_qubits, other.num_qubits,
            "qubit count mismatch in Hamiltonian::add"
        );
        let mut out = self.clone();
        for (c, s) in other.terms() {
            out.add_term(c, s.clone());
        }
        out
    }

    /// Maximum absolute coefficient (zero for an empty Hamiltonian).
    pub fn max_abs_coefficient(&self) -> f64 {
        self.terms.values().fold(0.0_f64, |acc, c| acc.max(c.abs()))
    }

    /// A 64-bit fingerprint of the Hamiltonian's *term structure*: the ordered
    /// set of Pauli strings, ignoring the coefficients.
    ///
    /// Two Hamiltonians with equal fingerprints almost certainly share the
    /// same strings in the same canonical order, which means a mask-compiled
    /// layout built for one can be reused for the other by swapping the
    /// per-term weights (see `CompiledSchedule` in `qturbo-quantum`). The hash
    /// is FNV-1a over `(qubit, operator)` pairs, so it is stable across runs;
    /// confirm candidate matches with [`Hamiltonian::same_structure`] since a
    /// hash can collide.
    pub fn structure_fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = FNV_OFFSET;
        let mut mix = |value: u64| {
            hash ^= value;
            hash = hash.wrapping_mul(FNV_PRIME);
        };
        for (_, string) in self.terms() {
            for (qubit, op) in string.iter() {
                mix(qubit as u64);
                mix(match op {
                    crate::Pauli::I => 1,
                    crate::Pauli::X => 2,
                    crate::Pauli::Y => 3,
                    crate::Pauli::Z => 4,
                });
            }
            // Terminator so term boundaries influence the hash.
            mix(u64::MAX);
        }
        hash
    }

    /// Returns `true` when both Hamiltonians contain exactly the same Pauli
    /// strings (in the shared canonical order), regardless of coefficients.
    ///
    /// This is the exact check behind [`Hamiltonian::structure_fingerprint`]:
    /// structure-equal Hamiltonians differ only in their coefficient vectors.
    pub fn same_structure(&self, other: &Hamiltonian) -> bool {
        self.terms.len() == other.terms.len()
            && self
                .terms
                .keys()
                .zip(other.terms.keys())
                .all(|(a, b)| a == b)
    }
}

impl fmt::Display for Hamiltonian {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        let mut first = true;
        for (c, s) in self.terms() {
            if first {
                write!(f, "{c:+.4}·{s}")?;
                first = false;
            } else {
                write!(f, " {c:+.4}·{s}")?;
            }
        }
        Ok(())
    }
}

/// One constant segment of a piecewise time-dependent Hamiltonian.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// The (constant) Hamiltonian during this segment.
    pub hamiltonian: Hamiltonian,
    /// Duration of the segment, in the same time units as the target time.
    pub duration: f64,
}

/// A piecewise-constant time-dependent Hamiltonian (paper §5.3).
///
/// Any continuously time-dependent Hamiltonian can be approximated by a
/// piecewise-constant one; [`PiecewiseHamiltonian::discretize`] builds that
/// approximation from a closure by sampling the midpoint of each segment.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PiecewiseHamiltonian {
    segments: Vec<Segment>,
}

impl PiecewiseHamiltonian {
    /// Creates a piecewise Hamiltonian from explicit segments.
    pub fn new(segments: Vec<Segment>) -> Self {
        PiecewiseHamiltonian { segments }
    }

    /// Wraps a single time-independent Hamiltonian evolving for `duration`.
    pub fn constant(hamiltonian: Hamiltonian, duration: f64) -> Self {
        PiecewiseHamiltonian {
            segments: vec![Segment {
                hamiltonian,
                duration,
            }],
        }
    }

    /// Discretizes `h(t)` on `[0, total_time]` into `num_segments` equal
    /// pieces, sampling the Hamiltonian at each segment midpoint.
    ///
    /// # Panics
    ///
    /// Panics if `num_segments == 0` or `total_time <= 0`.
    pub fn discretize<F>(h_of_t: F, total_time: f64, num_segments: usize) -> Self
    where
        F: Fn(f64) -> Hamiltonian,
    {
        assert!(num_segments > 0, "need at least one segment");
        assert!(total_time > 0.0, "total time must be positive");
        let dt = total_time / num_segments as f64;
        let segments = (0..num_segments)
            .map(|k| {
                let midpoint = (k as f64 + 0.5) * dt;
                Segment {
                    hamiltonian: h_of_t(midpoint),
                    duration: dt,
                }
            })
            .collect();
        PiecewiseHamiltonian { segments }
    }

    /// The segments in evolution order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Number of segments.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Returns `true` when there are no segments.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Total target evolution time.
    pub fn total_time(&self) -> f64 {
        self.segments.iter().map(|s| s.duration).sum()
    }

    /// Number of qubits (zero if empty).
    pub fn num_qubits(&self) -> usize {
        self.segments
            .first()
            .map_or(0, |s| s.hamiltonian.num_qubits())
    }

    /// Splits the segment indices into maximal consecutive runs sharing the
    /// same term structure (see [`Hamiltonian::same_structure`]).
    ///
    /// A discretized ramp whose coefficients vary smoothly in time typically
    /// yields a single run covering every segment — exactly the case where a
    /// compiled mask layout can be built once and reused with per-segment
    /// weight swaps.
    pub fn structure_runs(&self) -> Vec<std::ops::Range<usize>> {
        let mut runs = Vec::new();
        let mut start = 0usize;
        for index in 1..self.segments.len() {
            if !self.segments[index]
                .hamiltonian
                .same_structure(&self.segments[start].hamiltonian)
            {
                runs.push(start..index);
                start = index;
            }
        }
        if start < self.segments.len() {
            runs.push(start..self.segments.len());
        }
        runs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pauli::Pauli;

    fn zz(i: usize, j: usize) -> PauliString {
        PauliString::two(i, Pauli::Z, j, Pauli::Z)
    }

    #[test]
    fn terms_merge_and_cancel() {
        let mut h = Hamiltonian::new(3);
        h.add_term(1.0, zz(0, 1));
        h.add_term(0.5, zz(0, 1));
        assert_eq!(h.coefficient(&zz(0, 1)), 1.5);
        assert_eq!(h.num_terms(), 1);
        h.add_term(-1.5, zz(0, 1));
        assert!(h.is_empty());
    }

    #[test]
    fn pad_structure_stabilizes_the_term_set() {
        let x0 = PauliString::single(0, Pauli::X);
        let mut on = Hamiltonian::from_terms(2, [(1.0, zz(0, 1)), (0.5, x0.clone())]);
        let mut off = Hamiltonian::from_terms(2, [(2.0, zz(0, 1))]);
        assert!(!on.same_structure(&off));

        let union: Vec<PauliString> = on.pauli_strings();
        off.pad_structure(union.iter());
        on.pad_structure(union.iter()); // already complete: no-op
        assert!(on.same_structure(&off));
        assert_eq!(on.structure_fingerprint(), off.structure_fingerprint());
        // Padding is physically inert.
        assert_eq!(off.coefficient(&x0), 0.0);
        assert_eq!(off.coefficient(&zz(0, 1)), 2.0);
        assert_eq!(off.num_terms(), 2);
        assert_eq!(off.coefficient_l1_norm(), 2.0);
    }

    #[test]
    #[should_panic(expected = "acts on qubit")]
    fn pad_structure_rejects_out_of_range_qubits() {
        let mut h = Hamiltonian::new(2);
        h.pad_structure([PauliString::single(4, Pauli::X)].iter());
    }

    #[test]
    #[should_panic(expected = "acts on qubit")]
    fn rejects_out_of_range_qubits() {
        let mut h = Hamiltonian::new(2);
        h.add_term(1.0, PauliString::single(5, Pauli::X));
    }

    #[test]
    fn from_terms_and_norms() {
        let h = Hamiltonian::from_terms(
            2,
            [
                (1.0, zz(0, 1)),
                (-2.0, PauliString::single(0, Pauli::X)),
                (0.25, PauliString::identity()),
            ],
        );
        assert_eq!(h.num_terms(), 3);
        assert_eq!(h.coefficient_l1_norm(), 3.0); // identity excluded
        assert_eq!(h.max_abs_coefficient(), 2.0);
        assert_eq!(h.without_identity().num_terms(), 2);
        assert_eq!(h.pauli_strings().len(), 2);
    }

    #[test]
    fn scaling_and_addition() {
        let a = Hamiltonian::from_terms(2, [(1.0, zz(0, 1))]);
        let b = Hamiltonian::from_terms(2, [(2.0, PauliString::single(1, Pauli::X))]);
        let sum = a.add(&b);
        assert_eq!(sum.num_terms(), 2);
        let scaled = sum.scaled(2.0);
        assert_eq!(scaled.coefficient(&zz(0, 1)), 2.0);
        assert_eq!(scaled.coefficient(&PauliString::single(1, Pauli::X)), 4.0);
    }

    #[test]
    #[should_panic(expected = "qubit count mismatch")]
    fn add_requires_matching_qubits() {
        let a = Hamiltonian::new(2);
        let b = Hamiltonian::new(3);
        let _ = a.add(&b);
    }

    #[test]
    fn display_contains_terms() {
        let h = Hamiltonian::from_terms(
            2,
            [(1.0, zz(0, 1)), (-0.5, PauliString::single(0, Pauli::X))],
        );
        let text = h.to_string();
        assert!(text.contains("Z0Z1"));
        assert!(text.contains("X0"));
        assert_eq!(Hamiltonian::new(1).to_string(), "0");
    }

    #[test]
    fn canonical_equality() {
        let a = Hamiltonian::from_terms(
            2,
            [(1.0, zz(0, 1)), (0.5, PauliString::single(0, Pauli::X))],
        );
        let b = Hamiltonian::from_terms(
            2,
            [(0.5, PauliString::single(0, Pauli::X)), (1.0, zz(0, 1))],
        );
        assert_eq!(a, b);
    }

    #[test]
    fn piecewise_constant_and_discretize() {
        let h = Hamiltonian::from_terms(1, [(1.0, PauliString::single(0, Pauli::X))]);
        let p = PiecewiseHamiltonian::constant(h.clone(), 2.0);
        assert_eq!(p.num_segments(), 1);
        assert_eq!(p.total_time(), 2.0);
        assert_eq!(p.num_qubits(), 1);
        assert!(!p.is_empty());

        // Linear ramp: coefficient = t on [0, 1], 4 segments sample 0.125, 0.375, ...
        let ramp = PiecewiseHamiltonian::discretize(
            |t| Hamiltonian::from_terms(1, [(t, PauliString::single(0, Pauli::Z))]),
            1.0,
            4,
        );
        assert_eq!(ramp.num_segments(), 4);
        assert!((ramp.total_time() - 1.0).abs() < 1e-12);
        let c0 = ramp.segments()[0]
            .hamiltonian
            .coefficient(&PauliString::single(0, Pauli::Z));
        assert!((c0 - 0.125).abs() < 1e-12);
        assert!(PiecewiseHamiltonian::default().is_empty());
        assert_eq!(PiecewiseHamiltonian::default().num_qubits(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn discretize_requires_segments() {
        let _ = PiecewiseHamiltonian::discretize(|_| Hamiltonian::new(1), 1.0, 0);
    }

    #[test]
    fn structure_fingerprint_ignores_coefficients() {
        let a = Hamiltonian::from_terms(
            2,
            [(1.0, zz(0, 1)), (0.5, PauliString::single(0, Pauli::X))],
        );
        let b = Hamiltonian::from_terms(
            2,
            [(-3.0, zz(0, 1)), (7.0, PauliString::single(0, Pauli::X))],
        );
        let c = Hamiltonian::from_terms(2, [(1.0, zz(0, 1))]);
        assert_eq!(a.structure_fingerprint(), b.structure_fingerprint());
        assert!(a.same_structure(&b));
        assert_ne!(a.structure_fingerprint(), c.structure_fingerprint());
        assert!(!a.same_structure(&c));
        // Different operator on the same qubit changes the structure.
        let d = Hamiltonian::from_terms(
            2,
            [(1.0, zz(0, 1)), (0.5, PauliString::single(0, Pauli::Y))],
        );
        assert_ne!(a.structure_fingerprint(), d.structure_fingerprint());
        assert!(!a.same_structure(&d));
    }

    #[test]
    fn structure_runs_group_consecutive_segments() {
        let ramp = PiecewiseHamiltonian::discretize(
            |t| {
                Hamiltonian::from_terms(
                    1,
                    [
                        (1.0 + t, PauliString::single(0, Pauli::Z)),
                        (2.0 - t, PauliString::single(0, Pauli::X)),
                    ],
                )
            },
            1.0,
            8,
        );
        assert_eq!(ramp.structure_runs(), vec![0..8]);

        // A structure break in the middle splits the runs.
        let mixed = PiecewiseHamiltonian::new(vec![
            Segment {
                hamiltonian: Hamiltonian::from_terms(1, [(1.0, PauliString::single(0, Pauli::Z))]),
                duration: 0.1,
            },
            Segment {
                hamiltonian: Hamiltonian::from_terms(1, [(2.0, PauliString::single(0, Pauli::Z))]),
                duration: 0.1,
            },
            Segment {
                hamiltonian: Hamiltonian::from_terms(1, [(1.0, PauliString::single(0, Pauli::X))]),
                duration: 0.1,
            },
        ]);
        assert_eq!(mixed.structure_runs(), vec![0..2, 2..3]);
        assert!(PiecewiseHamiltonian::default().structure_runs().is_empty());
    }
}
