//! Target-system representation for the QTurbo analog quantum compiler.
//!
//! This crate provides:
//!
//! * [`Pauli`] operators and canonical [`PauliString`]s,
//! * [`Hamiltonian`] — a weighted sum of Pauli strings — and its piecewise
//!   time-dependent counterpart [`PiecewiseHamiltonian`],
//! * the benchmark [`models`] of the paper's Table 2 (Ising chain/cycle,
//!   Kitaev, Ising cycle +, Heisenberg chain, MIS chain, PXP).
//!
//! # Example
//!
//! ```
//! use qturbo_hamiltonian::models::{ising_chain, Model, ModelParams};
//!
//! // The three-qubit Ising chain used as the running example in the paper.
//! let h = ising_chain(3, 1.0, 1.0);
//! assert_eq!(h.num_terms(), 5);
//!
//! // The same model through the benchmark-suite enum.
//! let same = Model::IsingChain.build(3, &ModelParams::default()).unwrap();
//! assert_eq!(h, same);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod hamiltonian;
pub mod models;
pub mod pauli;

pub use hamiltonian::{Hamiltonian, PiecewiseHamiltonian, Segment};
pub use models::{Model, ModelParams};
pub use pauli::{Pauli, PauliPhase, PauliString};
