//! The benchmark model suite of the paper's Table 2.
//!
//! Every model is expressed as a sum of Pauli strings; occupation operators
//! `n̂_i = (I − Z_i)/2` are expanded so that `n̂_i n̂_j` contributes `Z_i`,
//! `Z_j`, `Z_i Z_j` and identity terms. Identity terms are kept (they are a
//! global energy shift) and ignored by the compiler.
//!
//! All parameters default to 1 MHz and the target evolution time to 1 µs, the
//! configuration used throughout the paper's evaluation except for the
//! real-device experiments.

use crate::hamiltonian::{Hamiltonian, PiecewiseHamiltonian};
use crate::pauli::{Pauli, PauliString};

/// Parameters shared by the benchmark models. All values are angular
/// frequencies in the compiler's working units (MHz in the paper's
/// evaluation, rad/µs in the real-device studies).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelParams {
    /// Two-body coupling `J` (or `α` for MIS, `µ/2` prefactor source for Kitaev).
    pub j: f64,
    /// Transverse field `h` (or `ω/2` drive for MIS).
    pub h: f64,
    /// Kitaev chemical potential `µ`.
    pub mu: f64,
    /// Kitaev hopping `t`.
    pub t_hop: f64,
    /// MIS on-site detuning magnitude `U`.
    pub u: f64,
    /// MIS Rabi drive `ω`.
    pub omega: f64,
    /// MIS nearest-neighbour interaction `α`.
    pub alpha: f64,
}

impl Default for ModelParams {
    fn default() -> Self {
        ModelParams {
            j: 1.0,
            h: 1.0,
            mu: 1.0,
            t_hop: 1.0,
            u: 1.0,
            omega: 1.0,
            alpha: 1.0,
        }
    }
}

fn zz(i: usize, j: usize) -> PauliString {
    PauliString::two(i, Pauli::Z, j, Pauli::Z)
}

fn x(i: usize) -> PauliString {
    PauliString::single(i, Pauli::X)
}

fn z(i: usize) -> PauliString {
    PauliString::single(i, Pauli::Z)
}

/// Adds `coefficient · n̂_i` expanded into identity and `Z_i` terms.
fn add_occupation(h: &mut Hamiltonian, coefficient: f64, i: usize) {
    h.add_term(coefficient * 0.5, PauliString::identity());
    h.add_term(-coefficient * 0.5, z(i));
}

/// Adds `coefficient · n̂_i n̂_j` expanded into identity, `Z`, and `ZZ` terms.
fn add_occupation_pair(h: &mut Hamiltonian, coefficient: f64, i: usize, j: usize) {
    h.add_term(coefficient * 0.25, PauliString::identity());
    h.add_term(-coefficient * 0.25, z(i));
    h.add_term(-coefficient * 0.25, z(j));
    h.add_term(coefficient * 0.25, zz(i, j));
}

/// Ising chain: `J·Σ_{i<N} Z_i Z_{i+1} + h·Σ_i X_i`.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn ising_chain(n: usize, j: f64, h: f64) -> Hamiltonian {
    assert!(n >= 2, "Ising chain needs at least 2 qubits");
    let mut ham = Hamiltonian::new(n);
    for i in 0..n - 1 {
        ham.add_term(j, zz(i, i + 1));
    }
    for i in 0..n {
        ham.add_term(h, x(i));
    }
    ham
}

/// Ising cycle: `J·Σ_i Z_i Z_{i+1} + h·Σ_i X_i` with periodic boundary.
///
/// # Panics
///
/// Panics if `n < 3` (a cycle needs at least three distinct edges).
pub fn ising_cycle(n: usize, j: f64, h: f64) -> Hamiltonian {
    assert!(n >= 3, "Ising cycle needs at least 3 qubits");
    let mut ham = Hamiltonian::new(n);
    for i in 0..n {
        ham.add_term(j, zz(i, (i + 1) % n));
    }
    for i in 0..n {
        ham.add_term(h, x(i));
    }
    ham
}

/// Kitaev chain: `µ/2·Σ_{i<N} Z_i Z_{i+1} − Σ_i (t·X_i + h·Z_i)`.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn kitaev(n: usize, mu: f64, t_hop: f64, h: f64) -> Hamiltonian {
    assert!(n >= 2, "Kitaev chain needs at least 2 qubits");
    let mut ham = Hamiltonian::new(n);
    for i in 0..n - 1 {
        ham.add_term(mu / 2.0, zz(i, i + 1));
    }
    for i in 0..n {
        ham.add_term(-t_hop, x(i));
        ham.add_term(-h, z(i));
    }
    ham
}

/// Ising cycle with next-nearest-neighbour tail:
/// `J·Σ_i Z_i Z_{i+1} + J/2⁶·Σ_i Z_i Z_{i+2} + h·Σ_i X_i` (periodic).
///
/// The `J/2⁶` factor is the Van der Waals tail at twice the lattice spacing,
/// following the Rydberg-array Ising study cited by the paper.
///
/// # Panics
///
/// Panics if `n < 5` (below that the next-nearest edges coincide with
/// nearest-neighbour ones).
pub fn ising_cycle_plus(n: usize, j: f64, h: f64) -> Hamiltonian {
    assert!(n >= 5, "Ising cycle+ needs at least 5 qubits");
    let mut ham = Hamiltonian::new(n);
    for i in 0..n {
        ham.add_term(j, zz(i, (i + 1) % n));
    }
    let tail = j / 64.0;
    for i in 0..n {
        ham.add_term(tail, zz(i, (i + 2) % n));
    }
    for i in 0..n {
        ham.add_term(h, x(i));
    }
    ham
}

/// Heisenberg chain:
/// `J·Σ_{i<N} (X_i X_{i+1} + Y_i Y_{i+1} + Z_i Z_{i+1}) + h·Σ_i X_i`.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn heisenberg_chain(n: usize, j: f64, h: f64) -> Hamiltonian {
    assert!(n >= 2, "Heisenberg chain needs at least 2 qubits");
    let mut ham = Hamiltonian::new(n);
    for i in 0..n - 1 {
        ham.add_term(j, PauliString::two(i, Pauli::X, i + 1, Pauli::X));
        ham.add_term(j, PauliString::two(i, Pauli::Y, i + 1, Pauli::Y));
        ham.add_term(j, zz(i, i + 1));
    }
    for i in 0..n {
        ham.add_term(h, x(i));
    }
    ham
}

/// PXP / Rydberg-blockade chain: `J·Σ_{i<N} n̂_i n̂_{i+1} + h·Σ_i X_i`.
///
/// Under the blockade condition `J ≫ h` this realizes the PXP model
/// `h·Σ_i P_{i−1} X_i P_{i+1}` of the quantum-scar literature.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn pxp(n: usize, j: f64, h: f64) -> Hamiltonian {
    assert!(n >= 2, "PXP chain needs at least 2 qubits");
    let mut ham = Hamiltonian::new(n);
    for i in 0..n - 1 {
        add_occupation_pair(&mut ham, j, i, i + 1);
    }
    for i in 0..n {
        ham.add_term(h, x(i));
    }
    ham
}

/// MIS (maximum independent set) annealing chain at normalized time `s ∈ [0, 1]`:
/// `Σ_i [(1 − 2s)·U·n̂_i + ω/2·X_i] + Σ_{i<N} α·n̂_i n̂_{i+1}`.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn mis_chain_at(n: usize, u: f64, omega: f64, alpha: f64, s: f64) -> Hamiltonian {
    assert!(n >= 2, "MIS chain needs at least 2 qubits");
    let mut ham = Hamiltonian::new(n);
    let detuning = (1.0 - 2.0 * s) * u;
    for i in 0..n {
        add_occupation(&mut ham, detuning, i);
        ham.add_term(omega / 2.0, x(i));
    }
    for i in 0..n - 1 {
        add_occupation_pair(&mut ham, alpha, i, i + 1);
    }
    ham
}

/// Time-dependent MIS chain discretized into `num_segments` piecewise-constant
/// pieces over `total_time` (the annealing parameter `s = t / total_time`).
pub fn mis_chain(
    n: usize,
    u: f64,
    omega: f64,
    alpha: f64,
    total_time: f64,
    num_segments: usize,
) -> PiecewiseHamiltonian {
    PiecewiseHamiltonian::discretize(
        |t| mis_chain_at(n, u, omega, alpha, t / total_time),
        total_time,
        num_segments,
    )
}

/// Identifier for a benchmark model from Table 2 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Model {
    /// Open-boundary transverse-field Ising chain.
    IsingChain,
    /// Periodic transverse-field Ising cycle.
    IsingCycle,
    /// Kitaev chain.
    Kitaev,
    /// Ising cycle with next-nearest-neighbour Van der Waals tail.
    IsingCyclePlus,
    /// Heisenberg chain.
    HeisenbergChain,
    /// PXP / blockaded Rydberg chain.
    Pxp,
    /// Time-dependent maximum-independent-set annealing chain.
    MisChain,
}

impl Model {
    /// All time-independent models.
    pub const TIME_INDEPENDENT: [Model; 6] = [
        Model::IsingChain,
        Model::IsingCycle,
        Model::Kitaev,
        Model::IsingCyclePlus,
        Model::HeisenbergChain,
        Model::Pxp,
    ];

    /// Human readable name matching the paper's Table 2.
    pub fn name(&self) -> &'static str {
        match self {
            Model::IsingChain => "Ising chain",
            Model::IsingCycle => "Ising cycle",
            Model::Kitaev => "Kitaev",
            Model::IsingCyclePlus => "Ising cycle +",
            Model::HeisenbergChain => "Heis chain",
            Model::Pxp => "PXP",
            Model::MisChain => "MIS chain",
        }
    }

    /// Whether the model is time dependent (only the MIS chain is).
    pub fn is_time_dependent(&self) -> bool {
        matches!(self, Model::MisChain)
    }

    /// Smallest system size for which the model is defined.
    pub fn min_qubits(&self) -> usize {
        match self {
            Model::IsingCycle => 3,
            Model::IsingCyclePlus => 5,
            _ => 2,
        }
    }

    /// Builds the time-independent Hamiltonian for `n` qubits, or `None` for
    /// time-dependent models.
    pub fn build(&self, n: usize, params: &ModelParams) -> Option<Hamiltonian> {
        match self {
            Model::IsingChain => Some(ising_chain(n, params.j, params.h)),
            Model::IsingCycle => Some(ising_cycle(n, params.j, params.h)),
            Model::Kitaev => Some(kitaev(n, params.mu, params.t_hop, params.h)),
            Model::IsingCyclePlus => Some(ising_cycle_plus(n, params.j, params.h)),
            Model::HeisenbergChain => Some(heisenberg_chain(n, params.j, params.h)),
            Model::Pxp => Some(pxp(n, params.j, params.h)),
            Model::MisChain => None,
        }
    }

    /// Builds the model as a piecewise Hamiltonian over `total_time`.
    ///
    /// Time-independent models become a single constant segment; the MIS
    /// chain is discretized into `num_segments` pieces.
    pub fn build_piecewise(
        &self,
        n: usize,
        params: &ModelParams,
        total_time: f64,
        num_segments: usize,
    ) -> PiecewiseHamiltonian {
        match self.build(n, params) {
            Some(h) => PiecewiseHamiltonian::constant(h, total_time),
            None => mis_chain(
                n,
                params.u,
                params.omega,
                params.alpha,
                total_time,
                num_segments,
            ),
        }
    }
}

impl std::fmt::Display for Model {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ising_chain_matches_table2() {
        let h = ising_chain(3, 1.0, 1.0);
        // 2 ZZ terms + 3 X terms.
        assert_eq!(h.num_terms(), 5);
        assert_eq!(h.coefficient(&zz(0, 1)), 1.0);
        assert_eq!(h.coefficient(&zz(1, 2)), 1.0);
        assert_eq!(h.coefficient(&zz(0, 2)), 0.0);
        assert_eq!(h.coefficient(&x(1)), 1.0);
    }

    #[test]
    fn ising_cycle_closes_the_ring() {
        let h = ising_cycle(4, 2.0, 0.5);
        assert_eq!(h.coefficient(&zz(0, 3)), 2.0);
        assert_eq!(h.num_terms(), 8);
        assert_eq!(h.coefficient(&x(3)), 0.5);
    }

    #[test]
    fn kitaev_signs_and_prefactors() {
        let h = kitaev(4, 1.0, 1.0, 1.0);
        assert_eq!(h.coefficient(&zz(1, 2)), 0.5);
        assert_eq!(h.coefficient(&x(0)), -1.0);
        assert_eq!(h.coefficient(&z(0)), -1.0);
        assert_eq!(h.num_terms(), 3 + 4 + 4);
    }

    #[test]
    fn ising_cycle_plus_has_tail_terms() {
        let h = ising_cycle_plus(6, 1.0, 1.0);
        assert_eq!(h.coefficient(&zz(0, 1)), 1.0);
        assert!((h.coefficient(&zz(0, 2)) - 1.0 / 64.0).abs() < 1e-15);
        assert_eq!(h.num_terms(), 6 + 6 + 6);
    }

    #[test]
    fn heisenberg_chain_has_all_three_couplings() {
        let h = heisenberg_chain(3, 1.0, 0.0);
        assert_eq!(
            h.coefficient(&PauliString::two(0, Pauli::X, 1, Pauli::X)),
            1.0
        );
        assert_eq!(
            h.coefficient(&PauliString::two(0, Pauli::Y, 1, Pauli::Y)),
            1.0
        );
        assert_eq!(h.coefficient(&zz(0, 1)), 1.0);
        assert_eq!(h.num_terms(), 6);
    }

    #[test]
    fn pxp_expansion_of_occupation_pairs() {
        let h = pxp(3, 1.0, 0.1);
        // n0 n1 + n1 n2 expands to: identity, Z0, Z1 (twice), Z2, Z0Z1, Z1Z2.
        assert!((h.coefficient(&PauliString::identity()) - 0.5).abs() < 1e-15);
        assert!((h.coefficient(&z(1)) + 0.5).abs() < 1e-15);
        assert!((h.coefficient(&z(0)) + 0.25).abs() < 1e-15);
        assert!((h.coefficient(&zz(0, 1)) - 0.25).abs() < 1e-15);
        assert!((h.coefficient(&x(0)) - 0.1).abs() < 1e-15);
    }

    #[test]
    fn mis_chain_sweeps_detuning_sign() {
        let start = mis_chain_at(3, 1.0, 1.0, 1.0, 0.0);
        let end = mis_chain_at(3, 1.0, 1.0, 1.0, 1.0);
        // At s=0 the detuning term is +U n_i => Z coefficient -U/2 (plus pair tails).
        // At s=1 it is -U n_i => Z coefficient flips sign relative to s=0.
        let z1_start = start.coefficient(&z(1));
        let z1_end = end.coefficient(&z(1));
        assert!(z1_start < z1_end);
        let pw = mis_chain(3, 1.0, 1.0, 1.0, 1.0, 4);
        assert_eq!(pw.num_segments(), 4);
        assert!((pw.total_time() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn model_enum_dispatch() {
        let params = ModelParams::default();
        for model in Model::TIME_INDEPENDENT {
            let n = model.min_qubits().max(5);
            let h = model.build(n, &params).expect("time independent");
            assert!(h.num_terms() > 0);
            assert!(!model.is_time_dependent());
            assert!(!model.name().is_empty());
            let pw = model.build_piecewise(n, &params, 1.0, 4);
            assert_eq!(pw.num_segments(), 1);
        }
        assert!(Model::MisChain.is_time_dependent());
        assert!(Model::MisChain.build(4, &params).is_none());
        let pw = Model::MisChain.build_piecewise(4, &params, 2.0, 4);
        assert_eq!(pw.num_segments(), 4);
        assert_eq!(Model::MisChain.to_string(), "MIS chain");
    }

    #[test]
    #[should_panic(expected = "at least 3 qubits")]
    fn cycle_requires_three_qubits() {
        let _ = ising_cycle(2, 1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least 5 qubits")]
    fn cycle_plus_requires_five_qubits() {
        let _ = ising_cycle_plus(4, 1.0, 1.0);
    }
}
