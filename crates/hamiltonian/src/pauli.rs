//! Pauli operators and Pauli strings.

use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;

/// A single-qubit Pauli operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Pauli {
    /// The identity operator.
    I,
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
}

impl Pauli {
    /// All non-identity Pauli operators.
    pub const NON_IDENTITY: [Pauli; 3] = [Pauli::X, Pauli::Y, Pauli::Z];

    /// Product of two single-qubit Paulis, returned as `(phase, operator)`
    /// where the phase is one of `±1, ±i` encoded as `(re, im)` with values
    /// in `{-1, 0, 1}`.
    pub fn multiply(self, other: Pauli) -> (PauliPhase, Pauli) {
        use Pauli::*;
        match (self, other) {
            (I, p) | (p, I) => (PauliPhase::PlusOne, p),
            (X, X) | (Y, Y) | (Z, Z) => (PauliPhase::PlusOne, I),
            (X, Y) => (PauliPhase::PlusI, Z),
            (Y, X) => (PauliPhase::MinusI, Z),
            (Y, Z) => (PauliPhase::PlusI, X),
            (Z, Y) => (PauliPhase::MinusI, X),
            (Z, X) => (PauliPhase::PlusI, Y),
            (X, Z) => (PauliPhase::MinusI, Y),
        }
    }
}

impl fmt::Display for Pauli {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Pauli::I => 'I',
            Pauli::X => 'X',
            Pauli::Y => 'Y',
            Pauli::Z => 'Z',
        };
        write!(f, "{c}")
    }
}

/// Phase accumulated when multiplying Pauli operators: one of `{+1, +i, −1, −i}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PauliPhase {
    /// `+1`
    PlusOne,
    /// `+i`
    PlusI,
    /// `−1`
    MinusOne,
    /// `−i`
    MinusI,
}

impl PauliPhase {
    /// Composes two phases (complex multiplication restricted to the fourth roots of unity).
    pub fn compose(self, other: PauliPhase) -> PauliPhase {
        let a = self.exponent();
        let b = other.exponent();
        PauliPhase::from_exponent((a + b) % 4)
    }

    /// Power of `i` representing this phase (`i^k`).
    pub fn exponent(self) -> u8 {
        match self {
            PauliPhase::PlusOne => 0,
            PauliPhase::PlusI => 1,
            PauliPhase::MinusOne => 2,
            PauliPhase::MinusI => 3,
        }
    }

    /// Inverse of [`PauliPhase::exponent`].
    pub fn from_exponent(k: u8) -> PauliPhase {
        match k % 4 {
            0 => PauliPhase::PlusOne,
            1 => PauliPhase::PlusI,
            2 => PauliPhase::MinusOne,
            _ => PauliPhase::MinusI,
        }
    }

    /// Real/imaginary parts of the phase, each in `{-1, 0, 1}`.
    pub fn as_complex_parts(self) -> (f64, f64) {
        match self {
            PauliPhase::PlusOne => (1.0, 0.0),
            PauliPhase::PlusI => (0.0, 1.0),
            PauliPhase::MinusOne => (-1.0, 0.0),
            PauliPhase::MinusI => (0.0, -1.0),
        }
    }
}

/// A Pauli string: a tensor product of single-qubit Pauli operators.
///
/// Identity factors are stored implicitly — only non-identity operators are
/// kept, indexed by qubit. `Z1Z2` in the paper's notation is
/// `PauliString::from_ops([(0, Pauli::Z), (1, Pauli::Z)])` here (the crate
/// uses 0-based qubit indices throughout).
///
/// # Example
///
/// ```
/// use qturbo_hamiltonian::{Pauli, PauliString};
/// let zz = PauliString::from_ops([(0, Pauli::Z), (1, Pauli::Z)]);
/// assert_eq!(zz.weight(), 2);
/// assert_eq!(zz.to_string(), "Z0Z1");
/// assert_eq!(zz.operator_on(2), Pauli::I);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct PauliString {
    // BTreeMap keeps the factors sorted by qubit index, which gives a
    // canonical form usable as a map key.
    ops: BTreeMap<usize, Pauli>,
}

impl PauliString {
    /// The identity string (no non-trivial factors).
    pub fn identity() -> Self {
        PauliString {
            ops: BTreeMap::new(),
        }
    }

    /// Builds a string from `(qubit, operator)` pairs. Identity factors are
    /// dropped; duplicate qubits keep the last operator provided.
    pub fn from_ops<I>(ops: I) -> Self
    where
        I: IntoIterator<Item = (usize, Pauli)>,
    {
        let mut map = BTreeMap::new();
        for (qubit, op) in ops {
            if op == Pauli::I {
                map.remove(&qubit);
            } else {
                map.insert(qubit, op);
            }
        }
        PauliString { ops: map }
    }

    /// A single-qubit Pauli string.
    pub fn single(qubit: usize, op: Pauli) -> Self {
        PauliString::from_ops([(qubit, op)])
    }

    /// A two-qubit Pauli string `op ⊗ op` on the given qubits.
    pub fn two(qubit_a: usize, op_a: Pauli, qubit_b: usize, op_b: Pauli) -> Self {
        PauliString::from_ops([(qubit_a, op_a), (qubit_b, op_b)])
    }

    /// Returns `true` when this is the identity string.
    pub fn is_identity(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of non-identity factors.
    pub fn weight(&self) -> usize {
        self.ops.len()
    }

    /// The operator acting on `qubit` (identity when not present).
    pub fn operator_on(&self, qubit: usize) -> Pauli {
        self.ops.get(&qubit).copied().unwrap_or(Pauli::I)
    }

    /// Iterates over `(qubit, operator)` pairs in ascending qubit order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, Pauli)> + '_ {
        self.ops.iter().map(|(&q, &p)| (q, p))
    }

    /// Largest qubit index with a non-identity factor, if any.
    pub fn max_qubit(&self) -> Option<usize> {
        self.ops.keys().next_back().copied()
    }

    /// Set of qubits this string acts on non-trivially.
    pub fn support(&self) -> Vec<usize> {
        self.ops.keys().copied().collect()
    }

    /// Product of two Pauli strings with the accumulated phase.
    pub fn multiply(&self, other: &PauliString) -> (PauliPhase, PauliString) {
        let mut phase = PauliPhase::PlusOne;
        let mut ops = self.ops.clone();
        for (&qubit, &op_b) in &other.ops {
            let op_a = ops.get(&qubit).copied().unwrap_or(Pauli::I);
            let (p, op) = op_a.multiply(op_b);
            phase = phase.compose(p);
            if op == Pauli::I {
                ops.remove(&qubit);
            } else {
                ops.insert(qubit, op);
            }
        }
        (phase, PauliString { ops })
    }

    /// Whether the two strings commute as operators.
    pub fn commutes_with(&self, other: &PauliString) -> bool {
        // Two Pauli strings anticommute iff they differ (both non-identity,
        // different operator) on an odd number of qubits.
        let mut anticommuting_sites = 0;
        for (&qubit, &op_a) in &self.ops {
            let op_b = other.operator_on(qubit);
            if op_b != Pauli::I && op_b != op_a {
                anticommuting_sites += 1;
            }
        }
        anticommuting_sites % 2 == 0
    }
}

impl PartialOrd for PauliString {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for PauliString {
    fn cmp(&self, other: &Self) -> Ordering {
        let a: Vec<_> = self.iter().collect();
        let b: Vec<_> = other.iter().collect();
        a.cmp(&b)
    }
}

impl fmt::Display for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_identity() {
            return write!(f, "I");
        }
        for (qubit, op) in self.iter() {
            write!(f, "{op}{qubit}")?;
        }
        Ok(())
    }
}

impl FromIterator<(usize, Pauli)> for PauliString {
    fn from_iter<T: IntoIterator<Item = (usize, Pauli)>>(iter: T) -> Self {
        PauliString::from_ops(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_qubit_products() {
        assert_eq!(Pauli::X.multiply(Pauli::X), (PauliPhase::PlusOne, Pauli::I));
        assert_eq!(Pauli::X.multiply(Pauli::Y), (PauliPhase::PlusI, Pauli::Z));
        assert_eq!(Pauli::Y.multiply(Pauli::X), (PauliPhase::MinusI, Pauli::Z));
        assert_eq!(Pauli::Z.multiply(Pauli::X), (PauliPhase::PlusI, Pauli::Y));
        assert_eq!(Pauli::I.multiply(Pauli::Z), (PauliPhase::PlusOne, Pauli::Z));
    }

    #[test]
    fn phase_composition_is_cyclic() {
        let i = PauliPhase::PlusI;
        assert_eq!(i.compose(i), PauliPhase::MinusOne);
        assert_eq!(i.compose(i).compose(i), PauliPhase::MinusI);
        assert_eq!(i.compose(i).compose(i).compose(i), PauliPhase::PlusOne);
        assert_eq!(PauliPhase::MinusOne.as_complex_parts(), (-1.0, 0.0));
        assert_eq!(PauliPhase::from_exponent(7), PauliPhase::MinusI);
    }

    #[test]
    fn construction_drops_identities() {
        let p = PauliString::from_ops([(0, Pauli::I), (3, Pauli::X), (1, Pauli::Z)]);
        assert_eq!(p.weight(), 2);
        assert_eq!(p.operator_on(0), Pauli::I);
        assert_eq!(p.operator_on(3), Pauli::X);
        assert_eq!(p.support(), vec![1, 3]);
        assert_eq!(p.max_qubit(), Some(3));
        assert!(PauliString::identity().is_identity());
        assert_eq!(PauliString::identity().max_qubit(), None);
    }

    #[test]
    fn display_is_canonical() {
        let p = PauliString::from_ops([(2, Pauli::X), (0, Pauli::Z)]);
        assert_eq!(p.to_string(), "Z0X2");
        assert_eq!(PauliString::identity().to_string(), "I");
        assert_eq!(PauliString::single(1, Pauli::Y).to_string(), "Y1");
    }

    #[test]
    fn string_multiplication() {
        let zz = PauliString::two(0, Pauli::Z, 1, Pauli::Z);
        let (phase, product) = zz.multiply(&zz);
        assert_eq!(phase, PauliPhase::PlusOne);
        assert!(product.is_identity());

        let x0 = PauliString::single(0, Pauli::X);
        let z0 = PauliString::single(0, Pauli::Z);
        let (phase, product) = z0.multiply(&x0);
        assert_eq!(phase, PauliPhase::PlusI);
        assert_eq!(product, PauliString::single(0, Pauli::Y));

        let x1 = PauliString::single(1, Pauli::X);
        let (phase, product) = z0.multiply(&x1);
        assert_eq!(phase, PauliPhase::PlusOne);
        assert_eq!(
            product,
            PauliString::from_ops([(0, Pauli::Z), (1, Pauli::X)])
        );
    }

    #[test]
    fn commutation_relations() {
        let z0 = PauliString::single(0, Pauli::Z);
        let x0 = PauliString::single(0, Pauli::X);
        let x1 = PauliString::single(1, Pauli::X);
        let zz = PauliString::two(0, Pauli::Z, 1, Pauli::Z);
        let xx = PauliString::two(0, Pauli::X, 1, Pauli::X);
        assert!(!z0.commutes_with(&x0));
        assert!(z0.commutes_with(&x1));
        assert!(zz.commutes_with(&xx)); // differ on two sites -> commute
        assert!(!zz.commutes_with(&x0));
        assert!(zz.commutes_with(&PauliString::identity()));
    }

    #[test]
    fn ordering_is_total_and_canonical() {
        let a = PauliString::single(0, Pauli::X);
        let b = PauliString::single(1, Pauli::X);
        let c = PauliString::single(0, Pauli::Z);
        assert!(a < b);
        assert!(a < c); // X < Z in operator ordering
        let mut set = std::collections::BTreeSet::new();
        set.insert(b.clone());
        set.insert(a.clone());
        set.insert(a.clone());
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn collect_from_iterator() {
        let p: PauliString = vec![(0, Pauli::X), (5, Pauli::Z)].into_iter().collect();
        assert_eq!(p.weight(), 2);
    }
}
