//! Opt-in observability for the evolution pipeline: structured tracing,
//! a metrics registry, and per-run profiling reports.
//!
//! # Layers
//!
//! 1. **Structured tracing** — [`SpanEvent`] is a closed taxonomy of typed
//!    span records emitted by the compile ([`CompileSpan`]), scheduling
//!    ([`ScheduleSpan`], [`SegmentSpan`]), stepper ([`StepperSpan`]),
//!    recovery ([`RecoverySpan`]) and execution ([`ExecSpan`]) layers.
//!    A [`TraceSink`] receives them; the built-in [`Recorder`] buffers them
//!    in memory with a hard cap so a runaway schedule cannot exhaust memory.
//! 2. **Metrics registry** — [`MetricsRegistry`] folds every recorded event
//!    into typed [`Counter`]s, [`Gauge`]s and a wall-time [`Histogram`],
//!    snapshotable as the plain [`MetricsSnapshot`] struct.
//! 3. **Profiling report** — [`RunProfile`] aggregates a recorded trace into
//!    per-segment and per-backend tables, exportable as JSON
//!    ([`RunProfile::to_json`]) or a human-readable summary
//!    ([`RunProfile::summary`]).
//!
//! # Enabling
//!
//! Telemetry is **opt-in** and defaults to off. Enable it either
//! programmatically ([`EvolveOptions::with_telemetry`]) or for a whole
//! process by setting the `QTURBO_TRACE` environment variable to anything
//! other than `0` or the empty string (checked once and cached, see
//! [`env_enabled`]). When disabled the hot path performs a single boolean
//! test: no allocation, no clock reads inside the segment loop, and no
//! extra amplitude passes — traced and untraced runs produce bitwise
//! identical states (`tests/conformance_telemetry.rs` pins this).
//!
//! [`EvolveOptions::with_telemetry`]: crate::stepper::EvolveOptions::with_telemetry

use std::fmt::Write as _;
use std::sync::OnceLock;

use crate::error::RecoveryEvent;
use crate::exec::KernelPath;
use crate::stepper::StepperKind;

/// Hard cap on buffered span events per [`Recorder`].
///
/// Mirrors `MAX_RECORDED_DECISIONS` / `MAX_RECORDED_RECOVERIES` in the
/// propagator: beyond this many events the recorder stops buffering and
/// only counts drops ([`Recorder::dropped`]), so telemetry memory stays
/// bounded no matter how many segments a schedule has.
pub const MAX_RECORDED_EVENTS: usize = 1 << 16;

/// Returns whether the `QTURBO_TRACE` environment variable enables
/// telemetry for this process.
///
/// Any non-empty value other than `"0"` enables tracing. The variable is
/// read once and cached for the lifetime of the process (the same pattern
/// as `QTURBO_THREADS`), so the disabled path costs one static boolean
/// load.
pub fn env_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| match std::env::var("QTURBO_TRACE") {
        Ok(value) => !(value.is_empty() || value == "0"),
        Err(_) => false,
    })
}

/// Wall-clock stamp attached to compiled artifacts
/// ([`CompiledSchedule`](crate::schedule::CompiledSchedule),
/// [`CompiledHamiltonian`](crate::compiled::CompiledHamiltonian)).
///
/// Deliberately compares **equal to any other stamp**: compiled artifacts
/// derive structural `PartialEq`, and two compiles of identical input must
/// stay equal even though their wall times differ. The stamp carries
/// timing without poisoning equality.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompileTiming {
    /// Wall nanoseconds the compilation took.
    pub wall_ns: u64,
}

impl PartialEq for CompileTiming {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

// ---------------------------------------------------------------------------
// Span taxonomy
// ---------------------------------------------------------------------------

/// Compile-phase span: one Hamiltonian-schedule compilation.
///
/// Emitted when a traced propagator first sees a [`CompiledSchedule`]
/// (the wall time is measured inside `CompiledSchedule::compile` itself,
/// so views created by `try_scaled_weights` inherit the original compile
/// cost — recompilation avoided is still attributed).
///
/// [`CompiledSchedule`]: crate::schedule::CompiledSchedule
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompileSpan {
    /// Number of segments in the compiled schedule.
    pub segments: usize,
    /// Number of distinct mask layouts shared across segments.
    pub layouts: usize,
    /// Wall-clock nanoseconds spent in `CompiledSchedule::compile`.
    pub wall_ns: u64,
}

/// Schedule-level span: one full `try_evolve_schedule_in_place` call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleSpan {
    /// Segments in the schedule (including skipped zero-duration ones).
    pub segments: usize,
    /// Segments that actually ran a stepper.
    pub executed_segments: usize,
    /// Total scheduled evolution time.
    pub total_time: f64,
    /// Kernel applications summed over all backends for this call.
    pub applications: u64,
    /// Amplitude passes summed over all backends for this call.
    pub state_passes: u64,
    /// Amplitude passes spent flushing the final open batched run after
    /// the segment loop; these belong to the schedule, not any one
    /// segment, so `Σ segment.state_passes + finalize_passes` equals
    /// `state_passes` exactly.
    pub finalize_passes: u64,
    /// Recovery events raised during this call.
    pub recoveries: u64,
    /// Wall-clock nanoseconds for the whole schedule evolution.
    pub wall_ns: u64,
}

/// Per-segment span: backend decision plus cost-model estimate vs. actuals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentSpan {
    /// Segment index within the schedule, or `None` for the constant-`H`
    /// single-segment path (`try_evolve_in_place`).
    pub index: Option<usize>,
    /// Backend that (finally) integrated the segment, after any Auto
    /// demotion or recovery fallback.
    pub backend: StepperKind,
    /// Segment duration.
    pub duration: f64,
    /// `AutoCostModel::estimated_applications` for the backend that ran,
    /// using the same (diagonal-tightened) bound the stepper saw.
    /// `None` when the model has no closed form (e.g. unresolved `Auto`).
    pub predicted_applications: Option<f64>,
    /// Kernel applications actually spent on this segment.
    pub applications: u64,
    /// Amplitude passes actually spent on this segment.
    pub state_passes: u64,
    /// Whether a recovery fallback re-integrated this segment.
    pub recovered: bool,
    /// Wall-clock nanoseconds for this segment (including any recovery
    /// retry).
    pub wall_ns: u64,
}

/// Stepper-backend span: cumulative work counters for one backend.
///
/// Emitted once per backend with non-zero counters at the end of a traced
/// schedule or constant-`H` evolution. Counters are cumulative since the
/// propagator's last `reset_kernel_applications`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepperSpan {
    /// The backend these counters belong to.
    pub backend: StepperKind,
    /// Cumulative kernel applications by this backend.
    pub applications: u64,
    /// Cumulative amplitude passes by this backend.
    pub state_passes: u64,
}

/// Recovery span: wraps one [`RecoveryEvent`] as it is pushed.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoverySpan {
    /// The recovery event (segment, failing backend, fallback, error).
    pub event: RecoveryEvent,
}

/// Execution-layer span: the kernel execution plan for a traced run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecSpan {
    /// SIMD lane width of the lane kernel path.
    pub lane_width: usize,
    /// Resolved worker threads.
    pub threads: usize,
    /// Participants the pool would use at this dimension.
    pub workers: usize,
    /// Chunks the state vector is split into (equals `workers` when the
    /// dimension crosses the parallel threshold, `1` otherwise).
    pub chunks: usize,
    /// Amplitudes per chunk (rounded up to a lane-width multiple).
    pub chunk_len: usize,
    /// Qubit count at or above which kernels go parallel.
    pub parallel_threshold_qubits: usize,
    /// Lane or scalar kernel path.
    pub kernel_path: KernelPath,
    /// State-vector dimension the plan was made for.
    pub dim: usize,
    /// Worker-pool busy nanoseconds accumulated during the traced call
    /// (sum over helper threads of time spent inside kernel jobs).
    pub pool_busy_ns: u64,
}

/// One structured trace event.
///
/// The taxonomy is closed: every observable phase of the pipeline maps to
/// exactly one variant, which is what makes span-derived totals provable
/// against the exact pass counters.
#[derive(Debug, Clone, PartialEq)]
pub enum SpanEvent {
    /// Hamiltonian-schedule compilation.
    Compile(CompileSpan),
    /// Full schedule evolution.
    Schedule(ScheduleSpan),
    /// One schedule segment (or the constant-`H` pseudo-segment).
    Segment(SegmentSpan),
    /// Cumulative per-backend work counters.
    Stepper(StepperSpan),
    /// A recovery fallback.
    Recovery(RecoverySpan),
    /// The kernel execution plan.
    Exec(ExecSpan),
}

impl SpanEvent {
    /// Returns a copy of this event with all wall-clock fields zeroed.
    ///
    /// Wall-clock nanoseconds are the only nondeterministic payload in a
    /// trace; stripping them makes traces of repeated seeded runs compare
    /// equal (`tests/conformance_telemetry.rs` asserts this).
    pub fn sans_timing(&self) -> SpanEvent {
        match self {
            SpanEvent::Compile(span) => SpanEvent::Compile(CompileSpan {
                wall_ns: 0,
                ..*span
            }),
            SpanEvent::Schedule(span) => SpanEvent::Schedule(ScheduleSpan {
                wall_ns: 0,
                ..*span
            }),
            SpanEvent::Segment(span) => SpanEvent::Segment(SegmentSpan {
                wall_ns: 0,
                ..*span
            }),
            SpanEvent::Stepper(span) => SpanEvent::Stepper(*span),
            SpanEvent::Recovery(span) => SpanEvent::Recovery(span.clone()),
            SpanEvent::Exec(span) => SpanEvent::Exec(ExecSpan {
                pool_busy_ns: 0,
                ..*span
            }),
        }
    }
}

/// Receives structured trace events.
///
/// The pipeline emits through this trait so alternative sinks (a service
/// layer's request log, a streaming exporter) can replace the in-memory
/// [`Recorder`] without touching emission sites.
pub trait TraceSink {
    /// Records one span event.
    fn record(&mut self, event: SpanEvent);
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

/// A monotonically increasing `u64` counter.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Counter(u64);

impl Counter {
    /// Adds `delta` to the counter (saturating).
    pub fn add(&mut self, delta: u64) {
        self.0 = self.0.saturating_add(delta);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// A last-value-wins `f64` gauge.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Gauge(f64);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&mut self, value: f64) {
        self.0 = value;
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        self.0
    }
}

/// Bucket upper bounds (nanoseconds) for the segment wall-time histogram:
/// 1 µs, 10 µs, 100 µs, 1 ms, 10 ms, 100 ms, 1 s, plus an overflow bucket.
pub const HISTOGRAM_BOUNDS_NS: [u64; 7] = [
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
];

/// A fixed-bucket histogram over nanosecond observations.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Histogram {
    /// Observation counts per bucket; the final slot counts observations
    /// above the largest bound in [`HISTOGRAM_BOUNDS_NS`].
    pub buckets: [u64; HISTOGRAM_BOUNDS_NS.len() + 1],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&mut self, value_ns: u64) {
        let slot = HISTOGRAM_BOUNDS_NS
            .iter()
            .position(|&bound| value_ns <= bound)
            .unwrap_or(HISTOGRAM_BOUNDS_NS.len());
        self.buckets[slot] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value_ns);
    }
}

/// Typed metrics folded from a trace as it is recorded.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MetricsRegistry {
    /// Executed segments (one per [`SegmentSpan`]).
    pub segments: Counter,
    /// Kernel applications summed over segment spans.
    pub kernel_applications: Counter,
    /// Amplitude passes summed over segment spans plus schedule-level
    /// finalize passes.
    pub amplitude_passes: Counter,
    /// Recovery events.
    pub recoveries: Counter,
    /// Wall nanoseconds spent compiling schedules.
    pub compile_wall_ns: Counter,
    /// Wall nanoseconds spent evolving (schedule spans).
    pub evolve_wall_ns: Counter,
    /// Worker-pool busy nanoseconds (from [`ExecSpan`]).
    pub pool_busy_ns: Counter,
    /// Resolved worker threads (last seen).
    pub threads: Gauge,
    /// Per-segment wall-time distribution.
    pub segment_wall_ns: Histogram,
}

impl MetricsRegistry {
    /// Folds one event into the registry.
    pub fn observe(&mut self, event: &SpanEvent) {
        match event {
            SpanEvent::Compile(span) => self.compile_wall_ns.add(span.wall_ns),
            SpanEvent::Schedule(span) => {
                self.evolve_wall_ns.add(span.wall_ns);
                self.amplitude_passes.add(span.finalize_passes);
            }
            SpanEvent::Segment(span) => {
                self.segments.add(1);
                self.kernel_applications.add(span.applications);
                self.amplitude_passes.add(span.state_passes);
                self.segment_wall_ns.observe(span.wall_ns);
            }
            SpanEvent::Stepper(_) => {}
            SpanEvent::Recovery(_) => self.recoveries.add(1),
            SpanEvent::Exec(span) => {
                self.pool_busy_ns.add(span.pool_busy_ns);
                self.threads.set(span.threads as f64);
            }
        }
    }

    /// Snapshots the registry as a plain struct.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let evolve = self.evolve_wall_ns.get();
        let busy = self.pool_busy_ns.get();
        MetricsSnapshot {
            segments: self.segments.get(),
            kernel_applications: self.kernel_applications.get(),
            amplitude_passes: self.amplitude_passes.get(),
            recoveries: self.recoveries.get(),
            compile_wall_ns: self.compile_wall_ns.get(),
            evolve_wall_ns: evolve,
            pool_busy_ns: busy,
            pool_utilization: if evolve == 0 {
                0.0
            } else {
                busy as f64 / evolve as f64
            },
        }
    }
}

/// Plain-struct snapshot of a [`MetricsRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Executed segments.
    pub segments: u64,
    /// Kernel applications.
    pub kernel_applications: u64,
    /// Amplitude passes.
    pub amplitude_passes: u64,
    /// Recovery events.
    pub recoveries: u64,
    /// Wall nanoseconds compiling.
    pub compile_wall_ns: u64,
    /// Wall nanoseconds evolving.
    pub evolve_wall_ns: u64,
    /// Worker-pool busy nanoseconds.
    pub pool_busy_ns: u64,
    /// `pool_busy_ns / evolve_wall_ns` — average busy helper threads
    /// during evolution (can exceed 1.0 with multiple workers; 0 when no
    /// evolve wall time was recorded).
    pub pool_utilization: f64,
}

// ---------------------------------------------------------------------------
// Recorder
// ---------------------------------------------------------------------------

/// The built-in buffered [`TraceSink`]: an in-memory event buffer with a
/// hard cap plus an always-updated [`MetricsRegistry`].
///
/// "Lock-free-ish": the recorder is owned by a single propagator and
/// records with plain `Vec` pushes — no locks, no atomics on the hot path.
/// Cross-thread aggregation happens only at snapshot time.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    events: Vec<SpanEvent>,
    dropped: u64,
    metrics: MetricsRegistry,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Recorder::default()
    }

    /// Recorded events, in emission order.
    pub fn events(&self) -> &[SpanEvent] {
        &self.events
    }

    /// Events dropped after the buffer hit [`MAX_RECORDED_EVENTS`].
    /// Dropped events still update the metrics registry.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The metrics registry folded from every recorded event (including
    /// dropped ones).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Clears the buffer and resets the metrics registry.
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
        self.metrics = MetricsRegistry::default();
    }

    /// Events with wall-clock payloads zeroed — the deterministic view of
    /// a trace (see [`SpanEvent::sans_timing`]).
    pub fn deterministic_events(&self) -> Vec<SpanEvent> {
        self.events.iter().map(SpanEvent::sans_timing).collect()
    }
}

impl TraceSink for Recorder {
    fn record(&mut self, event: SpanEvent) {
        self.metrics.observe(&event);
        if self.events.len() < MAX_RECORDED_EVENTS {
            self.events.push(event);
        } else {
            self.dropped = self.dropped.saturating_add(1);
        }
    }
}

// ---------------------------------------------------------------------------
// Profiling report
// ---------------------------------------------------------------------------

/// One row of the per-segment profile table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentProfile {
    /// Segment index (`None` for the constant-`H` path).
    pub index: Option<usize>,
    /// Backend that integrated the segment.
    pub backend: StepperKind,
    /// Segment duration.
    pub duration: f64,
    /// Cost-model predicted applications, when available.
    pub predicted_applications: Option<f64>,
    /// Measured kernel applications.
    pub applications: u64,
    /// Measured amplitude passes.
    pub state_passes: u64,
    /// Whether a recovery fallback ran.
    pub recovered: bool,
    /// Wall nanoseconds.
    pub wall_ns: u64,
}

/// One row of the per-backend profile table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackendProfile {
    /// The backend.
    pub backend: StepperKind,
    /// Segments this backend integrated.
    pub segments: u64,
    /// Kernel applications attributed to this backend's segments.
    pub applications: u64,
    /// Amplitude passes attributed to this backend's segments.
    pub state_passes: u64,
    /// Wall nanoseconds attributed to this backend's segments.
    pub wall_ns: u64,
}

/// A profiling report aggregated from one recorded trace.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunProfile {
    /// Per-segment rows, in execution order.
    pub segments: Vec<SegmentProfile>,
    /// Per-backend aggregates, ordered by [`StepperKind::all`].
    pub backends: Vec<BackendProfile>,
    /// Recovery events wrapped in the trace.
    pub recoveries: Vec<RecoveryEvent>,
    /// The execution plan, when the trace contains one.
    pub exec: Option<ExecSpan>,
    /// The compile span, when the trace contains one.
    pub compile: Option<CompileSpan>,
    /// Metrics snapshot at aggregation time.
    pub metrics: MetricsSnapshot,
    /// Events dropped by the recorder's buffer cap.
    pub dropped_events: u64,
}

impl RunProfile {
    /// Aggregates a recorded trace into a profile.
    pub fn from_recorder(recorder: &Recorder) -> RunProfile {
        let mut profile = RunProfile {
            metrics: recorder.metrics().snapshot(),
            dropped_events: recorder.dropped(),
            ..RunProfile::default()
        };
        for event in recorder.events() {
            match event {
                SpanEvent::Segment(span) => profile.segments.push(SegmentProfile {
                    index: span.index,
                    backend: span.backend,
                    duration: span.duration,
                    predicted_applications: span.predicted_applications,
                    applications: span.applications,
                    state_passes: span.state_passes,
                    recovered: span.recovered,
                    wall_ns: span.wall_ns,
                }),
                SpanEvent::Recovery(span) => profile.recoveries.push(span.event.clone()),
                SpanEvent::Exec(span) => profile.exec = Some(*span),
                SpanEvent::Compile(span) => profile.compile = Some(*span),
                SpanEvent::Schedule(_) | SpanEvent::Stepper(_) => {}
            }
        }
        for kind in StepperKind::all() {
            let mut row = BackendProfile {
                backend: kind,
                segments: 0,
                applications: 0,
                state_passes: 0,
                wall_ns: 0,
            };
            for seg in &profile.segments {
                if seg.backend == kind {
                    row.segments += 1;
                    row.applications += seg.applications;
                    row.state_passes += seg.state_passes;
                    row.wall_ns += seg.wall_ns;
                }
            }
            if row.segments > 0 {
                profile.backends.push(row);
            }
        }
        profile
    }

    /// Total kernel applications across all segments.
    pub fn applications(&self) -> u64 {
        self.segments.iter().map(|seg| seg.applications).sum()
    }

    /// Total amplitude passes across all segments (excluding schedule
    /// finalize passes, which live in [`MetricsSnapshot::amplitude_passes`]).
    pub fn state_passes(&self) -> u64 {
        self.segments.iter().map(|seg| seg.state_passes).sum()
    }

    /// Renders the profile as a JSON object (hand-rolled; no external
    /// dependencies).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push('{');
        let m = &self.metrics;
        let _ = write!(
            out,
            "\"metrics\":{{\"segments\":{},\"kernel_applications\":{},\
             \"amplitude_passes\":{},\"recoveries\":{},\"compile_wall_ns\":{},\
             \"evolve_wall_ns\":{},\"pool_busy_ns\":{},\"pool_utilization\":{}}}",
            m.segments,
            m.kernel_applications,
            m.amplitude_passes,
            m.recoveries,
            m.compile_wall_ns,
            m.evolve_wall_ns,
            m.pool_busy_ns,
            json_f64(m.pool_utilization),
        );
        out.push_str(",\"backends\":[");
        for (i, row) in self.backends.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"backend\":\"{}\",\"segments\":{},\"applications\":{},\
                 \"state_passes\":{},\"wall_ns\":{}}}",
                row.backend.name(),
                row.segments,
                row.applications,
                row.state_passes,
                row.wall_ns,
            );
        }
        out.push_str("],\"segments\":[");
        for (i, seg) in self.segments.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let index = match seg.index {
                Some(index) => index.to_string(),
                None => "null".to_string(),
            };
            let predicted = match seg.predicted_applications {
                Some(value) => json_f64(value),
                None => "null".to_string(),
            };
            let _ = write!(
                out,
                "{{\"index\":{},\"backend\":\"{}\",\"duration\":{},\
                 \"predicted_applications\":{},\"applications\":{},\
                 \"state_passes\":{},\"recovered\":{},\"wall_ns\":{}}}",
                index,
                seg.backend.name(),
                json_f64(seg.duration),
                predicted,
                seg.applications,
                seg.state_passes,
                seg.recovered,
                seg.wall_ns,
            );
        }
        out.push(']');
        if let Some(exec) = &self.exec {
            let _ = write!(
                out,
                ",\"exec\":{{\"lane_width\":{},\"threads\":{},\"workers\":{},\
                 \"chunks\":{},\"chunk_len\":{},\"kernel_path\":\"{}\",\
                 \"dim\":{},\"pool_busy_ns\":{}}}",
                exec.lane_width,
                exec.threads,
                exec.workers,
                exec.chunks,
                exec.chunk_len,
                kernel_path_name(exec.kernel_path),
                exec.dim,
                exec.pool_busy_ns,
            );
        }
        if let Some(compile) = &self.compile {
            let _ = write!(
                out,
                ",\"compile\":{{\"segments\":{},\"layouts\":{},\"wall_ns\":{}}}",
                compile.segments, compile.layouts, compile.wall_ns,
            );
        }
        let _ = write!(out, ",\"dropped_events\":{}", self.dropped_events);
        out.push('}');
        out
    }

    /// Renders the profile as a short human-readable summary.
    pub fn summary(&self) -> String {
        let m = &self.metrics;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "run profile: {} segments, {} applications, {} passes, {} recoveries",
            m.segments, m.kernel_applications, m.amplitude_passes, m.recoveries,
        );
        let _ = writeln!(
            out,
            "  compile {:.3} ms | evolve {:.3} ms | pool busy {:.3} ms (utilization {:.2})",
            m.compile_wall_ns as f64 / 1e6,
            m.evolve_wall_ns as f64 / 1e6,
            m.pool_busy_ns as f64 / 1e6,
            m.pool_utilization,
        );
        if let Some(exec) = &self.exec {
            let _ = writeln!(
                out,
                "  exec: {} thread(s), {} chunk(s) of {} amplitudes, lane width {}, {} path",
                exec.threads,
                exec.chunks,
                exec.chunk_len,
                exec.lane_width,
                kernel_path_name(exec.kernel_path),
            );
        }
        for row in &self.backends {
            let _ = writeln!(
                out,
                "  {:<14} {:>5} seg {:>10} apps {:>10} passes {:>10.3} ms",
                row.backend.name(),
                row.segments,
                row.applications,
                row.state_passes,
                row.wall_ns as f64 / 1e6,
            );
        }
        let (predicted, measured) =
            self.segments.iter().fold((0.0, 0u64), |(p, a), seg| {
                match seg.predicted_applications {
                    Some(value) => (p + value, a + seg.applications),
                    None => (p, a),
                }
            });
        if measured > 0 {
            let _ = writeln!(
                out,
                "  cost model: predicted {:.0} vs measured {} applications ({:+.1}%)",
                predicted,
                measured,
                (predicted / measured as f64 - 1.0) * 100.0,
            );
        }
        if self.dropped_events > 0 {
            let _ = writeln!(
                out,
                "  ({} events dropped at buffer cap)",
                self.dropped_events
            );
        }
        out
    }
}

fn kernel_path_name(path: KernelPath) -> &'static str {
    match path {
        KernelPath::Lane => "lane",
        KernelPath::Scalar => "scalar",
    }
}

/// Formats an `f64` as JSON (finite values only; non-finite become `null`).
fn json_f64(value: f64) -> String {
    if value.is_finite() {
        let mut text = format!("{value}");
        if !text.contains('.') && !text.contains('e') && !text.contains('E') {
            text.push_str(".0");
        }
        text
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_caps_buffer_and_counts_drops() {
        let mut recorder = Recorder::new();
        for i in 0..(MAX_RECORDED_EVENTS + 10) {
            recorder.record(SpanEvent::Segment(SegmentSpan {
                index: Some(i),
                backend: StepperKind::Taylor,
                duration: 1.0,
                predicted_applications: None,
                applications: 2,
                state_passes: 3,
                recovered: false,
                wall_ns: 5,
            }));
        }
        assert_eq!(recorder.events().len(), MAX_RECORDED_EVENTS);
        assert_eq!(recorder.dropped(), 10);
        // Dropped events still reach the metrics registry.
        assert_eq!(
            recorder.metrics().segments.get(),
            (MAX_RECORDED_EVENTS + 10) as u64
        );
    }

    #[test]
    fn metrics_fold_and_utilization() {
        let mut registry = MetricsRegistry::default();
        registry.observe(&SpanEvent::Segment(SegmentSpan {
            index: Some(0),
            backend: StepperKind::Taylor,
            duration: 1.0,
            predicted_applications: Some(4.0),
            applications: 4,
            state_passes: 20,
            recovered: false,
            wall_ns: 500,
        }));
        registry.observe(&SpanEvent::Schedule(ScheduleSpan {
            segments: 1,
            executed_segments: 1,
            total_time: 1.0,
            applications: 4,
            state_passes: 23,
            finalize_passes: 3,
            recoveries: 0,
            wall_ns: 1_000,
        }));
        registry.observe(&SpanEvent::Exec(ExecSpan {
            lane_width: 4,
            threads: 2,
            workers: 2,
            chunks: 2,
            chunk_len: 16,
            parallel_threshold_qubits: 4,
            kernel_path: KernelPath::Lane,
            dim: 32,
            pool_busy_ns: 500,
        }));
        let snap = registry.snapshot();
        assert_eq!(snap.amplitude_passes, 23);
        assert_eq!(snap.kernel_applications, 4);
        assert!((snap.pool_utilization - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sans_timing_zeroes_only_wall_fields() {
        let span = SpanEvent::Segment(SegmentSpan {
            index: Some(3),
            backend: StepperKind::Krylov,
            duration: 0.5,
            predicted_applications: Some(7.0),
            applications: 7,
            state_passes: 40,
            recovered: true,
            wall_ns: 987,
        });
        match span.sans_timing() {
            SpanEvent::Segment(seg) => {
                assert_eq!(seg.wall_ns, 0);
                assert_eq!(seg.applications, 7);
                assert_eq!(seg.index, Some(3));
                assert!(seg.recovered);
            }
            other => panic!("unexpected variant {other:?}"),
        }
    }

    #[test]
    fn json_render_is_wellformed_ish() {
        let mut recorder = Recorder::new();
        recorder.record(SpanEvent::Segment(SegmentSpan {
            index: Some(0),
            backend: StepperKind::BatchedTaylor,
            duration: 0.25,
            predicted_applications: Some(12.0),
            applications: 12,
            state_passes: 60,
            recovered: false,
            wall_ns: 10,
        }));
        let profile = RunProfile::from_recorder(&recorder);
        let json = profile.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"backend\":\"batched-taylor\"") || json.contains("batched"));
        assert!(json.contains("\"predicted_applications\":12.0"));
        let summary = profile.summary();
        assert!(summary.contains("run profile"));
    }
}
