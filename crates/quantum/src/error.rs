//! Typed error taxonomy for the evolution pipeline.
//!
//! Every fallible `try_*` entry point in this crate reports failures through
//! [`EvolveError`] instead of panicking. The variants partition the failure
//! space of the propagation stack:
//!
//! - [`EvolveError::InvalidInput`] — the caller handed us something that can
//!   never be evolved (NaN time, mismatched qubit counts, zero shots, …).
//! - [`EvolveError::NonFiniteState`] — a NaN or infinity appeared in the
//!   state vector (or an intermediate series norm) during evolution.
//! - [`EvolveError::NormDrift`] — the post-segment norm drifted away from the
//!   pre-segment norm by more than [`NORM_DRIFT_LIMIT`](crate::stepper::NORM_DRIFT_LIMIT),
//!   indicating the expansion diverged rather than merely accumulated
//!   round-off.
//! - [`EvolveError::NonConvergence`] — an inner iterative routine (the
//!   tridiagonal QL eigensolver behind the Krylov backend) failed to
//!   converge; the originating [`MathError`] is preserved as the source.
//! - [`EvolveError::OrderOverflow`] — a Chebyshev expansion would require an
//!   absurd polynomial order (span beyond
//!   [`MAX_EXP_SPAN`](qturbo_math::chebyshev::MAX_EXP_SPAN)).
//!
//! Recovered failures (fallback to the Taylor backend mid-schedule) are
//! reported through [`RecoveryLog`] rather than as errors.

use std::fmt;

use qturbo_math::MathError;

use crate::stepper::StepperKind;

/// Typed failure reported by the fallible (`try_*`) evolution entry points.
#[derive(Debug, Clone, PartialEq)]
pub enum EvolveError {
    /// The caller supplied an input that can never be evolved.
    InvalidInput {
        /// Human-readable description of the offending argument.
        context: String,
    },
    /// A NaN or infinity appeared in the state (or an intermediate norm).
    NonFiniteState {
        /// Backend that detected the non-finite value.
        backend: StepperKind,
        /// Schedule segment index, when evolution ran over a schedule.
        segment: Option<usize>,
    },
    /// The state norm drifted beyond the guardrail threshold.
    NormDrift {
        /// Backend that detected the drift.
        backend: StepperKind,
        /// Schedule segment index, when evolution ran over a schedule.
        segment: Option<usize>,
        /// Observed relative drift `|norm - reference| / reference`.
        relative_drift: f64,
    },
    /// An inner iterative math routine failed to converge.
    NonConvergence {
        /// Backend whose inner solver failed.
        backend: StepperKind,
        /// Schedule segment index, when evolution ran over a schedule.
        segment: Option<usize>,
        /// The originating math-layer error.
        source: MathError,
    },
    /// A Chebyshev expansion would need an unreasonably large order.
    OrderOverflow {
        /// Backend that rejected the expansion.
        backend: StepperKind,
        /// Schedule segment index, when evolution ran over a schedule.
        segment: Option<usize>,
        /// The requested expansion span `radius * duration`.
        span: f64,
        /// The largest span the expansion supports.
        max_span: f64,
    },
}

impl EvolveError {
    /// Stamps `index` as the segment of this error if none is recorded yet.
    ///
    /// Steppers raise errors without schedule context (`segment: None`); the
    /// schedule loop uses this to attach the segment index on the way out.
    #[must_use]
    pub fn with_segment(mut self, index: usize) -> Self {
        match &mut self {
            Self::InvalidInput { .. } => {}
            Self::NonFiniteState { segment, .. }
            | Self::NormDrift { segment, .. }
            | Self::NonConvergence { segment, .. }
            | Self::OrderOverflow { segment, .. } => {
                if segment.is_none() {
                    *segment = Some(index);
                }
            }
        }
        self
    }
}

fn segment_suffix(segment: &Option<usize>) -> String {
    match segment {
        Some(index) => format!(" (schedule segment {index})"),
        None => String::new(),
    }
}

impl fmt::Display for EvolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidInput { context } => {
                write!(f, "invalid evolution input: {context}")
            }
            Self::NonFiniteState { backend, segment } => {
                write!(
                    f,
                    "non-finite amplitudes detected by the {} backend{}",
                    backend.name(),
                    segment_suffix(segment)
                )
            }
            Self::NormDrift {
                backend,
                segment,
                relative_drift,
            } => {
                write!(
                    f,
                    "state norm drifted by a relative {relative_drift:.3e} under the {} backend{}",
                    backend.name(),
                    segment_suffix(segment)
                )
            }
            Self::NonConvergence {
                backend,
                segment,
                source,
            } => {
                write!(
                    f,
                    "{} backend solver failed to converge{}: {source}",
                    backend.name(),
                    segment_suffix(segment)
                )
            }
            Self::OrderOverflow {
                backend,
                segment,
                span,
                max_span,
            } => {
                write!(
                    f,
                    "{} expansion span {span:.3e} exceeds the supported maximum {max_span:.3e}{}",
                    backend.name(),
                    segment_suffix(segment)
                )
            }
        }
    }
}

impl std::error::Error for EvolveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::NonConvergence { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// A single recovered failure: the schedule loop fell back to the Taylor
/// backend after `backend` tripped a guardrail.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryEvent {
    /// Segment index at which the failure occurred, when known.
    pub segment: Option<usize>,
    /// The backend that failed the guardrail.
    pub backend: StepperKind,
    /// The backend that re-ran the segment successfully.
    pub fallback: StepperKind,
    /// The error the failing backend reported.
    pub error: EvolveError,
}

/// Bounded log of recovered failures accumulated by a
/// [`Propagator`](crate::propagate::Propagator).
///
/// Cleared alongside the pass counters by
/// [`Propagator::reset_kernel_applications`](crate::propagate::Propagator::reset_kernel_applications).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryLog {
    events: Vec<RecoveryEvent>,
}

/// Cap on recorded recovery events, mirroring the segment-decision cap.
const MAX_RECORDED_RECOVERIES: usize = 1 << 16;

impl RecoveryLog {
    /// Builds a log from a slice of events (truncated at the recording
    /// cap). Used by [`EmulatedDevice`](crate::device::EmulatedDevice) to
    /// slice a shared propagator's log into per-run views.
    #[must_use]
    pub fn from_events(events: &[RecoveryEvent]) -> RecoveryLog {
        let take = events.len().min(MAX_RECORDED_RECOVERIES);
        RecoveryLog {
            events: events[..take].to_vec(),
        }
    }

    /// The recovered failures, in schedule order.
    #[must_use]
    pub fn events(&self) -> &[RecoveryEvent] {
        &self.events
    }

    /// Number of recorded recoveries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no recovery has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub(crate) fn clear(&mut self) {
        self.events.clear();
    }

    pub(crate) fn push(&mut self, event: RecoveryEvent) {
        if self.events.len() < MAX_RECORDED_RECOVERIES {
            self.events.push(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_segment_stamps_only_missing_indices() {
        let err = EvolveError::NonFiniteState {
            backend: StepperKind::Krylov,
            segment: None,
        };
        let stamped = err.with_segment(4);
        assert_eq!(
            stamped,
            EvolveError::NonFiniteState {
                backend: StepperKind::Krylov,
                segment: Some(4),
            }
        );
        let restamped = stamped.with_segment(9);
        assert_eq!(
            restamped,
            EvolveError::NonFiniteState {
                backend: StepperKind::Krylov,
                segment: Some(4),
            }
        );
    }

    #[test]
    fn display_mentions_backend_and_segment() {
        let err = EvolveError::NormDrift {
            backend: StepperKind::Chebyshev,
            segment: Some(2),
            relative_drift: 0.5,
        };
        let text = err.to_string();
        assert!(text.contains("chebyshev"));
        assert!(text.contains("segment 2"));
    }

    #[test]
    fn non_convergence_exposes_math_source() {
        use std::error::Error;
        let err = EvolveError::NonConvergence {
            backend: StepperKind::Krylov,
            segment: None,
            source: MathError::NoConvergence {
                routine: "tridiagonal_ql",
                iterations: 30,
            },
        };
        assert!(err.source().is_some());
    }

    #[test]
    fn recovery_log_accumulates_and_clears() {
        let mut log = RecoveryLog::default();
        assert!(log.is_empty());
        log.push(RecoveryEvent {
            segment: Some(0),
            backend: StepperKind::Krylov,
            fallback: StepperKind::Taylor,
            error: EvolveError::InvalidInput {
                context: "test".into(),
            },
        });
        assert_eq!(log.len(), 1);
        log.clear();
        assert!(log.is_empty());
    }
}
