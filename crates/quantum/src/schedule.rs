//! Compiled schedules: one mask layout shared across the segments of a
//! piecewise-constant (time-dependent) Hamiltonian.
//!
//! # Why
//!
//! A discretized ramp — the paper's MIS annealing sweep (§5.3) or any
//! Trotterized time-dependent target — produces hundreds of segments whose
//! Hamiltonians share the exact same Pauli strings and differ only in their
//! coefficients. Recompiling each segment through
//! [`CompiledHamiltonian::compile`](crate::compiled::CompiledHamiltonian::compile)
//! redoes the structural work every time, including the `O(#diag · 2ⁿ)`
//! diagonal-table build, even though nothing structural changed.
//!
//! [`CompiledSchedule`] compiles the *structure* once per run of
//! structure-equal segments — the `(x_mask, z_mask, i^{y_count})` triple and
//! flip/gather classification of every term, in the Hamiltonian's canonical
//! term order — and then materializes each segment as a per-term **weight
//! vector** in `O(#terms)`: coefficient swaps, no `2ⁿ`-sized work at all.
//! Runs are detected with [`Hamiltonian::structure_fingerprint`] (confirmed
//! by [`Hamiltonian::same_structure`]), so schedules that alternate between
//! a few structures still reuse each layout.
//!
//! The per-segment kernels lower to the same threaded fused write pass the
//! constant-Hamiltonian path uses (`FusedKernel` in [`crate::compiled`]).
//! Diagonal terms keep their table fast path: at *evolve* time the segment's
//! diagonal weights are folded into a propagator-owned scratch table — one
//! `O(#diag · 2ⁿ)` fill per segment into a buffer reused across all of them,
//! instead of recompile-per-segment's per-segment allocation plus full term
//! re-classification. Compile-time segment cost stays strictly `O(#terms)`
//! — see `BENCH_schedule.json` for both the compile-portion and end-to-end
//! evolution comparisons.
//!
//! # Example
//!
//! ```
//! use qturbo_quantum::schedule::CompiledSchedule;
//! use qturbo_quantum::{Propagator, StateVector};
//! use qturbo_hamiltonian::{Hamiltonian, Pauli, PauliString, PiecewiseHamiltonian};
//!
//! // A linear ramp: same structure in every segment, different weights.
//! let ramp = PiecewiseHamiltonian::discretize(
//!     |t| Hamiltonian::from_terms(2, [
//!         (1.0 - t, PauliString::single(0, Pauli::X)),
//!         (t, PauliString::two(0, Pauli::Z, 1, Pauli::Z)),
//!     ]),
//!     1.0,
//!     50,
//! );
//! let schedule = CompiledSchedule::compile_piecewise(&ramp);
//! assert_eq!(schedule.num_segments(), 50);
//! assert_eq!(schedule.num_layouts(), 1); // one shared mask layout
//!
//! let mut state = StateVector::zero_state(2);
//! Propagator::new().evolve_schedule_in_place(&schedule, &mut state);
//! assert!((state.norm() - 1.0).abs() < 1e-10);
//! ```

use crate::compiled::{CompiledTerm, FusedKernel};
use crate::stepper::SpectralBound;
use qturbo_hamiltonian::{Hamiltonian, PauliString, PiecewiseHamiltonian};
use qturbo_math::Complex;
use std::sync::Arc;

/// Structural classification of one term of a layout, in canonical term
/// order. The weight-independent part of a [`CompiledTerm`].
#[derive(Debug, Clone, PartialEq)]
enum TermClass {
    /// Diagonal (`Z`-products and the identity): `x_mask == 0` implies no
    /// `Y` factors, so the weight is the real coefficient. Folded into a
    /// propagator-owned scratch table at evolve time (one `O(2ⁿ)` fill per
    /// segment, reusing the buffer — the *compile*-time swap stays
    /// `O(#terms)`).
    Diag { z_mask: usize },
    /// Pure bit-flip (`X`-products): `z_mask == 0` implies no `Y` factors, so
    /// the weight is always the real coefficient.
    Flip { x_mask: usize },
    /// Everything else: weight is `i^{y_count} · coefficient`.
    Gather {
        x_mask: usize,
        z_mask: usize,
        y_phase: Complex,
    },
}

/// The shared structural layout of one run of structure-equal segments: the
/// canonical Pauli strings plus their mask classification.
#[derive(Debug, Clone, PartialEq)]
struct ScheduleLayout {
    fingerprint: u64,
    strings: Vec<PauliString>,
    classes: Vec<TermClass>,
}

impl ScheduleLayout {
    fn build(hamiltonian: &Hamiltonian) -> Self {
        let mut strings = Vec::with_capacity(hamiltonian.num_terms());
        let mut classes = Vec::with_capacity(hamiltonian.num_terms());
        for (_, string) in hamiltonian.terms() {
            let unit = CompiledTerm::compile(1.0, string);
            let class = if unit.x_mask() == 0 {
                TermClass::Diag {
                    z_mask: unit.z_mask(),
                }
            } else if unit.z_mask() == 0 {
                TermClass::Flip {
                    x_mask: unit.x_mask(),
                }
            } else {
                TermClass::Gather {
                    x_mask: unit.x_mask(),
                    z_mask: unit.z_mask(),
                    y_phase: unit.weight(),
                }
            };
            strings.push(string.clone());
            classes.push(class);
        }
        ScheduleLayout {
            fingerprint: hamiltonian.structure_fingerprint(),
            strings,
            classes,
        }
    }

    /// Exact structure match (the fingerprint is only a pre-filter).
    fn matches(&self, hamiltonian: &Hamiltonian) -> bool {
        hamiltonian.num_terms() == self.strings.len()
            && hamiltonian
                .terms()
                .zip(&self.strings)
                .all(|((_, s), own)| s == own)
    }
}

/// One segment materialized against its layout: the per-term weights (in the
/// layout's classified order), the duration, and the step-sizing strength.
#[derive(Debug, Clone, PartialEq)]
struct CompiledSegment {
    layout: usize,
    duration: f64,
    bound: SpectralBound,
    diag_terms: Vec<(usize, f64)>,
    flip_terms: Vec<(usize, f64)>,
    gather_terms: Vec<CompiledTerm>,
}

/// A piecewise-constant Hamiltonian compiled **once**: shared mask layouts
/// per structure run, per-segment weight vectors swapped in `O(#terms)`.
///
/// Drive it with [`Propagator::evolve_schedule_in_place`](crate::Propagator::evolve_schedule_in_place)
/// or the [`crate::propagate::evolve_schedule`] convenience wrapper. The
/// recompile-per-segment path
/// ([`Propagator::evolve_piecewise_in_place`](crate::Propagator::evolve_piecewise_in_place))
/// is retained as the reference; `BENCH_schedule.json` tracks the two against
/// each other.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledSchedule {
    num_qubits: usize,
    /// Shared with every [`scaled_weights`](CompiledSchedule::scaled_weights)
    /// view: a global amplitude scale changes no structure, so the layouts
    /// are reference-counted rather than cloned.
    layouts: Arc<Vec<ScheduleLayout>>,
    segments: Vec<CompiledSegment>,
}

impl CompiledSchedule {
    /// Compiles a sequence of `(Hamiltonian, duration)` segments into shared
    /// layouts plus per-segment weight vectors.
    ///
    /// Consecutive (and non-consecutive) segments whose Hamiltonians share
    /// their term structure reuse one layout; a fully structure-uniform
    /// schedule — the common case for a discretized ramp — compiles exactly
    /// one.
    ///
    /// # Panics
    ///
    /// Panics if any duration is negative or not finite.
    pub fn compile(segments: &[(Hamiltonian, f64)]) -> Self {
        let num_qubits = segments
            .iter()
            .map(|(h, _)| h.num_qubits())
            .max()
            .unwrap_or(0);
        let mut layouts: Vec<ScheduleLayout> = Vec::new();
        let mut compiled = Vec::with_capacity(segments.len());
        for (hamiltonian, duration) in segments {
            assert!(
                duration.is_finite() && *duration >= 0.0,
                "segment duration must be non-negative"
            );
            let fingerprint = hamiltonian.structure_fingerprint();
            let layout = layouts
                .iter()
                .position(|l| l.fingerprint == fingerprint && l.matches(hamiltonian))
                .unwrap_or_else(|| {
                    layouts.push(ScheduleLayout::build(hamiltonian));
                    layouts.len() - 1
                });
            compiled.push(Self::build_segment(
                layout,
                &layouts[layout],
                hamiltonian,
                *duration,
            ));
        }
        CompiledSchedule {
            num_qubits,
            layouts: Arc::new(layouts),
            segments: compiled,
        }
    }

    /// Compiles a [`PiecewiseHamiltonian`] (segments in evolution order).
    pub fn compile_piecewise(piecewise: &PiecewiseHamiltonian) -> Self {
        let segments: Vec<(Hamiltonian, f64)> = piecewise
            .segments()
            .iter()
            .map(|s| (s.hamiltonian.clone(), s.duration))
            .collect();
        Self::compile(&segments)
    }

    /// The `O(#terms)` weight swap: fills the segment's flip/gather weight
    /// vectors by zipping the Hamiltonian's canonical coefficients with the
    /// layout's structural classification. No `2ⁿ`-sized work.
    fn build_segment(
        layout_index: usize,
        layout: &ScheduleLayout,
        hamiltonian: &Hamiltonian,
        duration: f64,
    ) -> CompiledSegment {
        let mut diag_terms = Vec::new();
        let mut flip_terms = Vec::new();
        let mut gather_terms = Vec::new();
        // Spectral enclosure, accumulated alongside the weight swap: identity
        // terms shift the center, everything else widens the radius (see
        // [`SpectralBound`]).
        let mut center = 0.0;
        let mut radius = 0.0;
        for ((coefficient, _), class) in hamiltonian.terms().zip(&layout.classes) {
            match class {
                TermClass::Diag { z_mask } => {
                    if *z_mask == 0 {
                        center += coefficient;
                    } else {
                        radius += coefficient.abs();
                    }
                    diag_terms.push((*z_mask, coefficient));
                }
                TermClass::Flip { x_mask } => {
                    radius += coefficient.abs();
                    flip_terms.push((*x_mask, coefficient));
                }
                TermClass::Gather {
                    x_mask,
                    z_mask,
                    y_phase,
                } => {
                    radius += coefficient.abs();
                    gather_terms.push(CompiledTerm::from_parts(
                        *x_mask,
                        *z_mask,
                        y_phase.scale(coefficient),
                    ));
                }
            }
        }
        CompiledSegment {
            layout: layout_index,
            duration,
            bound: SpectralBound {
                center,
                radius,
                // Same step-sizing strength as the constant-Hamiltonian path
                // so both produce identical Taylor step counts.
                step_strength: hamiltonian.coefficient_l1_norm()
                    + hamiltonian.max_abs_coefficient(),
            },
            diag_terms,
            flip_terms,
            gather_terms,
        }
    }

    /// Number of qubits the schedule acts on (the maximum over segments).
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of segments, in evolution order.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Number of distinct mask layouts compiled. A structure-uniform schedule
    /// (every segment the same Pauli strings) compiles exactly one — the
    /// measure of how much structural reuse the schedule achieved.
    pub fn num_layouts(&self) -> usize {
        self.layouts.len()
    }

    /// Returns `true` when there are no segments.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Total evolution time over all segments.
    pub fn total_time(&self) -> f64 {
        self.segments.iter().map(|s| s.duration).sum()
    }

    /// Duration of segment `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn segment_duration(&self, index: usize) -> f64 {
        self.segments[index].duration
    }

    /// Step-sizing strength (`‖c‖₁ + max|c|`) of segment `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn segment_step_strength(&self, index: usize) -> f64 {
        self.segments[index].bound.step_strength
    }

    /// The spectral bound of segment `index` (center, radius, step
    /// strength), from which the steppers size their work.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn segment_bound(&self, index: usize) -> SpectralBound {
        self.segments[index].bound
    }

    /// A view of this schedule with every coefficient multiplied by `scale`
    /// — the shape of a per-run global amplitude miscalibration. The term
    /// *structure* is untouched, so the mask layouts are shared with the
    /// original (`Arc`, no structural work, no `2ⁿ`-sized work): the swap is
    /// `O(#segments · #terms)` over the weight vectors alone. This is what
    /// lets [`crate::EmulatedDevice`] compile a schedule once and reuse the
    /// layout across every noise realization.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not finite.
    pub fn scaled_weights(&self, scale: f64) -> CompiledSchedule {
        assert!(scale.is_finite(), "amplitude scale must be finite");
        let segments = self
            .segments
            .iter()
            .map(|segment| CompiledSegment {
                layout: segment.layout,
                duration: segment.duration,
                bound: SpectralBound {
                    center: segment.bound.center * scale,
                    radius: segment.bound.radius * scale.abs(),
                    step_strength: segment.bound.step_strength * scale.abs(),
                },
                diag_terms: segment
                    .diag_terms
                    .iter()
                    .map(|&(z_mask, w)| (z_mask, w * scale))
                    .collect(),
                flip_terms: segment
                    .flip_terms
                    .iter()
                    .map(|&(x_mask, w)| (x_mask, w * scale))
                    .collect(),
                gather_terms: segment
                    .gather_terms
                    .iter()
                    .map(|term| {
                        CompiledTerm::from_parts(
                            term.x_mask(),
                            term.z_mask(),
                            term.weight().scale(scale),
                        )
                    })
                    .collect(),
            })
            .collect();
        CompiledSchedule {
            num_qubits: self.num_qubits,
            layouts: Arc::clone(&self.layouts),
            segments,
        }
    }

    /// `true` when `other` shares this schedule's mask layouts (the
    /// structural reuse [`scaled_weights`](CompiledSchedule::scaled_weights)
    /// provides).
    pub fn shares_layouts_with(&self, other: &CompiledSchedule) -> bool {
        Arc::ptr_eq(&self.layouts, &other.layouts)
    }

    /// Whether segment `index` wants its diagonal terms folded into a table
    /// (same thresholds as
    /// [`CompiledHamiltonian`](crate::compiled::CompiledHamiltonian)).
    pub(crate) fn wants_diag_table(&self, index: usize) -> bool {
        self.segments[index].diag_terms.len() >= crate::compiled::DIAG_TABLE_MIN_TERMS
            && self.num_qubits <= crate::compiled::DIAG_TABLE_MAX_QUBITS
    }

    /// Materializes segment `index`'s diagonal table into `scratch`, reusing
    /// the buffer across segments (allocation happens once).
    ///
    /// `materialized` tracks which segment's table currently occupies the
    /// scratch. When the previous and current segments share a layout —
    /// which guarantees an identical diagonal mask list, and holds for every
    /// segment of a structure run — the table is updated **incrementally**
    /// by the weight deltas, one `O(2ⁿ)` pass per *changed* term only. A
    /// ramp that sweeps a detuning while the couplings stay constant (the
    /// MIS annealing shape) touches a fraction of the diagonal terms per
    /// segment; the constant ones cost nothing.
    pub(crate) fn update_diag_table(
        &self,
        index: usize,
        materialized: &mut Option<usize>,
        scratch: &mut Vec<f64>,
    ) {
        let terms = &self.segments[index].diag_terms;
        let incremental = materialized
            .is_some_and(|prev| self.segments[prev].layout == self.segments[index].layout);
        if incremental {
            let prev_terms = &self.segments[materialized.unwrap()].diag_terms;
            for (&(z_mask, new_weight), &(_, old_weight)) in terms.iter().zip(prev_terms) {
                let delta = new_weight - old_weight;
                if delta == 0.0 {
                    continue;
                }
                for (basis, slot) in scratch.iter_mut().enumerate() {
                    *slot += delta * (1.0 - 2.0 * ((basis & z_mask).count_ones() & 1) as f64);
                }
            }
        } else {
            scratch.clear();
            scratch.resize(1 << self.num_qubits, 0.0);
            for (basis, slot) in scratch.iter_mut().enumerate() {
                *slot = crate::compiled::diagonal_value(terms, basis);
            }
        }
        *materialized = Some(index);
    }

    /// The fused-kernel view of segment `index`.
    ///
    /// `diag_table` must be the table materialized by
    /// [`update_diag_table`](CompiledSchedule::update_diag_table) when
    /// [`wants_diag_table`](CompiledSchedule::wants_diag_table) is set, and
    /// empty otherwise — in which case the diagonal terms are evaluated on
    /// the fly inside the kernel.
    pub(crate) fn segment_kernel<'a>(
        &'a self,
        index: usize,
        diag_table: &'a [f64],
    ) -> FusedKernel<'a> {
        let segment = &self.segments[index];
        FusedKernel {
            num_qubits: self.num_qubits,
            diag_table,
            diag_terms: if diag_table.is_empty() {
                &segment.diag_terms
            } else {
                &[]
            },
            flip_terms: &segment.flip_terms,
            gather_terms: &segment.gather_terms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propagate::{evolve_piecewise, evolve_schedule};
    use crate::StateVector;
    use qturbo_hamiltonian::Pauli;

    fn ramp(num_segments: usize) -> PiecewiseHamiltonian {
        PiecewiseHamiltonian::discretize(
            |t| {
                Hamiltonian::from_terms(
                    3,
                    [
                        (1.0 - 0.5 * t, PauliString::single(0, Pauli::X)),
                        (0.3 + t, PauliString::two(0, Pauli::Z, 1, Pauli::Z)),
                        (0.2 * t + 0.1, PauliString::single(2, Pauli::Y)),
                    ],
                )
            },
            1.0,
            num_segments,
        )
    }

    #[test]
    fn uniform_ramp_compiles_one_layout() {
        let schedule = CompiledSchedule::compile_piecewise(&ramp(20));
        assert_eq!(schedule.num_segments(), 20);
        assert_eq!(schedule.num_layouts(), 1);
        assert_eq!(schedule.num_qubits(), 3);
        assert!((schedule.total_time() - 1.0).abs() < 1e-12);
        assert!(schedule.segment_duration(0) > 0.0);
        assert!(schedule.segment_step_strength(0) > 0.0);
        assert!(!schedule.is_empty());
    }

    #[test]
    fn mixed_structures_get_separate_layouts_and_reuse_repeats() {
        let a = Hamiltonian::from_terms(2, [(1.0, PauliString::single(0, Pauli::X))]);
        let b = Hamiltonian::from_terms(2, [(0.5, PauliString::two(0, Pauli::Z, 1, Pauli::Z))]);
        // a, b, a again: the third segment reuses the first layout.
        let schedule =
            CompiledSchedule::compile(&[(a.clone(), 0.1), (b, 0.2), (a.scaled(2.0), 0.3)]);
        assert_eq!(schedule.num_segments(), 3);
        assert_eq!(schedule.num_layouts(), 2);
    }

    #[test]
    fn schedule_evolution_matches_recompile_per_segment() {
        let piecewise = ramp(12);
        let segments: Vec<(Hamiltonian, f64)> = piecewise
            .segments()
            .iter()
            .map(|s| (s.hamiltonian.clone(), s.duration))
            .collect();
        let initial = StateVector::plus_state(3);
        let reference = evolve_piecewise(&initial, &segments);
        let schedule = CompiledSchedule::compile_piecewise(&piecewise);
        let fast = evolve_schedule(&initial, &schedule);
        for (a, b) in fast.amplitudes().iter().zip(reference.amplitudes()) {
            assert!((*a - *b).abs() < 1e-10, "{a} != {b}");
        }
    }

    #[test]
    fn empty_schedule_is_identity() {
        let schedule = CompiledSchedule::compile(&[]);
        assert!(schedule.is_empty());
        assert_eq!(schedule.num_layouts(), 0);
        let state = StateVector::plus_state(2);
        let evolved = evolve_schedule(&state, &schedule);
        assert!(evolved.fidelity(&state) > 1.0 - 1e-15);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_duration_panics() {
        let h = Hamiltonian::from_terms(1, [(1.0, PauliString::single(0, Pauli::X))]);
        let _ = CompiledSchedule::compile(&[(h, -0.5)]);
    }

    #[test]
    fn scaled_weights_matches_recompiling_scaled_segments() {
        let piecewise = ramp(10);
        let segments: Vec<(Hamiltonian, f64)> = piecewise
            .segments()
            .iter()
            .map(|s| (s.hamiltonian.clone(), s.duration))
            .collect();
        let schedule = CompiledSchedule::compile(&segments);
        for &scale in &[0.85, 1.0, -0.4, 2.5] {
            let scaled = schedule.scaled_weights(scale);
            // Layouts are shared, not cloned.
            assert!(schedule.shares_layouts_with(&scaled));
            assert_eq!(scaled.num_segments(), schedule.num_segments());
            assert!((scaled.total_time() - schedule.total_time()).abs() < 1e-15);
            // Physics matches compiling the scaled Hamiltonians from scratch.
            let rescaled: Vec<(Hamiltonian, f64)> = segments
                .iter()
                .map(|(h, d)| (h.scaled(scale), *d))
                .collect();
            let reference = CompiledSchedule::compile(&rescaled);
            let initial = StateVector::plus_state(3);
            let fast = evolve_schedule(&initial, &scaled);
            let slow = evolve_schedule(&initial, &reference);
            for (a, b) in fast.amplitudes().iter().zip(slow.amplitudes()) {
                assert!((*a - *b).abs() < 1e-10, "scale {scale}: {a} != {b}");
            }
            // Step-sizing metadata rescales with the weights.
            assert!(
                (scaled.segment_step_strength(0) - schedule.segment_step_strength(0) * scale.abs())
                    .abs()
                    < 1e-12
            );
        }
        // An independently compiled schedule does not share layouts.
        assert!(!schedule.shares_layouts_with(&CompiledSchedule::compile(&segments)));
    }

    #[test]
    fn segment_bound_encloses_the_spectrum() {
        let h = Hamiltonian::from_terms(
            2,
            [
                (0.4, PauliString::identity()),
                (1.5, PauliString::two(0, Pauli::Z, 1, Pauli::Z)),
                (-0.7, PauliString::single(0, Pauli::X)),
            ],
        );
        let schedule = CompiledSchedule::compile(&[(h, 1.0)]);
        let bound = schedule.segment_bound(0);
        assert!((bound.center - 0.4).abs() < 1e-15);
        assert!((bound.radius - 2.2).abs() < 1e-15);
        assert_eq!(bound.step_strength, schedule.segment_step_strength(0));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_scale_panics() {
        let h = Hamiltonian::from_terms(1, [(1.0, PauliString::single(0, Pauli::X))]);
        let schedule = CompiledSchedule::compile(&[(h, 0.5)]);
        let _ = schedule.scaled_weights(f64::NAN);
    }
}
