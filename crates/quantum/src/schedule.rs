//! Compiled schedules: one **columnar** mask layout shared across the
//! segments of a piecewise-constant (time-dependent) Hamiltonian.
//!
//! # Why
//!
//! A discretized ramp — the paper's MIS annealing sweep (§5.3) or any
//! Trotterized time-dependent target — produces hundreds of segments whose
//! Hamiltonians share the exact same Pauli strings and differ only in their
//! coefficients. Recompiling each segment through
//! [`CompiledHamiltonian::compile`](crate::compiled::CompiledHamiltonian::compile)
//! redoes the structural work every time, including the `O(#diag · 2ⁿ)`
//! diagonal-table build, even though nothing structural changed.
//!
//! [`CompiledSchedule`] compiles the *structure* once per run of
//! structure-equal segments — the `(x_mask, z_mask, i^{y_count})` triple and
//! diag/flip/gather classification of every term — and stores it
//! **columnar**: one shared mask array per layout, plus an `S × T` weight
//! matrix holding every segment's real coefficients (one `f64` per term per
//! segment, in `[diag | flip | gather]` column order). Materializing a
//! segment is an `O(#terms)` row fill; *nothing* mask-shaped is rebuilt per
//! segment, and the per-segment memory is one scalar per term instead of a
//! re-materialized `(mask, weight)` vector — the layout batched
//! multi-segment kernels will want. Runs are detected with
//! [`Hamiltonian::structure_fingerprint`] (confirmed by
//! [`Hamiltonian::same_structure`]), so schedules that alternate between a
//! few structures still reuse each layout.
//!
//! The per-segment kernels lower to the same fused write pass the
//! constant-Hamiltonian path uses (`FusedKernel` in [`crate::compiled`]),
//! which borrows masks from the layout and weights from the matrix row
//! directly — and executes under the driving propagator's one
//! [`ExecutionContext`](crate::ExecutionContext): the SIMD-lane path and the
//! persistent worker pool are configured once per
//! [`Propagator`](crate::Propagator) and reused by every segment of every
//! schedule it runs, so a thousand-segment ramp pays zero per-segment
//! thread-spawn or configuration cost. Diagonal terms keep their table fast path: at *evolve* time the
//! segment's diagonal weight columns are folded into a propagator-owned
//! scratch table — one `O(#diag · 2ⁿ)` fill per segment into a buffer reused
//! across all of them, updated **incrementally** by weight deltas within a
//! structure run. The fill also tracks the table's exact minimum and
//! maximum, which tightens the segment's [`SpectralBound`] (see
//! [`SpectralBound::with_exact_diagonal`]) — the input both the Chebyshev
//! order and the automatic backend selection feed on. Compile-time segment
//! cost stays strictly `O(#terms)` — see `BENCH_schedule.json` for both the
//! compile-portion and end-to-end evolution comparisons.
//!
//! # Example
//!
//! ```
//! use qturbo_quantum::schedule::CompiledSchedule;
//! use qturbo_quantum::{Propagator, StateVector};
//! use qturbo_hamiltonian::{Hamiltonian, Pauli, PauliString, PiecewiseHamiltonian};
//!
//! // A linear ramp: same structure in every segment, different weights.
//! let ramp = PiecewiseHamiltonian::discretize(
//!     |t| Hamiltonian::from_terms(2, [
//!         (1.0 - t, PauliString::single(0, Pauli::X)),
//!         (t, PauliString::two(0, Pauli::Z, 1, Pauli::Z)),
//!     ]),
//!     1.0,
//!     50,
//! );
//! let schedule = CompiledSchedule::compile_piecewise(&ramp);
//! assert_eq!(schedule.num_segments(), 50);
//! assert_eq!(schedule.num_layouts(), 1); // one shared mask layout
//! assert_eq!(schedule.segment_weight_row(0).len(), 2); // one f64 per term
//!
//! let mut state = StateVector::zero_state(2);
//! Propagator::new().evolve_schedule_in_place(&schedule, &mut state);
//! assert!((state.norm() - 1.0).abs() < 1e-10);
//! ```

use crate::compiled::{BlockKernel, CompiledTerm, FusedKernel};
use crate::error::EvolveError;
use crate::exec::LANE_WIDTH;
use crate::stepper::SpectralBound;
use crate::telemetry::{CompileSpan, CompileTiming};
use qturbo_hamiltonian::{Hamiltonian, PauliString, PiecewiseHamiltonian};
use std::sync::Arc;

/// The shared structural layout of one run of structure-equal segments: the
/// canonical Pauli strings plus their columnar mask classification.
///
/// Weight-matrix rows for this layout follow `[diag | flip | gather]` column
/// order; `slots` maps each canonical term index to its column.
#[derive(Debug, Clone, PartialEq)]
struct ScheduleLayout {
    fingerprint: u64,
    strings: Vec<PauliString>,
    /// `z_mask` per diagonal term (`Z`-products and the identity;
    /// `x_mask == 0` implies no `Y` factors, so weights are real).
    diag_masks: Vec<usize>,
    /// `x_mask` per pure bit-flip term (`X`-products; `z_mask == 0` implies
    /// no `Y` factors, so weights are real).
    flip_masks: Vec<usize>,
    /// Remaining terms as unit-coefficient mask triples: the stored weight
    /// is the `i^{y_count}` phase alone; the segment's real coefficient
    /// lives in the weight matrix.
    gather_terms: Vec<CompiledTerm>,
    /// Canonical term index → weight-row column.
    slots: Vec<usize>,
}

impl ScheduleLayout {
    fn build(hamiltonian: &Hamiltonian) -> Self {
        // First pass: classify each term and remember its index within its
        // class; classes are concatenated `[diag | flip | gather]` once the
        // class sizes are known.
        enum Class {
            Diag,
            Flip,
            Gather,
        }
        let mut strings = Vec::with_capacity(hamiltonian.num_terms());
        let mut diag_masks = Vec::new();
        let mut flip_masks = Vec::new();
        let mut gather_terms = Vec::new();
        let mut placements = Vec::with_capacity(hamiltonian.num_terms());
        for (_, string) in hamiltonian.terms() {
            let unit = CompiledTerm::compile(1.0, string);
            if unit.x_mask() == 0 {
                placements.push((Class::Diag, diag_masks.len()));
                diag_masks.push(unit.z_mask());
            } else if unit.z_mask() == 0 {
                placements.push((Class::Flip, flip_masks.len()));
                flip_masks.push(unit.x_mask());
            } else {
                placements.push((Class::Gather, gather_terms.len()));
                gather_terms.push(unit);
            }
            strings.push(string.clone());
        }
        let flip_base = diag_masks.len();
        let gather_base = flip_base + flip_masks.len();
        let slots = placements
            .into_iter()
            .map(|(class, index)| match class {
                Class::Diag => index,
                Class::Flip => flip_base + index,
                Class::Gather => gather_base + index,
            })
            .collect();
        ScheduleLayout {
            fingerprint: hamiltonian.structure_fingerprint(),
            strings,
            diag_masks,
            flip_masks,
            gather_terms,
            slots,
        }
    }

    /// Number of weight-matrix columns (= terms) of this layout.
    fn num_columns(&self) -> usize {
        self.diag_masks.len() + self.flip_masks.len() + self.gather_terms.len()
    }

    /// Exact structure match (the fingerprint is only a pre-filter).
    fn matches(&self, hamiltonian: &Hamiltonian) -> bool {
        hamiltonian.num_terms() == self.strings.len()
            && hamiltonian
                .terms()
                .zip(&self.strings)
                .all(|((_, s), own)| s == own)
    }
}

/// One segment's metadata: which layout and weight-matrix row it reads, its
/// duration, and the compile-time spectral facts.
#[derive(Debug, Clone, PartialEq)]
struct CompiledSegment {
    layout: usize,
    /// Row index within the layout's weight matrix.
    row: usize,
    duration: f64,
    /// Triangle-inequality enclosure; tightened with the exact diagonal
    /// range at evolve time whenever the diagonal table is materialized.
    bound: SpectralBound,
    /// `Σ|w|` over the off-diagonal (flip + gather) terms — the widening the
    /// exact diagonal interval needs to stay a rigorous enclosure.
    offdiag_radius: f64,
}

/// A piecewise-constant Hamiltonian compiled **once**: shared columnar mask
/// layouts per structure run, plus an `S × T` weight matrix filled in
/// `O(#terms)` per segment.
///
/// Drive it with [`Propagator::evolve_schedule_in_place`](crate::Propagator::evolve_schedule_in_place)
/// or the [`crate::propagate::evolve_schedule`] convenience wrapper. The
/// recompile-per-segment path
/// ([`Propagator::evolve_piecewise_in_place`](crate::Propagator::evolve_piecewise_in_place))
/// is retained as the reference; `BENCH_schedule.json` tracks the two against
/// each other.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledSchedule {
    num_qubits: usize,
    /// Shared with every [`scaled_weights`](CompiledSchedule::scaled_weights)
    /// view: a global amplitude scale changes no structure, so the layouts
    /// are reference-counted rather than cloned.
    layouts: Arc<Vec<ScheduleLayout>>,
    /// Per layout, the row-major `S_l × T_l` weight matrix (`S_l` segments
    /// using the layout, `T_l` terms). Owned per view — this is the only
    /// `O(S · T)` state, one `f64` per term per segment.
    weights: Vec<Vec<f64>>,
    segments: Vec<CompiledSegment>,
    /// Compile wall time, for telemetry. Always-equal `PartialEq`
    /// (see [`CompileTiming`]) so structural schedule equality is
    /// unaffected; scaled-weight views inherit it unchanged since they
    /// avoid recompilation.
    timing: CompileTiming,
}

impl CompiledSchedule {
    /// Compiles a sequence of `(Hamiltonian, duration)` segments into shared
    /// columnar layouts plus the weight matrix.
    ///
    /// Consecutive (and non-consecutive) segments whose Hamiltonians share
    /// their term structure reuse one layout; a fully structure-uniform
    /// schedule — the common case for a discretized ramp — compiles exactly
    /// one.
    ///
    /// # Panics
    ///
    /// Panics if any duration is negative or not finite.
    pub fn compile(segments: &[(Hamiltonian, f64)]) -> Self {
        let started = std::time::Instant::now();
        let num_qubits = segments
            .iter()
            .map(|(h, _)| h.num_qubits())
            .max()
            .unwrap_or(0);
        let mut layouts: Vec<ScheduleLayout> = Vec::new();
        let mut weights: Vec<Vec<f64>> = Vec::new();
        let mut compiled = Vec::with_capacity(segments.len());
        for (hamiltonian, duration) in segments {
            assert!(
                duration.is_finite() && *duration >= 0.0,
                "segment duration must be non-negative"
            );
            let fingerprint = hamiltonian.structure_fingerprint();
            let layout = layouts
                .iter()
                .position(|l| l.fingerprint == fingerprint && l.matches(hamiltonian))
                .unwrap_or_else(|| {
                    layouts.push(ScheduleLayout::build(hamiltonian));
                    weights.push(Vec::new());
                    layouts.len() - 1
                });
            compiled.push(Self::fill_row(
                layout,
                &layouts[layout],
                &mut weights[layout],
                hamiltonian,
                *duration,
            ));
        }
        CompiledSchedule {
            num_qubits,
            layouts: Arc::new(layouts),
            weights,
            segments: compiled,
            timing: CompileTiming {
                wall_ns: started.elapsed().as_nanos() as u64,
            },
        }
    }

    /// Compiles a [`PiecewiseHamiltonian`] (segments in evolution order).
    pub fn compile_piecewise(piecewise: &PiecewiseHamiltonian) -> Self {
        let segments: Vec<(Hamiltonian, f64)> = piecewise
            .segments()
            .iter()
            .map(|s| (s.hamiltonian.clone(), s.duration))
            .collect();
        Self::compile(&segments)
    }

    /// The `O(#terms)` weight swap: appends one row to the layout's weight
    /// matrix by scattering the Hamiltonian's canonical coefficients through
    /// the layout's column slots. No `2ⁿ`-sized and no mask-sized work.
    fn fill_row(
        layout_index: usize,
        layout: &ScheduleLayout,
        matrix: &mut Vec<f64>,
        hamiltonian: &Hamiltonian,
        duration: f64,
    ) -> CompiledSegment {
        let columns = layout.num_columns();
        let row = matrix.len() / columns.max(1);
        let base = matrix.len();
        matrix.resize(base + columns, 0.0);
        // Spectral enclosure, accumulated alongside the row fill: identity
        // terms shift the center, everything else widens the radius (see
        // [`SpectralBound`]); off-diagonal terms are tracked separately so
        // the exact diagonal range can replace the diagonal contribution at
        // evolve time.
        let mut center = 0.0;
        let mut radius = 0.0;
        let mut offdiag_radius = 0.0;
        let flip_base = layout.diag_masks.len();
        for ((coefficient, _), &slot) in hamiltonian.terms().zip(&layout.slots) {
            matrix[base + slot] = coefficient;
            if slot < flip_base {
                if layout.diag_masks[slot] == 0 {
                    center += coefficient;
                } else {
                    radius += coefficient.abs();
                }
            } else {
                radius += coefficient.abs();
                offdiag_radius += coefficient.abs();
            }
        }
        CompiledSegment {
            layout: layout_index,
            row,
            duration,
            bound: SpectralBound {
                center,
                radius,
                // Same step-sizing strength as the constant-Hamiltonian path
                // so both produce identical Taylor step counts.
                step_strength: hamiltonian.coefficient_l1_norm()
                    + hamiltonian.max_abs_coefficient(),
            },
            offdiag_radius,
        }
    }

    /// Number of qubits the schedule acts on (the maximum over segments).
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of segments, in evolution order.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Number of distinct mask layouts compiled. A structure-uniform schedule
    /// (every segment the same Pauli strings) compiles exactly one — the
    /// measure of how much structural reuse the schedule achieved.
    pub fn num_layouts(&self) -> usize {
        self.layouts.len()
    }

    /// Returns `true` when there are no segments.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Total evolution time over all segments.
    pub fn total_time(&self) -> f64 {
        self.segments.iter().map(|s| s.duration).sum()
    }

    /// Duration of segment `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn segment_duration(&self, index: usize) -> f64 {
        self.segments[index].duration
    }

    /// Step-sizing strength (`‖c‖₁ + max|c|`) of segment `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn segment_step_strength(&self, index: usize) -> f64 {
        self.segments[index].bound.step_strength
    }

    /// The compile-time spectral bound of segment `index` (center, radius,
    /// step strength), from which the steppers size their work. This is the
    /// `O(#terms)` triangle-inequality enclosure; the evolve loop tightens
    /// it with the exact diagonal range whenever the segment's diagonal
    /// table is materialized.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn segment_bound(&self, index: usize) -> SpectralBound {
        self.segments[index].bound
    }

    /// `Σ|w|` over segment `index`'s off-diagonal (flip + gather) terms —
    /// the widening [`SpectralBound::with_exact_diagonal`] needs.
    pub(crate) fn segment_offdiag_radius(&self, index: usize) -> f64 {
        self.segments[index].offdiag_radius
    }

    /// Segment `index`'s weight-matrix row: one real coefficient per term in
    /// the layout's `[diag | flip | gather]` column order (within each
    /// class, terms keep the Hamiltonian's canonical term order). Segments
    /// sharing a layout index into the same `S × T` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn segment_weight_row(&self, index: usize) -> &[f64] {
        let segment = &self.segments[index];
        let columns = self.layouts[segment.layout].num_columns();
        &self.weights[segment.layout][segment.row * columns..(segment.row + 1) * columns]
    }

    /// The mask-layout index segment `index` reads (in `0..`[`num_layouts`](CompiledSchedule::num_layouts)).
    /// Segments with equal layout indices share one columnar mask array —
    /// the precondition for chaining them through a batched multi-segment
    /// sweep.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn segment_layout(&self, index: usize) -> usize {
        self.segments[index].layout
    }

    /// Schedule-level **introspection** of the ramp-shaped trains the
    /// batched multi-segment sweep targets: maximal ranges of consecutive
    /// segments that (a) share one mask layout, so a batched sweep reads the
    /// masks once and walks adjacent rows of the columnar weight matrix, and
    /// (b) are *tiny* — a single Taylor step each (`step_strength·Δt ≤ ½`).
    /// Zero-duration segments are skipped transparently (they are exact
    /// identities and do not break a run).
    ///
    /// This is a *conservative predictor*, not the grouping the evolution
    /// actually executes:
    /// [`Propagator::evolve_schedule_in_place`](crate::Propagator::evolve_schedule_in_place)
    /// chains whatever consecutive same-layout segments the cost model
    /// resolves to [`StepperKind::BatchedTaylor`](crate::StepperKind) — which
    /// can include multi-step segments the single-step criterion here
    /// excludes (batched evolution is numerically valid for *any* segment:
    /// it runs the per-segment Taylor series with identical step splitting
    /// and truncation, so it meets the [`EvolveOptions`](crate::EvolveOptions)
    /// tolerance by construction; the conformance suite pins it to the naive
    /// reference on every scenario family). Use this for planning and
    /// reporting — e.g. "is this schedule ramp-shaped?" — and
    /// [`Propagator::segment_decisions`](crate::Propagator::segment_decisions)
    /// for what actually ran.
    ///
    /// Singleton runs are included: even one tiny segment saves its series
    /// copy and rescale passes.
    pub fn batch_runs(&self) -> Vec<std::ops::Range<usize>> {
        let eligible = |index: usize| {
            let segment = &self.segments[index];
            segment.duration > 0.0
                && segment.bound.step_strength * segment.duration <= crate::stepper::MAX_STEP_PHASE
        };
        let mut runs = Vec::new();
        let mut index = 0;
        while index < self.segments.len() {
            if !eligible(index) {
                index += 1;
                continue;
            }
            let layout = self.segments[index].layout;
            let start = index;
            index += 1;
            while index < self.segments.len()
                && self.segments[index].layout == layout
                && (eligible(index) || self.segments[index].duration == 0.0)
            {
                index += 1;
            }
            // Trim trailing zero-duration segments out of the run.
            let mut end = index;
            while end > start + 1 && self.segments[end - 1].duration == 0.0 {
                end -= 1;
            }
            runs.push(start..end);
        }
        runs
    }

    /// A view of this schedule with every coefficient multiplied by `scale`
    /// — the shape of a per-run global amplitude miscalibration. The term
    /// *structure* is untouched, so the mask layouts are shared with the
    /// original (`Arc`, no structural work, no `2ⁿ`-sized work): the swap is
    /// `O(#segments · #terms)` over the weight matrix alone — one
    /// multiplication per scalar. This is what lets
    /// [`crate::EmulatedDevice`] compile a schedule once and reuse the
    /// layout across every noise realization.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not finite. Use
    /// [`try_scaled_weights`](CompiledSchedule::try_scaled_weights) to
    /// receive a typed error instead.
    pub fn scaled_weights(&self, scale: f64) -> CompiledSchedule {
        self.try_scaled_weights(scale)
            .unwrap_or_else(|error| panic!("{error}"))
    }

    /// Fallible variant of
    /// [`scaled_weights`](CompiledSchedule::scaled_weights).
    ///
    /// # Errors
    ///
    /// [`EvolveError::InvalidInput`] if `scale` is NaN or infinite — a
    /// non-finite scale would poison every weight, bound, and step strength
    /// of the view.
    pub fn try_scaled_weights(&self, scale: f64) -> Result<CompiledSchedule, EvolveError> {
        if !scale.is_finite() {
            return Err(EvolveError::InvalidInput {
                context: format!("amplitude scale must be finite, got {scale}"),
            });
        }
        let weights = self
            .weights
            .iter()
            .map(|matrix| matrix.iter().map(|w| w * scale).collect())
            .collect();
        let segments = self
            .segments
            .iter()
            .map(|segment| CompiledSegment {
                layout: segment.layout,
                row: segment.row,
                duration: segment.duration,
                bound: SpectralBound {
                    center: segment.bound.center * scale,
                    radius: segment.bound.radius * scale.abs(),
                    step_strength: segment.bound.step_strength * scale.abs(),
                },
                offdiag_radius: segment.offdiag_radius * scale.abs(),
            })
            .collect();
        Ok(CompiledSchedule {
            num_qubits: self.num_qubits,
            layouts: Arc::clone(&self.layouts),
            weights,
            segments,
            timing: self.timing,
        })
    }

    /// Wall nanoseconds spent in [`compile`](CompiledSchedule::compile).
    /// Scaled-weight views inherit the original compile cost — the
    /// recompilation they avoid is still attributed to them.
    pub fn compile_wall_ns(&self) -> u64 {
        self.timing.wall_ns
    }

    /// Telemetry [`CompileSpan`] describing this schedule's compilation.
    pub fn compile_span(&self) -> CompileSpan {
        CompileSpan {
            segments: self.segments.len(),
            layouts: self.layouts.len(),
            wall_ns: self.timing.wall_ns,
        }
    }

    /// `true` when `other` shares this schedule's mask layouts (the
    /// structural reuse [`scaled_weights`](CompiledSchedule::scaled_weights)
    /// provides).
    pub fn shares_layouts_with(&self, other: &CompiledSchedule) -> bool {
        Arc::ptr_eq(&self.layouts, &other.layouts)
    }

    /// Whether segment `index` wants its diagonal terms folded into a table
    /// (same thresholds as
    /// [`CompiledHamiltonian`](crate::compiled::CompiledHamiltonian)).
    pub(crate) fn wants_diag_table(&self, index: usize) -> bool {
        self.layouts[self.segments[index].layout].diag_masks.len()
            >= crate::compiled::DIAG_TABLE_MIN_TERMS
            && self.num_qubits <= crate::compiled::DIAG_TABLE_MAX_QUBITS
    }

    /// Materializes segment `index`'s diagonal table into `scratch`, reusing
    /// the buffer across segments (allocation happens once), and records the
    /// table's exact `(min, max)` — the input for the tightened per-segment
    /// [`SpectralBound`].
    ///
    /// `scratch.materialized` tracks which segment's table currently
    /// occupies the buffer. When the previous and current segments share a
    /// layout — which guarantees an identical diagonal mask list, and holds
    /// for every segment of a structure run — the table is updated
    /// **incrementally** by the weight deltas, one `O(2ⁿ)` pass per
    /// *changed* term only; the min/max fold rides along with the last
    /// delta pass, so an unchanged-diagonal segment pays nothing at all. A
    /// ramp that sweeps a detuning while the couplings stay constant (the
    /// MIS annealing shape) touches a fraction of the diagonal terms per
    /// segment; the constant ones cost nothing.
    pub(crate) fn update_diag_table(&self, index: usize, scratch: &mut DiagTableScratch) {
        let segment = &self.segments[index];
        let layout = &self.layouts[segment.layout];
        let diag_count = layout.diag_masks.len();
        let row = self.segment_weight_row(index);
        let diag_weights = &row[..diag_count];
        let incremental = scratch
            .materialized
            .filter(|&prev| self.segments[prev].layout == segment.layout);
        if let Some(prev) = incremental {
            let prev_diag = &self.segment_weight_row(prev)[..diag_count];
            // Only columns whose weight actually moved cost a pass; the
            // min/max fold rides along with the last one (each pass visits
            // every slot, so the last pass sees final values).
            let changed = diag_weights
                .iter()
                .zip(prev_diag)
                .filter(|(new, old)| *new - *old != 0.0)
                .count();
            let mut pass = 0usize;
            for (&z_mask, (new, old)) in layout
                .diag_masks
                .iter()
                .zip(diag_weights.iter().zip(prev_diag))
            {
                let delta = new - old;
                if delta == 0.0 {
                    continue;
                }
                pass += 1;
                let track_range = pass == changed;
                let mut range = (f64::INFINITY, f64::NEG_INFINITY);
                for (basis, slot) in scratch.table.iter_mut().enumerate() {
                    *slot += delta * (1.0 - 2.0 * ((basis & z_mask).count_ones() & 1) as f64);
                    if track_range {
                        range = (range.0.min(*slot), range.1.max(*slot));
                    }
                }
                if track_range {
                    scratch.range = range;
                }
            }
        } else {
            scratch.table.clear();
            scratch.table.resize(1 << self.num_qubits, 0.0);
            let mut range = (f64::INFINITY, f64::NEG_INFINITY);
            for (basis, slot) in scratch.table.iter_mut().enumerate() {
                let value =
                    crate::compiled::diagonal_value(&layout.diag_masks, diag_weights, basis);
                range = (range.0.min(value), range.1.max(value));
                *slot = value;
            }
            scratch.range = range;
        }
        scratch.materialized = Some(index);
    }

    /// The fused-kernel view of segment `index`: masks borrowed from the
    /// shared layout, weights from the segment's weight-matrix row.
    ///
    /// `diag_table` must be the table materialized by
    /// [`update_diag_table`](CompiledSchedule::update_diag_table) when
    /// [`wants_diag_table`](CompiledSchedule::wants_diag_table) is set, and
    /// empty otherwise — in which case the diagonal terms are evaluated on
    /// the fly inside the kernel.
    pub(crate) fn segment_kernel<'a>(
        &'a self,
        index: usize,
        diag_table: &'a [f64],
    ) -> FusedKernel<'a> {
        let segment = &self.segments[index];
        let layout = &self.layouts[segment.layout];
        let row = self.segment_weight_row(index);
        let flip_base = layout.diag_masks.len();
        let gather_base = flip_base + layout.flip_masks.len();
        let (diag_masks, diag_weights): (&[usize], &[f64]) = if diag_table.is_empty() {
            (&layout.diag_masks, &row[..flip_base])
        } else {
            (&[], &[])
        };
        FusedKernel {
            num_qubits: self.num_qubits,
            diag_table,
            diag_masks,
            diag_weights,
            flip_masks: &layout.flip_masks,
            flip_weights: &row[flip_base..gather_base],
            gather_terms: &layout.gather_terms,
            gather_weights: &row[gather_base..],
        }
    }

    /// Builds the per-realization scale lanes of the `R × S × T` weight
    /// extension: coherent miscalibration is a rank-1 scaling (`w · s_r`),
    /// so R scaled-schedule views collapse into this schedule's shared mask
    /// layouts and weight rows plus one padded scale lane the
    /// [`BlockKernel`] applies in-register — no `R`-fold weight
    /// materialization, one structure-of-arrays sweep.
    ///
    /// # Errors
    ///
    /// [`EvolveError::InvalidInput`] if `scales` is empty or contains a
    /// non-finite scale (the same guard as
    /// [`try_scaled_weights`](CompiledSchedule::try_scaled_weights)).
    pub(crate) fn realization_weights(
        &self,
        scales: &[f64],
    ) -> Result<RealizationWeights, EvolveError> {
        if scales.is_empty() {
            return Err(EvolveError::InvalidInput {
                context: "realization batch needs at least one amplitude scale".to_string(),
            });
        }
        if let Some(bad) = scales.iter().find(|scale| !scale.is_finite()) {
            return Err(EvolveError::InvalidInput {
                context: format!("amplitude scale must be finite, got {bad}"),
            });
        }
        let realizations = scales.len();
        let stride = realizations.next_multiple_of(LANE_WIDTH);
        let mut padded = vec![0.0f64; stride];
        padded[..realizations].copy_from_slice(scales);
        let mut scale_pairs = vec![0.0f64; 2 * stride];
        for (r, &scale) in padded.iter().enumerate() {
            scale_pairs[2 * r] = scale;
            scale_pairs[2 * r + 1] = scale;
        }
        Ok(RealizationWeights {
            stride,
            scales: padded,
            scale_pairs,
        })
    }

    /// The realization-batched kernel view of segment `index`: masks and
    /// **shared scalar weights** borrowed exactly as in
    /// [`segment_kernel`](CompiledSchedule::segment_kernel), plus the
    /// per-realization scale lanes from `weights` (built once per sweep by
    /// [`realization_weights`](CompiledSchedule::realization_weights)).
    ///
    /// `diag_table` follows the same contract as `segment_kernel` — but here
    /// it is the **unscaled** table shared by every realization; the kernel
    /// applies each realization's scale to the finished row, so one table
    /// materialization serves the whole block.
    pub(crate) fn segment_block_kernel<'a>(
        &'a self,
        index: usize,
        diag_table: &'a [f64],
        weights: &'a RealizationWeights,
    ) -> BlockKernel<'a> {
        let segment = &self.segments[index];
        let layout = &self.layouts[segment.layout];
        let row = self.segment_weight_row(index);
        let flip_base = layout.diag_masks.len();
        let gather_base = flip_base + layout.flip_masks.len();
        let (diag_masks, diag_weights): (&[usize], &[f64]) = if diag_table.is_empty() {
            (&layout.diag_masks, &row[..flip_base])
        } else {
            (&[], &[])
        };
        BlockKernel {
            num_qubits: self.num_qubits,
            stride: weights.stride,
            diag_table,
            diag_masks,
            diag_weights,
            flip_masks: &layout.flip_masks,
            flip_weights: &row[flip_base..gather_base],
            gather_terms: &layout.gather_terms,
            gather_weights: &row[gather_base..],
            scale_pairs: &weights.scale_pairs,
        }
    }
}

/// The per-realization weight extension of one [`CompiledSchedule`]:
/// coherent miscalibration scales the whole segment Hamiltonian, so the
/// `R × S × T` per-realization weight product is rank-1 (`w · s_r`) and is
/// formed **in-register** by [`BlockKernel`] — this type carries only the
/// scale lane, padded to the lane stride, in the two shapes the block path
/// consumes: raw (for shared Taylor step sizing and run-end drift phases)
/// and duplicated into complex-pair positions (for one unshuffled [`F64x8`]
/// load per lane block).
#[derive(Debug, Clone)]
pub(crate) struct RealizationWeights {
    /// Lane-aligned realization count (`realizations.next_multiple_of(4)`).
    stride: usize,
    /// The scales themselves, padded to `stride` with zeros.
    scales: Vec<f64>,
    /// Each padded scale duplicated: `[s_0, s_0, s_1, s_1, …]`, length
    /// `2 · stride`.
    scale_pairs: Vec<f64>,
}

impl RealizationWeights {
    /// The realization scales, padded to the lane stride with zeros.
    pub(crate) fn scales(&self) -> &[f64] {
        &self.scales
    }
}

/// Propagator-owned scratch for the per-segment diagonal tables: the table
/// buffer (allocated once, reused across segments), which segment currently
/// occupies it, and the table's exact `(min, max)` — maintained by
/// [`CompiledSchedule::update_diag_table`] in the same passes that fill it.
#[derive(Debug, Clone)]
pub(crate) struct DiagTableScratch {
    pub(crate) table: Vec<f64>,
    pub(crate) materialized: Option<usize>,
    pub(crate) range: (f64, f64),
}

impl DiagTableScratch {
    pub(crate) fn new() -> Self {
        DiagTableScratch {
            table: Vec::new(),
            materialized: None,
            range: (f64::INFINITY, f64::NEG_INFINITY),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propagate::{evolve_piecewise, evolve_schedule};
    use crate::StateVector;
    use qturbo_hamiltonian::Pauli;

    fn ramp(num_segments: usize) -> PiecewiseHamiltonian {
        PiecewiseHamiltonian::discretize(
            |t| {
                Hamiltonian::from_terms(
                    3,
                    [
                        (1.0 - 0.5 * t, PauliString::single(0, Pauli::X)),
                        (0.3 + t, PauliString::two(0, Pauli::Z, 1, Pauli::Z)),
                        (0.2 * t + 0.1, PauliString::single(2, Pauli::Y)),
                    ],
                )
            },
            1.0,
            num_segments,
        )
    }

    #[test]
    fn uniform_ramp_compiles_one_layout() {
        let schedule = CompiledSchedule::compile_piecewise(&ramp(20));
        assert_eq!(schedule.num_segments(), 20);
        assert_eq!(schedule.num_layouts(), 1);
        assert_eq!(schedule.num_qubits(), 3);
        assert!((schedule.total_time() - 1.0).abs() < 1e-12);
        assert!(schedule.segment_duration(0) > 0.0);
        assert!(schedule.segment_step_strength(0) > 0.0);
        assert!(!schedule.is_empty());
    }

    #[test]
    fn mixed_structures_get_separate_layouts_and_reuse_repeats() {
        let a = Hamiltonian::from_terms(2, [(1.0, PauliString::single(0, Pauli::X))]);
        let b = Hamiltonian::from_terms(2, [(0.5, PauliString::two(0, Pauli::Z, 1, Pauli::Z))]);
        // a, b, a again: the third segment reuses the first layout.
        let schedule =
            CompiledSchedule::compile(&[(a.clone(), 0.1), (b, 0.2), (a.scaled(2.0), 0.3)]);
        assert_eq!(schedule.num_segments(), 3);
        assert_eq!(schedule.num_layouts(), 2);
        // Rows within one layout stack in compile order.
        assert_eq!(schedule.segment_weight_row(0), &[1.0]);
        assert_eq!(schedule.segment_weight_row(1), &[0.5]);
        assert_eq!(schedule.segment_weight_row(2), &[2.0]);
    }

    #[test]
    fn weight_rows_follow_diag_flip_gather_column_order() {
        // Terms arrive interleaved; the columnar row groups them by class
        // while keeping the Hamiltonian's canonical term order within each
        // class (here canonical order puts the identity first).
        let h = Hamiltonian::from_terms(
            2,
            [
                (0.9, PauliString::single(0, Pauli::X)),           // flip
                (1.5, PauliString::two(0, Pauli::Z, 1, Pauli::Z)), // diag
                (-0.7, PauliString::single(1, Pauli::Y)),          // gather
                (0.4, PauliString::identity()),                    // diag
            ],
        );
        let schedule = CompiledSchedule::compile(&[(h.clone(), 0.5)]);
        // Cross-check the expected row against the canonical term order
        // itself rather than hard-coding it.
        let canonical: Vec<(f64, bool, bool)> = h
            .terms()
            .map(|(c, s)| {
                let unit = CompiledTerm::compile(1.0, s);
                (
                    c,
                    unit.x_mask() == 0,
                    unit.x_mask() != 0 && unit.z_mask() == 0,
                )
            })
            .collect();
        let mut expected: Vec<f64> = canonical
            .iter()
            .filter(|(_, diag, _)| *diag)
            .map(|(c, _, _)| *c)
            .collect();
        expected.extend(
            canonical
                .iter()
                .filter(|(_, _, flip)| *flip)
                .map(|(c, _, _)| *c),
        );
        expected.extend(
            canonical
                .iter()
                .filter(|(_, diag, flip)| !diag && !flip)
                .map(|(c, _, _)| *c),
        );
        assert_eq!(schedule.segment_weight_row(0), &expected[..]);
        assert!(expected.contains(&1.5) && expected.contains(&-0.7));
    }

    #[test]
    fn schedule_evolution_matches_recompile_per_segment() {
        let piecewise = ramp(12);
        let segments: Vec<(Hamiltonian, f64)> = piecewise
            .segments()
            .iter()
            .map(|s| (s.hamiltonian.clone(), s.duration))
            .collect();
        let initial = StateVector::plus_state(3);
        let reference = evolve_piecewise(&initial, &segments);
        let schedule = CompiledSchedule::compile_piecewise(&piecewise);
        let fast = evolve_schedule(&initial, &schedule);
        for (a, b) in fast.amplitudes().iter().zip(reference.amplitudes()) {
            assert!((*a - *b).abs() < 1e-10, "{a} != {b}");
        }
    }

    #[test]
    fn empty_schedule_is_identity() {
        let schedule = CompiledSchedule::compile(&[]);
        assert!(schedule.is_empty());
        assert_eq!(schedule.num_layouts(), 0);
        let state = StateVector::plus_state(2);
        let evolved = evolve_schedule(&state, &schedule);
        assert!(evolved.fidelity(&state) > 1.0 - 1e-15);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_duration_panics() {
        let h = Hamiltonian::from_terms(1, [(1.0, PauliString::single(0, Pauli::X))]);
        let _ = CompiledSchedule::compile(&[(h, -0.5)]);
    }

    #[test]
    fn scaled_weights_matches_recompiling_scaled_segments() {
        let piecewise = ramp(10);
        let segments: Vec<(Hamiltonian, f64)> = piecewise
            .segments()
            .iter()
            .map(|s| (s.hamiltonian.clone(), s.duration))
            .collect();
        let schedule = CompiledSchedule::compile(&segments);
        // 0.0 and −1.0 are legal miscalibration draws (a Gaussian scale
        // error can reach and cross zero): zero-scale must evolve as the
        // exact identity, negative scale as the sign-flipped Hamiltonian.
        for &scale in &[0.85, 1.0, -0.4, 2.5, 0.0, -1.0] {
            let scaled = schedule.scaled_weights(scale);
            // Layouts are shared, not cloned.
            assert!(schedule.shares_layouts_with(&scaled));
            assert_eq!(scaled.num_segments(), schedule.num_segments());
            assert!((scaled.total_time() - schedule.total_time()).abs() < 1e-15);
            // Physics matches compiling the scaled Hamiltonians from scratch.
            let rescaled: Vec<(Hamiltonian, f64)> = segments
                .iter()
                .map(|(h, d)| (h.scaled(scale), *d))
                .collect();
            let reference = CompiledSchedule::compile(&rescaled);
            let initial = StateVector::plus_state(3);
            let fast = evolve_schedule(&initial, &scaled);
            let slow = evolve_schedule(&initial, &reference);
            for (a, b) in fast.amplitudes().iter().zip(slow.amplitudes()) {
                assert!((*a - *b).abs() < 1e-10, "scale {scale}: {a} != {b}");
            }
            // Step-sizing metadata rescales with the weights.
            assert!(
                (scaled.segment_step_strength(0) - schedule.segment_step_strength(0) * scale.abs())
                    .abs()
                    < 1e-12
            );
        }
        // An independently compiled schedule does not share layouts.
        assert!(!schedule.shares_layouts_with(&CompiledSchedule::compile(&segments)));
    }

    #[test]
    fn segment_bound_encloses_the_spectrum() {
        let h = Hamiltonian::from_terms(
            2,
            [
                (0.4, PauliString::identity()),
                (1.5, PauliString::two(0, Pauli::Z, 1, Pauli::Z)),
                (-0.7, PauliString::single(0, Pauli::X)),
            ],
        );
        let schedule = CompiledSchedule::compile(&[(h, 1.0)]);
        let bound = schedule.segment_bound(0);
        assert!((bound.center - 0.4).abs() < 1e-15);
        assert!((bound.radius - 2.2).abs() < 1e-15);
        assert_eq!(bound.step_strength, schedule.segment_step_strength(0));
        assert!((schedule.segment_offdiag_radius(0) - 0.7).abs() < 1e-15);
    }

    #[test]
    fn diag_table_tracks_exact_range_incrementally() {
        // Two segments, same layout, only the detuning moves: the
        // incremental update must land on the same table AND the same
        // (min, max) as a from-scratch fill.
        let h = |detuning: f64| {
            Hamiltonian::from_terms(
                2,
                [
                    (detuning, PauliString::single(0, Pauli::Z)),
                    (0.5, PauliString::two(0, Pauli::Z, 1, Pauli::Z)),
                    (0.3, PauliString::single(1, Pauli::X)),
                ],
            )
        };
        let schedule = CompiledSchedule::compile(&[(h(0.2), 0.1), (h(-1.1), 0.1)]);
        assert_eq!(schedule.num_layouts(), 1);
        let mut incremental = DiagTableScratch::new();
        schedule.update_diag_table(0, &mut incremental);
        let range0 = incremental.range;
        schedule.update_diag_table(1, &mut incremental);

        let mut fresh = DiagTableScratch::new();
        schedule.update_diag_table(1, &mut fresh);
        assert_eq!(incremental.table, fresh.table);
        assert_eq!(incremental.range, fresh.range);
        assert_ne!(range0, fresh.range);
        // Re-materializing the same segment is free and keeps the range.
        schedule.update_diag_table(1, &mut incremental);
        assert_eq!(incremental.range, fresh.range);
    }

    #[test]
    fn non_finite_scale_is_a_typed_invalid_input() {
        let h = Hamiltonian::from_terms(1, [(1.0, PauliString::single(0, Pauli::X))]);
        let schedule = CompiledSchedule::compile(&[(h, 0.5)]);
        for scale in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let error = schedule.try_scaled_weights(scale).unwrap_err();
            assert!(
                matches!(&error, EvolveError::InvalidInput { context } if context.contains("finite")),
                "scale {scale}: {error}"
            );
        }
    }

    #[test]
    fn zero_scale_evolves_as_exact_identity_with_zero_work() {
        // scaled_weights(0.0) yields segments with step_strength == 0 and
        // radius == 0 on every segment. Regression: every backend must
        // advance them by the exact identity with ZERO kernel applications —
        // the pre-fix Taylor path spent one degenerate application per
        // segment (and pure-identity segments spent a full step train).
        use crate::stepper::{EvolveOptions, StepperKind};
        use crate::Propagator;
        let schedule = CompiledSchedule::compile_piecewise(&ramp(10));
        let zeroed = schedule.scaled_weights(0.0);
        for index in 0..zeroed.num_segments() {
            assert_eq!(zeroed.segment_step_strength(index), 0.0);
            assert_eq!(zeroed.segment_bound(index).radius, 0.0);
        }
        let initial = StateVector::plus_state(3);
        for kind in StepperKind::all() {
            let mut propagator = Propagator::with_options(EvolveOptions::new(kind));
            let mut state = initial.clone();
            propagator.evolve_schedule_in_place(&zeroed, &mut state);
            assert_eq!(
                propagator.kernel_applications(),
                0,
                "{} spent kernel work on H = 0",
                kind.name()
            );
            for (a, b) in state.amplitudes().iter().zip(initial.amplitudes()) {
                assert!((*a - *b).abs() < 1e-15, "{}: {a} != {b}", kind.name());
            }
        }
    }

    #[test]
    fn batch_runs_group_tiny_same_layout_segments() {
        // A uniform tiny-segment ramp is one maximal run.
        let schedule = CompiledSchedule::compile_piecewise(&ramp(20));
        assert_eq!(schedule.batch_runs(), vec![0..20]);
        for index in 0..20 {
            assert_eq!(schedule.segment_layout(index), 0);
        }

        // A long (multi-step) segment splits the grouping; a structure break
        // starts a new run even for tiny segments.
        let a = Hamiltonian::from_terms(2, [(1.0, PauliString::single(0, Pauli::X))]);
        let b = Hamiltonian::from_terms(2, [(0.5, PauliString::two(0, Pauli::Z, 1, Pauli::Z))]);
        let schedule = CompiledSchedule::compile(&[
            (a.clone(), 0.1),  // run 0 (layout 0)
            (a.clone(), 0.0),  // zero-duration: transparent inside run 0
            (a.clone(), 0.15), // still run 0
            (a.clone(), 30.0), // multi-step: excluded
            (b.clone(), 0.1),  // run 1 (layout 1)
            (a.clone(), 0.2),  // run 2 (layout 0 again)
        ]);
        assert_eq!(schedule.batch_runs(), vec![0..3, 4..5, 5..6]);
        assert_eq!(schedule.segment_layout(4), 1);
        assert_eq!(schedule.segment_layout(5), 0);
    }
}
