//! The execution layer behind every kernel application: a shared
//! [`ExecutionContext`], a persistent worker pool, portable SIMD lane
//! types, and the instrumented pass counters used by the steppers.
//!
//! # Why a separate layer
//!
//! Before this module existed, `compiled.rs` spawned fresh threads with
//! `std::thread::scope` on **every** `H|ψ⟩` and hardcoded both the parallel
//! threshold and the worker count. The execution layer centralizes those
//! decisions:
//!
//! * [`ExecutionContext`] — a small `Copy` value describing *how* kernels
//!   run: worker count ([`ExecutionContext::with_threads`] or the
//!   `QTURBO_THREADS` environment variable), the parallel threshold
//!   ([`ExecutionContext::with_parallel_threshold`]), and the kernel path
//!   ([`KernelPath::Lane`] vs. the scalar conformance reference).
//!   Every stepper stores one and routes all kernel applications through it,
//!   so a single context is reused across schedule segments and noise
//!   realizations.
//! * [`WorkerPool`] — helper threads spawned **once** per process, parked on
//!   a condvar between calls, each with a persistent result slot, so the
//!   per-application cost of parallel dispatch is one lock handshake rather
//!   than thread creation.
//! * [`F64x4`] / [`F64x8`] — fixed-size array newtypes (stable Rust, no
//!   `std::simd`) whose elementwise loops the autovectorizer reliably lowers
//!   to packed instructions. `FusedKernel`'s lane path is written entirely in
//!   terms of these.
//! * [`Passes`] — the analytically-exact amplitude-pass counter. Every
//!   primitive state operation has a fixed cost
//!   (see the method docs on [`Passes`]); steppers tick the counter at each
//!   operation site, so `state_passes` is exact by construction for **all**
//!   backends, not just Taylor.
//!
//! # Determinism
//!
//! For a fixed `(threads, kernel path)` configuration results are bitwise
//! reproducible: chunk boundaries depend only on the dimension and the
//! resolved worker count, and every chunk is processed by exactly one
//! participant. Across different configurations amplitudes agree to
//! round-off (the per-chunk norm partial sums are reduced in a different
//! order), far inside the 1e-10 conformance pin.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

use crate::compiled::PARALLEL_THRESHOLD_QUBITS;

/// Number of complex amplitudes processed per SIMD lane block.
///
/// A block of [`LANE_WIDTH`] amplitudes is one [`F64x8`] of interleaved
/// `re, im` pairs. Pool chunk sizes are rounded up to a multiple of this so
/// the lane path never sees a partial block at a chunk boundary.
pub const LANE_WIDTH: usize = 4;

// ---------------------------------------------------------------------------
// Lane types
// ---------------------------------------------------------------------------

/// Four `f64` lanes as a plain array newtype.
///
/// Used for per-amplitude real factors (diagonal values, gather signs). All
/// operations are fixed-length elementwise loops that the autovectorizer
/// lowers to packed AVX/NEON arithmetic on stable Rust.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(transparent)]
pub struct F64x4(pub [f64; 4]);

/// Eight `f64` lanes: four complex amplitudes in interleaved
/// `re₀, im₀, re₁, im₁, …` order.
///
/// This is the working register of the lane kernel path — one [`F64x8`] is
/// one block of [`LANE_WIDTH`] amplitudes.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(transparent)]
pub struct F64x8(pub [f64; 8]);

impl F64x4 {
    /// All-zero lanes.
    pub const ZERO: F64x4 = F64x4([0.0; 4]);

    /// Loads four consecutive `f64`s.
    ///
    /// # Panics
    ///
    /// Panics if `src` has fewer than four elements.
    #[inline(always)]
    pub fn load(src: &[f64]) -> F64x4 {
        let mut out = [0.0; 4];
        out.copy_from_slice(&src[..4]);
        F64x4(out)
    }

    /// Multiplies every lane by `factor`.
    #[inline(always)]
    pub fn scale(self, factor: f64) -> F64x4 {
        let mut out = self.0;
        for lane in &mut out {
            *lane *= factor;
        }
        F64x4(out)
    }

    /// Duplicates each lane into a complex-pair position:
    /// `[a, b, c, d]` → `[a, a, b, b, c, c, d, d]`.
    ///
    /// This turns a per-amplitude real factor into an [`F64x8`] that
    /// multiplies interleaved complex amplitudes elementwise.
    #[inline(always)]
    pub fn dup_pairs(self) -> F64x8 {
        let mut out = [0.0; 8];
        for k in 0..4 {
            out[2 * k] = self.0[k];
            out[2 * k + 1] = self.0[k];
        }
        F64x8(out)
    }
}

/// Lanewise sum.
impl std::ops::Add for F64x4 {
    type Output = F64x4;

    #[inline(always)]
    fn add(self, rhs: F64x4) -> F64x4 {
        let mut out = self.0;
        for (lane, r) in out.iter_mut().zip(rhs.0) {
            *lane += r;
        }
        F64x4(out)
    }
}

/// Lanewise sum.
impl std::ops::Add for F64x8 {
    type Output = F64x8;

    #[inline(always)]
    fn add(self, rhs: F64x8) -> F64x8 {
        let mut out = self.0;
        for (lane, r) in out.iter_mut().zip(rhs.0) {
            *lane += r;
        }
        F64x8(out)
    }
}

/// Lanewise product.
impl std::ops::Mul for F64x8 {
    type Output = F64x8;

    #[inline(always)]
    fn mul(self, rhs: F64x8) -> F64x8 {
        let mut out = self.0;
        for (lane, r) in out.iter_mut().zip(rhs.0) {
            *lane *= r;
        }
        F64x8(out)
    }
}

impl F64x8 {
    /// All-zero lanes.
    pub const ZERO: F64x8 = F64x8([0.0; 8]);

    /// Loads eight consecutive `f64`s.
    ///
    /// # Panics
    ///
    /// Panics if `src` has fewer than eight elements.
    #[inline(always)]
    pub fn load(src: &[f64]) -> F64x8 {
        let mut out = [0.0; 8];
        out.copy_from_slice(&src[..8]);
        F64x8(out)
    }

    /// Multiplies every lane by `factor`.
    #[inline(always)]
    pub fn scale(self, factor: f64) -> F64x8 {
        let mut out = self.0;
        for lane in &mut out {
            *lane *= factor;
        }
        F64x8(out)
    }

    /// Swaps the two halves of every complex pair:
    /// `[re₀, im₀, …]` → `[im₀, re₀, …]`. Building block of
    /// [`F64x8::mul_complex`].
    #[inline(always)]
    pub fn swap_pairs(self) -> F64x8 {
        let mut out = [0.0; 8];
        for k in 0..4 {
            out[2 * k] = self.0[2 * k + 1];
            out[2 * k + 1] = self.0[2 * k];
        }
        F64x8(out)
    }

    /// Permutes complex pairs by XOR: pair `k` of the result is pair `k ^ p`
    /// of the input, for `p < LANE_WIDTH`.
    ///
    /// This is how an unaligned flip mask (`x_mask & 3 != 0`) becomes a
    /// contiguous block load followed by an in-register shuffle.
    #[inline(always)]
    pub fn permute_pairs_xor(self, p: usize) -> F64x8 {
        let mut out = [0.0; 8];
        for k in 0..4 {
            let s = (k ^ p) & 3;
            out[2 * k] = self.0[2 * s];
            out[2 * k + 1] = self.0[2 * s + 1];
        }
        F64x8(out)
    }

    /// Multiplies each interleaved complex pair by the complex scalar
    /// `(re, im)`:
    /// `(re + i·im) · (zre + i·zim)` per pair.
    #[inline(always)]
    pub fn mul_complex(self, re: f64, im: f64) -> F64x8 {
        // Pauli term weights are `i^y_count` — purely real or purely
        // imaginary — so skip the half of the product that is all zeros.
        if im == 0.0 {
            return self.scale(re);
        }
        let crossed = self.swap_pairs() * F64x8([-im, im, -im, im, -im, im, -im, im]);
        if re == 0.0 {
            return crossed;
        }
        self.scale(re) + crossed
    }

    /// Sum of all eight lanes.
    #[inline(always)]
    pub fn horizontal_sum(self) -> f64 {
        let h = [
            self.0[0] + self.0[4],
            self.0[1] + self.0[5],
            self.0[2] + self.0[6],
            self.0[3] + self.0[7],
        ];
        (h[0] + h[2]) + (h[1] + h[3])
    }
}

// ---------------------------------------------------------------------------
// Execution context
// ---------------------------------------------------------------------------

/// Which kernel implementation [`ExecutionContext`] dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelPath {
    /// The SIMD lane path: [`F64x8`] blocks of four amplitudes. The default.
    ///
    /// Falls back to the scalar path per call when the kernel or dimension
    /// cannot be blocked (states smaller than [`LANE_WIDTH`] amplitudes, or a
    /// diagonal lookup table shorter than one block).
    #[default]
    Lane,
    /// The scalar reference path — one amplitude at a time, kept as the
    /// conformance baseline the lane path is pinned against (1e-10 in the
    /// test suite, though in practice the two agree to round-off).
    Scalar,
}

/// How kernel applications execute: worker count, parallel threshold, and
/// kernel path.
///
/// The context is a plain `Copy` value. [`EvolveOptions`](crate::stepper::EvolveOptions)
/// carries one, every stepper stores one, and [`Propagator`](crate::propagate::Propagator)
/// hands the same context to all backends — so one configuration is reused
/// across schedule segments and device noise realizations without
/// re-resolving threads or re-planning chunks anywhere else.
///
/// # Thread resolution
///
/// The worker count used for a state of dimension `2^n` is the minimum of:
///
/// 1. the explicitly configured count ([`ExecutionContext::with_threads`]),
///    else the `QTURBO_THREADS` environment variable (parsed once per
///    process; `0` or unset falls through), else
///    [`std::thread::available_parallelism`];
/// 2. a busy-cap `dim >> (threshold − 1)` that keeps at least two
///    threshold-sized half-chunks of work per worker.
///
/// States below `2^threshold` amplitudes always run inline on the calling
/// thread ([`ExecutionContext::worker_count`] returns 1) — small workloads
/// never pay the pool handshake.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutionContext {
    threads: Option<usize>,
    threshold_qubits: usize,
    kernels: KernelPath,
}

impl Default for ExecutionContext {
    fn default() -> Self {
        ExecutionContext::auto()
    }
}

impl ExecutionContext {
    /// The default context: automatic thread count (`QTURBO_THREADS` or the
    /// machine parallelism), the default parallel threshold
    /// ([`PARALLEL_THRESHOLD_QUBITS`]), and the [`KernelPath::Lane`] path.
    pub fn auto() -> Self {
        ExecutionContext {
            threads: None,
            threshold_qubits: PARALLEL_THRESHOLD_QUBITS,
            kernels: KernelPath::Lane,
        }
    }

    /// Pins the worker count. `0` restores automatic resolution
    /// (`QTURBO_THREADS`, then the machine parallelism).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = (threads > 0).then_some(threads);
        self
    }

    /// Sets the parallel threshold: states with fewer than `2^qubits`
    /// amplitudes run inline on the calling thread.
    #[must_use]
    pub fn with_parallel_threshold(mut self, qubits: usize) -> Self {
        self.threshold_qubits = qubits;
        self
    }

    /// Selects the kernel implementation ([`KernelPath`]).
    #[must_use]
    pub fn with_kernel_path(mut self, path: KernelPath) -> Self {
        self.kernels = path;
        self
    }

    /// The pinned worker count, if any (`None` = automatic).
    pub fn threads(&self) -> Option<usize> {
        self.threads
    }

    /// The parallel threshold in qubits.
    pub fn parallel_threshold_qubits(&self) -> usize {
        self.threshold_qubits
    }

    /// The configured kernel path.
    pub fn kernel_path(&self) -> KernelPath {
        self.kernels
    }

    /// The worker count after resolving the automatic sources: the pinned
    /// count, else `QTURBO_THREADS`, else the machine parallelism.
    pub fn resolved_threads(&self) -> usize {
        self.threads
            .or_else(env_threads)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
            .max(1)
    }

    /// Number of workers a kernel application over `dim` amplitudes uses
    /// (1 = inline on the calling thread). See the type-level docs for the
    /// resolution rules.
    pub fn worker_count(&self, dim: usize) -> usize {
        let threshold = self.threshold_qubits.min(usize::BITS as usize - 1);
        if dim < 1 << threshold {
            return 1;
        }
        let busy_cap = (dim >> threshold.saturating_sub(1)).max(1);
        self.resolved_threads().min(busy_cap).max(1)
    }

    /// Plans a pooled application over `dim` amplitudes: ensures the workers
    /// exist and returns `(participants, chunk)` where `chunk` is a multiple
    /// of [`LANE_WIDTH`] and `participants = ceil(dim / chunk)`.
    ///
    /// Recomputing the participant count from the rounded chunk is what
    /// guarantees `threads > chunks` never strands an idle worker on an
    /// empty range: every participant owns a non-empty chunk.
    pub(crate) fn plan(&self, dim: usize) -> (usize, usize) {
        let wanted = self.worker_count(dim);
        if wanted <= 1 {
            return (1, dim);
        }
        let available = pool().ensure(wanted);
        if available <= 1 {
            return (1, dim);
        }
        let chunk = dim.div_ceil(available).next_multiple_of(LANE_WIDTH);
        (dim.div_ceil(chunk), chunk)
    }

    /// Builds a telemetry [`ExecSpan`](crate::telemetry::ExecSpan)
    /// describing the plan this context would use for a state of `dim`
    /// amplitudes. Purely arithmetic — no workers are spawned, so calling
    /// it never perturbs the pool.
    pub fn exec_span(&self, dim: usize, pool_busy_ns: u64) -> crate::telemetry::ExecSpan {
        let workers = self.worker_count(dim);
        let (chunks, chunk_len) = if workers <= 1 || dim == 0 {
            (1, dim)
        } else {
            let chunk = dim.div_ceil(workers).next_multiple_of(LANE_WIDTH);
            (dim.div_ceil(chunk), chunk)
        };
        crate::telemetry::ExecSpan {
            lane_width: LANE_WIDTH,
            threads: self.resolved_threads(),
            workers,
            chunks,
            chunk_len,
            parallel_threshold_qubits: self.threshold_qubits,
            kernel_path: self.kernels,
            dim,
            pool_busy_ns,
        }
    }
}

/// `QTURBO_THREADS` parsed once per process. `0`, empty, or unparsable
/// values behave as unset.
fn env_threads() -> Option<usize> {
    static CACHE: OnceLock<Option<usize>> = OnceLock::new();
    *CACHE.get_or_init(|| {
        std::env::var("QTURBO_THREADS")
            .ok()
            .and_then(|raw| raw.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
    })
}

// ---------------------------------------------------------------------------
// Pool busy-time accounting (telemetry)
// ---------------------------------------------------------------------------

/// Nanoseconds helper threads have spent inside kernel jobs, process-wide.
/// Only accumulated after [`enable_pool_timing`] — the untraced hot path
/// pays one relaxed boolean load per job, nothing more.
static POOL_BUSY_NS: AtomicU64 = AtomicU64::new(0);

/// Gates busy-time accounting so untraced runs never touch the clock.
static POOL_TIMING: AtomicBool = AtomicBool::new(false);

/// Turns on worker-pool busy-time accounting for the rest of the process.
///
/// Called by a traced [`Propagator`](crate::propagate::Propagator) when
/// telemetry is enabled; idempotent. There is deliberately no `disable`:
/// once any traced run exists the per-job cost is two clock reads per
/// helper, which is noise next to a kernel application.
pub fn enable_pool_timing() {
    POOL_TIMING.store(true, Ordering::Relaxed);
}

/// Cumulative helper-thread busy nanoseconds since [`enable_pool_timing`].
///
/// Monotonic and process-wide; telemetry consumers snapshot it before and
/// after a traced call and report the delta.
pub fn pool_busy_ns() -> u64 {
    POOL_BUSY_NS.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

/// Locks a mutex, ignoring poisoning (workers never hold the lock across
/// kernel work, so a poisoned lock still guards consistent data).
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Condvar wait with the same poisoning policy as [`lock`].
fn wait_on<'a, T>(condvar: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    condvar.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// One pooled job: a lifetime-erased pointer to the chunk closure plus the
/// number of participants (caller + helpers) splitting the work.
#[derive(Clone, Copy)]
struct Job {
    /// Erased `&dyn Fn(participant) -> partial_norm_sqr`. Only dereferenced
    /// by participants of the job, and [`WorkerPool::run`] does not return
    /// until every participant has finished — so the pointee outlives every
    /// dereference.
    work: *const (dyn Fn(usize) -> f64 + Sync),
    participants: usize,
}

// SAFETY: the pointer is only dereferenced while the submitting call frame
// (which owns the closure) is blocked in `WorkerPool::run`.
unsafe impl Send for Job {}

/// State shared between the submitting thread and the parked helpers.
struct PoolState {
    /// Bumped once per job; helpers use it to distinguish "new job" from a
    /// spurious wakeup.
    epoch: u64,
    job: Option<Job>,
    /// Helpers still working on the current job.
    remaining: usize,
    /// Per-participant result slots — the pool's persistent scratch; slot 0
    /// belongs to the caller and is unused.
    results: Vec<f64>,
    /// Set when a helper's chunk closure panicked.
    helper_panicked: bool,
    /// Helpers that have registered and parked at least once.
    ready: usize,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Helpers park here between jobs.
    work: Condvar,
    /// Signalled when `remaining` hits zero and when a helper registers.
    done: Condvar,
}

/// The process-wide persistent worker pool.
///
/// Helper threads are spawned lazily the first time a context asks for more
/// than one worker, then parked on a condvar between jobs — a kernel
/// application costs one lock/notify handshake instead of thread creation.
/// Jobs are serialized by a submission lock, so concurrent callers (e.g.
/// `cargo test`'s parallel test threads) share the pool safely. If a helper
/// thread cannot be spawned the pool degrades gracefully to however many
/// helpers exist (worst case: everything runs inline on the caller).
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    /// Serializes jobs; the guarded value is the spawned helper count.
    submit: Mutex<usize>,
}

static POOL: OnceLock<WorkerPool> = OnceLock::new();

/// The process-wide pool (created on first use).
pub(crate) fn pool() -> &'static WorkerPool {
    POOL.get_or_init(WorkerPool::new)
}

/// Runs `work` across `participants` threads (the caller plus
/// `participants − 1` pool helpers) and returns the sum of all per-chunk
/// results. See [`WorkerPool::run`].
pub(crate) fn pool_run(participants: usize, work: &(dyn Fn(usize) -> f64 + Sync)) -> f64 {
    pool().run(participants, work)
}

impl WorkerPool {
    fn new() -> Self {
        WorkerPool {
            shared: Arc::new(PoolShared {
                state: Mutex::new(PoolState {
                    epoch: 0,
                    job: None,
                    remaining: 0,
                    results: Vec::new(),
                    helper_panicked: false,
                    ready: 0,
                }),
                work: Condvar::new(),
                done: Condvar::new(),
            }),
            submit: Mutex::new(0),
        }
    }

    /// Ensures at least `wanted − 1` helper threads are parked and ready;
    /// returns the usable participant count (`≤ wanted`). Spawning happens
    /// under the submission lock, so no job can be in flight while new
    /// helpers register.
    pub(crate) fn ensure(&self, wanted: usize) -> usize {
        let mut spawned = lock(&self.submit);
        if *spawned + 1 >= wanted {
            return wanted;
        }
        while *spawned + 1 < wanted {
            let shared = Arc::clone(&self.shared);
            let id = *spawned;
            let handle = std::thread::Builder::new()
                .name(format!("qturbo-worker-{id}"))
                .spawn(move || worker_loop(&shared, id));
            match handle {
                Ok(_) => *spawned += 1,
                // Degrade gracefully: run with the helpers we have.
                Err(_) => break,
            }
        }
        // Wait until every spawned helper has parked once, so a job
        // submitted right after `ensure` cannot race a helper that has not
        // yet recorded the current epoch.
        let mut state = lock(&self.shared.state);
        while state.ready < *spawned {
            state = wait_on(&self.shared.done, state);
        }
        (*spawned + 1).min(wanted)
    }

    /// Runs `work(participant)` for every `participant in 0..participants`
    /// — participant 0 on the calling thread, the rest on parked helpers —
    /// and returns the sum of the results. Panics in any chunk are
    /// propagated to the caller after all participants have finished.
    ///
    /// `participants` must not exceed the count returned by
    /// [`WorkerPool::ensure`].
    pub(crate) fn run(&self, participants: usize, work: &(dyn Fn(usize) -> f64 + Sync)) -> f64 {
        if participants <= 1 {
            return work(0);
        }
        let submit = lock(&self.submit);
        debug_assert!(participants <= *submit + 1, "run() without ensure()");
        // SAFETY (lifetime erasure): the raw pointer is dereferenced only by
        // this job's participants, and we block below until `remaining == 0`,
        // i.e. until every helper is done with it.
        let erased = unsafe {
            std::mem::transmute::<
                &(dyn Fn(usize) -> f64 + Sync),
                *const (dyn Fn(usize) -> f64 + Sync),
            >(work)
        };
        {
            let mut state = lock(&self.shared.state);
            state.epoch = state.epoch.wrapping_add(1);
            state.job = Some(Job {
                work: erased,
                participants,
            });
            state.remaining = participants - 1;
            if state.results.len() < participants {
                state.results.resize(participants, 0.0);
            }
            state.helper_panicked = false;
            self.shared.work.notify_all();
        }
        // Participant 0 is the calling thread.
        let own = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| work(0)));
        let (helper_sum, helper_panicked) = {
            let mut state = lock(&self.shared.state);
            while state.remaining > 0 {
                state = wait_on(&self.shared.done, state);
            }
            state.job = None;
            let sum = state.results[1..participants].iter().sum::<f64>();
            (sum, state.helper_panicked)
        };
        drop(submit);
        match own {
            Ok(value) => {
                assert!(
                    !helper_panicked,
                    "a worker thread panicked during a pooled kernel application"
                );
                value + helper_sum
            }
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
}

fn worker_loop(shared: &PoolShared, id: usize) {
    let participant = id + 1;
    let mut last_epoch = {
        let mut state = lock(&shared.state);
        state.ready += 1;
        shared.done.notify_all();
        state.epoch
    };
    loop {
        let job = {
            let mut state = lock(&shared.state);
            loop {
                if state.epoch != last_epoch {
                    last_epoch = state.epoch;
                    if let Some(job) = state.job {
                        break job;
                    }
                }
                state = wait_on(&shared.work, state);
            }
        };
        if participant >= job.participants {
            continue;
        }
        let started = POOL_TIMING
            .load(Ordering::Relaxed)
            .then(std::time::Instant::now);
        // SAFETY: the submitter blocks in `run` until we decrement
        // `remaining` below, so the closure behind `job.work` is alive.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe {
            (*job.work)(participant)
        }));
        if let Some(started) = started {
            POOL_BUSY_NS.fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
        let mut state = lock(&shared.state);
        match result {
            Ok(value) => state.results[participant] = value,
            Err(_) => state.helper_panicked = true,
        }
        state.remaining -= 1;
        if state.remaining == 0 {
            shared.done.notify_all();
        }
    }
}

// ---------------------------------------------------------------------------
// Pass accounting
// ---------------------------------------------------------------------------

/// Analytically-exact amplitude-pass counter.
///
/// One *pass* is one sequential read **or** write stream over a state
/// vector's amplitudes — the unit the `bench_*` gates use to prove the
/// batched sweeps do less memory traffic. Each primitive operation has a
/// fixed cost, ticked at the operation site:
///
/// | operation | passes | streams |
/// |---|---|---|
/// | [`Passes::copy`] | 2 | read src, write dst |
/// | [`Passes::scale`] | 2 | read + write in place |
/// | [`Passes::norm`] | 1 | read |
/// | [`Passes::fill`] | 1 | write |
/// | [`Passes::axpy`] | 3 | read x, read+write y (`y += a·x`) |
/// | [`Passes::inner`] | 2 | read both operands |
/// | [`Passes::apply`] | 2 | read input, write output |
/// | [`Passes::apply_accumulate`] | 4 | read input, write series, read+write target |
/// | [`Passes::fused_map`] | 3 | read out, read input, write out |
/// | [`Passes::rescale`] | 3 | norm (1) + scale (2) |
///
/// Because every stepper ticks these at each operation, `state_passes` is
/// exact by construction for all backends — including Krylov's
/// reorthogonalization sweeps and Chebyshev's recurrence, which older
/// revisions tallied with lumped per-iteration estimates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Passes(u64);

impl Passes {
    /// A zeroed counter.
    pub fn new() -> Self {
        Passes(0)
    }

    /// Total passes counted so far.
    pub fn count(&self) -> u64 {
        self.0
    }

    /// Resets the counter to zero.
    pub fn reset(&mut self) {
        self.0 = 0;
    }

    /// Adds a raw pass count (for fused operations with bespoke costs).
    pub fn add(&mut self, passes: u64) {
        self.0 += passes;
    }

    /// One whole-vector copy: 2 passes.
    pub fn copy(&mut self) {
        self.0 += 2;
    }

    /// One in-place scale: 2 passes.
    pub fn scale(&mut self) {
        self.0 += 2;
    }

    /// One norm computation: 1 pass.
    pub fn norm(&mut self) {
        self.0 += 1;
    }

    /// One whole-vector fill: 1 pass.
    pub fn fill(&mut self) {
        self.0 += 1;
    }

    /// One accumulate `y += a·x`: 3 passes.
    pub fn axpy(&mut self) {
        self.0 += 3;
    }

    /// One inner product: 2 passes.
    pub fn inner(&mut self) {
        self.0 += 2;
    }

    /// One kernel application `out = H·input`: 2 passes.
    pub fn apply(&mut self) {
        self.0 += 2;
    }

    /// One fused kernel application with accumulation into a target
    /// (`series_next = H·series; target += factor·series_next`): 4 passes.
    pub fn apply_accumulate(&mut self) {
        self.0 += 4;
    }

    /// One fused affine map over an applied vector
    /// (`out = (out − center·input) / radius`): 3 passes.
    pub fn fused_map(&mut self) {
        self.0 += 3;
    }

    /// One norm-checked rescale (`norm` + `scale`): 3 passes.
    pub fn rescale(&mut self) {
        self.0 += 3;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_complex_multiply_matches_scalar() {
        let amps = F64x8([1.0, 2.0, -3.0, 0.5, 0.25, -1.5, 4.0, -2.0]);
        let (re, im) = (0.7, -1.3);
        let product = amps.mul_complex(re, im);
        for k in 0..4 {
            let (zre, zim) = (amps.0[2 * k], amps.0[2 * k + 1]);
            assert_eq!(product.0[2 * k], re * zre - im * zim);
            assert_eq!(product.0[2 * k + 1], re * zim + im * zre);
        }
    }

    #[test]
    fn permute_pairs_xor_matches_index_arithmetic() {
        let amps = F64x8([0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5]);
        for p in 0..4 {
            let permuted = amps.permute_pairs_xor(p);
            for k in 0..4usize {
                assert_eq!(permuted.0[2 * k], amps.0[2 * (k ^ p)]);
                assert_eq!(permuted.0[2 * k + 1], amps.0[2 * (k ^ p) + 1]);
            }
        }
    }

    #[test]
    fn dup_pairs_and_horizontal_sum() {
        let reals = F64x4([1.0, 2.0, 3.0, 4.0]);
        let wide = reals.dup_pairs();
        assert_eq!(wide.0, [1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 4.0, 4.0]);
        assert_eq!(wide.horizontal_sum(), 20.0);
    }

    #[test]
    fn context_worker_count_honors_threshold_and_busy_cap() {
        let ctx = ExecutionContext::auto()
            .with_threads(8)
            .with_parallel_threshold(4);
        assert_eq!(ctx.worker_count(8), 1, "below threshold runs inline");
        assert_eq!(ctx.worker_count(16), 2, "busy cap limits tiny states");
        assert_eq!(ctx.worker_count(1 << 10), 8, "large states use all workers");
        let inline = ExecutionContext::auto().with_threads(1);
        assert_eq!(inline.worker_count(1 << 20), 1);
    }

    #[test]
    fn plan_never_leaves_an_idle_participant() {
        let ctx = ExecutionContext::auto()
            .with_threads(7)
            .with_parallel_threshold(0);
        let dim = 16;
        let (participants, chunk) = ctx.plan(dim);
        assert!(chunk % LANE_WIDTH == 0);
        assert_eq!(participants, dim.div_ceil(chunk));
        // Every participant owns a non-empty range.
        for p in 0..participants {
            assert!(p * chunk < dim);
        }
    }

    #[test]
    fn pool_sums_partial_results_across_threads() {
        let ctx = ExecutionContext::auto()
            .with_threads(3)
            .with_parallel_threshold(0);
        let dim = 24;
        let (participants, chunk) = ctx.plan(dim);
        let total = pool_run(participants, &|p: usize| {
            let start = p * chunk;
            let len = chunk.min(dim - start);
            (start..start + len).map(|i| i as f64).sum()
        });
        let expected = (0..dim).map(|i| i as f64).sum::<f64>();
        assert_eq!(total, expected);
    }

    #[test]
    fn pass_costs_match_the_documented_table() {
        let mut passes = Passes::new();
        passes.copy();
        passes.scale();
        passes.norm();
        passes.fill();
        passes.axpy();
        passes.inner();
        passes.apply();
        passes.apply_accumulate();
        passes.fused_map();
        passes.rescale();
        assert_eq!(passes.count(), 2 + 2 + 1 + 1 + 3 + 2 + 2 + 4 + 3 + 3);
        passes.reset();
        assert_eq!(passes.count(), 0);
    }
}
