//! Emulated analog quantum device with a phenomenological noise model.
//!
//! The paper's §7.4 experiments run compiled pulses on QuEra's Aquila machine
//! and compare against noiseless theory curves. We do not have the physical
//! device, so this module provides the substitution documented in DESIGN.md:
//! a state-vector execution of the compiled pulse plus a noise model whose
//! strength grows with the machine execution time. That reproduces the
//! mechanism the paper exploits — shorter compiled pulses suffer less
//! decoherence and land closer to the theoretical prediction.
//!
//! Noise channels emulated:
//!
//! * **Coherent amplitude miscalibration** — each run scales the programmed
//!   Hamiltonian by `1 + ε` with `ε` drawn once per run; the accumulated phase
//!   error grows with execution time.
//! * **Depolarizing decay** — expectation values of weight-`w` observables are
//!   damped by `exp(−γ·w·T_exec)`.
//! * **Readout error** — each measured qubit flips with a small probability,
//!   damping a weight-`w` observable by `(1 − 2p)^w`.
//! * **Shot noise** — observables are estimated from a finite number of
//!   Bernoulli samples (1000 shots in the paper).

use crate::error::{EvolveError, RecoveryLog};
use crate::observable::measure_z_zz;
use crate::propagate::Propagator;
use crate::schedule::CompiledSchedule;
use crate::state::{RealizationBlock, StateVector};
use crate::stepper::EvolveOptions;
use crate::telemetry::RunProfile;
use qturbo_hamiltonian::Hamiltonian;
use qturbo_math::rng::Rng;

/// Cap on the amplitudes of **one** realization-block buffer
/// (`dim × tile`), sizing the block sweep's realization tiles. The block
/// Taylor path keeps three such buffers alive (the block plus two series
/// scratches); `2^17` amplitudes keeps that working set small enough to
/// stay cache-resident on commodity parts at mid-size registers, so the SoA
/// sweep keeps its read-amortization win instead of going DRAM-bound.
const MAX_BLOCK_TILE_AMPS: usize = 1 << 17;

/// Floor on realizations per tile: two full lane blocks, so the kernel's
/// paired-lane path (one evaluation of each row's scalar work driving
/// 2 × [`crate::exec::LANE_WIDTH`] realization lanes) engages even at the
/// largest registers, where [`MAX_BLOCK_TILE_AMPS`] alone would shrink
/// tiles to a single lane. At 16 qubits the row-scalar amortization is
/// worth more than the last level of cache residency.
const MIN_BLOCK_TILE: usize = 2 * crate::exec::LANE_WIDTH;

/// Ceiling on realizations per tile: past ~four lane pairs the row-scalar
/// amortization has flattened while the tile working set keeps growing, so
/// wider sweeps only dilute cache residency at small registers.
const MAX_BLOCK_TILE: usize = 4 * MIN_BLOCK_TILE;

/// Phenomenological noise parameters of the emulated device.
///
/// The fields are public for struct-literal construction, so the bounds
/// below are enforced by [`NoiseModel::validate`] at the point of use
/// (every `run*` entry point of [`EmulatedDevice`]) rather than at
/// construction — an out-of-range value panics loudly instead of silently
/// corrupting the physics (a `readout_error > ½` would *flip* observable
/// signs through `(1 − 2p)^w`; a negative `depolarizing_rate` would amplify
/// instead of damp).
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseModel {
    /// Depolarizing rate `γ` per unit time and unit observable weight.
    /// Must be finite and `≥ 0` (negative rates would *amplify*
    /// expectation values through `exp(−γ·w·T)`).
    pub depolarizing_rate: f64,
    /// Relative standard deviation of the per-run Hamiltonian scale error.
    /// Must be finite and `≥ 0`.
    pub amplitude_miscalibration: f64,
    /// Per-qubit readout bit-flip probability. Must lie in `[0, ½]`: the
    /// damping factor `(1 − 2p)^w` crosses zero at `p = ½`, and beyond it a
    /// weight-1 observable would come back *sign-flipped* — a physically
    /// meaningless "readout error" that silently corrupts every `Z`/`ZZ`
    /// estimate. `p = ½` itself is legal (total depolarization of the
    /// readout: every observable damps to exactly `0`).
    pub readout_error: f64,
    /// Number of measurement shots; `None` reports exact (infinite-shot)
    /// expectation values. `Some(0)` is **rejected** by
    /// [`validate`](NoiseModel::validate): zero shots estimates nothing — an
    /// earlier revision reported it noisy through
    /// [`is_noiseless`](NoiseModel::is_noiseless) yet silently treated it as
    /// exact (infinite shots) in the estimator, and either reading is a trap
    /// for a caller who meant `None`.
    pub shots: Option<usize>,
}

impl NoiseModel {
    /// No noise at all: the emulator then plays the role of QuTiP/Bloqade
    /// ("TH", "QTurbo (TH)", "SimuQ (TH)" curves in Fig. 6).
    pub fn noiseless() -> Self {
        NoiseModel {
            depolarizing_rate: 0.0,
            amplitude_miscalibration: 0.0,
            readout_error: 0.0,
            shots: None,
        }
    }

    /// Noise magnitudes representative of a neutral-atom analog machine: a
    /// coherence-limited decay on the microsecond scale, percent-level
    /// amplitude miscalibration, 1% readout error, 1000 shots.
    pub fn aquila_like() -> Self {
        NoiseModel {
            depolarizing_rate: 0.25,
            amplitude_miscalibration: 0.05,
            readout_error: 0.01,
            shots: Some(1000),
        }
    }

    /// Returns `true` when every noise channel is disabled.
    pub fn is_noiseless(&self) -> bool {
        self.depolarizing_rate == 0.0
            && self.amplitude_miscalibration == 0.0
            && self.readout_error == 0.0
            && self.shots.is_none()
    }

    /// Panics unless every field is within its documented physical range:
    /// `depolarizing_rate ≥ 0`, `amplitude_miscalibration ≥ 0` (both
    /// finite), `readout_error ∈ [0, ½]`, and `shots ≠ Some(0)`.
    ///
    /// Called by every [`EmulatedDevice`] `run*` entry point, so a
    /// hand-built out-of-range model fails loudly before it can flip
    /// observable signs (`readout_error > ½`), amplify instead of damp
    /// (negative `depolarizing_rate`), or silently pretend zero shots are
    /// infinitely many (`Some(0)`).
    pub fn validate(&self) {
        if let Err(error) = self.try_validate() {
            panic!("{error}");
        }
    }

    /// Fallible variant of [`validate`](NoiseModel::validate): reports an
    /// out-of-range field as [`EvolveError::InvalidInput`] instead of
    /// panicking.
    ///
    /// # Errors
    ///
    /// [`EvolveError::InvalidInput`] naming the offending field.
    pub fn try_validate(&self) -> Result<(), EvolveError> {
        let invalid = |context: String| Err(EvolveError::InvalidInput { context });
        if !(self.depolarizing_rate.is_finite() && self.depolarizing_rate >= 0.0) {
            return invalid(format!(
                "depolarizing_rate must be finite and non-negative, got {}",
                self.depolarizing_rate
            ));
        }
        if !(self.amplitude_miscalibration.is_finite() && self.amplitude_miscalibration >= 0.0) {
            return invalid(format!(
                "amplitude_miscalibration must be finite and non-negative, got {}",
                self.amplitude_miscalibration
            ));
        }
        if !(self.readout_error.is_finite() && (0.0..=0.5).contains(&self.readout_error)) {
            return invalid(format!(
                "readout_error must lie in [0, 0.5] ((1 - 2p)^w flips signs past 0.5), got {}",
                self.readout_error
            ));
        }
        if self.shots == Some(0) {
            return invalid(
                "shots = Some(0) estimates nothing; use None for exact expectation values"
                    .to_string(),
            );
        }
        Ok(())
    }
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel::noiseless()
    }
}

/// Result of one emulated device run.
#[derive(Debug, Clone)]
pub struct DeviceRun {
    /// Estimated `⟨Z_i⟩` per qubit.
    pub z: Vec<f64>,
    /// Estimated `⟨Z_i Z_{i+1}⟩` per adjacent pair.
    pub zz: Vec<f64>,
    /// Total machine execution time of the run.
    pub execution_time: f64,
    /// Mid-schedule failures recovered during **this realization**'s
    /// evolution (guardrail trip → Taylor fallback). Empty on every
    /// healthy run; earlier revisions discarded the propagator's log, so
    /// noisy-device callers could not see that fallbacks happened.
    pub recoveries: RecoveryLog,
    /// Per-realization telemetry profile, present when the device's
    /// [`EvolveOptions`] enable telemetry (see [`crate::telemetry`]).
    pub profile: Option<RunProfile>,
}

/// Equality deliberately ignores [`profile`](DeviceRun::profile): the
/// profile carries wall-clock timings, which would break the exact
/// reproducibility contract (`run` twice with one seed ⇒ equal results)
/// the device tests pin. Observables, execution time, and the (fully
/// deterministic) recovery log all participate.
impl PartialEq for DeviceRun {
    fn eq(&self, other: &Self) -> bool {
        self.z == other.z
            && self.zz == other.zz
            && self.execution_time == other.execution_time
            && self.recoveries == other.recoveries
    }
}

impl DeviceRun {
    /// `Z_avg` over all qubits (paper §7.4: `(1/N) Σ_i ⟨Z_i⟩`).
    pub fn z_average(&self) -> f64 {
        mean(&self.z)
    }

    /// `ZZ_avg` over the measured adjacent bonds (paper §7.4), divided by
    /// the **bond count** — `N − 1` on an open chain, `N` on a ring with
    /// `n ≥ 3` — matching [`crate::observable::zz_average`], not by the
    /// qubit count `N`.
    pub fn zz_average(&self) -> f64 {
        mean(&self.zz)
    }
}

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// An emulated analog quantum device.
#[derive(Debug, Clone)]
pub struct EmulatedDevice {
    noise: NoiseModel,
    seed: u64,
    options: EvolveOptions,
}

impl EmulatedDevice {
    /// Creates a device with the given noise model and RNG seed (default
    /// evolution options — [`crate::StepperKind::Auto`], which picks the
    /// cheapest backend per schedule segment).
    pub fn new(noise: NoiseModel, seed: u64) -> Self {
        EmulatedDevice {
            noise,
            seed,
            options: EvolveOptions::default(),
        }
    }

    /// A noiseless reference device (the "theory" curves).
    pub fn ideal() -> Self {
        EmulatedDevice::new(NoiseModel::noiseless(), 0)
    }

    /// Selects the time-evolution backend (and tolerance) the device runs
    /// its state-vector execution with — including the options'
    /// [`crate::ExecutionContext`] (worker count, parallel threshold, kernel
    /// path), which the one [`Propagator`] built per sweep reuses across
    /// **every** noise realization: the worker pool is warmed once, not per
    /// realization.
    pub fn with_options(mut self, options: EvolveOptions) -> Self {
        self.options = options;
        self
    }

    /// The configured noise model.
    pub fn noise(&self) -> &NoiseModel {
        &self.noise
    }

    /// The configured evolution options.
    pub fn options(&self) -> EvolveOptions {
        self.options
    }

    /// Executes a sequence of `(Hamiltonian, duration)` segments starting from
    /// `|0…0⟩` and measures the `Z`/`ZZ` observables.
    ///
    /// `cyclic` controls whether the wrap-around `ZZ` bond is measured; the
    /// bonds follow the deduplicated [`crate::observable::zz_pairs`]
    /// semantics (no wrap-around for fewer than 3 qubits). The segments are
    /// compiled into a layout-sharing [`CompiledSchedule`] (compiled pulse
    /// schedules reuse a handful of term structures across segments), and
    /// both observable families come from the single fused sweep of
    /// [`measure_z_zz`].
    ///
    /// For noise sweeps over many realizations, use
    /// [`run_realizations`](EmulatedDevice::run_realizations) (or
    /// [`run_compiled`](EmulatedDevice::run_compiled) with a schedule you
    /// compiled yourself): the schedule is compiled **once** and every
    /// realization reuses its mask layouts through
    /// [`CompiledSchedule::scaled_weights`].
    ///
    /// # Panics
    ///
    /// Panics on the failures [`try_run`](EmulatedDevice::try_run) reports
    /// as errors.
    pub fn run(
        &self,
        segments: &[(Hamiltonian, f64)],
        num_qubits: usize,
        cyclic: bool,
    ) -> DeviceRun {
        self.try_run(segments, num_qubits, cyclic)
            .unwrap_or_else(|error| panic!("{error}"))
    }

    /// Fallible variant of [`run`](EmulatedDevice::run).
    ///
    /// # Errors
    ///
    /// [`EvolveError::InvalidInput`] for an out-of-range noise model, an
    /// empty segment list, or a schedule wider than the register; any
    /// [`EvolveError`] of the underlying evolution.
    pub fn try_run(
        &self,
        segments: &[(Hamiltonian, f64)],
        num_qubits: usize,
        cyclic: bool,
    ) -> Result<DeviceRun, EvolveError> {
        // Evolve realization 0 directly — no realization `Vec` to pop, so
        // the historical `unreachable!` (the last panicking site in the
        // realization path) is gone by construction.
        let schedule = CompiledSchedule::compile(segments);
        let execution_time = self.try_prepare(&schedule)?;
        let mut propagator = Propagator::with_options(self.options);
        self.run_realization(
            &schedule,
            num_qubits,
            cyclic,
            execution_time,
            &mut propagator,
            0,
        )
    }

    /// [`run`](EmulatedDevice::run) repeated over `realizations` independent
    /// noise draws, compiling the schedule **once**. Realization `0`
    /// reproduces [`run`](EmulatedDevice::run) exactly; realization `r`
    /// draws from an independent stream obtained by SplitMix64-mixing the
    /// device seed with `r` ([`Rng::seed_from_pair`]) — the historical
    /// additive `seed + r` composition made *distinct* device seeds share
    /// realization streams (seed `s`, realization `r` replayed seed `s + 1`,
    /// realization `r − 1`).
    ///
    /// # Panics
    ///
    /// Panics on the failures
    /// [`try_run_realizations`](EmulatedDevice::try_run_realizations)
    /// reports as errors.
    pub fn run_realizations(
        &self,
        segments: &[(Hamiltonian, f64)],
        num_qubits: usize,
        cyclic: bool,
        realizations: usize,
    ) -> Vec<DeviceRun> {
        self.try_run_realizations(segments, num_qubits, cyclic, realizations)
            .unwrap_or_else(|error| panic!("{error}"))
    }

    /// Fallible variant of
    /// [`run_realizations`](EmulatedDevice::run_realizations).
    ///
    /// # Errors
    ///
    /// See [`try_run_compiled`](EmulatedDevice::try_run_compiled).
    pub fn try_run_realizations(
        &self,
        segments: &[(Hamiltonian, f64)],
        num_qubits: usize,
        cyclic: bool,
        realizations: usize,
    ) -> Result<Vec<DeviceRun>, EvolveError> {
        let schedule = CompiledSchedule::compile(segments);
        self.try_run_compiled(&schedule, num_qubits, cyclic, realizations)
    }

    /// Runs a pre-compiled schedule over `realizations` independent noise
    /// draws.
    ///
    /// The per-run coherent amplitude miscalibration rescales every
    /// coefficient by one global factor, which leaves the term structure
    /// untouched — so each realization is a
    /// [`CompiledSchedule::scaled_weights`] view sharing `schedule`'s mask
    /// layouts, and the structural compile work is paid exactly once however
    /// many realizations are swept. One [`Propagator`] (with the device's
    /// [`EvolveOptions`]) carries its scratch buffers across all of them.
    ///
    /// When the device's options request realization batching
    /// ([`EvolveOptions::with_realization_block`]) and more than one
    /// realization is swept, the realizations evolve together as
    /// structure-of-arrays [`RealizationBlock`] tiles — every mask,
    /// diagonal-table entry, and gather index is read once per basis state
    /// for all realizations in a tile — and agree with the per-realization
    /// reference path to 1e-10 (the conformance grid in
    /// `tests/conformance_device.rs` pins this for every stepper kind).
    ///
    /// # Panics
    ///
    /// Panics on the failures
    /// [`try_run_compiled`](EmulatedDevice::try_run_compiled) reports as
    /// errors.
    pub fn run_compiled(
        &self,
        schedule: &CompiledSchedule,
        num_qubits: usize,
        cyclic: bool,
        realizations: usize,
    ) -> Vec<DeviceRun> {
        self.try_run_compiled(schedule, num_qubits, cyclic, realizations)
            .unwrap_or_else(|error| panic!("{error}"))
    }

    /// Fallible variant of [`run_compiled`](EmulatedDevice::run_compiled).
    ///
    /// # Errors
    ///
    /// [`EvolveError::InvalidInput`] if the noise model fails
    /// [`NoiseModel::try_validate`], the schedule has no segments (a device
    /// run of nothing measures nothing — callers wanting an identity
    /// evolution say so with a zero-duration segment), or the schedule acts
    /// on more than `num_qubits` qubits; otherwise any [`EvolveError`] of
    /// the underlying schedule evolution.
    pub fn try_run_compiled(
        &self,
        schedule: &CompiledSchedule,
        num_qubits: usize,
        cyclic: bool,
        realizations: usize,
    ) -> Result<Vec<DeviceRun>, EvolveError> {
        let execution_time = self.try_prepare(schedule)?;
        if self.options.realization_block && realizations > 1 {
            return self.try_run_compiled_block(
                schedule,
                num_qubits,
                cyclic,
                realizations,
                execution_time,
            );
        }
        let mut propagator = Propagator::with_options(self.options);
        (0..realizations)
            .map(|realization| {
                self.run_realization(
                    schedule,
                    num_qubits,
                    cyclic,
                    execution_time,
                    &mut propagator,
                    realization,
                )
            })
            .collect()
    }

    /// Shared entry validation of every run: noise-model range checks and
    /// the non-empty-schedule rule. Returns the machine execution time.
    fn try_prepare(&self, schedule: &CompiledSchedule) -> Result<f64, EvolveError> {
        self.noise.try_validate()?;
        if schedule.num_segments() == 0 {
            return Err(EvolveError::InvalidInput {
                context: "empty schedules cannot be run on a device (no pulse to execute)"
                    .to_string(),
            });
        }
        Ok(schedule.total_time())
    }

    /// The RNG stream of one noise realization: the device seed
    /// SplitMix64-mixed with the realization index, so distinct device
    /// seeds never share streams (the additive `seed + r` composition
    /// aliased seed `s`, realization `r` onto seed `s + 1`, realization
    /// `r − 1`).
    fn realization_rng(&self, realization: usize) -> Rng {
        Rng::seed_from_pair(self.seed, realization as u64)
    }

    /// Draws this realization's coherent amplitude-miscalibration scale —
    /// or returns exactly `1.0`, **without touching the RNG**, when the
    /// channel is disabled. The branch is on the noise model, not on the
    /// drawn value: a Gaussian draw that happens to land on `1.0` still
    /// takes the scaled-weights path every other realization took (the
    /// historical `scale == 1.0` float test silently skipped it).
    fn draw_scale(&self, rng: &mut Rng) -> f64 {
        if self.miscalibration_enabled() {
            1.0 + rng.next_gaussian() * self.noise.amplitude_miscalibration
        } else {
            1.0
        }
    }

    /// Whether the coherent amplitude-miscalibration channel is active —
    /// the explicit branch both run paths key the scale draw off.
    fn miscalibration_enabled(&self) -> bool {
        self.noise.amplitude_miscalibration > 0.0
    }

    /// Evolves and measures **one** noise realization against a shared
    /// propagator: the unit of the sequential (per-realization) reference
    /// path, and the direct body of [`try_run`](EmulatedDevice::try_run).
    fn run_realization(
        &self,
        schedule: &CompiledSchedule,
        num_qubits: usize,
        cyclic: bool,
        execution_time: f64,
        propagator: &mut Propagator,
        realization: usize,
    ) -> Result<DeviceRun, EvolveError> {
        let mut rng = self.realization_rng(realization);

        // Coherent amplitude miscalibration: one scale error per run.
        let scaled;
        let effective = if self.miscalibration_enabled() {
            scaled = schedule.try_scaled_weights(self.draw_scale(&mut rng))?;
            &scaled
        } else {
            schedule
        };

        let mut final_state = StateVector::zero_state(num_qubits);
        // The propagator's recovery log accumulates across the
        // sweep; remember where this realization starts so its own
        // events can be sliced out below.
        let recoveries_before = propagator.recovery_log().len();
        propagator.try_evolve_schedule_in_place(effective, &mut final_state)?;
        let recoveries =
            RecoveryLog::from_events(&propagator.recovery_log().events()[recoveries_before..]);
        // Draining resets the recorder, so each realization's
        // profile covers exactly its own evolution.
        let profile = propagator
            .drain_trace()
            .as_ref()
            .map(RunProfile::from_recorder);

        Ok(self.measure_run(
            &final_state,
            cyclic,
            execution_time,
            recoveries,
            profile,
            &mut rng,
        ))
    }

    /// Converts a final state into a [`DeviceRun`]: damps the exact
    /// observables by the depolarizing and readout channels, then applies
    /// finite-shot estimation. Shared by the sequential and block paths so
    /// both consume the realization RNG in the identical order (scale draw
    /// first, then estimation draws).
    fn measure_run(
        &self,
        final_state: &StateVector,
        cyclic: bool,
        execution_time: f64,
        recoveries: RecoveryLog,
        profile: Option<RunProfile>,
        rng: &mut Rng,
    ) -> DeviceRun {
        let damp = |weight: f64| {
            let depolarizing = (-self.noise.depolarizing_rate * weight * execution_time).exp();
            let readout = (1.0 - 2.0 * self.noise.readout_error).powf(weight);
            depolarizing * readout
        };

        let observables = measure_z_zz(final_state, cyclic);
        let z: Vec<f64> = observables
            .z
            .into_iter()
            .map(|e| self.estimate(e * damp(1.0), rng))
            .collect();
        let zz: Vec<f64> = observables
            .zz
            .into_iter()
            .map(|e| self.estimate(e * damp(2.0), rng))
            .collect();

        DeviceRun {
            z,
            zz,
            execution_time,
            recoveries,
            profile,
        }
    }

    /// The structure-of-arrays sweep behind
    /// [`EvolveOptions::with_realization_block`]: every realization's scale
    /// is drawn first (in realization order, so the per-stream RNG draw
    /// sequence matches the sequential path exactly), then realizations are
    /// evolved as lane-aligned [`RealizationBlock`]s — masks, diagonal
    /// tables, and gather indices read once per basis state for **all**
    /// realizations in a block — and finally measured per realization with
    /// the same RNGs.
    ///
    /// Blocks are tiled: a tile of realizations small enough to keep the
    /// three block buffers cache-resident is evolved at a time (at most
    /// [`MAX_BLOCK_TILE_AMPS`] amplitudes per buffer), which preserves the
    /// SoA read-amortization win without turning the sweep DRAM-bound at
    /// large registers.
    fn try_run_compiled_block(
        &self,
        schedule: &CompiledSchedule,
        num_qubits: usize,
        cyclic: bool,
        realizations: usize,
        execution_time: f64,
    ) -> Result<Vec<DeviceRun>, EvolveError> {
        let mut propagator = Propagator::with_options(self.options);
        let mut rngs: Vec<Rng> = (0..realizations).map(|r| self.realization_rng(r)).collect();
        let scales: Vec<f64> = rngs.iter_mut().map(|rng| self.draw_scale(rng)).collect();

        let dim = 1usize << num_qubits;
        let tile = (MAX_BLOCK_TILE_AMPS / dim.max(1))
            .clamp(MIN_BLOCK_TILE, MAX_BLOCK_TILE)
            .min(realizations.next_multiple_of(crate::exec::LANE_WIDTH));

        let mut runs = Vec::with_capacity(realizations);
        let mut start = 0usize;
        while start < realizations {
            let count = tile.min(realizations - start);
            let mut block = RealizationBlock::zero_states(num_qubits, count);
            let recoveries_before = propagator.recovery_log().len();
            propagator.try_evolve_schedule_block(
                schedule,
                &mut block,
                &scales[start..start + count],
            )?;
            let recoveries =
                RecoveryLog::from_events(&propagator.recovery_log().events()[recoveries_before..]);
            let profile = propagator
                .drain_trace()
                .as_ref()
                .map(RunProfile::from_recorder);
            for r in 0..count {
                let final_state = block.extract(r);
                runs.push(self.measure_run(
                    &final_state,
                    cyclic,
                    execution_time,
                    recoveries.clone(),
                    profile.clone(),
                    &mut rngs[start + r],
                ));
            }
            start += count;
        }
        Ok(runs)
    }

    /// Converts an exact expectation value into a finite-shot estimate.
    /// `Some(0)` is unreachable here — [`NoiseModel::validate`] rejects it
    /// before any estimation happens (an earlier revision silently treated
    /// it as exact, contradicting `is_noiseless`).
    fn estimate(&self, expectation: f64, rng: &mut Rng) -> f64 {
        match self.noise.shots {
            None => expectation,
            Some(shots) => {
                assert!(shots > 0, "Some(0) shots is rejected by validate()");
                let probability_plus = ((1.0 + expectation) / 2.0).clamp(0.0, 1.0);
                let mut plus_count = 0usize;
                for _ in 0..shots {
                    if rng.next_f64() < probability_plus {
                        plus_count += 1;
                    }
                }
                2.0 * plus_count as f64 / shots as f64 - 1.0
            }
        }
    }
}

/// Convenience: run the segments on a noiseless device.
pub fn ideal_run(segments: &[(Hamiltonian, f64)], num_qubits: usize, cyclic: bool) -> DeviceRun {
    EmulatedDevice::ideal().run(segments, num_qubits, cyclic)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qturbo_hamiltonian::{Pauli, PauliString};

    fn rabi_segment(num_qubits: usize, omega: f64, duration: f64) -> (Hamiltonian, f64) {
        let mut h = Hamiltonian::new(num_qubits);
        for i in 0..num_qubits {
            h.add_term(omega / 2.0, PauliString::single(i, Pauli::X));
        }
        (h, duration)
    }

    #[test]
    fn ideal_run_matches_analytic_rabi() {
        // ⟨Z⟩(t) = cos(Ω t) for each qubit under a global Rabi drive.
        let omega = 2.0;
        let t = 0.4;
        let run = ideal_run(&[rabi_segment(3, omega, t)], 3, false);
        for z in &run.z {
            assert!((z - (omega * t).cos()).abs() < 1e-8);
        }
        for zz in &run.zz {
            assert!((zz - (omega * t).cos().powi(2)).abs() < 1e-8);
        }
        assert!((run.execution_time - t).abs() < 1e-15);
        assert!((run.z_average() - (omega * t).cos()).abs() < 1e-8);
    }

    #[test]
    fn noiseless_model_is_detected() {
        assert!(NoiseModel::noiseless().is_noiseless());
        assert!(!NoiseModel::aquila_like().is_noiseless());
        assert!(NoiseModel::default().is_noiseless());
    }

    #[test]
    fn depolarizing_damps_towards_zero_with_time() {
        let noise = NoiseModel {
            depolarizing_rate: 0.5,
            amplitude_miscalibration: 0.0,
            readout_error: 0.0,
            shots: None,
        };
        let device = EmulatedDevice::new(noise, 1);
        // Identity evolution: the ideal Z expectation stays 1, so the noisy
        // value is exactly the damping factor.
        let idle = (Hamiltonian::new(2), 1.0);
        let short = device.run(&[(idle.0.clone(), 0.5)], 2, false);
        let long = device.run(&[idle], 2, false);
        assert!(short.z_average() > long.z_average());
        assert!((short.z_average() - (-0.5_f64 * 0.5).exp()).abs() < 1e-12);
        assert!((long.z_average() - (-0.5_f64).exp()).abs() < 1e-12);
        // Weight-2 observables are damped twice as fast.
        assert!((long.zz_average() - (-(2.0_f64 * 0.5)).exp()).abs() < 1e-12);
    }

    #[test]
    fn shot_noise_is_unbiased_but_fluctuates() {
        let noise = NoiseModel {
            depolarizing_rate: 0.0,
            amplitude_miscalibration: 0.0,
            readout_error: 0.0,
            shots: Some(400),
        };
        let device = EmulatedDevice::new(noise, 7);
        let run = device.run(&[rabi_segment(1, 2.0, 0.3)], 1, false);
        let exact = (2.0_f64 * 0.3).cos();
        // 400 shots => standard error about 0.05; allow 5 sigma.
        assert!((run.z[0] - exact).abs() < 0.25);
        // Same seed, same result (deterministic reproduction).
        let rerun = device.run(&[rabi_segment(1, 2.0, 0.3)], 1, false);
        assert_eq!(run, rerun);
    }

    #[test]
    fn readout_error_shrinks_magnitudes() {
        let noise = NoiseModel {
            depolarizing_rate: 0.0,
            amplitude_miscalibration: 0.0,
            readout_error: 0.05,
            shots: None,
        };
        let device = EmulatedDevice::new(noise, 3);
        let run = device.run(&[(Hamiltonian::new(2), 0.1)], 2, true);
        assert!((run.z_average() - 0.9).abs() < 1e-12);
        assert!((run.zz_average() - 0.81).abs() < 1e-12);
    }

    #[test]
    fn miscalibration_changes_dynamics_deterministically_per_seed() {
        let noise = NoiseModel {
            depolarizing_rate: 0.0,
            amplitude_miscalibration: 0.2,
            readout_error: 0.0,
            shots: None,
        };
        let a = EmulatedDevice::new(noise.clone(), 11).run(&[rabi_segment(1, 2.0, 1.0)], 1, false);
        let b = EmulatedDevice::new(noise, 12).run(&[rabi_segment(1, 2.0, 1.0)], 1, false);
        let ideal = ideal_run(&[rabi_segment(1, 2.0, 1.0)], 1, false);
        assert!((a.z[0] - ideal.z[0]).abs() > 1e-6 || (b.z[0] - ideal.z[0]).abs() > 1e-6);
        assert_ne!(a.z[0], b.z[0]);
    }

    #[test]
    fn realizations_reuse_one_compiled_schedule() {
        // The shared-layout scaled_weights path changes no physics:
        // realization 0 reproduces `run` exactly, the sweep is
        // deterministic, and the realization streams are mutually distinct.
        let noise = NoiseModel {
            depolarizing_rate: 0.1,
            amplitude_miscalibration: 0.1,
            readout_error: 0.01,
            shots: Some(200),
        };
        let segments = [rabi_segment(2, 2.0, 0.5)];
        let base = EmulatedDevice::new(noise.clone(), 40);
        let sweep = base.run_realizations(&segments, 2, false, 3);
        assert_eq!(sweep.len(), 3);
        assert_eq!(sweep[0], base.run(&segments, 2, false));
        assert_eq!(sweep, base.run_realizations(&segments, 2, false, 3));
        assert_ne!(sweep[0], sweep[1]);
        assert_ne!(sweep[1], sweep[2]);
        // Decorrelation regression: with the historical additive `seed + r`
        // streams, realization 1 of seed 40 replayed realization 0 of seed
        // 41 draw for draw.
        let neighbor = EmulatedDevice::new(noise, 41);
        assert_ne!(
            sweep[1],
            neighbor.run_realizations(&segments, 2, false, 1)[0]
        );
    }

    #[test]
    fn stepper_choice_does_not_change_the_physics() {
        use crate::stepper::EvolveOptions;
        let segments = [rabi_segment(3, 2.0, 0.4)];
        let reference = ideal_run(&segments, 3, false);
        for options in [EvolveOptions::krylov(), EvolveOptions::chebyshev()] {
            let run = EmulatedDevice::ideal()
                .with_options(options)
                .run(&segments, 3, false);
            assert_eq!(run.execution_time, reference.execution_time);
            for (a, b) in run.z.iter().zip(&reference.z) {
                assert!((a - b).abs() < 1e-9, "{options:?}: {a} != {b}");
            }
            for (a, b) in run.zz.iter().zip(&reference.zz) {
                assert!((a - b).abs() < 1e-9, "{options:?}: {a} != {b}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "shots = Some(0)")]
    fn zero_shots_is_rejected() {
        // Regression: Some(0) used to be reported noisy by is_noiseless()
        // yet silently treated as exact (infinite shots) by the estimator.
        // The pinned choice is rejection — a caller who wants exact values
        // says None.
        let noise = NoiseModel {
            shots: Some(0),
            ..NoiseModel::noiseless()
        };
        // Still *classified* as noisy (the field is set)…
        assert!(!noise.is_noiseless());
        // …but running with it panics instead of quietly acting noiseless.
        let _ = EmulatedDevice::new(noise, 1).run(&[rabi_segment(1, 1.0, 0.1)], 1, false);
    }

    #[test]
    #[should_panic(expected = "readout_error")]
    fn readout_error_above_half_is_rejected() {
        // (1 − 2p)^w flips observable signs for p > ½ — an earlier revision
        // silently returned sign-flipped Z/ZZ estimates.
        let noise = NoiseModel {
            readout_error: 0.6,
            ..NoiseModel::noiseless()
        };
        let _ = EmulatedDevice::new(noise, 1).run(&[rabi_segment(1, 1.0, 0.1)], 1, false);
    }

    #[test]
    #[should_panic(expected = "depolarizing_rate")]
    fn negative_depolarizing_rate_is_rejected() {
        // exp(−γ·w·T) with γ < 0 amplifies instead of damps.
        let noise = NoiseModel {
            depolarizing_rate: -0.1,
            ..NoiseModel::noiseless()
        };
        let _ = EmulatedDevice::new(noise, 1).run(&[rabi_segment(1, 1.0, 0.1)], 1, false);
    }

    #[test]
    fn boundary_noise_values_are_legal() {
        // p = ½ is total readout depolarization: every observable damps to
        // exactly zero — legal, and the boundary of the validated range.
        let noise = NoiseModel {
            readout_error: 0.5,
            ..NoiseModel::noiseless()
        };
        noise.validate();
        let run = EmulatedDevice::new(noise, 3).run(&[(Hamiltonian::new(2), 0.1)], 2, false);
        assert_eq!(run.z, vec![0.0, 0.0]);
        assert_eq!(run.zz, vec![0.0]);
        // Zero rates are the other boundary; aquila_like is interior.
        NoiseModel::noiseless().validate();
        NoiseModel::aquila_like().validate();
    }

    #[test]
    fn shorter_pulses_are_closer_to_theory() {
        // The central mechanism of the paper's real-device result: the same
        // target evolution compiled into a shorter pulse suffers less noise.
        let noise = NoiseModel {
            depolarizing_rate: 0.3,
            amplitude_miscalibration: 0.0,
            readout_error: 0.0,
            shots: None,
        };
        let device = EmulatedDevice::new(noise, 5);
        // Target: rotate by angle Ω·t = 0.8 rad. Short pulse: Ω=4, t=0.2.
        // Long pulse: Ω=0.5, t=1.6. Both give the same ideal state.
        let ideal = ideal_run(&[rabi_segment(2, 4.0, 0.2)], 2, false);
        let short = device.run(&[rabi_segment(2, 4.0, 0.2)], 2, false);
        let long = device.run(&[rabi_segment(2, 0.5, 1.6)], 2, false);
        let short_error = (short.z_average() - ideal.z_average()).abs();
        let long_error = (long.z_average() - ideal.z_average()).abs();
        assert!(short_error < long_error);
    }
}
