//! Deterministic fault injection for robustness testing.
//!
//! A [`FaultInjector`] attaches to a
//! [`Propagator`](crate::propagate::Propagator) and corrupts evolution at
//! chosen schedule segment indices: poisoning amplitudes with NaN/Inf/scale
//! spikes, perturbing the spectral bound handed to the stepper, or forcing
//! the Krylov QL eigensolver to report non-convergence. All corruption is
//! seeded and deterministic, so failures found by the conformance grid in
//! `tests/prop_faults.rs` reproduce exactly.
//!
//! Faults are consumed when their segment first executes — a segment retried
//! by the fallback path is NOT re-corrupted, which is what lets recovery
//! reach the correct answer.

use qturbo_math::rng::Rng;

use crate::state::{RealizationBlock, StateVector};

/// A single injectable failure.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// Overwrite one amplitude (seed-chosen index) with NaN.
    NanAmplitude,
    /// Overwrite one amplitude (seed-chosen index) with infinity.
    InfAmplitude,
    /// Multiply one amplitude (seed-chosen index) by `factor`.
    AmplitudeSpike {
        /// Multiplicative spike applied to the chosen amplitude.
        factor: f64,
    },
    /// Scale the spectral radius and shift the center seen by the stepper.
    BoundPerturbation {
        /// Multiplier applied to the spectral radius.
        radius_scale: f64,
        /// Additive shift applied to the spectral center.
        center_shift: f64,
    },
    /// Force the Krylov tridiagonal QL eigensolver to report non-convergence.
    QlNonConvergence,
}

/// Seeded registry of faults keyed by schedule segment index.
///
/// ```
/// use qturbo_quantum::fault::{Fault, FaultInjector};
///
/// let injector = FaultInjector::new(7)
///     .with_fault(1, Fault::NanAmplitude)
///     .with_fault(3, Fault::QlNonConvergence);
/// assert!(injector.has_faults());
/// ```
#[derive(Debug, Clone)]
pub struct FaultInjector {
    seed: u64,
    faults: Vec<(usize, Fault)>,
}

impl FaultInjector {
    /// Creates an injector with no registered faults.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            faults: Vec::new(),
        }
    }

    /// Registers `fault` to fire when schedule segment `segment` executes.
    #[must_use]
    pub fn with_fault(mut self, segment: usize, fault: Fault) -> Self {
        self.faults.push((segment, fault));
        self
    }

    /// Whether any fault remains armed.
    #[must_use]
    pub fn has_faults(&self) -> bool {
        !self.faults.is_empty()
    }

    /// Removes and returns the faults armed for `segment` (consume-once).
    pub(crate) fn take_faults(&mut self, segment: usize) -> Vec<Fault> {
        let mut taken = Vec::new();
        let mut index = 0;
        while index < self.faults.len() {
            if self.faults[index].0 == segment {
                taken.push(self.faults.remove(index).1);
            } else {
                index += 1;
            }
        }
        taken
    }

    /// Corrupts one amplitude of `state` in place according to `fault`.
    ///
    /// The target index is derived deterministically from the injector seed
    /// and the segment index. Non-amplitude faults are ignored here.
    pub(crate) fn corrupt_state(&self, state: &mut StateVector, segment: usize, fault: &Fault) {
        let dim = state.dim();
        if dim == 0 {
            return;
        }
        let mut rng =
            Rng::seed_from_u64(self.seed ^ (segment as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let target = rng.next_usize(dim);
        let amplitudes = state.amplitudes_mut();
        match fault {
            Fault::NanAmplitude => {
                amplitudes[target].re = f64::NAN;
            }
            Fault::InfAmplitude => {
                amplitudes[target].im = f64::INFINITY;
            }
            Fault::AmplitudeSpike { factor } => {
                amplitudes[target].re *= factor;
                amplitudes[target].im *= factor;
            }
            Fault::BoundPerturbation { .. } | Fault::QlNonConvergence => {}
        }
    }

    /// Corrupts one basis amplitude of **every** realization in `block`
    /// according to `fault` — the block analog of
    /// [`corrupt_state`](FaultInjector::corrupt_state), hitting the same
    /// seed-chosen basis index so the block path reproduces the sequential
    /// path's fault scenario across all lanes.
    pub(crate) fn corrupt_block(
        &self,
        block: &mut RealizationBlock,
        segment: usize,
        fault: &Fault,
    ) {
        let dim = block.dim();
        if dim == 0 {
            return;
        }
        let mut rng =
            Rng::seed_from_u64(self.seed ^ (segment as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let target = rng.next_usize(dim);
        let (stride, realizations) = (block.stride(), block.realizations());
        let amplitudes = block.as_mut_slice();
        for r in 0..realizations {
            let amp = &mut amplitudes[target * stride + r];
            match fault {
                Fault::NanAmplitude => {
                    amp.re = f64::NAN;
                }
                Fault::InfAmplitude => {
                    amp.im = f64::INFINITY;
                }
                Fault::AmplitudeSpike { factor } => {
                    amp.re *= factor;
                    amp.im *= factor;
                }
                Fault::BoundPerturbation { .. } | Fault::QlNonConvergence => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qturbo_math::Complex;

    #[test]
    fn take_faults_consumes_once() {
        let mut injector = FaultInjector::new(1)
            .with_fault(2, Fault::NanAmplitude)
            .with_fault(2, Fault::QlNonConvergence)
            .with_fault(5, Fault::InfAmplitude);
        let taken = injector.take_faults(2);
        assert_eq!(taken.len(), 2);
        assert!(injector.take_faults(2).is_empty());
        assert!(injector.has_faults());
        assert_eq!(injector.take_faults(5), vec![Fault::InfAmplitude]);
        assert!(!injector.has_faults());
    }

    #[test]
    fn corruption_is_deterministic() {
        let injector = FaultInjector::new(42);
        let mut a = StateVector::zero_state(3);
        let mut b = StateVector::zero_state(3);
        injector.corrupt_state(&mut a, 1, &Fault::NanAmplitude);
        injector.corrupt_state(&mut b, 1, &Fault::NanAmplitude);
        let nan_count = |s: &StateVector| {
            s.amplitudes()
                .iter()
                .enumerate()
                .filter(|(_, amp)| amp.re.is_nan() || amp.im.is_nan())
                .map(|(i, _)| i)
                .collect::<Vec<_>>()
        };
        assert_eq!(nan_count(&a), nan_count(&b));
        assert_eq!(nan_count(&a).len(), 1);
    }

    #[test]
    fn spike_scales_one_amplitude() {
        let injector = FaultInjector::new(9);
        let mut state = StateVector::zero_state(2);
        for amp in state.amplitudes_mut() {
            *amp = Complex::new(0.5, 0.0);
        }
        injector.corrupt_state(&mut state, 0, &Fault::AmplitudeSpike { factor: 1e6 });
        let spiked = state.amplitudes().iter().filter(|amp| amp.re > 1.0).count();
        assert_eq!(spiked, 1);
    }
}
