//! Pluggable time-evolution steppers: Taylor (per-segment and batched),
//! Lanczos–Krylov, and Chebyshev backends behind one [`Stepper`] trait.
//!
//! # Why four backends
//!
//! The mask-compiled kernel made each `H|ψ⟩` application cheap, so the cost
//! of evolving a segment is essentially *how many applications the
//! integration scheme needs per unit time* — and, for trains of tiny
//! segments, how many state-sized *memory passes* ride along with them:
//!
//! * **[`TaylorStepper`]** — the original scheme: split the segment into
//!   steps with `‖H‖·Δt ≤ ½` and sum the Taylor series per step. Cost scales
//!   as `O(‖H‖·t · k̄)` applications with `k̄ ≈ 8` series orders per step —
//!   robust, zero setup, and the reference the other backends are pinned
//!   against. Best for short segments (`‖H‖·t ≲ 1`) where its minimal
//!   per-step overhead wins.
//! * **[`BatchedTaylorStepper`]** — the *same series*, evaluated as a
//!   batched multi-segment sweep: no per-step series copy (the first
//!   application reads the state directly, its term retired in a fused
//!   first-and-second-order traversal), and consecutive same-layout
//!   schedule segments share one run-end drift correction instead of
//!   per-step norm-and-rescale passes. Identical applications, ~15–25%
//!   fewer amplitude passes on dense ramps — the backend the ROADMAP's
//!   "batched multi-segment kernels" item asked for.
//! * **[`KrylovStepper`]** — Lanczos: project `H` onto an `m`-dimensional
//!   Krylov subspace (one application per basis vector, `m ≲ 32`),
//!   exponentiate the projected tridiagonal matrix exactly through the
//!   [`qturbo_math::tridiag`] eigensolver, and advance by the largest `Δt`
//!   the residual estimate admits. The basis dimension adapts: construction
//!   stops as soon as the residual for the remaining duration converges, and
//!   the step size adapts when even the full basis cannot cover the segment
//!   in one hop. Costs `O(m)` applications per step with steps that are
//!   typically `‖H‖·Δt ≈ m` wide — an order of magnitude fewer applications
//!   than Taylor on long segments, at the price of `m` retained basis
//!   vectors and `O(m²)` orthogonalization sweeps per step.
//! * **[`ChebyshevStepper`]** — expand `exp(−i·t·H)` in Chebyshev
//!   polynomials of `H` mapped onto the spectral interval estimated from the
//!   compiled term weights ([`SpectralBound`]), with Bessel-function
//!   coefficients from [`qturbo_math::chebyshev`]. The whole segment is one
//!   step of `≈ r·t + O((r·t)^⅓)` applications (`r` the spectral radius) —
//!   asymptotically optimal for long evolutions, and only three state-sized
//!   scratch vectors regardless of duration. Best when `‖H‖·t ≫ 1` and the
//!   spectral-interval estimate is tight (e.g. diagonal-dominated models).
//!
//! # Choosing a stepper
//!
//! Rule of thumb: batched Taylor for trains of tiny segments (a discretized
//! ramp), Krylov for schedules of medium segments (its basis pays off within
//! each segment and the adaptive step absorbs norm spikes), Chebyshev for
//! long quenches under one Hamiltonian. `BENCH_stepper.json` tracks all
//! backends on both shapes.
//!
//! You rarely need to pick by hand: [`StepperKind::Auto`] — the default —
//! prices every backend per segment from the segment's [`SpectralBound`] and
//! duration through an [`AutoCostModel`] and runs the cheapest one. The
//! model estimates each backend's `H|ψ⟩` application count (Taylor from its
//! `‖H‖·Δt ≤ ½` step splitting and series order, Chebyshev *exactly* from
//! the truncation order of its expansion via
//! [`qturbo_math::chebyshev::chebyshev_exp_order`], Krylov from a linear
//! phase model fitted to `BENCH_stepper.json`) and weights it by a relative
//! wall-clock cost per application (Krylov's orthogonalization sweeps make
//! its applications ~2.5x a Taylor application; Chebyshev's interval mapping
//! adds ~15%). The decision is per *segment*, so a schedule of short ramp
//! segments runs Taylor while a long quench in the same process runs
//! Chebyshev — and the crossovers are data, not code: override the
//! calibration via [`EvolveOptions::with_auto_model`].
//!
//! With the default calibration Krylov is never the predicted winner — the
//! measured crossovers have Chebyshev beating it whenever both beat Taylor,
//! because a compile-time model cannot see Krylov's true advantages (state
//! adaptivity, happy breakdown on invariant subspaces). Callers who know
//! their states live in small Krylov subspaces can steer the model (raise
//! `chebyshev_application_cost`) or pin [`StepperKind::Krylov`] outright.
//!
//! Pick a fixed backend explicitly when benchmarking backends against each
//! other, when reproducing the scalar Taylor reference bit-for-bit, or when
//! the spectral bound is known to be very loose (Auto prices Chebyshev off
//! the bound, so a loose bound inflates its estimate — and its actual work).
//!
//! # Contract
//!
//! A stepper evolves a state through **one segment**: a [`FusedKernel`]
//! (the compiled `H|ψ⟩` pass), a [`SpectralBound`] (the scalar facts the
//! schemes size their work from), a duration, and the caller's reference
//! norm. The caller guarantees a non-empty kernel, positive finite duration,
//! and a non-zero state; the stepper guarantees the state advances by
//! `exp(−i·H·duration)` to within its tolerance and returns with its norm
//! rescaled to `reference_norm` (drift correction — the exact evolution is
//! unitary). Every backend counts its kernel applications so benchmarks and
//! callers can compare work, not just wall time.
//!
//! Selection is threaded through the rest of the crate as
//! [`StepperKind`] / [`EvolveOptions`]: every evolution entry point
//! ([`crate::Propagator`], the `evolve*` free functions,
//! [`crate::EmulatedDevice`]) accepts an options value, so constant,
//! piecewise, and compiled-schedule workloads can each pick their backend.

use crate::compiled::{BlockKernel, FusedKernel};
use crate::error::EvolveError;
use crate::exec::{ExecutionContext, Passes};
use crate::state::{RealizationBlock, StateVector};
use qturbo_math::chebyshev::{
    try_chebyshev_exp_coefficients, try_chebyshev_exp_order, MAX_EXP_SPAN,
};
use qturbo_math::tridiag::{SymmetricTridiagonal, TridiagonalEigen};
use qturbo_math::{Complex, MathError};

/// Maximum Taylor series order per step (safety rail; the series converges
/// in a handful of orders at `‖H‖·Δt ≤ ½`).
pub(crate) const MAX_TAYLOR_ORDER: usize = 64;
/// Default truncation tolerance, *relative* to the norm of the state being
/// evolved. Shared by all backends so they agree to the benchmark's 1e-10
/// comparison threshold with headroom.
pub(crate) const DEFAULT_TOLERANCE: f64 = 1e-14;
/// Taylor evolution is split into steps with `strength · Δt` at most this
/// value so each step's series converges in a handful of orders.
pub(crate) const MAX_STEP_PHASE: f64 = 0.5;
/// Largest Lanczos basis dimension before the Krylov stepper falls back to
/// shrinking the step instead of growing the basis.
const KRYLOV_MAX_DIM: usize = 32;
/// Krylov basis construction below which no residual test is attempted (the
/// estimate is meaningless for one or two vectors).
const KRYLOV_MIN_DIM: usize = 3;
/// Largest relative norm drift `|‖ψ‖ − reference| / reference` tolerated at
/// a drift-correction point before the guardrail reports
/// [`EvolveError::NormDrift`]. Honest round-off accumulates at ~1e-12 over
/// the longest benchmarked schedules, so 1e-6 leaves six orders of headroom
/// while still catching any genuinely diverging expansion (whose drift is
/// many orders of magnitude, not fractions of an ulp).
pub const NORM_DRIFT_LIMIT: f64 = 1e-6;

/// Which time-evolution backend to use. See the [module docs](self) for the
/// cost model of each.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StepperKind {
    /// Scaled-and-squared Taylor series (`‖H‖·Δt ≤ ½` splitting) — the
    /// reference backend.
    Taylor,
    /// The Taylor series evaluated by the batched multi-segment sweep
    /// ([`BatchedTaylorStepper`]): identical step splitting, series orders,
    /// and truncation rule, but the per-step series copy is gone (the first
    /// application reads the state directly, its term retired in a fused
    /// first-and-second-order pass) and consecutive same-layout schedule
    /// segments share a single run-end drift correction instead of paying
    /// norm-and-rescale passes every step.
    BatchedTaylor,
    /// Adaptive Lanczos–Krylov propagator.
    Krylov,
    /// Chebyshev polynomial expansion over the estimated spectral interval.
    Chebyshev,
    /// Pick the cheapest fixed backend **per segment** from the segment's
    /// [`SpectralBound`] and duration through an [`AutoCostModel`] (see
    /// [Choosing a stepper](self#choosing-a-stepper)). The default.
    #[default]
    Auto,
}

impl StepperKind {
    /// Short lowercase name, as used in benchmark reports.
    pub fn name(self) -> &'static str {
        match self {
            StepperKind::Taylor => "taylor",
            StepperKind::BatchedTaylor => "batched_taylor",
            StepperKind::Krylov => "krylov",
            StepperKind::Chebyshev => "chebyshev",
            StepperKind::Auto => "auto",
        }
    }

    /// Every selectable kind, fixed backends first (reference-first order),
    /// [`Auto`](StepperKind::Auto) last.
    pub fn all() -> [StepperKind; 5] {
        [
            StepperKind::Taylor,
            StepperKind::BatchedTaylor,
            StepperKind::Krylov,
            StepperKind::Chebyshev,
            StepperKind::Auto,
        ]
    }

    /// The four fixed backends, in reference-first order — the concrete
    /// integration schemes [`Auto`](StepperKind::Auto) chooses between.
    pub fn fixed() -> [StepperKind; 4] {
        [
            StepperKind::Taylor,
            StepperKind::BatchedTaylor,
            StepperKind::Krylov,
            StepperKind::Chebyshev,
        ]
    }
}

/// Evolution options threaded through every propagation entry point: which
/// backend integrates each segment, at what relative tolerance, and — for
/// [`StepperKind::Auto`] — under which cost calibration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvolveOptions {
    /// The backend used for every segment ([`StepperKind::Auto`], the
    /// default, re-decides per segment).
    pub stepper: StepperKind,
    /// Truncation / residual tolerance, relative to the evolved state's
    /// norm. All backends interpret it per internal step, mirroring the
    /// original Taylor truncation semantics.
    pub tolerance: f64,
    /// The cost calibration [`StepperKind::Auto`] decides with; ignored by
    /// the fixed backends.
    pub auto_model: AutoCostModel,
    /// How every `H|ψ⟩` kernel application executes: worker count, parallel
    /// threshold, and kernel path (see [`ExecutionContext`]). Stored by each
    /// stepper at construction, so one configuration is reused across all
    /// schedule segments and device noise realizations.
    pub execution: ExecutionContext,
    /// Whether a [`Propagator`](crate::propagate::Propagator) built from
    /// these options records structured telemetry (see
    /// [`crate::telemetry`]). Defaults to the process-wide `QTURBO_TRACE`
    /// setting ([`crate::telemetry::env_enabled`]); override per run with
    /// [`with_telemetry`](EvolveOptions::with_telemetry). When `false` the
    /// propagation hot path performs a single boolean check — no
    /// allocation, no clock reads, no extra amplitude passes.
    pub telemetry: bool,
    /// Whether an [`EmulatedDevice`](crate::device::EmulatedDevice) sweep
    /// evolves its noise
    /// realizations as one structure-of-arrays [`RealizationBlock`] (the
    /// [`BlockTaylorStepper`]) instead of looping realizations sequentially.
    /// The block path reads every mask, diagonal-table entry, and gather
    /// index once per basis state for *all* realizations and vectorizes
    /// across the realization lanes; the sequential loop stays available as
    /// the conformance reference. Defaults to `false`.
    pub realization_block: bool,
}

impl Default for EvolveOptions {
    fn default() -> Self {
        EvolveOptions {
            stepper: StepperKind::default(),
            tolerance: DEFAULT_TOLERANCE,
            auto_model: AutoCostModel::default(),
            execution: ExecutionContext::auto(),
            telemetry: crate::telemetry::env_enabled(),
            realization_block: false,
        }
    }
}

impl EvolveOptions {
    /// Options selecting `kind` at the default tolerance.
    pub fn new(kind: StepperKind) -> Self {
        EvolveOptions {
            stepper: kind,
            ..EvolveOptions::default()
        }
    }

    /// The Taylor reference backend.
    pub fn taylor() -> Self {
        EvolveOptions::new(StepperKind::Taylor)
    }

    /// The batched multi-segment Taylor sweep.
    pub fn batched_taylor() -> Self {
        EvolveOptions::new(StepperKind::BatchedTaylor)
    }

    /// The Lanczos–Krylov backend.
    pub fn krylov() -> Self {
        EvolveOptions::new(StepperKind::Krylov)
    }

    /// The Chebyshev backend.
    pub fn chebyshev() -> Self {
        EvolveOptions::new(StepperKind::Chebyshev)
    }

    /// Per-segment automatic backend selection (the default).
    pub fn auto() -> Self {
        EvolveOptions::new(StepperKind::Auto)
    }

    /// Replaces the tolerance.
    ///
    /// # Panics
    ///
    /// Panics if `tolerance` is not positive and finite.
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        assert!(
            tolerance.is_finite() && tolerance > 0.0,
            "tolerance must be positive and finite"
        );
        self.tolerance = tolerance;
        self
    }

    /// Replaces the [`StepperKind::Auto`] cost calibration (the crossover
    /// knobs; a no-op unless the selected stepper is `Auto`).
    pub fn with_auto_model(mut self, model: AutoCostModel) -> Self {
        self.auto_model = model;
        self
    }

    /// Pins the worker count every kernel application may fan out to
    /// (`0` restores automatic resolution: the `QTURBO_THREADS` environment
    /// variable, then the machine's available parallelism). The pool only
    /// engages above the parallel threshold — tune that via
    /// [`with_execution`](EvolveOptions::with_execution).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.execution = self.execution.with_threads(threads);
        self
    }

    /// Replaces the whole [`ExecutionContext`] (worker count, parallel
    /// threshold, and kernel path at once).
    pub fn with_execution(mut self, execution: ExecutionContext) -> Self {
        self.execution = execution;
        self
    }

    /// Enables or disables structured telemetry for propagators built from
    /// these options, overriding the `QTURBO_TRACE` default (see
    /// [`crate::telemetry`]).
    pub fn with_telemetry(mut self, enabled: bool) -> Self {
        self.telemetry = enabled;
        self
    }

    /// Enables or disables structure-of-arrays realization batching for
    /// device sweeps (see [`EvolveOptions::realization_block`]).
    pub fn with_realization_block(mut self, enabled: bool) -> Self {
        self.realization_block = enabled;
        self
    }

    /// The backend that will actually integrate a segment with spectral
    /// bound `bound` and duration `duration` under these options: the fixed
    /// stepper itself, or the [`AutoCostModel`]'s per-segment choice.
    pub fn resolve(&self, bound: &SpectralBound, duration: f64) -> StepperKind {
        match self.stepper {
            StepperKind::Auto => self.auto_model.choose(bound, duration, self.tolerance),
            fixed => fixed,
        }
    }
}

/// The calibration [`StepperKind::Auto`] prices backends with: estimated
/// `H|ψ⟩` application counts weighted by per-application relative wall cost.
///
/// The defaults are fitted against `BENCH_stepper.json` (MIS ramp and
/// Heisenberg-quench workloads, see
/// [Choosing a stepper](self#choosing-a-stepper)); every field is public so
/// callers with different hardware or workload shapes can re-calibrate
/// through [`EvolveOptions::with_auto_model`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoCostModel {
    /// Relative wall cost of one Taylor kernel application (the unit: its
    /// fused apply-accumulate pass is the cheapest application there is).
    pub taylor_application_cost: f64,
    /// Relative wall cost of one Krylov kernel application. The Lanczos
    /// full-reorthogonalization sweeps and projected eigensolves ride along
    /// with every application, measured at ~2–3.3x a Taylor application in
    /// `BENCH_stepper.json`.
    pub krylov_application_cost: f64,
    /// Relative wall cost of one Chebyshev kernel application (the spectral
    /// interval mapping adds one subtract-and-scale pass, ~1.1x measured).
    pub chebyshev_application_cost: f64,
    /// Chebyshev's per-segment setup, in application-equivalents: the
    /// Bessel-coefficient build plus the fixed state-sized passes (seed the
    /// recurrence, apply the global phase, rescale) that every segment pays
    /// regardless of expansion order. This is what keeps Taylor the choice
    /// on many-short-segment ramps, matching the measured wall times.
    pub chebyshev_base_applications: f64,
    /// Estimated Krylov applications per unit of spectral phase
    /// (`radius · Δt`). `BENCH_stepper.json` measures 1.5–1.8 on the
    /// quenches; the default is deliberately pessimistic.
    pub krylov_applications_per_phase: f64,
    /// Krylov's per-segment floor: even a tiny segment builds a minimal
    /// Lanczos basis (~9 applications per segment measured on the MIS ramp).
    pub krylov_base_applications: f64,
    /// Relative wall cost of one batched-Taylor kernel application — the
    /// same fused passes the per-segment Taylor path runs (the batched
    /// sweep adds no per-gather work anywhere), so the default is unity.
    pub batched_taylor_application_cost: f64,
    /// Per-step overhead of the **per-segment** Taylor path in
    /// application-equivalents: the `copy_from` seed of the series plus the
    /// norm-and-rescale drift correction — roughly five state-sized
    /// traversals against the ~four of one fused kernel application.
    pub taylor_step_overhead_applications: f64,
    /// Per-step overhead of the **batched** sweep in
    /// application-equivalents: the amortized run-end drift correction plus
    /// the occasional standalone first-order accumulate. This undercutting
    /// [`taylor_step_overhead_applications`](AutoCostModel::taylor_step_overhead_applications)
    /// is exactly why ramp-style trains of tiny segments batch while long
    /// quench segments (where the overhead is negligible next to thousands
    /// of applications) still go to Chebyshev.
    pub batched_step_overhead_applications: f64,
}

impl Default for AutoCostModel {
    fn default() -> Self {
        AutoCostModel {
            taylor_application_cost: 1.0,
            krylov_application_cost: 2.5,
            chebyshev_application_cost: 1.15,
            chebyshev_base_applications: 3.0,
            krylov_applications_per_phase: 2.0,
            krylov_base_applications: 8.0,
            batched_taylor_application_cost: 1.0,
            taylor_step_overhead_applications: 1.2,
            batched_step_overhead_applications: 0.3,
        }
    }
}

impl AutoCostModel {
    /// Estimated `H|ψ⟩` applications `kind` spends on one segment with
    /// spectral bound `bound`, duration `duration`, and relative tolerance
    /// `tolerance`.
    ///
    /// Taylor is modeled from its step splitting and per-step series order,
    /// Chebyshev is **exact** (the truncation order of its expansion), and
    /// Krylov is a linear phase model fitted to `BENCH_stepper.json`.
    ///
    /// Returns `None` for [`StepperKind::Auto`] — Auto has no application
    /// count of its own (estimate the fixed backends and take the minimum,
    /// which is what [`choose`](AutoCostModel::choose) does). A Chebyshev
    /// expansion whose span overflows the supported truncation order prices
    /// as `f64::INFINITY` (never chosen, never panics).
    pub fn estimated_applications(
        &self,
        kind: StepperKind,
        bound: &SpectralBound,
        duration: f64,
        tolerance: f64,
    ) -> Option<f64> {
        // ‖H|ψ⟩‖ ≤ max|eig| ≤ |center| + radius: the scale that drives both
        // the Taylor series order and the Krylov phase.
        let spectral_scale = bound.center.abs() + bound.radius;
        match kind {
            // The batched sweep runs the identical series: same step
            // splitting, same orders, same truncation — only the overhead
            // passes differ, and those live in `estimated_cost`.
            StepperKind::Taylor | StepperKind::BatchedTaylor => {
                let steps = taylor_steps(bound, duration);
                let theta = spectral_scale * duration / steps;
                Some(steps * series_orders(theta, tolerance) as f64)
            }
            StepperKind::Krylov => Some(
                self.krylov_base_applications
                    + self.krylov_applications_per_phase * bound.radius * duration,
            ),
            StepperKind::Chebyshev => Some(
                try_chebyshev_exp_order(bound.radius * duration, tolerance)
                    .map_or(f64::INFINITY, |order| order as f64),
            ),
            StepperKind::Auto => None,
        }
    }

    /// Estimated relative wall cost of `kind` on one segment: estimated
    /// applications (plus Chebyshev's per-segment setup) × per-application
    /// cost.
    ///
    /// Returns `None` for [`StepperKind::Auto`] (see
    /// [`estimated_applications`](AutoCostModel::estimated_applications)).
    pub fn estimated_cost(
        &self,
        kind: StepperKind,
        bound: &SpectralBound,
        duration: f64,
        tolerance: f64,
    ) -> Option<f64> {
        let applications = self.estimated_applications(kind, bound, duration, tolerance)?;
        match kind {
            StepperKind::Taylor => Some(
                (applications
                    + taylor_steps(bound, duration) * self.taylor_step_overhead_applications)
                    * self.taylor_application_cost,
            ),
            StepperKind::BatchedTaylor => Some(
                (applications
                    + taylor_steps(bound, duration) * self.batched_step_overhead_applications)
                    * self.batched_taylor_application_cost,
            ),
            StepperKind::Krylov => Some(applications * self.krylov_application_cost),
            StepperKind::Chebyshev => Some(
                (applications + self.chebyshev_base_applications) * self.chebyshev_application_cost,
            ),
            StepperKind::Auto => None,
        }
    }

    /// The cheapest fixed backend for one segment (ties go to the earlier
    /// backend in reference-first order, so a dead heat picks Taylor).
    ///
    /// Always equivalent to the argmin of
    /// [`estimated_cost`](AutoCostModel::estimated_cost) over
    /// [`StepperKind::fixed`], but with a fast path for short segments: the
    /// exact Chebyshev pricing runs an `O(span)` Bessel recurrence (with a
    /// heap allocation), which on schedules of thousands of tiny segments
    /// would rival the evolution it prices. For `span ≤ 2` a rigorous lower
    /// bound on the expansion order (`J_k(z) ≥ ½·(z/2)ᵏ/k!` there, so the
    /// first `k` with `(z/2)ᵏ/k! < tolerance` cannot be past the truncation
    /// point) prices Chebyshev out without touching the recurrence whenever
    /// even that floor loses to Taylor or Krylov.
    pub fn choose(&self, bound: &SpectralBound, duration: f64, tolerance: f64) -> StepperKind {
        // Argmin over the non-Chebyshev backends, earlier-in-fixed-order
        // winning ties (so a dead heat stays with the Taylor reference).
        let (mut other, mut other_cost) = (
            StepperKind::Taylor,
            self.estimated_cost(StepperKind::Taylor, bound, duration, tolerance)
                .unwrap_or(f64::INFINITY),
        );
        for kind in [StepperKind::BatchedTaylor, StepperKind::Krylov] {
            let cost = self
                .estimated_cost(kind, bound, duration, tolerance)
                .unwrap_or(f64::INFINITY);
            if cost < other_cost {
                other = kind;
                other_cost = cost;
            }
        }
        let span = bound.radius * duration;
        if span > 0.0 && span <= 2.0 {
            let floor_cost = (series_orders(span / 2.0, tolerance) as f64
                + self.chebyshev_base_applications)
                * self.chebyshev_application_cost;
            if floor_cost >= other_cost {
                return other;
            }
        }
        let chebyshev_cost = self
            .estimated_cost(StepperKind::Chebyshev, bound, duration, tolerance)
            .unwrap_or(f64::INFINITY);
        if chebyshev_cost < other_cost {
            StepperKind::Chebyshev
        } else {
            other
        }
    }

    /// The cheapest backend among `candidates` for one segment — the
    /// restricted variant of [`choose`](AutoCostModel::choose) the schedule
    /// loop uses once [`RecoveryLog`](crate::error::RecoveryLog) demotions
    /// have removed a failing backend from the pool. Ties go to the earlier
    /// candidate; an empty or all-`Auto` candidate list falls back to the
    /// Taylor reference.
    pub fn choose_among(
        &self,
        candidates: &[StepperKind],
        bound: &SpectralBound,
        duration: f64,
        tolerance: f64,
    ) -> StepperKind {
        let mut best = StepperKind::Taylor;
        let mut best_cost = f64::INFINITY;
        for &kind in candidates {
            let Some(cost) = self.estimated_cost(kind, bound, duration, tolerance) else {
                continue;
            };
            if cost < best_cost {
                best = kind;
                best_cost = cost;
            }
        }
        best
    }
}

/// Taylor step count of one segment — `⌈strength·t / ½⌉`, at least one.
/// The **single** definition of the step splitting, shared by both
/// Taylor-series backends (whose equal-application CI gate depends on them
/// splitting identically) and the cost model (as an `f64` because the model
/// multiplies it by fractional overhead equivalents; the value is an exact
/// small integer, so `as usize` in the steppers is lossless).
fn taylor_steps(bound: &SpectralBound, duration: f64) -> f64 {
    (bound.step_strength * duration / MAX_STEP_PHASE)
        .ceil()
        .max(1.0)
}

/// Smallest `k ≥ 1` with `θᵏ/k! ≤ tolerance` (capped at
/// [`MAX_TAYLOR_ORDER`]) — the per-step series order of the Taylor
/// truncation rule, also used as the Chebyshev order floor at `θ = z/2`.
fn series_orders(theta: f64, tolerance: f64) -> usize {
    let mut orders = 0usize;
    let mut term = 1.0;
    while orders < MAX_TAYLOR_ORDER {
        orders += 1;
        term *= theta / orders as f64;
        if term <= tolerance {
            break;
        }
    }
    orders
}

/// Scalar facts about a compiled segment's spectrum, computed in `O(#terms)`
/// at compile time, from which each stepper sizes its work.
///
/// The eigenvalues of `H = c·I + Σ_t w_t·P_t` (Pauli terms `P_t`, `‖P_t‖ =
/// 1`) lie in `[center − radius, center + radius]` with `center = c` (the
/// summed identity weights) and `radius = Σ_t |w_t|` over the non-identity
/// terms — a rigorous enclosure by the triangle inequality. Splitting the
/// identity shift out matters: it costs the Chebyshev expansion nothing (a
/// global phase) but would inflate the interval — and therefore the
/// expansion order — if left inside the radius.
///
/// When the exact minimum and maximum of the *diagonal* part of `H` are
/// known — they fall out of the diagonal-table fill the kernels do anyway —
/// [`with_exact_diagonal`](SpectralBound::with_exact_diagonal) replaces the
/// diagonal terms' triangle-inequality contribution with the exact interval,
/// which is what shrinks the Chebyshev order on detuning-dominated models
/// like the MIS ramp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectralBound {
    /// Center of the spectral enclosure (the summed identity-term weights).
    pub center: f64,
    /// Half-width of the spectral enclosure (`Σ|w|` over non-identity
    /// terms). Zero exactly when the Hamiltonian is a pure identity shift.
    pub radius: f64,
    /// The Taylor step-sizing strength `‖c‖₁ + max|c|`, kept identical to
    /// the scalar reference path so Taylor step counts do not change.
    pub step_strength: f64,
}

impl SpectralBound {
    /// Builds the bound from compiled `(x_mask, z_mask, weight)` triples.
    pub(crate) fn from_compiled_terms(
        terms: impl Iterator<Item = (usize, usize, Complex)>,
        step_strength: f64,
    ) -> Self {
        let mut center = 0.0;
        let mut radius = 0.0;
        for (x_mask, z_mask, weight) in terms {
            if x_mask == 0 && z_mask == 0 {
                // Identity terms have no Y factors, so the weight is real.
                center += weight.re;
            } else {
                radius += weight.abs();
            }
        }
        SpectralBound {
            center,
            radius,
            step_strength,
        }
    }

    /// Tightens the enclosure with the **exact** diagonal spectrum: for
    /// `H = D + O` (diagonal part `D`, off-diagonal part `O`), every
    /// eigenvalue lies in `[min(D) − ‖O‖, max(D) + ‖O‖]` by Weyl's
    /// inequality, and `‖O‖ ≤ Σ|w|` over the off-diagonal terms. The result
    /// is a rigorous interval contained in (never wider than) the
    /// triangle-inequality enclosure, because `max(D) − min(D) ≤ 2·Σ|w|`
    /// over the non-identity diagonal terms.
    ///
    /// `diag_min`/`diag_max` are the extrema of the materialized diagonal
    /// table (which includes the identity shift); `offdiag_radius` is
    /// `Σ|w|` over the off-diagonal (flip and gather) terms only. The Taylor
    /// step strength is left untouched so Taylor step counts never change.
    pub fn with_exact_diagonal(
        self,
        diag_min: f64,
        diag_max: f64,
        offdiag_radius: f64,
    ) -> SpectralBound {
        debug_assert!(diag_min <= diag_max, "inverted diagonal range");
        SpectralBound {
            center: 0.5 * (diag_min + diag_max),
            radius: 0.5 * (diag_max - diag_min) + offdiag_radius,
            step_strength: self.step_strength,
        }
    }
}

/// One time-evolution backend: evolves a state through a single compiled
/// segment.
///
/// Implementations own whatever scratch state their scheme needs (Taylor's
/// two vectors, Krylov's basis, Chebyshev's recurrence buffers) and reuse it
/// across calls, so driving a many-segment schedule allocates nothing after
/// the first segment at a given register size.
pub trait Stepper {
    /// Advances `state` by `exp(−i·H·duration)` where `H` is the operator
    /// `kernel` applies, rescaling the result to `reference_norm`.
    ///
    /// The caller guarantees: `kernel` is non-empty, `duration` is positive
    /// and finite, `bound` describes `kernel`, and `reference_norm` is the
    /// (non-zero) norm of `state`.
    ///
    /// # Errors
    ///
    /// Returns an [`EvolveError`] when a numerical guardrail trips
    /// (non-finite amplitudes, norm drift beyond
    /// [`NORM_DRIFT_LIMIT`], inner-solver non-convergence, Chebyshev order
    /// overflow). On error the Krylov and Chebyshev backends leave `state`
    /// exactly as it was at segment entry (rollback-safe); the Taylor
    /// backends may leave it mid-segment (documented per type).
    fn try_evolve_segment(
        &mut self,
        kernel: FusedKernel<'_>,
        bound: &SpectralBound,
        state: &mut StateVector,
        duration: f64,
        reference_norm: f64,
    ) -> Result<(), EvolveError>;

    /// Panicking convenience wrapper around
    /// [`try_evolve_segment`](Stepper::try_evolve_segment).
    ///
    /// # Panics
    ///
    /// Panics with the [`EvolveError`] display message when a guardrail
    /// trips.
    fn evolve_segment(
        &mut self,
        kernel: FusedKernel<'_>,
        bound: &SpectralBound,
        state: &mut StateVector,
        duration: f64,
        reference_norm: f64,
    ) {
        if let Err(error) = self.try_evolve_segment(kernel, bound, state, duration, reference_norm)
        {
            panic!("{error}");
        }
    }

    /// Number of `H|ψ⟩` kernel applications performed since construction or
    /// the last [`reset_kernel_applications`](Stepper::reset_kernel_applications)
    /// — the backend-independent measure of work.
    fn kernel_applications(&self) -> u64;

    /// Number of state-sized **amplitude passes** performed since
    /// construction or the last reset: every full traversal of a `2ⁿ`-sized
    /// amplitude array (each read stream and each write stream counted as
    /// one). This is the memory-traffic currency the batched multi-segment
    /// sweep exists to reduce — a fused kernel application costs ~4 passes
    /// (gather-read, output write, accumulator read + write), while the
    /// per-segment overhead (series copy, norm, rescale) is pure passes with
    /// no arithmetic payload. Ticked through the typed [`Passes`] counter at
    /// each operation site, so the tally is exact by construction for every
    /// backend — including Krylov's reorthogonalization sweeps and
    /// Chebyshev's recurrence, whose adaptive iteration counts older
    /// revisions could only estimate.
    fn state_passes(&self) -> u64;

    /// Resets the application and pass counters.
    fn reset_kernel_applications(&mut self);

    /// Snapshots this backend's cumulative work counters as a telemetry
    /// [`StepperSpan`](crate::telemetry::StepperSpan). `kind` names the
    /// backend in the span (the trait object does not know its own
    /// [`StepperKind`]). Counters are cumulative since construction or the
    /// last reset.
    fn telemetry_span(&self, kind: StepperKind) -> crate::telemetry::StepperSpan {
        crate::telemetry::StepperSpan {
            backend: kind,
            applications: self.kernel_applications(),
            state_passes: self.state_passes(),
        }
    }
}

/// Validates a stepper tolerance at the point of use: the [`EvolveOptions`]
/// fields are public, so a hand-built value can sidestep
/// [`EvolveOptions::with_tolerance`]'s check — and a non-positive tolerance
/// would make the adaptive steppers' convergence loops spin forever instead
/// of failing loudly.
fn validated_tolerance(tolerance: f64) -> f64 {
    assert!(
        tolerance.is_finite() && tolerance > 0.0,
        "stepper tolerance must be positive and finite, got {tolerance}"
    );
    tolerance
}

/// Rescales `state` to `reference_norm` (numerical drift correction — the
/// exact evolution is unitary, so the norm must not move).
pub(crate) fn rescale_to(state: &mut StateVector, reference_norm: f64) {
    let norm = state.norm();
    if norm > 0.0 {
        state.scale(reference_norm / norm);
    }
}

/// The guarded drift correction: the same norm-and-rescale pass as
/// [`rescale_to`], but the norm it computes anyway is first checked against
/// the guardrails — non-finite detection and the [`NORM_DRIFT_LIMIT`]
/// threshold — so health checking costs **zero extra amplitude passes** on
/// the happy path.
pub(crate) fn checked_rescale_to(
    state: &mut StateVector,
    reference_norm: f64,
    backend: StepperKind,
) -> Result<(), EvolveError> {
    let norm = state.norm();
    if !norm.is_finite() {
        return Err(EvolveError::NonFiniteState {
            backend,
            segment: None,
        });
    }
    if reference_norm > 0.0 {
        let relative_drift = (norm - reference_norm).abs() / reference_norm;
        if relative_drift > NORM_DRIFT_LIMIT {
            return Err(EvolveError::NormDrift {
                backend,
                segment: None,
                relative_drift,
            });
        }
    }
    if norm > 0.0 {
        state.scale(reference_norm / norm);
    }
    Ok(())
}

/// Guards an intermediate series/residual norm a kernel application already
/// returned: any NaN or infinity in the amplitudes surfaces in these norms,
/// so checking them detects corruption with no extra traversal.
fn guard_finite(norm: f64, backend: StepperKind) -> Result<(), EvolveError> {
    if norm.is_finite() {
        Ok(())
    } else {
        Err(EvolveError::NonFiniteState {
            backend,
            segment: None,
        })
    }
}

/// Advances `state` by `exp(−i·center·duration)` — the **exact** evolution
/// of a segment whose [`SpectralBound`] has `radius == 0`, i.e. `H =
/// center·I` (rigorously: the triangle radius is `Σ|w|` over the
/// non-identity terms, so zero radius means every non-identity weight
/// vanishes — the shape [`crate::CompiledSchedule::scaled_weights`]`(0.0)`
/// produces for every segment, and any pure identity-shift segment).
///
/// Every stepper short-circuits through this instead of grinding its
/// generic scheme through `step_strength`-many degenerate steps (the
/// pre-fix Taylor path spent `⌈2·|center|·t/½⌉` kernel applications on a
/// pure phase). Returns the number of amplitude passes spent (`0` when the
/// phase is exactly `1`).
fn apply_identity_phase(state: &mut StateVector, center: f64, duration: f64) -> u64 {
    let phase = Complex::from_polar_angle(-center * duration);
    if phase == Complex::ONE {
        return 0;
    }
    for amp in state.amplitudes_mut() {
        *amp = phase * *amp;
    }
    2
}

// ---------------------------------------------------------------------------
// Taylor
// ---------------------------------------------------------------------------

/// The reference backend: scaled Taylor series with `‖H‖·Δt ≤ ½` splitting.
///
/// This is the original propagation loop of `propagate.rs`, refactored
/// behind the [`Stepper`] trait — step counts, truncation semantics, and
/// numerics are unchanged.
#[derive(Debug, Clone)]
pub struct TaylorStepper {
    series: StateVector,
    series_next: StateVector,
    context: ExecutionContext,
    tolerance: f64,
    applications: u64,
    passes: Passes,
}

impl TaylorStepper {
    /// Creates the stepper with minimal scratch buffers (resized on first
    /// use), executing kernels under [`ExecutionContext::auto`].
    ///
    /// # Panics
    ///
    /// Panics if `tolerance` is not positive and finite.
    pub fn new(tolerance: f64) -> Self {
        TaylorStepper::with_context(tolerance, ExecutionContext::auto())
    }

    /// Creates the stepper with an explicit [`ExecutionContext`] (worker
    /// count, parallel threshold, kernel path) applied to every kernel
    /// application.
    ///
    /// # Panics
    ///
    /// Panics if `tolerance` is not positive and finite.
    pub fn with_context(tolerance: f64, context: ExecutionContext) -> Self {
        TaylorStepper {
            series: StateVector::zeros(0),
            series_next: StateVector::zeros(0),
            context,
            tolerance: validated_tolerance(tolerance),
            applications: 0,
            passes: Passes::new(),
        }
    }

    fn ensure_capacity(&mut self, num_qubits: usize) {
        if self.series.num_qubits() != num_qubits || self.series.dim() != 1 << num_qubits {
            self.series = StateVector::zeros(num_qubits);
            self.series_next = StateVector::zeros(num_qubits);
        }
    }

    /// One in-place Taylor step
    /// `|ψ⟩ ← Σ_k (−i·dt)ᵏ/k! · Hᵏ|ψ⟩`, truncated once the next term drops
    /// below `tolerance · reference_norm` (relative truncation).
    fn taylor_step(
        &mut self,
        kernel: FusedKernel<'_>,
        state: &mut StateVector,
        dt: f64,
        reference_norm: f64,
    ) -> Result<(), EvolveError> {
        self.series.copy_from(state);
        self.passes.copy();
        let mut factor = Complex::ONE;
        let threshold = self.tolerance * reference_norm;
        for k in 1..=MAX_TAYLOR_ORDER {
            factor = factor * Complex::new(0.0, -dt) / (k as f64);
            // One fused sweep: series_next = H·series, state += factor·
            // series_next, and ‖series_next‖ for the convergence check.
            let series_norm = kernel.apply_accumulate_into_with(
                &self.context,
                &self.series,
                &mut self.series_next,
                state,
                factor,
            );
            self.applications += 1;
            self.passes.apply_accumulate();
            std::mem::swap(&mut self.series, &mut self.series_next);
            guard_finite(series_norm, StepperKind::Taylor)?;
            if series_norm * factor.abs() < threshold {
                break;
            }
        }
        Ok(())
    }
}

impl Stepper for TaylorStepper {
    /// On error the state may be left mid-segment: Taylor is the fallback
    /// backend of last resort, so its failures are not rolled back here (the
    /// schedule loop snapshots before fault-suspect segments instead).
    fn try_evolve_segment(
        &mut self,
        kernel: FusedKernel<'_>,
        bound: &SpectralBound,
        state: &mut StateVector,
        duration: f64,
        reference_norm: f64,
    ) -> Result<(), EvolveError> {
        if bound.radius == 0.0 {
            // H = center·I exactly: a global phase, zero kernel work (the
            // generic loop would split this into step_strength·t/½ steps of
            // pure-phase series — the zero-scale / pure-identity degeneracy).
            self.passes
                .add(apply_identity_phase(state, bound.center, duration));
            return Ok(());
        }
        self.ensure_capacity(state.num_qubits());
        // Split into steps so that the Taylor series of each step converges
        // fast.
        let steps = taylor_steps(bound, duration) as usize;
        let dt = duration / steps as f64;
        for _ in 0..steps {
            self.taylor_step(kernel, state, dt, reference_norm)?;
            checked_rescale_to(state, reference_norm, StepperKind::Taylor)?;
            self.passes.rescale();
        }
        Ok(())
    }

    fn kernel_applications(&self) -> u64 {
        self.applications
    }

    fn state_passes(&self) -> u64 {
        self.passes.count()
    }

    fn reset_kernel_applications(&mut self) {
        self.applications = 0;
        self.passes.reset();
    }
}

// ---------------------------------------------------------------------------
// Batched multi-segment Taylor
// ---------------------------------------------------------------------------

/// The batched multi-segment Taylor sweep: the same series as
/// [`TaylorStepper`] — identical `‖H‖·Δt ≤ ½` step splitting, identical
/// per-order truncation rule, identical term values — evaluated with the
/// per-step overhead passes fused away.
///
/// # How the passes disappear
///
/// A `k`-order per-segment Taylor step spends ~`4k + 5` state-sized
/// traversals, of which 5 carry no gather work at all: the `copy_from` that
/// seeds the series with the current state (2), and the norm + rescale
/// passes of the per-step drift correction (3). The batched sweep
/// eliminates every one of them without adding gather cost anywhere:
///
/// * **No series copy.** The first kernel application of a step reads the
///   state directly ([`FusedKernel::apply_into`]) — 2 traversals instead of
///   the copy (2) plus a 4-traversal apply-accumulate.
/// * **Fused first-and-second-order update.** Because the first application
///   could not accumulate into the state it was reading, its first-order
///   term is retired one pass later, fused with the second-order term in a
///   single traversal ([`FusedKernel::apply_accumulate_both_into`] —
///   `ψ += f₁·Hψ + f₂·H²ψ`; the `Hψ` element is already loaded for the
///   gathers, so the extra accumulation is free). Higher orders proceed
///   exactly as the per-segment path does.
/// * **Run-end drift correction.** The per-step norm-and-rescale is
///   deferred to a single correction at the end of the run. The exact
///   evolution is unitary, so the per-step corrections it replaces were
///   `1 + O(ε)` scalars; deferring them moves results by `≲ steps · ε` —
///   orders of magnitude inside the 1e-10 conformance window.
///
/// A *run* may span *many segments*: on a compiled schedule
/// ([`crate::CompiledSchedule`]), consecutive same-layout segments (the
/// [`batch_runs`](crate::CompiledSchedule::batch_runs) grouping) chain
/// through [`begin_run`](BatchedTaylorStepper::begin_run) /
/// [`run_segment`](BatchedTaylorStepper::run_segment) /
/// [`finish_run`](BatchedTaylorStepper::finish_run) in one sweep: the mask
/// arrays are read once from the shared layout while the weights walk
/// adjacent rows of the columnar weight matrix, and the whole run pays one
/// drift correction instead of one per step. On a dense ramp of tiny
/// segments (Taylor order ~6–9 each) this removes ~15–25% of all amplitude
/// passes — see the `dense_ramp` entries of `BENCH_schedule.json`, which
/// gate the batched path against per-segment Taylor in CI.
///
/// [`Stepper::evolve_segment`] evolves a single segment as a run of one —
/// even the constant-Hamiltonian path saves the copy and per-step rescale
/// passes.
#[derive(Debug, Clone)]
pub struct BatchedTaylorStepper {
    series: StateVector,
    series_next: StateVector,
    reference_norm: f64,
    /// Whether the open run has applied any kernel work (drift corrections
    /// are only owed — and only meaningful — after real applications).
    dirty: bool,
    context: ExecutionContext,
    tolerance: f64,
    applications: u64,
    passes: Passes,
}

impl BatchedTaylorStepper {
    /// Creates the stepper with minimal scratch buffers (resized on first
    /// use), executing kernels under [`ExecutionContext::auto`].
    ///
    /// # Panics
    ///
    /// Panics if `tolerance` is not positive and finite.
    pub fn new(tolerance: f64) -> Self {
        BatchedTaylorStepper::with_context(tolerance, ExecutionContext::auto())
    }

    /// Creates the stepper with an explicit [`ExecutionContext`] applied to
    /// every kernel application.
    ///
    /// # Panics
    ///
    /// Panics if `tolerance` is not positive and finite.
    pub fn with_context(tolerance: f64, context: ExecutionContext) -> Self {
        BatchedTaylorStepper {
            series: StateVector::zeros(0),
            series_next: StateVector::zeros(0),
            reference_norm: 1.0,
            dirty: false,
            context,
            tolerance: validated_tolerance(tolerance),
            applications: 0,
            passes: Passes::new(),
        }
    }

    fn ensure_capacity(&mut self, num_qubits: usize) {
        if self.series.num_qubits() != num_qubits || self.series.dim() != 1 << num_qubits {
            self.series = StateVector::zeros(num_qubits);
            self.series_next = StateVector::zeros(num_qubits);
        }
    }

    /// Opens a batched run over `state`: sizes the scratch buffers and
    /// records the reference norm every truncation threshold and the
    /// run-end drift correction are relative to.
    ///
    /// The caller drives any number of
    /// [`run_segment`](BatchedTaylorStepper::run_segment) calls against the
    /// **same** state and closes the run with
    /// [`finish_run`](BatchedTaylorStepper::finish_run), which applies the
    /// single deferred drift correction.
    pub fn begin_run(&mut self, state: &StateVector, reference_norm: f64) {
        self.ensure_capacity(state.num_qubits());
        self.reference_norm = reference_norm;
        self.dirty = false;
    }

    /// Evolves one segment inside an open run: `|ψ⟩ ← exp(−i·H·duration)|ψ⟩`
    /// where `H` is the operator `kernel` applies.
    ///
    /// Step splitting, series orders, and the truncation rule are identical
    /// to [`TaylorStepper`]; only the pass structure differs (see the type
    /// docs).
    pub fn run_segment(
        &mut self,
        kernel: FusedKernel<'_>,
        bound: &SpectralBound,
        state: &mut StateVector,
        duration: f64,
    ) {
        if let Err(error) = self.try_run_segment(kernel, bound, state, duration) {
            panic!("{error}");
        }
    }

    /// Fallible variant of [`run_segment`](BatchedTaylorStepper::run_segment).
    ///
    /// # Errors
    ///
    /// Returns [`EvolveError::NonFiniteState`] when a series norm turns NaN
    /// or infinite mid-run. The state is left mid-segment (the deferred
    /// drift correction makes segment-boundary rollback impossible inside a
    /// chained run; callers snapshot before fault-suspect runs).
    pub fn try_run_segment(
        &mut self,
        kernel: FusedKernel<'_>,
        bound: &SpectralBound,
        state: &mut StateVector,
        duration: f64,
    ) -> Result<(), EvolveError> {
        if kernel.is_empty() || duration == 0.0 {
            return Ok(());
        }
        if bound.radius == 0.0 {
            // H = center·I exactly: a global phase, zero kernel work.
            self.passes
                .add(apply_identity_phase(state, bound.center, duration));
            return Ok(());
        }
        self.dirty = true;
        let steps = taylor_steps(bound, duration) as usize;
        let dt = duration / steps as f64;
        let threshold = self.tolerance * self.reference_norm;
        for _ in 0..steps {
            // --- Order 1: series = H·ψ, read straight off the state (the
            // per-segment path would copy the state first). Its
            // accumulation is retired one pass later. ---
            let f1 = Complex::new(0.0, -dt);
            let order1_norm = kernel.apply_into_with(&self.context, state, &mut self.series);
            self.applications += 1;
            self.passes.apply();
            guard_finite(order1_norm, StepperKind::BatchedTaylor)?;
            if order1_norm * f1.abs() < threshold {
                // Single-order step: retire the lone term directly.
                state.accumulate(f1, &self.series);
                self.passes.axpy();
                continue;
            }
            // --- Order 2, fused with order 1's accumulation:
            // ψ += f₁·series + f₂·(H·series), one traversal. ---
            let mut factor = f1 * Complex::new(0.0, -dt) / 2.0;
            let norm = kernel.apply_accumulate_both_into_with(
                &self.context,
                &self.series,
                &mut self.series_next,
                state,
                f1,
                factor,
            );
            self.applications += 1;
            self.passes.apply_accumulate();
            std::mem::swap(&mut self.series, &mut self.series_next);
            guard_finite(norm, StepperKind::BatchedTaylor)?;
            if norm * factor.abs() < threshold {
                continue;
            }
            // --- Orders 3..k: the per-segment path's fused
            // apply-accumulate, unchanged. ---
            for k in 3..=MAX_TAYLOR_ORDER {
                factor = factor * Complex::new(0.0, -dt) / (k as f64);
                let norm = kernel.apply_accumulate_into_with(
                    &self.context,
                    &self.series,
                    &mut self.series_next,
                    state,
                    factor,
                );
                self.applications += 1;
                self.passes.apply_accumulate();
                std::mem::swap(&mut self.series, &mut self.series_next);
                guard_finite(norm, StepperKind::BatchedTaylor)?;
                if norm * factor.abs() < threshold {
                    break;
                }
            }
        }
        Ok(())
    }

    /// Closes a batched run: applies the single deferred drift correction
    /// back to the reference norm (the per-segment path rescales after
    /// every step; the batch pays once per run).
    pub fn finish_run(&mut self, state: &mut StateVector) {
        if let Err(error) = self.try_finish_run(state) {
            panic!("{error}");
        }
    }

    /// Fallible variant of [`finish_run`](BatchedTaylorStepper::finish_run):
    /// the run-end drift correction doubles as the run's guardrail check.
    ///
    /// # Errors
    ///
    /// Returns [`EvolveError::NonFiniteState`] or [`EvolveError::NormDrift`]
    /// when the run-end norm fails the health checks.
    pub fn try_finish_run(&mut self, state: &mut StateVector) -> Result<(), EvolveError> {
        if self.dirty {
            self.dirty = false;
            checked_rescale_to(state, self.reference_norm, StepperKind::BatchedTaylor)?;
            self.passes.rescale();
        }
        // A clean run did no kernel work (only exact phases), so the norm
        // never moved and no correction is owed.
        Ok(())
    }
}

impl Stepper for BatchedTaylorStepper {
    /// On error the state may be left mid-segment (see
    /// [`try_run_segment`](BatchedTaylorStepper::try_run_segment)).
    fn try_evolve_segment(
        &mut self,
        kernel: FusedKernel<'_>,
        bound: &SpectralBound,
        state: &mut StateVector,
        duration: f64,
        reference_norm: f64,
    ) -> Result<(), EvolveError> {
        self.begin_run(state, reference_norm);
        self.try_run_segment(kernel, bound, state, duration)?;
        self.try_finish_run(state)
    }

    fn kernel_applications(&self) -> u64 {
        self.applications
    }

    fn state_passes(&self) -> u64 {
        self.passes.count()
    }

    fn reset_kernel_applications(&mut self) {
        self.applications = 0;
        self.passes.reset();
    }
}

// ---------------------------------------------------------------------------
// Block Taylor (structure-of-arrays realization batching)
// ---------------------------------------------------------------------------

/// The batched Taylor scheme evaluated over a whole [`RealizationBlock`]:
/// every noise realization of a device sweep advances together through one
/// [`BlockKernel`] application per series order.
///
/// Numerics mirror [`BatchedTaylorStepper`] exactly — same step splitting
/// (sized by the *largest* per-realization amplitude scale, so every
/// realization's per-step phase stays under `MAX_STEP_PHASE`), same series
/// orders and fused first-and-second-order traversal, same deferred run-end
/// drift correction (applied per realization, since each realization drifts
/// independently). The truncation threshold is relative to the block's
/// Frobenius norm, which tightens — never loosens — the per-realization
/// truncation against the sequential reference.
///
/// Counters report realization-equivalents: one block kernel application
/// counts as `R` applications and `R`-fold amplitude passes, so telemetry
/// stays comparable with the sequential per-realization loop.
#[derive(Debug, Clone)]
pub struct BlockTaylorStepper {
    series: RealizationBlock,
    series_next: RealizationBlock,
    /// Per-realization run-entry norms (the drift-correction references).
    reference_norms: Vec<f64>,
    /// Frobenius norm of the whole block at run entry (the truncation
    /// threshold reference).
    reference_norm: f64,
    /// Scratch for per-realization identity phases.
    phases: Vec<Complex>,
    /// Whether the open run has applied any kernel work (drift corrections
    /// are only owed — and only meaningful — after real applications).
    dirty: bool,
    context: ExecutionContext,
    tolerance: f64,
    applications: u64,
    passes: Passes,
}

impl BlockTaylorStepper {
    /// Creates the stepper with minimal scratch buffers (resized on first
    /// use), executing kernels under [`ExecutionContext::auto`].
    ///
    /// # Panics
    ///
    /// Panics if `tolerance` is not positive and finite.
    pub fn new(tolerance: f64) -> Self {
        BlockTaylorStepper::with_context(tolerance, ExecutionContext::auto())
    }

    /// Creates the stepper with an explicit [`ExecutionContext`] applied to
    /// every kernel application.
    ///
    /// # Panics
    ///
    /// Panics if `tolerance` is not positive and finite.
    pub fn with_context(tolerance: f64, context: ExecutionContext) -> Self {
        BlockTaylorStepper {
            series: RealizationBlock::zeros(0, 1),
            series_next: RealizationBlock::zeros(0, 1),
            reference_norms: Vec::new(),
            reference_norm: 1.0,
            phases: Vec::new(),
            dirty: false,
            context,
            tolerance: validated_tolerance(tolerance),
            applications: 0,
            passes: Passes::new(),
        }
    }

    fn ensure_capacity(&mut self, num_qubits: usize, realizations: usize) {
        if self.series.num_qubits() != num_qubits || self.series.realizations() != realizations {
            self.series = RealizationBlock::zeros(num_qubits, realizations);
            self.series_next = RealizationBlock::zeros(num_qubits, realizations);
        }
    }

    /// Opens a block run over `block`: sizes the scratch blocks and records
    /// the per-realization reference norms every drift correction — and the
    /// Frobenius norm every truncation threshold — is relative to.
    ///
    /// The caller drives any number of
    /// [`try_run_segment`](BlockTaylorStepper::try_run_segment) calls
    /// against the **same** block and closes the run with
    /// [`try_finish_run`](BlockTaylorStepper::try_finish_run), which applies
    /// the deferred per-realization drift corrections.
    pub fn begin_run(&mut self, block: &RealizationBlock) {
        self.ensure_capacity(block.num_qubits(), block.realizations());
        self.reference_norms.clear();
        self.reference_norms
            .extend((0..block.realizations()).map(|r| block.realization_norm(r)));
        self.reference_norm = self
            .reference_norms
            .iter()
            .map(|n| n * n)
            .sum::<f64>()
            .sqrt();
        self.dirty = false;
    }

    /// Evolves one segment inside an open run:
    /// `|ψ_r⟩ ← exp(−i·s_r·H·duration)|ψ_r⟩` for every realization `r`,
    /// where `H` is the base operator and `s_r` the per-realization
    /// amplitude scale already folded into `kernel`'s weight lanes.
    ///
    /// `bound` is the **unscaled** segment bound and `scales` the
    /// per-realization amplitude scales (padding entries beyond the live
    /// realizations are ignored): steps are sized by `bound` stretched to
    /// the largest `|s_r|`, so the fastest realization still satisfies the
    /// `MAX_STEP_PHASE` splitting rule.
    ///
    /// # Errors
    ///
    /// Returns [`EvolveError::NonFiniteState`] when a series norm turns NaN
    /// or infinite mid-run. The block is left mid-segment (the deferred
    /// drift correction makes segment-boundary rollback impossible inside a
    /// chained run; callers snapshot before fault-suspect runs).
    pub fn try_run_segment(
        &mut self,
        kernel: BlockKernel<'_>,
        bound: &SpectralBound,
        scales: &[f64],
        block: &mut RealizationBlock,
        duration: f64,
    ) -> Result<(), EvolveError> {
        if kernel.is_empty() || duration == 0.0 {
            return Ok(());
        }
        let realizations = block.realizations() as u64;
        if bound.radius == 0.0 {
            // H = center·I exactly: a per-realization global phase (the
            // miscalibration scale multiplies the identity shift), zero
            // kernel work.
            self.phases.clear();
            self.phases.extend(
                scales[..block.realizations()]
                    .iter()
                    .map(|s| Complex::from_polar_angle(-bound.center * s * duration)),
            );
            if self.phases.iter().any(|&phase| phase != Complex::ONE) {
                block.apply_phases(&self.phases);
                self.passes.add(2 * realizations);
            }
            return Ok(());
        }
        self.dirty = true;
        let max_abs_scale = scales.iter().fold(0.0f64, |acc, s| acc.max(s.abs()));
        let scaled_bound = SpectralBound {
            center: bound.center * max_abs_scale,
            radius: bound.radius * max_abs_scale,
            step_strength: bound.step_strength * max_abs_scale,
        };
        let steps = taylor_steps(&scaled_bound, duration) as usize;
        let dt = duration / steps as f64;
        let threshold = self.tolerance * self.reference_norm;
        for _ in 0..steps {
            // --- Order 1: series = H·ψ, read straight off the block; its
            // accumulation is retired one pass later. ---
            let f1 = Complex::new(0.0, -dt);
            let order1_norm = kernel.apply_into_with(&self.context, block, &mut self.series);
            self.applications += realizations;
            self.passes.add(2 * realizations);
            guard_finite(order1_norm, StepperKind::BatchedTaylor)?;
            if order1_norm * f1.abs() < threshold {
                // Single-order step: retire the lone term directly.
                block.accumulate(f1, &self.series);
                self.passes.add(3 * realizations);
                continue;
            }
            // --- Order 2, fused with order 1's accumulation:
            // ψ += f₁·series + f₂·(H·series), one traversal. ---
            let mut factor = f1 * Complex::new(0.0, -dt) / 2.0;
            let norm = kernel.apply_accumulate_both_into_with(
                &self.context,
                &self.series,
                &mut self.series_next,
                block,
                f1,
                factor,
            );
            self.applications += realizations;
            self.passes.add(4 * realizations);
            std::mem::swap(&mut self.series, &mut self.series_next);
            guard_finite(norm, StepperKind::BatchedTaylor)?;
            if norm * factor.abs() < threshold {
                continue;
            }
            // --- Orders 3..k: fused apply-accumulate, unchanged. ---
            for k in 3..=MAX_TAYLOR_ORDER {
                factor = factor * Complex::new(0.0, -dt) / (k as f64);
                let norm = kernel.apply_accumulate_into_with(
                    &self.context,
                    &self.series,
                    &mut self.series_next,
                    block,
                    factor,
                );
                self.applications += realizations;
                self.passes.add(4 * realizations);
                std::mem::swap(&mut self.series, &mut self.series_next);
                guard_finite(norm, StepperKind::BatchedTaylor)?;
                if norm * factor.abs() < threshold {
                    break;
                }
            }
        }
        Ok(())
    }

    /// Closes a block run: applies the deferred drift correction per
    /// realization, back to each realization's run-entry norm. The run-end
    /// norms double as the run's guardrail check.
    ///
    /// # Errors
    ///
    /// Returns [`EvolveError::NonFiniteState`] or [`EvolveError::NormDrift`]
    /// when any realization's run-end norm fails the health checks.
    pub fn try_finish_run(&mut self, block: &mut RealizationBlock) -> Result<(), EvolveError> {
        if !self.dirty {
            // A clean run did no kernel work (only exact phases), so no norm
            // moved and no correction is owed.
            return Ok(());
        }
        self.dirty = false;
        for r in 0..block.realizations() {
            let reference = self.reference_norms[r];
            let norm = block.realization_norm(r);
            if !norm.is_finite() {
                return Err(EvolveError::NonFiniteState {
                    backend: StepperKind::BatchedTaylor,
                    segment: None,
                });
            }
            if reference > 0.0 {
                let relative_drift = (norm - reference).abs() / reference;
                if relative_drift > NORM_DRIFT_LIMIT {
                    return Err(EvolveError::NormDrift {
                        backend: StepperKind::BatchedTaylor,
                        segment: None,
                        relative_drift,
                    });
                }
            }
            if norm > 0.0 {
                block.scale_realization(r, reference / norm);
            }
        }
        self.passes.add(3 * block.realizations() as u64);
        Ok(())
    }

    /// Total `H|ψ⟩` applications in realization-equivalents (one block
    /// application counts `R`).
    pub fn kernel_applications(&self) -> u64 {
        self.applications
    }

    /// Total state-sized amplitude passes in realization-equivalents.
    pub fn state_passes(&self) -> u64 {
        self.passes.count()
    }

    /// Resets the application and pass counters.
    pub fn reset_kernel_applications(&mut self) {
        self.applications = 0;
        self.passes.reset();
    }
}

// ---------------------------------------------------------------------------
// Lanczos–Krylov
// ---------------------------------------------------------------------------

/// The adaptive Lanczos–Krylov backend.
///
/// Per step: build an orthonormal Krylov basis `{ψ, Hψ, H²ψ, …}` with the
/// three-term Lanczos recurrence plus full reorthogonalization (required to
/// hold 1e-14-level accuracy past a handful of vectors), project `H` onto it
/// as a real symmetric tridiagonal matrix, exponentiate the projection
/// exactly through its eigendecomposition, and advance by the largest `Δt ≤
/// remaining` whose residual estimate `β_m·Δt·|φ_m(Δt)|` stays below
/// tolerance. Basis construction stops early as soon as the remaining
/// duration converges (adaptive dimension); if even the full basis cannot
/// cover the remainder, the step shrinks along the scheme's `Δt^m` error
/// power law (adaptive step).
#[derive(Debug, Clone)]
pub struct KrylovStepper {
    /// Lanczos vectors `v_0 … v_m` (the `m+1`-th is the unnormalized
    /// residual workspace while building).
    basis: Vec<StateVector>,
    /// Segment-entry snapshot: restored on any guardrail failure so the
    /// caller always gets the state back at the segment boundary
    /// (rollback-safe error contract).
    snapshot: StateVector,
    /// Armed by [`force_ql_nonconvergence`](KrylovStepper::force_ql_nonconvergence)
    /// (fault injection): the next projected eigensolve reports
    /// non-convergence instead of running.
    force_ql_failure: bool,
    context: ExecutionContext,
    tolerance: f64,
    applications: u64,
    passes: Passes,
}

impl KrylovStepper {
    /// Creates the stepper; basis vectors are allocated lazily per register
    /// size and reused across steps and segments. Kernels execute under
    /// [`ExecutionContext::auto`].
    ///
    /// # Panics
    ///
    /// Panics if `tolerance` is not positive and finite.
    pub fn new(tolerance: f64) -> Self {
        KrylovStepper::with_context(tolerance, ExecutionContext::auto())
    }

    /// Creates the stepper with an explicit [`ExecutionContext`] applied to
    /// every kernel application.
    ///
    /// # Panics
    ///
    /// Panics if `tolerance` is not positive and finite.
    pub fn with_context(tolerance: f64, context: ExecutionContext) -> Self {
        KrylovStepper {
            basis: Vec::new(),
            snapshot: StateVector::zeros(0),
            force_ql_failure: false,
            context,
            tolerance: validated_tolerance(tolerance),
            applications: 0,
            passes: Passes::new(),
        }
    }

    /// Forces the next projected eigensolve to report
    /// [`MathError::NoConvergence`] (consumed by that one solve). Exists for
    /// the fault-injection harness: real QL non-convergence is not reachable
    /// from finite Lanczos coefficients, so exercising the recovery path
    /// requires forcing it.
    pub fn force_ql_nonconvergence(&mut self) {
        self.force_ql_failure = true;
    }

    /// Disarms a pending forced QL failure (used by the schedule loop after
    /// a fault-injected segment so the failure cannot leak into later,
    /// un-faulted segments).
    pub fn clear_forced_ql_failure(&mut self) {
        self.force_ql_failure = false;
    }

    /// Projected eigendecomposition of the Lanczos tridiagonal, surfacing
    /// solver failures as [`EvolveError::NonConvergence`] instead of
    /// panicking, and honoring a pending forced failure.
    fn projected_eigen(
        &mut self,
        alphas: &[f64],
        off_diagonal: &[f64],
    ) -> Result<TridiagonalEigen, EvolveError> {
        let wrap = |source: MathError| EvolveError::NonConvergence {
            backend: StepperKind::Krylov,
            segment: None,
            source,
        };
        if self.force_ql_failure {
            self.force_ql_failure = false;
            return Err(wrap(MathError::NoConvergence {
                routine: "tridiagonal_ql (forced by fault injection)",
                iterations: 0,
            }));
        }
        SymmetricTridiagonal::new(alphas.to_vec(), off_diagonal.to_vec())
            .and_then(|tridiagonal| tridiagonal.eigen_decomposition())
            .map_err(wrap)
    }

    fn ensure_basis(&mut self, count: usize, num_qubits: usize) {
        if self
            .basis
            .first()
            .is_some_and(|v| v.num_qubits() != num_qubits || v.dim() != 1 << num_qubits)
        {
            self.basis.clear();
        }
        while self.basis.len() < count {
            self.basis.push(StateVector::zeros(num_qubits));
        }
    }

    /// `φ(dt) = exp(−i·dt·T_m)·e₁` through the projected eigendecomposition,
    /// returned as complex coefficients over the Lanczos basis.
    fn projected_exponential(eigen: &TridiagonalEigen, dt: f64) -> Vec<Complex> {
        let m = eigen.eigenvalues.len();
        let v = &eigen.eigenvectors;
        let mut phi = vec![Complex::ZERO; m];
        for (k, &lambda) in eigen.eigenvalues.iter().enumerate() {
            // coefficient of eigenpair k in exp(−i·dt·T)·e₁: phase · V[0][k]
            let coefficient = Complex::from_polar_angle(-dt * lambda).scale(v.row(0)[k]);
            for (j, slot) in phi.iter_mut().enumerate() {
                *slot += coefficient.scale(v.row(j)[k]);
            }
        }
        phi
    }

    /// Residual-based local error estimate of one Krylov step: the next
    /// basis vector's weight `β_m`, integrated over the step.
    fn error_estimate(beta_last: f64, dt: f64, phi: &[Complex]) -> f64 {
        beta_last * dt * phi.last().map_or(0.0, |p| p.abs())
    }
}

impl Stepper for KrylovStepper {
    /// Rollback-safe: on any error `state` is restored to the segment
    /// boundary from the entry snapshot, so the caller can retry the segment
    /// with another backend.
    fn try_evolve_segment(
        &mut self,
        kernel: FusedKernel<'_>,
        bound: &SpectralBound,
        state: &mut StateVector,
        duration: f64,
        reference_norm: f64,
    ) -> Result<(), EvolveError> {
        if bound.radius == 0.0 {
            // H = center·I exactly: a global phase. The generic path would
            // build a one-vector basis and β-normalize a zero residual —
            // correct via happy breakdown, but pure wasted passes.
            self.passes
                .add(apply_identity_phase(state, bound.center, duration));
            return Ok(());
        }
        // Segment-entry snapshot: two passes per segment buy the rollback
        // contract (Krylov overwrites its own basis[0] every step, so no
        // existing buffer holds the entry state).
        if self.snapshot.num_qubits() != state.num_qubits() || self.snapshot.dim() != state.dim() {
            self.snapshot = StateVector::zeros(state.num_qubits());
        }
        self.snapshot.copy_from(state);
        self.passes.copy();
        let result = self.evolve_segment_body(kernel, state, duration, reference_norm);
        if result.is_err() {
            state.copy_from(&self.snapshot);
            self.passes.copy();
        }
        result
    }

    fn kernel_applications(&self) -> u64 {
        self.applications
    }

    fn state_passes(&self) -> u64 {
        self.passes.count()
    }

    fn reset_kernel_applications(&mut self) {
        self.applications = 0;
        self.passes.reset();
    }
}

impl KrylovStepper {
    fn evolve_segment_body(
        &mut self,
        kernel: FusedKernel<'_>,
        state: &mut StateVector,
        duration: f64,
        reference_norm: f64,
    ) -> Result<(), EvolveError> {
        let num_qubits = state.num_qubits();
        let mut remaining = duration;
        while remaining > 0.0 {
            // --- Build the Lanczos basis from the current state. ---
            self.ensure_basis(2, num_qubits);
            self.basis[0].copy_from(state);
            self.passes.copy();
            self.basis[0].scale(1.0 / reference_norm);
            self.passes.scale();
            let mut alphas: Vec<f64> = Vec::with_capacity(KRYLOV_MAX_DIM);
            let mut betas: Vec<f64> = Vec::with_capacity(KRYLOV_MAX_DIM);
            let mut eigen: Option<TridiagonalEigen> = None;
            let mut happy_breakdown = false;
            // Residual tests cost an O(dim³) eigensolve each; run them on a
            // geometric ladder of dimensions (3, 5, 8, 12, 18, 27, 32)
            // instead of every iteration so the per-step setup cost stays a
            // fraction of the basis-construction kernel work.
            let mut next_test = KRYLOV_MIN_DIM;

            loop {
                let m = alphas.len();
                self.ensure_basis(m + 2, num_qubits);
                // w = H·v_m, then orthogonalize against v_m and v_{m−1}.
                let (head, tail) = self.basis.split_at_mut(m + 1);
                let v_m = &head[m];
                let w = &mut tail[0];
                kernel.apply_into_with(&self.context, v_m, w);
                self.applications += 1;
                self.passes.apply();
                let alpha = v_m.inner_product(w).re;
                self.passes.inner();
                w.accumulate(Complex::from_real(-alpha), v_m);
                self.passes.axpy();
                if m > 0 {
                    let beta_prev = betas[m - 1];
                    w.accumulate(Complex::from_real(-beta_prev), &head[m - 1]);
                    self.passes.axpy();
                }
                // Full reorthogonalization: one classical Gram–Schmidt pass
                // against the whole basis. Without it, orthogonality decays
                // as eigenpairs converge and the projected exponential loses
                // digits well before 1e-14.
                for v in head.iter() {
                    let overlap = v.inner_product(w);
                    self.passes.inner();
                    if overlap.abs() > 0.0 {
                        w.accumulate(-overlap, v);
                        self.passes.axpy();
                    }
                }
                alphas.push(alpha);
                let beta = w.norm();
                self.passes.norm();
                betas.push(beta);
                // Lanczos sanity: α and β are inner products / norms of the
                // basis vectors — any NaN or infinity in the state surfaces
                // here immediately, with no extra amplitude pass.
                if !alpha.is_finite() || !beta.is_finite() {
                    return Err(EvolveError::NonFiniteState {
                        backend: StepperKind::Krylov,
                        segment: None,
                    });
                }

                // Happy breakdown: the Krylov space is H-invariant, so the
                // projected exponential is exact for any Δt. Any
                // eigendecomposition computed at a smaller dimension is
                // stale now — drop it so the final one matches `alphas`.
                let alpha_scale = alphas.iter().fold(0.0f64, |acc, a| acc.max(a.abs()));
                if beta <= 1e-14 * alpha_scale.max(1.0) {
                    happy_breakdown = true;
                    eigen.take();
                    break;
                }

                let dim = alphas.len();
                // Adaptive basis dimension: stop growing as soon as the
                // residual estimate for the whole remaining duration
                // converges (tested on the geometric ladder, and always at
                // the hard cap).
                if dim >= next_test || dim >= KRYLOV_MAX_DIM {
                    next_test = (dim + dim / 2).min(KRYLOV_MAX_DIM).max(dim + 1);
                    let decomposition = self.projected_eigen(&alphas, &betas[..dim - 1])?;
                    let phi = Self::projected_exponential(&decomposition, remaining);
                    let error = Self::error_estimate(beta, remaining, &phi);
                    eigen = Some(decomposition);
                    if error <= self.tolerance || dim >= KRYLOV_MAX_DIM {
                        break;
                    }
                }
                // Extend the basis: v_{m+1} = w / β.
                let w = &mut self.basis[m + 1];
                w.scale(1.0 / beta);
                self.passes.scale();
            }

            let dim = alphas.len();
            let eigen = match eigen {
                Some(decomposition) => decomposition,
                None => self.projected_eigen(&alphas, &betas[..dim - 1])?,
            };
            // The loop body always pushes at least one β before breaking.
            let beta_last = betas.last().copied().unwrap_or(0.0);

            // --- Pick the largest Δt the residual estimate admits. ---
            let mut dt = remaining;
            let mut phi = Self::projected_exponential(&eigen, dt);
            if !happy_breakdown {
                for _ in 0..64 {
                    let error = Self::error_estimate(beta_last, dt, &phi);
                    if error <= self.tolerance {
                        break;
                    }
                    // The local error scales as Δt^m: project onto the power
                    // law with a safety factor, never shrinking by more than
                    // 10x at once (guards against estimate noise).
                    let contraction = (self.tolerance / error).powf(1.0 / dim as f64) * 0.9;
                    dt *= contraction.clamp(0.1, 0.95);
                    phi = Self::projected_exponential(&eigen, dt);
                }
            }

            // --- Advance: ψ ← ‖ψ‖ · Σ_j φ_j · v_j. ---
            state.amplitudes_mut().fill(Complex::ZERO);
            self.passes.fill();
            for (j, coefficient) in phi.iter().enumerate() {
                state.accumulate(coefficient.scale(reference_norm), &self.basis[j]);
                self.passes.axpy();
            }
            checked_rescale_to(state, reference_norm, StepperKind::Krylov)?;
            self.passes.rescale();
            remaining -= dt;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Chebyshev
// ---------------------------------------------------------------------------

/// The Chebyshev backend: one polynomial expansion per segment, however long.
///
/// The Hamiltonian is mapped onto `[−1, 1]` through the segment's
/// [`SpectralBound`] (`H̃ = (H − c)/r`), and
/// `exp(−i·t·H) = e^{−i·c·t}·Σ_k (2−δ_{k0})·(−i)^k·J_k(r·t)·T_k(H̃)`
/// is summed with the three-term `T_k` recurrence — one kernel application
/// per retained order, `≈ r·t + O((r·t)^⅓)` in total. No step splitting:
/// doubling the duration adds roughly the spectral phase span worth of
/// applications instead of doubling them.
#[derive(Debug, Clone)]
pub struct ChebyshevStepper {
    t_prev: StateVector,
    t_curr: StateVector,
    mapped: StateVector,
    accumulator: StateVector,
    context: ExecutionContext,
    tolerance: f64,
    applications: u64,
    passes: Passes,
}

impl ChebyshevStepper {
    /// Creates the stepper with minimal scratch buffers (resized on first
    /// use), executing kernels under [`ExecutionContext::auto`].
    ///
    /// # Panics
    ///
    /// Panics if `tolerance` is not positive and finite.
    pub fn new(tolerance: f64) -> Self {
        ChebyshevStepper::with_context(tolerance, ExecutionContext::auto())
    }

    /// Creates the stepper with an explicit [`ExecutionContext`] applied to
    /// every kernel application.
    ///
    /// # Panics
    ///
    /// Panics if `tolerance` is not positive and finite.
    pub fn with_context(tolerance: f64, context: ExecutionContext) -> Self {
        ChebyshevStepper {
            t_prev: StateVector::zeros(0),
            t_curr: StateVector::zeros(0),
            mapped: StateVector::zeros(0),
            accumulator: StateVector::zeros(0),
            context,
            tolerance: validated_tolerance(tolerance),
            applications: 0,
            passes: Passes::new(),
        }
    }

    fn ensure_capacity(&mut self, num_qubits: usize) {
        if self.t_prev.num_qubits() != num_qubits || self.t_prev.dim() != 1 << num_qubits {
            self.t_prev = StateVector::zeros(num_qubits);
            self.t_curr = StateVector::zeros(num_qubits);
            self.mapped = StateVector::zeros(num_qubits);
            self.accumulator = StateVector::zeros(num_qubits);
        }
    }
}

/// `out = (H·input − center·input) / radius` — the kernel application mapped
/// onto the unit spectral interval the Chebyshev recurrence runs on.
fn apply_mapped(
    kernel: FusedKernel<'_>,
    context: &ExecutionContext,
    input: &StateVector,
    out: &mut StateVector,
    center: f64,
    radius: f64,
) {
    kernel.apply_into_with(context, input, out);
    let inverse_radius = 1.0 / radius;
    for (slot, v) in out.amplitudes_mut().iter_mut().zip(input.amplitudes()) {
        *slot = (*slot - v.scale(center)).scale(inverse_radius);
    }
}

impl Stepper for ChebyshevStepper {
    /// Rollback-safe: the expansion accumulates into scratch buffers and the
    /// guardrails run **before** the result is written back, so on error
    /// `state` is still exactly the segment-entry state.
    fn try_evolve_segment(
        &mut self,
        kernel: FusedKernel<'_>,
        bound: &SpectralBound,
        state: &mut StateVector,
        duration: f64,
        reference_norm: f64,
    ) -> Result<(), EvolveError> {
        let center = bound.center;
        let radius = bound.radius;
        let global_phase = Complex::from_polar_angle(-center * duration);
        if radius == 0.0 {
            // Pure identity shift: a global phase, no kernel work at all.
            self.passes
                .add(apply_identity_phase(state, center, duration));
            return Ok(());
        }
        self.ensure_capacity(state.num_qubits());
        let span = radius * duration;
        if !span.is_finite() {
            return Err(EvolveError::InvalidInput {
                context: format!(
                    "Chebyshev expansion span is not finite (radius {radius}, duration {duration})"
                ),
            });
        }
        if span > MAX_EXP_SPAN {
            return Err(EvolveError::OrderOverflow {
                backend: StepperKind::Chebyshev,
                segment: None,
                span,
                max_span: MAX_EXP_SPAN,
            });
        }
        let coefficients =
            try_chebyshev_exp_coefficients(span, self.tolerance).map_err(|source| {
                EvolveError::InvalidInput {
                    context: source.to_string(),
                }
            })?;

        // T_0·ψ = ψ; accumulator starts at c_0·ψ.
        self.t_prev.copy_from(state);
        self.passes.copy();
        self.accumulator.copy_from(state);
        self.passes.copy();
        self.accumulator.scale(coefficients[0]);
        self.passes.scale();

        if coefficients.len() > 1 {
            // T_1·ψ = H̃·ψ.
            apply_mapped(
                kernel,
                &self.context,
                &self.t_prev,
                &mut self.t_curr,
                center,
                radius,
            );
            self.applications += 1;
            self.passes.apply();
            self.passes.fused_map();
            // (−i)^k phase cycle, starting at k = 1.
            let mut phase = -Complex::I;
            self.accumulator
                .accumulate(phase.scale(coefficients[1]), &self.t_curr);
            self.passes.axpy();
            for &coefficient in coefficients.iter().skip(2) {
                // T_{k+1} = 2·H̃·T_k − T_{k−1}, reusing t_prev's storage.
                apply_mapped(
                    kernel,
                    &self.context,
                    &self.t_curr,
                    &mut self.mapped,
                    center,
                    radius,
                );
                self.applications += 1;
                self.passes.apply();
                self.passes.fused_map();
                for (prev, w) in self
                    .t_prev
                    .amplitudes_mut()
                    .iter_mut()
                    .zip(self.mapped.amplitudes())
                {
                    *prev = w.scale(2.0) - *prev;
                }
                // The recurrence traversal reads `mapped`, reads and writes
                // `t_prev` — the same streams as an axpy.
                self.passes.axpy();
                std::mem::swap(&mut self.t_prev, &mut self.t_curr);
                phase *= -Complex::I;
                self.accumulator
                    .accumulate(phase.scale(coefficient), &self.t_curr);
                self.passes.axpy();
            }
        }

        // Guardrails run on the accumulator BEFORE the state is overwritten,
        // so a failed expansion leaves the state at the segment boundary.
        // The norm computed for the check is reused for the drift
        // correction, fused into the write-back — 3 passes where the
        // unguarded path (write, then norm-and-rescale) paid 5.
        let norm = self.accumulator.norm();
        self.passes.norm();
        if !norm.is_finite() {
            return Err(EvolveError::NonFiniteState {
                backend: StepperKind::Chebyshev,
                segment: None,
            });
        }
        if reference_norm > 0.0 {
            let relative_drift = (norm - reference_norm).abs() / reference_norm;
            if relative_drift > NORM_DRIFT_LIMIT {
                return Err(EvolveError::NormDrift {
                    backend: StepperKind::Chebyshev,
                    segment: None,
                    relative_drift,
                });
            }
        }
        // ψ ← e^{−i·c·t} · Σ, rescaled to the caller's norm in the same
        // traversal.
        let correction = if norm > 0.0 {
            global_phase.scale(reference_norm / norm)
        } else {
            global_phase
        };
        for (slot, acc) in state
            .amplitudes_mut()
            .iter_mut()
            .zip(self.accumulator.amplitudes())
        {
            *slot = correction * *acc;
        }
        // The write-back is a phase-and-rescale copy: read accumulator,
        // write state.
        self.passes.copy();
        Ok(())
    }

    fn kernel_applications(&self) -> u64 {
        self.applications
    }

    fn state_passes(&self) -> u64 {
        self.passes.count()
    }

    fn reset_kernel_applications(&mut self) {
        self.applications = 0;
        self.passes.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiled::CompiledHamiltonian;
    use qturbo_hamiltonian::{Hamiltonian, Pauli, PauliString};

    fn evolve_with_stepper(
        stepper: &mut dyn Stepper,
        hamiltonian: &Hamiltonian,
        state: &StateVector,
        time: f64,
    ) -> StateVector {
        let compiled = CompiledHamiltonian::compile(hamiltonian);
        let mut out = state.clone();
        let norm = out.norm();
        stepper.evolve_segment(
            compiled.kernel(),
            &compiled.spectral_bound(),
            &mut out,
            time,
            norm,
        );
        out
    }

    fn test_hamiltonian() -> Hamiltonian {
        Hamiltonian::from_terms(
            3,
            [
                (1.0, PauliString::two(0, Pauli::Z, 1, Pauli::Z)),
                (0.8, PauliString::single(1, Pauli::Y)),
                (0.5, PauliString::single(2, Pauli::X)),
                (-0.3, PauliString::identity()),
            ],
        )
    }

    #[test]
    fn spectral_bound_splits_identity_shift() {
        let compiled = CompiledHamiltonian::compile(&test_hamiltonian());
        let bound = compiled.spectral_bound();
        assert!((bound.center - (-0.3)).abs() < 1e-15);
        assert!((bound.radius - 2.3).abs() < 1e-15);
        assert_eq!(bound.step_strength, compiled.step_strength());
    }

    #[test]
    fn all_steppers_agree_with_rabi_analytics() {
        let omega = 2.0;
        let h = Hamiltonian::from_terms(1, [(omega / 2.0, PauliString::single(0, Pauli::X))]);
        let z = PauliString::single(0, Pauli::Z);
        for t in [0.3, 2.0, 9.0] {
            let expected = (omega * t).cos();
            let mut taylor = TaylorStepper::new(DEFAULT_TOLERANCE);
            let mut batched = BatchedTaylorStepper::new(DEFAULT_TOLERANCE);
            let mut krylov = KrylovStepper::new(DEFAULT_TOLERANCE);
            let mut chebyshev = ChebyshevStepper::new(DEFAULT_TOLERANCE);
            let steppers: [&mut dyn Stepper; 4] =
                [&mut taylor, &mut batched, &mut krylov, &mut chebyshev];
            for stepper in steppers {
                let evolved = evolve_with_stepper(stepper, &h, &StateVector::zero_state(1), t);
                assert!(
                    (evolved.expectation(&z) - expected).abs() < 1e-9,
                    "t={t}: {} != {expected}",
                    evolved.expectation(&z)
                );
            }
        }
    }

    #[test]
    fn krylov_and_chebyshev_match_taylor_amplitudes() {
        let h = test_hamiltonian();
        let initial = StateVector::plus_state(3);
        for t in [0.5, 4.0, 20.0] {
            let mut taylor = TaylorStepper::new(DEFAULT_TOLERANCE);
            let reference = evolve_with_stepper(&mut taylor, &h, &initial, t);
            let mut batched = BatchedTaylorStepper::new(DEFAULT_TOLERANCE);
            let mut krylov = KrylovStepper::new(DEFAULT_TOLERANCE);
            let mut chebyshev = ChebyshevStepper::new(DEFAULT_TOLERANCE);
            let others: [(&str, &mut dyn Stepper); 3] = [
                ("batched_taylor", &mut batched),
                ("krylov", &mut krylov),
                ("chebyshev", &mut chebyshev),
            ];
            for (name, stepper) in others {
                let evolved = evolve_with_stepper(stepper, &h, &initial, t);
                for (a, b) in evolved.amplitudes().iter().zip(reference.amplitudes()) {
                    assert!((*a - *b).abs() < 1e-10, "{name} t={t}: {a} != {b}");
                }
                assert!(stepper.kernel_applications() > 0);
            }
        }
    }

    #[test]
    fn long_time_work_scales_sublinearly_for_krylov_and_chebyshev() {
        // The headline property: at ‖H‖·t ≫ 1 both new backends need far
        // fewer H|ψ⟩ applications than Taylor's strength·t/0.5 steps.
        let h = test_hamiltonian();
        let initial = StateVector::plus_state(3);
        let t = 50.0;
        let mut taylor = TaylorStepper::new(DEFAULT_TOLERANCE);
        let mut krylov = KrylovStepper::new(DEFAULT_TOLERANCE);
        let mut chebyshev = ChebyshevStepper::new(DEFAULT_TOLERANCE);
        let _ = evolve_with_stepper(&mut taylor, &h, &initial, t);
        let _ = evolve_with_stepper(&mut krylov, &h, &initial, t);
        let _ = evolve_with_stepper(&mut chebyshev, &h, &initial, t);
        let taylor_work = taylor.kernel_applications();
        assert!(
            krylov.kernel_applications() * 2 < taylor_work,
            "krylov {} vs taylor {taylor_work}",
            krylov.kernel_applications()
        );
        assert!(
            chebyshev.kernel_applications() * 2 < taylor_work,
            "chebyshev {} vs taylor {taylor_work}",
            chebyshev.kernel_applications()
        );
    }

    #[test]
    fn chebyshev_handles_pure_identity_shift() {
        let h = Hamiltonian::from_terms(2, [(0.7, PauliString::identity())]);
        let mut chebyshev = ChebyshevStepper::new(DEFAULT_TOLERANCE);
        let initial = StateVector::plus_state(2);
        let evolved = evolve_with_stepper(&mut chebyshev, &h, &initial, 1.3);
        assert_eq!(chebyshev.kernel_applications(), 0);
        // Global phase e^{−i·0.7·1.3} on every amplitude.
        let phase = Complex::from_polar_angle(-0.7 * 1.3);
        for (a, b) in evolved.amplitudes().iter().zip(initial.amplitudes()) {
            assert!((*a - phase * *b).abs() < 1e-14);
        }
    }

    #[test]
    fn krylov_happy_breakdown_is_exact() {
        // A 1-qubit X drive spans a 2-dim Krylov space: the basis breaks
        // down happily at m = 2 and the step covers any duration exactly.
        let h = Hamiltonian::from_terms(1, [(1.0, PauliString::single(0, Pauli::X))]);
        let mut krylov = KrylovStepper::new(DEFAULT_TOLERANCE);
        let evolved = evolve_with_stepper(&mut krylov, &h, &StateVector::zero_state(1), 100.0);
        assert_eq!(krylov.kernel_applications(), 2);
        let z = PauliString::single(0, Pauli::Z);
        assert!((evolved.expectation(&z) - (2.0_f64 * 100.0).cos()).abs() < 1e-8);
    }

    #[test]
    fn options_builders() {
        assert_eq!(EvolveOptions::default().stepper, StepperKind::Auto);
        assert_eq!(EvolveOptions::krylov().stepper, StepperKind::Krylov);
        assert_eq!(EvolveOptions::chebyshev().stepper, StepperKind::Chebyshev);
        assert_eq!(EvolveOptions::taylor().stepper, StepperKind::Taylor);
        assert_eq!(
            EvolveOptions::batched_taylor().stepper,
            StepperKind::BatchedTaylor
        );
        assert_eq!(EvolveOptions::auto().stepper, StepperKind::Auto);
        let custom = EvolveOptions::krylov().with_tolerance(1e-9);
        assert_eq!(custom.tolerance, 1e-9);
        assert_eq!(StepperKind::Krylov.name(), "krylov");
        assert_eq!(StepperKind::BatchedTaylor.name(), "batched_taylor");
        assert_eq!(StepperKind::Auto.name(), "auto");
        assert_eq!(StepperKind::all().len(), 5);
        assert_eq!(StepperKind::fixed().len(), 4);
        assert!(!StepperKind::fixed().contains(&StepperKind::Auto));
        assert!(StepperKind::fixed().contains(&StepperKind::BatchedTaylor));
    }

    #[test]
    fn auto_model_picks_batched_taylor_short_and_chebyshev_long() {
        let model = AutoCostModel::default();
        let bound = SpectralBound {
            center: 0.0,
            radius: 2.0,
            step_strength: 2.5,
        };
        // A tiny segment: one Taylor step of a handful of orders beats
        // Chebyshev's truncation floor — and the batched sweep undercuts the
        // per-segment Taylor overhead.
        assert_eq!(
            model.choose(&bound, 0.01, DEFAULT_TOLERANCE),
            StepperKind::BatchedTaylor
        );
        // A long quench: Chebyshev's ≈ r·t applications crush Taylor's
        // ‖H‖·t/½ steps.
        assert_eq!(
            model.choose(&bound, 50.0, DEFAULT_TOLERANCE),
            StepperKind::Chebyshev
        );
        // Fixed kinds resolve to themselves; Auto resolves per segment.
        let options = EvolveOptions::krylov();
        assert_eq!(options.resolve(&bound, 50.0), StepperKind::Krylov);
        let auto = EvolveOptions::auto();
        assert_eq!(auto.resolve(&bound, 0.01), StepperKind::BatchedTaylor);
        assert_eq!(auto.resolve(&bound, 50.0), StepperKind::Chebyshev);
        // With the batched overhead priced out of reach, the per-segment
        // reference wins the short segment again (the crossover is data).
        let pessimistic = AutoCostModel {
            batched_step_overhead_applications: 10.0,
            ..AutoCostModel::default()
        };
        assert_eq!(
            pessimistic.choose(&bound, 0.01, DEFAULT_TOLERANCE),
            StepperKind::Taylor
        );
    }

    #[test]
    fn choose_always_matches_brute_force_argmin() {
        // `choose` has a fast path that skips the exact Chebyshev pricing
        // for short segments; it must remain indistinguishable from the
        // plain argmin over the fixed backends, across the crossover region
        // and for non-default calibrations.
        let models = [
            AutoCostModel::default(),
            AutoCostModel {
                chebyshev_application_cost: 5.0,
                ..AutoCostModel::default()
            },
            AutoCostModel {
                taylor_application_cost: 20.0,
                ..AutoCostModel::default()
            },
        ];
        for model in models {
            for &(center, radius, step_strength) in &[
                (0.0, 2.0, 2.5),
                (-1.3, 0.7, 2.0),
                (0.0, 0.0, 1.0),
                (5.0, 4.0, 9.5),
            ] {
                let bound = SpectralBound {
                    center,
                    radius,
                    step_strength,
                };
                for exponent in -8..=6 {
                    let duration = 2.0_f64.powi(exponent);
                    let brute = StepperKind::fixed()
                        .into_iter()
                        .map(|kind| {
                            (
                                kind,
                                model
                                    .estimated_cost(kind, &bound, duration, DEFAULT_TOLERANCE)
                                    .unwrap(),
                            )
                        })
                        .reduce(|best, candidate| {
                            if candidate.1 < best.1 {
                                candidate
                            } else {
                                best
                            }
                        })
                        .unwrap()
                        .0;
                    assert_eq!(
                        model.choose(&bound, duration, DEFAULT_TOLERANCE),
                        brute,
                        "bound {bound:?}, duration {duration}"
                    );
                }
            }
        }
    }

    #[test]
    fn auto_model_is_overridable_toward_krylov() {
        // The crossovers are calibration, not code: pricing Chebyshev and
        // Taylor out steers the decision to Krylov.
        let model = AutoCostModel {
            taylor_application_cost: 1e6,
            chebyshev_application_cost: 1e6,
            ..AutoCostModel::default()
        };
        let bound = SpectralBound {
            center: 0.0,
            radius: 2.0,
            step_strength: 2.5,
        };
        assert_eq!(
            model.choose(&bound, 5.0, DEFAULT_TOLERANCE),
            StepperKind::Krylov
        );
        let options = EvolveOptions::auto().with_auto_model(model);
        assert_eq!(options.resolve(&bound, 5.0), StepperKind::Krylov);
    }

    #[test]
    fn auto_model_estimates_track_the_workload_shape() {
        let model = AutoCostModel::default();
        let bound = SpectralBound {
            center: 0.0,
            radius: 3.0,
            step_strength: 4.0,
        };
        // Chebyshev's estimate is exact: the truncation order of its
        // expansion.
        let apps = model
            .estimated_applications(StepperKind::Chebyshev, &bound, 10.0, DEFAULT_TOLERANCE)
            .unwrap();
        assert_eq!(
            apps,
            qturbo_math::chebyshev::chebyshev_exp_order(30.0, DEFAULT_TOLERANCE) as f64
        );
        // Auto has no estimate of its own — introspection returns None
        // instead of aborting.
        assert_eq!(
            model.estimated_applications(StepperKind::Auto, &bound, 10.0, DEFAULT_TOLERANCE),
            None
        );
        assert_eq!(
            model.estimated_cost(StepperKind::Auto, &bound, 10.0, DEFAULT_TOLERANCE),
            None
        );
        // Taylor's estimate scales linearly with the duration (step count).
        let short = model
            .estimated_applications(StepperKind::Taylor, &bound, 1.0, DEFAULT_TOLERANCE)
            .unwrap();
        let long = model
            .estimated_applications(StepperKind::Taylor, &bound, 10.0, DEFAULT_TOLERANCE)
            .unwrap();
        assert!(long > 8.0 * short, "taylor {short} -> {long}");
        // A tighter spectral bound strictly lowers the Chebyshev estimate on
        // a long segment (the tentpole property of the exact-diagonal
        // interval).
        let tightened = bound.with_exact_diagonal(-1.0, 1.0, 1.0);
        assert!(tightened.radius < bound.radius);
        let fewer = model
            .estimated_applications(StepperKind::Chebyshev, &tightened, 10.0, DEFAULT_TOLERANCE)
            .unwrap();
        assert!(fewer < apps, "{fewer} !< {apps}");
    }

    #[test]
    fn exact_diagonal_interval_is_contained_in_triangle_interval() {
        // H = 0.2·I + 1.5·Z₀Z₁ + 0.7·Z₀ + 0.4·X₁: triangle radius 2.6 around
        // 0.2; the exact diagonal range is narrower whenever the diagonal
        // terms cannot all peak at once.
        let compiled = CompiledHamiltonian::compile(&Hamiltonian::from_terms(
            2,
            [
                (0.2, PauliString::identity()),
                (1.5, PauliString::two(0, Pauli::Z, 1, Pauli::Z)),
                (0.7, PauliString::single(0, Pauli::Z)),
                (0.4, PauliString::single(1, Pauli::X)),
            ],
        ));
        let triangle = SpectralBound {
            center: 0.2,
            radius: 2.6,
            step_strength: compiled.step_strength(),
        };
        let bound = compiled.spectral_bound();
        // Diagonal values over the 4 basis states: 0.2 ± 1.5 ± 0.7 →
        // {2.4, 1.0, -0.6, -2.0} ⇒ exact range [-2.0, 2.4], off-diagonal
        // radius 0.4.
        assert!((bound.center - 0.2).abs() < 1e-12);
        assert!((bound.radius - 2.6).abs() < 1e-12);
        // Containment: [center − r, center + r] ⊆ triangle interval.
        assert!(bound.center - bound.radius >= triangle.center - triangle.radius - 1e-12);
        assert!(bound.center + bound.radius <= triangle.center + triangle.radius + 1e-12);
        // A genuinely anti-correlated diagonal shrinks the interval: with
        // Z₀ + Z₁ − Z₀Z₁ the diagonal peaks at 1 (not 3).
        let tightened = CompiledHamiltonian::compile(&Hamiltonian::from_terms(
            2,
            [
                (1.0, PauliString::single(0, Pauli::Z)),
                (1.0, PauliString::single(1, Pauli::Z)),
                (-1.0, PauliString::two(0, Pauli::Z, 1, Pauli::Z)),
                (0.3, PauliString::single(0, Pauli::X)),
            ],
        ))
        .spectral_bound();
        // Diagonal values: {1, 1, 1, -3} ⇒ exact [−3, 1] (radius 2) vs
        // triangle radius 3; plus the 0.3 off-diagonal widening.
        assert!((tightened.center - (-1.0)).abs() < 1e-12);
        assert!((tightened.radius - 2.3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_tolerance_panics() {
        let _ = EvolveOptions::taylor().with_tolerance(0.0);
    }

    #[test]
    fn batched_taylor_matches_taylor_with_fewer_passes() {
        // Identical series ⇒ near-identical amplitudes (the only difference
        // is where the drift-correction rescale lands); strictly fewer
        // amplitude passes at the same application count.
        let h = test_hamiltonian();
        let initial = StateVector::plus_state(3);
        for t in [0.1, 0.45, 2.0] {
            let mut taylor = TaylorStepper::new(DEFAULT_TOLERANCE);
            let mut batched = BatchedTaylorStepper::new(DEFAULT_TOLERANCE);
            let reference = evolve_with_stepper(&mut taylor, &h, &initial, t);
            let evolved = evolve_with_stepper(&mut batched, &h, &initial, t);
            for (a, b) in evolved.amplitudes().iter().zip(reference.amplitudes()) {
                assert!((*a - *b).abs() < 1e-12, "t={t}: {a} != {b}");
            }
            assert_eq!(
                batched.kernel_applications(),
                taylor.kernel_applications(),
                "t={t}: the batched sweep must run the identical series"
            );
            assert!(
                batched.state_passes() < taylor.state_passes(),
                "t={t}: batched {} passes vs taylor {}",
                batched.state_passes(),
                taylor.state_passes()
            );
        }
    }

    #[test]
    fn every_stepper_shortcuts_pure_identity_segments() {
        // H = c·I with a large step strength: the pre-fix Taylor path burned
        // ⌈2·|c|·t/½⌉ degenerate steps (one application each) on a global
        // phase; every backend must now spend zero applications and land on
        // the exact phase.
        let h = Hamiltonian::from_terms(2, [(5.0, PauliString::identity())]);
        let t = 10.0;
        let phase = Complex::from_polar_angle(-5.0 * t);
        let initial = StateVector::plus_state(2);
        let mut taylor = TaylorStepper::new(DEFAULT_TOLERANCE);
        let mut batched = BatchedTaylorStepper::new(DEFAULT_TOLERANCE);
        let mut krylov = KrylovStepper::new(DEFAULT_TOLERANCE);
        let mut chebyshev = ChebyshevStepper::new(DEFAULT_TOLERANCE);
        let steppers: [(&str, &mut dyn Stepper); 4] = [
            ("taylor", &mut taylor),
            ("batched_taylor", &mut batched),
            ("krylov", &mut krylov),
            ("chebyshev", &mut chebyshev),
        ];
        for (name, stepper) in steppers {
            let evolved = evolve_with_stepper(stepper, &h, &initial, t);
            assert_eq!(stepper.kernel_applications(), 0, "{name} did kernel work");
            for (a, b) in evolved.amplitudes().iter().zip(initial.amplitudes()) {
                assert!((*a - phase * *b).abs() < 1e-14, "{name}: {a}");
            }
        }
    }

    #[test]
    fn batched_run_chains_segments_through_one_sweep() {
        // A 3-segment mini-ramp driven through the run API must match three
        // independent per-segment Taylor evolutions.
        let segments = [
            (test_hamiltonian(), 0.11),
            (test_hamiltonian().scaled(0.8), 0.13),
            (test_hamiltonian().scaled(0.6), 0.09),
        ];
        let initial = StateVector::plus_state(3);
        let norm = initial.norm();

        let mut reference = initial.clone();
        let mut taylor = TaylorStepper::new(DEFAULT_TOLERANCE);
        for (h, t) in &segments {
            let compiled = CompiledHamiltonian::compile(h);
            taylor.evolve_segment(
                compiled.kernel(),
                &compiled.spectral_bound(),
                &mut reference,
                *t,
                norm,
            );
        }

        let mut batched = BatchedTaylorStepper::new(DEFAULT_TOLERANCE);
        let mut state = initial.clone();
        let compiled: Vec<CompiledHamiltonian> = segments
            .iter()
            .map(|(h, _)| CompiledHamiltonian::compile(h))
            .collect();
        batched.begin_run(&state, norm);
        for (c, (_, t)) in compiled.iter().zip(&segments) {
            batched.run_segment(c.kernel(), &c.spectral_bound(), &mut state, *t);
        }
        batched.finish_run(&mut state);

        for (a, b) in state.amplitudes().iter().zip(reference.amplitudes()) {
            assert!((*a - *b).abs() < 1e-12, "{a} != {b}");
        }
        assert_eq!(batched.kernel_applications(), taylor.kernel_applications());
        assert!(batched.state_passes() < taylor.state_passes());
    }
}
