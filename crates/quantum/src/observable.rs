//! Observables used in the paper's real-device studies: `Z_avg` and `ZZ_avg`.
//!
//! # Fused evaluation
//!
//! `Z_i` and `Z_iZ_j` are diagonal in the computational basis, so every one
//! of them is a signed sum of the probabilities `|ψ_b|²`. Instead of one full
//! `2ⁿ` pass per observable (`2N` passes for the §7.4 metrics), the
//! [`measure_z_zz`] sweep walks the amplitudes **once** and accumulates all
//! `N` single-qubit and all bond observables simultaneously via bit masks:
//! `⟨Z_i⟩ = Σ_b |ψ_b|²·(−1)^{b_i}` and
//! `⟨Z_iZ_j⟩ = Σ_b |ψ_b|²·(−1)^{b_i ⊕ b_j}`. The per-observable wrappers
//! ([`z_expectations`], [`zz_expectations`]) delegate to the same sweep.
//!
//! # Bond semantics
//!
//! [`zz_pairs`] defines the measured bonds, and it emits only **distinct,
//! non-degenerate** pairs:
//!
//! * `n < 2` — no bonds at all (a single qubit has no neighbour; the
//!   degenerate wrap-around pair `(0, 0)` would collapse to `Z₀Z₀ = I`,
//!   which an earlier revision mis-measured as a bare `Z₀`),
//! * `n = 2` — exactly one bond `(0, 1)`, cyclic or not (on a 2-ring the
//!   wrap-around bond *is* `(1, 0)`, the same physical bond; counting it
//!   twice biased `ZZ_avg`),
//! * `n ≥ 3` with `cyclic` — the `n − 1` chain bonds plus the wrap-around
//!   `(n−1, 0)`, matching the paper's Ising-cycle study.

use crate::state::StateVector;

/// The distinct nearest-neighbour bonds `(i, j)` of an `n`-qubit chain
/// (`cyclic = false`) or ring (`cyclic = true`).
///
/// See the [module docs](self) for the exact semantics: no degenerate or
/// duplicate bonds are ever emitted (`n < 2` → none; `n = 2` → one bond in
/// both modes; the wrap-around bond only appears for `n ≥ 3`).
pub fn zz_pairs(num_qubits: usize, cyclic: bool) -> Vec<(usize, usize)> {
    let n = num_qubits;
    if n < 2 {
        return Vec::new();
    }
    let mut pairs: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
    if cyclic && n >= 3 {
        pairs.push((n - 1, 0));
    }
    pairs
}

/// All diagonal observables of one state, computed by a single sweep over
/// the probabilities: per-qubit `⟨Z_i⟩` and per-bond `⟨Z_iZ_j⟩`.
#[derive(Debug, Clone, PartialEq)]
pub struct DiagonalObservables {
    /// `⟨Z_i⟩` for every qubit `i`.
    pub z: Vec<f64>,
    /// `⟨Z_iZ_j⟩` for every bond in [`DiagonalObservables::pairs`] order.
    pub zz: Vec<f64>,
    /// The measured bonds, as produced by [`zz_pairs`].
    pub pairs: Vec<(usize, usize)>,
}

impl DiagonalObservables {
    /// `Z_avg = (1/N) Σ_i ⟨Z_i⟩` (paper §7.4).
    pub fn z_average(&self) -> f64 {
        average(&self.z)
    }

    /// `ZZ_avg = (1/B) Σ_b ⟨Z_i Z_j⟩` over the `B` measured bonds of
    /// [`DiagonalObservables::pairs`] (paper §7.4) — i.e. divided by the
    /// **bond count** (`N − 1` on an open chain, `N` on a ring with
    /// `n ≥ 3`), *not* by the qubit count `N`; `0` when there are no bonds
    /// (`n < 2`).
    pub fn zz_average(&self) -> f64 {
        average(&self.zz)
    }
}

/// Evaluates every `⟨Z_i⟩` and every adjacent-pair `⟨Z_iZ_j⟩` in **one**
/// sweep over `|ψ_b|²` (see the [module docs](self) for the bond semantics).
///
/// The values match the per-observable
/// [`StateVector::expectation`] route to floating-point accumulation order
/// (≤ 1e-12), at the cost of a single pass instead of `2N`.
pub fn measure_z_zz(state: &StateVector, cyclic: bool) -> DiagonalObservables {
    let pairs = zz_pairs(state.num_qubits(), cyclic);
    let (z, zz) = diagonal_sweep(state, &pairs);
    DiagonalObservables { z, zz, pairs }
}

/// Per-qubit `⟨Z_i⟩` expectation values of a state (one fused sweep).
pub fn z_expectations(state: &StateVector) -> Vec<f64> {
    diagonal_sweep(state, &[]).0
}

/// Nearest-neighbour `⟨Z_i Z_{i+1}⟩` expectation values over the distinct
/// bonds of [`zz_pairs`] (one fused sweep). With `cyclic` set and `n ≥ 3` the
/// wrap-around pair `(n−1, 0)` is included, matching the paper's Ising-cycle
/// study; degenerate (`n = 1`) and duplicate (`n = 2`) wrap-around bonds are
/// never emitted.
pub fn zz_expectations(state: &StateVector, cyclic: bool) -> Vec<f64> {
    let pairs = zz_pairs(state.num_qubits(), cyclic);
    diagonal_sweep(state, &pairs).1
}

/// `Z_avg = (1/N) Σ_i ⟨Z_i⟩` (paper §7.4).
pub fn z_average(state: &StateVector) -> f64 {
    average(&z_expectations(state))
}

/// `ZZ_avg = (1/B) Σ_b ⟨Z_i Z_j⟩` over the `B` distinct adjacent bonds of
/// [`zz_pairs`] (paper §7.4).
///
/// The divisor is the **bond count** `B` — `N − 1` on an open chain, `N` on
/// a ring with `n ≥ 3` — not the qubit count `N`. (The paper's `(1/N) Σ`
/// shorthand and this implementation agree exactly on the cyclic case it
/// studies, where `B = N`; on open chains a `1/N` divisor would silently
/// shrink every average by `(N−1)/N`, so the bond-count semantics is the
/// one both this function and the device metrics use.) Returns `0` when
/// there are no bonds (`n < 2`).
pub fn zz_average(state: &StateVector, cyclic: bool) -> f64 {
    average(&zz_expectations(state, cyclic))
}

/// The single probability sweep, histogram-structured for speed: the `2ⁿ`
/// pass accumulates `|ψ_b|²` into two half-register histograms (low `k` bits
/// and high `n − k` bits, `k = ⌈n/2⌉`) plus one 4-entry joint histogram per
/// bond that straddles the halves (at most two: the `(k−1, k)` chain bond
/// and the cyclic wrap-around). Every marginal — `P(b_i = 1)` per qubit and
/// `P(b_i ⊕ b_j = 1)` per bond — is then extracted from the `O(2^{n/2})`
/// histograms, and mapped to `⟨Z⟩ = P(even) − P(odd)`.
///
/// Per amplitude the sweep costs a handful of branch-free adds, independent
/// of how many observables are requested — versus one full `2ⁿ` pass *per
/// observable* on the per-observable route.
///
/// Works for unnormalized states too: the total probability mass is
/// accumulated alongside, so the result is `⟨ψ|Z…|ψ⟩` (not divided by the
/// norm), exactly like [`StateVector::expectation`].
fn diagonal_sweep(state: &StateVector, pairs: &[(usize, usize)]) -> (Vec<f64>, Vec<f64>) {
    let n = state.num_qubits();
    if n == 0 {
        return (Vec::new(), Vec::new());
    }
    // Low half: bits [0, k); high half: bits [k, n).
    let k = n.div_ceil(2);
    let lo_mask = (1usize << k) - 1;
    let mut histogram_lo = vec![0.0f64; 1 << k];
    let mut histogram_hi = vec![0.0f64; 1 << (n - k)];
    // Bonds whose qubits live in different halves get a tiny joint histogram
    // keyed by the two bits; a nearest-neighbour chain/ring has at most two.
    let crossing: Vec<(usize, (usize, usize))> = pairs
        .iter()
        .enumerate()
        .filter(|&(_, &(i, j))| (i < k) != (j < k))
        .map(|(index, &bond)| (index, bond))
        .collect();
    let mut crossing_histograms = vec![[0.0f64; 4]; crossing.len()];

    // The one sweep over the amplitudes.
    let mut total = 0.0f64;
    for (basis, amplitude) in state.amplitudes().iter().enumerate() {
        let probability = amplitude.norm_sqr();
        total += probability;
        histogram_lo[basis & lo_mask] += probability;
        histogram_hi[basis >> k] += probability;
        for (joint, &(_, (i, j))) in crossing_histograms.iter_mut().zip(&crossing) {
            joint[((basis >> i) & 1) | (((basis >> j) & 1) << 1)] += probability;
        }
    }

    // Marginals from the half-register histograms.
    let mut ones = vec![0.0f64; n];
    let mut fold = |histogram: &[f64], bit_offset: usize| {
        for (value, &probability) in histogram.iter().enumerate() {
            if probability == 0.0 {
                continue;
            }
            let mut set_bits = value;
            while set_bits != 0 {
                ones[bit_offset + set_bits.trailing_zeros() as usize] += probability;
                set_bits &= set_bits - 1;
            }
        }
    };
    fold(&histogram_lo, 0);
    fold(&histogram_hi, k);

    let mut odd = vec![0.0f64; pairs.len()];
    for (index, &(i, j)) in pairs.iter().enumerate() {
        if (i < k) == (j < k) {
            // Both qubits in one half: scan that half's histogram.
            let (histogram, mask) = if i < k {
                (&histogram_lo, (1usize << i) | (1 << j))
            } else {
                (&histogram_hi, (1usize << (i - k)) | (1 << (j - k)))
            };
            odd[index] = histogram
                .iter()
                .enumerate()
                .filter(|&(value, _)| (value & mask).count_ones() & 1 == 1)
                .map(|(_, &probability)| probability)
                .sum();
        }
    }
    for (joint, &(index, _)) in crossing_histograms.iter().zip(&crossing) {
        odd[index] = joint[0b01] + joint[0b10];
    }

    let z = ones.into_iter().map(|p| total - 2.0 * p).collect();
    let zz = odd.into_iter().map(|p| total - 2.0 * p).collect();
    (z, zz)
}

fn average(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qturbo_math::Complex;

    #[test]
    fn zero_state_averages() {
        let state = StateVector::zero_state(4);
        assert_eq!(z_average(&state), 1.0);
        assert_eq!(zz_average(&state, false), 1.0);
        assert_eq!(zz_average(&state, true), 1.0);
        assert_eq!(z_expectations(&state).len(), 4);
        assert_eq!(zz_expectations(&state, false).len(), 3);
        assert_eq!(zz_expectations(&state, true).len(), 4);
    }

    #[test]
    fn plus_state_averages_vanish() {
        let state = StateVector::plus_state(3);
        assert!(z_average(&state).abs() < 1e-12);
        assert!(zz_average(&state, true).abs() < 1e-12);
    }

    #[test]
    fn antiferromagnetic_basis_state() {
        // |0101⟩ (qubit i set for odd i): ⟨Z_i⟩ alternates +1/−1, ⟨Z_i Z_{i+1}⟩ = −1.
        let mut amplitudes = vec![Complex::ZERO; 16];
        amplitudes[0b1010] = Complex::ONE;
        let state = StateVector::from_amplitudes(amplitudes);
        let z = z_expectations(&state);
        assert_eq!(z, vec![1.0, -1.0, 1.0, -1.0]);
        assert_eq!(z_average(&state), 0.0);
        assert_eq!(zz_average(&state, false), -1.0);
        // Cyclic closes (3, 0) which is also antialigned for even N.
        assert_eq!(zz_average(&state, true), -1.0);
    }

    #[test]
    fn degenerate_and_small_registers() {
        // n = 1: no bonds in either mode (the wrap-around (0,0) is Z₀Z₀ = I
        // and must not appear; an earlier revision measured it as Z₀).
        assert!(zz_pairs(1, false).is_empty());
        assert!(zz_pairs(1, true).is_empty());
        let one = StateVector::zero_state(1);
        assert!(zz_expectations(&one, true).is_empty());
        assert_eq!(zz_average(&one, true), 0.0);

        // n = 2: the ring has exactly one physical bond; cyclic must not
        // double-count it.
        assert_eq!(zz_pairs(2, false), vec![(0, 1)]);
        assert_eq!(zz_pairs(2, true), vec![(0, 1)]);
        let two = StateVector::from_amplitudes(vec![
            Complex::ZERO,
            Complex::ONE,
            Complex::ZERO,
            Complex::ZERO,
        ]);
        // |01⟩: Z₀ = −1, Z₁ = +1 → Z₀Z₁ = −1, once.
        assert_eq!(zz_expectations(&two, true), vec![-1.0]);
        assert_eq!(zz_average(&two, true), -1.0);

        // n = 3: cyclic adds the single wrap-around bond.
        assert_eq!(zz_pairs(3, false), vec![(0, 1), (1, 2)]);
        assert_eq!(zz_pairs(3, true), vec![(0, 1), (1, 2), (2, 0)]);
        assert!(zz_pairs(0, true).is_empty());
    }

    #[test]
    fn fused_sweep_matches_per_observable_expectations() {
        use qturbo_hamiltonian::{Pauli, PauliString};
        let amplitudes: Vec<Complex> = (0..32)
            .map(|k| Complex::new(0.3 + k as f64, 1.5 - 0.2 * k as f64))
            .collect();
        let state = StateVector::from_amplitudes(amplitudes);
        for cyclic in [false, true] {
            let fused = measure_z_zz(&state, cyclic);
            for (i, z) in fused.z.iter().enumerate() {
                let direct = state.expectation(&PauliString::single(i, Pauli::Z));
                assert!((z - direct).abs() < 1e-12, "Z_{i}: {z} != {direct}");
            }
            assert_eq!(fused.pairs, zz_pairs(5, cyclic));
            for (&(i, j), zz) in fused.pairs.iter().zip(&fused.zz) {
                let direct = state.expectation(&PauliString::two(i, Pauli::Z, j, Pauli::Z));
                assert!((zz - direct).abs() < 1e-12, "Z_{i}Z_{j}: {zz} != {direct}");
            }
            assert!((fused.z_average() - z_average(&state)).abs() < 1e-12);
            assert!((fused.zz_average() - zz_average(&state, cyclic)).abs() < 1e-12);
        }
    }

    #[test]
    fn single_qubit_edge_cases() {
        let state = StateVector::zero_state(1);
        assert_eq!(zz_expectations(&state, false).len(), 0);
        assert_eq!(zz_average(&state, false), 0.0);
        let observables = measure_z_zz(&state, true);
        assert_eq!(observables.z, vec![1.0]);
        assert!(observables.zz.is_empty());
        assert!(observables.pairs.is_empty());
        assert_eq!(observables.zz_average(), 0.0);
    }
}
