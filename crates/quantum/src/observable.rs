//! Observables used in the paper's real-device studies: `Z_avg` and `ZZ_avg`.

use crate::state::StateVector;
use qturbo_hamiltonian::{Pauli, PauliString};

/// Per-qubit `⟨Z_i⟩` expectation values of a state.
pub fn z_expectations(state: &StateVector) -> Vec<f64> {
    (0..state.num_qubits())
        .map(|i| state.expectation(&PauliString::single(i, Pauli::Z)))
        .collect()
}

/// Nearest-neighbour `⟨Z_i Z_{i+1}⟩` expectation values. With `cyclic` set the
/// wrap-around pair `(N−1, 0)` is included, matching the paper's Ising-cycle
/// study.
pub fn zz_expectations(state: &StateVector, cyclic: bool) -> Vec<f64> {
    let n = state.num_qubits();
    let pairs: Vec<(usize, usize)> = if cyclic {
        (0..n).map(|i| (i, (i + 1) % n)).collect()
    } else {
        (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect()
    };
    pairs
        .into_iter()
        .map(|(i, j)| state.expectation(&PauliString::two(i, Pauli::Z, j, Pauli::Z)))
        .collect()
}

/// `Z_avg = (1/N) Σ_i ⟨Z_i⟩` (paper §7.4).
pub fn z_average(state: &StateVector) -> f64 {
    average(&z_expectations(state))
}

/// `ZZ_avg = (1/N) Σ_i ⟨Z_i Z_{i+1}⟩` over adjacent pairs (paper §7.4).
pub fn zz_average(state: &StateVector, cyclic: bool) -> f64 {
    average(&zz_expectations(state, cyclic))
}

fn average(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qturbo_math::Complex;

    #[test]
    fn zero_state_averages() {
        let state = StateVector::zero_state(4);
        assert_eq!(z_average(&state), 1.0);
        assert_eq!(zz_average(&state, false), 1.0);
        assert_eq!(zz_average(&state, true), 1.0);
        assert_eq!(z_expectations(&state).len(), 4);
        assert_eq!(zz_expectations(&state, false).len(), 3);
        assert_eq!(zz_expectations(&state, true).len(), 4);
    }

    #[test]
    fn plus_state_averages_vanish() {
        let state = StateVector::plus_state(3);
        assert!(z_average(&state).abs() < 1e-12);
        assert!(zz_average(&state, true).abs() < 1e-12);
    }

    #[test]
    fn antiferromagnetic_basis_state() {
        // |0101⟩ (qubit i set for odd i): ⟨Z_i⟩ alternates +1/−1, ⟨Z_i Z_{i+1}⟩ = −1.
        let mut amplitudes = vec![Complex::ZERO; 16];
        amplitudes[0b1010] = Complex::ONE;
        let state = StateVector::from_amplitudes(amplitudes);
        let z = z_expectations(&state);
        assert_eq!(z, vec![1.0, -1.0, 1.0, -1.0]);
        assert_eq!(z_average(&state), 0.0);
        assert_eq!(zz_average(&state, false), -1.0);
        // Cyclic closes (3, 0) which is also antialigned for even N.
        assert_eq!(zz_average(&state, true), -1.0);
    }

    #[test]
    fn single_qubit_edge_cases() {
        let state = StateVector::zero_state(1);
        assert_eq!(zz_expectations(&state, false).len(), 0);
        assert_eq!(zz_average(&state, false), 0.0);
    }
}
